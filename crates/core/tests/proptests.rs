//! Property-based tests of the protocol layer: inventory invariants under
//! arbitrary operation sequences, the §4 preferable-swap rule, nested-cost
//! monotonicity, workload generation and the planned-path executor.

use proptest::prelude::*;
use qnet_core::balancer::{BalancerPolicy, CountView};
use qnet_core::control::{PropagationDelays, StaleControl, PROCESSING_DELAY_S};
use qnet_core::inventory::{Inventory, InventoryBackend};
use qnet_core::nested::{nested_swap_cost, nested_swap_cost_with_joins};
use qnet_core::physics::PhysicsModel;
use qnet_core::planned::{execute_nested_along_path, planned_path_swap_cost};
use qnet_core::workload::{PairSelection, WorkloadSpec};
use qnet_sim::{SimDuration, SimTime};
use qnet_topology::{builders, NodeId, NodePair, PathOracle, Topology};

/// Build a cycle-topology stale control plane plus the matching delay
/// table, and drive it through `rounds` synchronized exchange rounds at
/// the given period while `mutate` reshapes ground truth between rounds.
/// Returns the final exchange round's timestamp.
fn drive_gossip_rounds(
    ctl: &mut StaleControl,
    truth: &mut Inventory,
    rounds: usize,
    period_s: f64,
    mut mutate: impl FnMut(&mut Inventory, usize),
) -> SimTime {
    let n = ctl.node_count();
    let mut last = SimTime::ZERO;
    for round in 0..rounds {
        let now = SimTime::from_secs_f64(round as f64 * period_s);
        last = now;
        ctl.deliver_matured(now);
        mutate(truth, round);
        for node in (0..n).map(NodeId::from) {
            ctl.exchange(now, node, truth);
        }
    }
    last
}

fn stale_control_on_cycle(n: usize, peers: usize, period_s: f64) -> StaleControl {
    let graph = Topology::Cycle { nodes: n }.build(0);
    let oracle = PathOracle::new(&graph);
    let delays = PropagationDelays::new(&graph, None, &oracle);
    StaleControl::new(n, peers, period_s, delays)
}

/// Apply a random sequence of adds/removes/swaps and check the inventory's
/// global invariants at every step.
fn pair_from(n: usize, a: usize, b: usize) -> Option<NodePair> {
    let a = a % n;
    let b = b % n;
    if a == b {
        None
    } else {
        Some(NodePair::new(NodeId::from(a), NodeId::from(b)))
    }
}

proptest! {
    /// Node load always equals the number of stored pairs touching the node,
    /// totals reconcile with the add/remove counters, and a swap decreases
    /// the global pair count by exactly the pairs it consumes minus one.
    #[test]
    fn inventory_invariants_hold_under_random_ops(
        n in 3usize..8,
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0usize..8, 0usize..8), 0..120),
    ) {
        let mut inv = Inventory::new(n);
        for (op, a, b, c) in ops {
            match op {
                0 => {
                    if let Some(p) = pair_from(n, a, b) {
                        inv.add_pair(p).unwrap();
                    }
                }
                1 => {
                    if let Some(p) = pair_from(n, a, b) {
                        let have = inv.count(p);
                        if have > 0 {
                            inv.remove_pairs(p, 1).unwrap();
                        } else {
                            prop_assert!(inv.remove_pairs(p, 1).is_err());
                        }
                    }
                }
                _ => {
                    let (r, l, x) = (a % n, b % n, c % n);
                    if r != l && r != x && l != x {
                        let total_before = inv.total_pairs();
                        let repeater = NodeId::from(r);
                        let left = NodeId::from(l);
                        let right = NodeId::from(x);
                        let ok = inv.apply_swap(repeater, left, right, 1, 1).is_ok();
                        if ok {
                            prop_assert_eq!(inv.total_pairs(), total_before - 1);
                        } else {
                            prop_assert_eq!(inv.total_pairs(), total_before);
                        }
                    }
                }
            }
            // Cross-check node loads against a recount from the pair table.
            for node in 0..n {
                let recount: u64 = inv
                    .nonzero_pairs()
                    .into_iter()
                    .filter(|(p, _)| p.contains(NodeId::from(node)))
                    .map(|(_, c)| c)
                    .sum();
                prop_assert_eq!(inv.node_load(NodeId::from(node)), recount);
            }
            prop_assert_eq!(inv.total_added() - inv.total_removed(), inv.total_pairs());
        }
    }

    /// Whenever the balancer proposes a swap, the §4 preferability inequality
    /// holds and the swap is executable; applying it never leaves a pool
    /// negative and benefits the poorest candidate pool.
    #[test]
    fn proposed_swaps_satisfy_the_preferability_rule(
        n in 3usize..7,
        stock in proptest::collection::vec((0usize..7, 0usize..7, 1u64..6), 1..20),
        d in 1u64..3,
    ) {
        let mut inv = Inventory::new(n);
        for (a, b, count) in stock {
            if let Some(p) = pair_from(n, a, b) {
                for _ in 0..count {
                    inv.add_pair(p).unwrap();
                }
            }
        }
        let policy = BalancerPolicy;
        let overhead = move |_: NodePair| d as f64;
        for node in (0..n).map(NodeId::from) {
            if let Some(c) = policy.find_preferable_swap(&inv, &inv, node, &overhead) {
                let left_pool = inv.count(NodePair::new(node, c.left));
                let right_pool = inv.count(NodePair::new(node, c.right));
                let target = inv.count(c.beneficiary());
                prop_assert_eq!(target, c.target_count);
                prop_assert!(
                    (target + 1) as f64 <= (left_pool as f64 - d as f64).min(right_pool as f64 - d as f64) + 1e-9
                );
                // Executable with the ⌈D⌉ draw on both sides.
                let mut clone = inv.clone();
                prop_assert!(clone.apply_swap(c.repeater, c.left, c.right, d, d).is_ok());
                prop_assert_eq!(clone.count(c.beneficiary()), target + 1);
            }
        }
    }

    /// Quiescence always terminates (bounded by the total pair count) and
    /// leaves no preferable swap anywhere.
    #[test]
    fn quiescence_terminates_with_no_preferable_swap(side in 2usize..4, per_edge in 1u64..8, seed in any::<u64>()) {
        let graph = builders::random_connected_grid(side, seed);
        let mut inv = Inventory::new(graph.node_count());
        for (a, b) in graph.edges() {
            for _ in 0..per_edge {
                inv.add_pair(NodePair::new(a, b)).unwrap();
            }
        }
        let policy = BalancerPolicy;
        let overhead = |_: NodePair| 1.0;
        let total = inv.total_pairs() as usize;
        let swaps = policy.run_to_quiescence(&mut inv, &overhead, total + 1);
        prop_assert!(swaps.len() <= total, "cannot swap more times than pairs exist");
        for node in graph.nodes() {
            prop_assert!(policy.find_preferable_swap(&inv, &inv, node, &overhead).is_none());
        }
    }

    /// The paper's nested cost is monotone in both arguments, dominated by
    /// the with-joins variant, and both match the closed forms at powers of
    /// two.
    #[test]
    fn nested_cost_properties(n in 1usize..64, d in 1.0f64..4.0) {
        let base = nested_swap_cost(n, d);
        prop_assert!(base >= 0.0);
        prop_assert!(nested_swap_cost(n + 1, d) + 1e-12 >= base);
        prop_assert!(nested_swap_cost(n, d + 0.5) + 1e-12 >= base);
        prop_assert!(nested_swap_cost_with_joins(n, d) + 1e-12 >= base);
        if n.is_power_of_two() && n >= 2 {
            let levels = n.trailing_zeros() as i32;
            // s(2^k) = 2^{k-1} · D^k.
            let expected = 2f64.powi(levels - 1) * d.powi(levels);
            prop_assert!((base - expected).abs() < 1e-6, "n={n} d={d}: {base} vs {expected}");
        }
    }

    /// The planned-path executor's swap count matches the closed-form cost
    /// whenever the edge pools are stocked to the closed-form base-pair
    /// requirement, for unit draw factor.
    #[test]
    fn planned_executor_matches_cost_formula(hops in 1usize..7) {
        let nodes: Vec<NodeId> = (0..=hops as u32).map(NodeId).collect();
        let mut inv = Inventory::new(hops + 1);
        for w in nodes.windows(2) {
            inv.add_pair(NodePair::new(w[0], w[1])).unwrap();
        }
        let swaps = execute_nested_along_path(&mut inv, &nodes, 1, 1).unwrap();
        prop_assert_eq!(swaps, planned_path_swap_cost(hops, 1));
        prop_assert_eq!(inv.count(NodePair::new(nodes[0], nodes[hops])), 1);
        prop_assert_eq!(inv.total_pairs(), 1);
    }

    /// Workload generation: the requested number of distinct consumer pairs
    /// (capped by the number of node pairs), requests drawn only from that
    /// set, sequence numbers dense, and the result seed-stable.
    #[test]
    fn workloads_are_well_formed(nodes in 2usize..30, pairs in 1usize..50, requests in 0usize..80, seed in any::<u64>()) {
        let spec = WorkloadSpec::closed_loop(nodes, pairs, requests);
        let w = spec.generate(seed);
        let max_pairs = nodes * (nodes - 1) / 2;
        prop_assert_eq!(w.consumers.len(), pairs.min(max_pairs).max(1));
        prop_assert_eq!(w.requests.len(), requests);
        let mut sorted = w.consumers.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), w.consumers.len(), "consumers must be distinct");
        for (k, r) in w.requests.iter().enumerate() {
            prop_assert_eq!(r.sequence, k as u64);
            prop_assert!(w.consumers.contains(&r.pair));
        }
        prop_assert_eq!(spec.generate(seed), w);
    }

    /// Zipf-skewed selection: request frequencies follow popularity rank —
    /// the head (rank-1) consumer pair is requested at least as often as the
    /// tail pair, and with s ≥ 1 it dominates its expected uniform share.
    #[test]
    fn zipf_selection_frequencies_follow_rank(
        pairs in 2usize..10,
        s in 1.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let requests = 2000;
        let spec = WorkloadSpec::closed_loop(12, pairs, requests)
            .with_discipline(PairSelection::ZipfSkew { s });
        let w = spec.generate(seed);
        prop_assert_eq!(w.requests.len(), requests);
        let count = |pair| w.requests.iter().filter(|r| r.pair == pair).count();
        let head = count(w.consumers[0]);
        let tail = count(*w.consumers.last().unwrap());
        prop_assert!(head >= tail, "head {} < tail {}", head, tail);
        // At s ≥ 1 the head pair's Zipf share (1/H_n ≥ 1/n · n/H_n) clearly
        // exceeds uniform; allow generous sampling noise.
        prop_assert!(
            head as f64 > requests as f64 / pairs as f64 * 1.2,
            "head share {} not skewed above uniform {}",
            head,
            requests / pairs
        );
        // Determinism rides along.
        prop_assert_eq!(spec.generate(seed), w);
    }

    /// Open-loop Poisson arrivals: sorted, within the horizon, seed-stable,
    /// and counts that scale with the offered load.
    #[test]
    fn poisson_arrivals_are_well_formed(
        rate in 0.2f64..5.0,
        horizon in 10.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::open_loop(8, 5, rate, horizon);
        let w = spec.generate(seed);
        let bound = qnet_sim::SimTime::from_secs_f64(horizon);
        for r in &w.requests {
            prop_assert!(r.arrival_time <= bound);
        }
        for pair in w.requests.windows(2) {
            prop_assert!(pair[0].arrival_time <= pair[1].arrival_time);
        }
        // 6-sigma band around the Poisson mean.
        let mean = rate * horizon;
        let slack = 6.0 * mean.sqrt() + 1.0;
        prop_assert!(
            (w.requests.len() as f64 - mean).abs() < slack,
            "{} arrivals vs mean {}",
            w.requests.len(),
            mean
        );
        prop_assert_eq!(spec.generate(seed), w);
    }

    /// Differential pin of the flat inventory backend against the legacy
    /// B-tree one: an arbitrary mutation sequence (adds, removes, swaps,
    /// expiry purges, clock advances) drives both backends through
    /// byte-identical observable states — counts, per-pool lot order,
    /// `nonzero_pairs` order, purge results, and serialized JSON.
    #[test]
    fn flat_inventory_backend_matches_btree(
        n in 3usize..9,
        decoherent in any::<bool>(),
        ops in proptest::collection::vec(
            (0usize..5, 0usize..9, 0usize..9, 0usize..9, 1u64..5),
            0..150,
        ),
    ) {
        let mut flat = Inventory::with_backend(n, InventoryBackend::Flat);
        let mut btree = Inventory::with_backend(n, InventoryBackend::BTree);
        if decoherent {
            let physics = PhysicsModel::decoherent(8.0);
            flat.enable_lot_tracking(&physics);
            btree.enable_lot_tracking(&physics);
        }
        let mut clock_s = 0u64;
        for (op, a, b, c, dt) in ops {
            match op {
                0 | 1 => {
                    if let Some(p) = pair_from(n, a, b) {
                        prop_assert_eq!(flat.add_pair(p), btree.add_pair(p));
                    }
                }
                2 => {
                    if let Some(p) = pair_from(n, a, b) {
                        prop_assert_eq!(
                            flat.remove_pairs_with_fidelity(p, dt.min(2)),
                            btree.remove_pairs_with_fidelity(p, dt.min(2))
                        );
                    }
                }
                3 => {
                    let (r, l, x) = (a % n, b % n, c % n);
                    if r != l && r != x && l != x {
                        let (r, l, x) = (NodeId::from(r), NodeId::from(l), NodeId::from(x));
                        prop_assert_eq!(
                            flat.apply_swap(r, l, x, 1, 1),
                            btree.apply_swap(r, l, x, 1, 1)
                        );
                    }
                }
                _ => {
                    clock_s += dt;
                    flat.set_clock(SimTime::from_secs(clock_s));
                    btree.set_clock(SimTime::from_secs(clock_s));
                    prop_assert_eq!(
                        flat.purge_expired(SimDuration::from_secs(10)),
                        btree.purge_expired(SimDuration::from_secs(10))
                    );
                }
            }
        }
        prop_assert_eq!(&flat, &btree);
        prop_assert_eq!(flat.nonzero_pairs(), btree.nonzero_pairs());
        prop_assert_eq!(flat.earliest_lot_time(), btree.earliest_lot_time());
        for a in 0..n {
            for b in a + 1..n {
                let p = NodePair::new(NodeId::from(a), NodeId::from(b));
                prop_assert_eq!(
                    flat.lots_for(p).collect::<Vec<_>>(),
                    btree.lots_for(p).collect::<Vec<_>>(),
                    "lot order diverged for {}",
                    p
                );
            }
        }
        let bytes = |inv: &Inventory| {
            serde_json::to_string(&serde_json::to_value(inv).expect("inventory to_value"))
                .expect("inventory to_string")
        };
        prop_assert_eq!(bytes(&flat), bytes(&btree));
    }

    /// Stale-knowledge freshness bound: once every node has completed one
    /// full peer rotation, no believed row is ever older than the rotation
    /// window (⌈(n−1)/K⌉ refresh periods) plus the worst classical
    /// propagation delay plus the fixed processing delay — gossip never
    /// lets a view fall further behind than the schedule allows, no matter
    /// how truth mutates underneath.
    #[test]
    fn stale_row_age_is_bounded_by_rotation_window_plus_delay(
        n in 4usize..9,
        peers in 1usize..4,
        period_cs in 10u32..100,
        extra_rounds in 0usize..5,
        ops in proptest::collection::vec((0usize..9, 0usize..9, any::<bool>()), 0..60),
    ) {
        let period_s = period_cs as f64 / 100.0;
        let mut ctl = stale_control_on_cycle(n, peers, period_s);
        let mut truth = Inventory::new(n);
        let rotation = (n - 1).div_ceil(peers.min(n - 1));
        let rounds = rotation + extra_rounds + 1;
        let last = drive_gossip_rounds(&mut ctl, &mut truth, rounds, period_s, |inv, round| {
            for (a, b, add) in ops.iter().skip(round % 7) {
                if let Some(p) = pair_from(n, *a, *b) {
                    if *add {
                        inv.add_pair(p).unwrap();
                    } else if inv.count(p) > 0 {
                        inv.remove_pairs(p, 1).unwrap();
                    }
                }
            }
        });
        // Let every in-flight row land, then audit row ages.
        let max_delay = ctl.delays().max_delay_s() + PROCESSING_DELAY_S;
        let now = last + SimDuration::from_secs_f64(max_delay + 1e-9);
        ctl.deliver_matured(now);
        let bound = rotation as f64 * period_s + max_delay + 1e-6;
        for node in (0..n).map(NodeId::from) {
            // A node never pulls its own row (its local pools come from
            // ground truth, age zero); the bound covers every remote row.
            for owner in (0..n).map(NodeId::from).filter(|&o| o != node) {
                let age = now
                    .saturating_since(ctl.view(node).row_refreshed_at(owner))
                    .as_secs_f64();
                prop_assert!(
                    age <= bound,
                    "node {:?}: believed row of {:?} is {age} s old, bound {bound} s \
                     (n={n} K={peers} period={period_s})",
                    node,
                    owner
                );
            }
        }
    }

    /// Stale-knowledge convergence: when truth stops mutating and gossip
    /// keeps running for one full peer rotation (plus delivery time), every
    /// node's believed counts agree with ground truth pair for pair — the
    /// views are eventually consistent, staleness is purely transient.
    #[test]
    fn stale_views_converge_to_truth_once_mutations_stop(
        n in 4usize..9,
        peers in 1usize..4,
        period_cs in 10u32..100,
        churn_rounds in 1usize..6,
        ops in proptest::collection::vec((0usize..9, 0usize..9, any::<bool>()), 1..80),
    ) {
        let period_s = period_cs as f64 / 100.0;
        let mut ctl = stale_control_on_cycle(n, peers, period_s);
        let mut truth = Inventory::new(n);
        let rotation = (n - 1).div_ceil(peers.min(n - 1));
        // Churn phase: mutations land between exchanges, views drift.
        drive_gossip_rounds(&mut ctl, &mut truth, churn_rounds, period_s, |inv, round| {
            for (a, b, add) in ops.iter().skip(round) {
                if let Some(p) = pair_from(n, *a, *b) {
                    if *add {
                        inv.add_pair(p).unwrap();
                    } else if inv.count(p) > 0 {
                        inv.remove_pairs(p, 1).unwrap();
                    }
                }
            }
        });
        // Quiet phase: truth is frozen; one full rotation re-reads every row.
        let offset = churn_rounds as f64 * period_s;
        let mut last = SimTime::ZERO;
        for round in 0..rotation {
            let now = SimTime::from_secs_f64(offset + round as f64 * period_s);
            last = now;
            ctl.deliver_matured(now);
            for node in (0..n).map(NodeId::from) {
                ctl.exchange(now, node, &truth);
            }
        }
        let settle = ctl.delays().max_delay_s() + PROCESSING_DELAY_S + 1e-9;
        ctl.deliver_matured(last + SimDuration::from_secs_f64(settle));
        prop_assert_eq!(ctl.in_flight_len(), 0, "every delivery must mature");
        for node in (0..n).map(NodeId::from) {
            let view = ctl.view(node);
            for p in qnet_topology::pairs::all_pairs(n) {
                prop_assert_eq!(
                    view.count(p),
                    truth.count(p),
                    "node {:?} disagrees with truth on {} after quiescence",
                    node,
                    p
                );
            }
        }
    }
}
