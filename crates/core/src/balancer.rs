//! The max-min distributed swapping protocol (paper §4).
//!
//! Each node `x` maintains (or learns) the counts `C_x(y)` of Bell pairs it
//! shares with every other node. For any two entanglement peers `y` and `y'`,
//! the swap `y' ← x → y` is **preferable** when
//!
//! ```text
//! C_y(y') + 1 ≤ min( C_x(y) − D_{x,y} ,  C_x(y') − D_{x,y'} )
//! ```
//!
//! i.e. `x` only reduces its own counts if doing so aids a pair whose count
//! would still be no larger after the swap, leaving a distillation margin on
//! both of its own pools. If several candidates are preferable, `x` performs
//! the one with minimal `C_y(y')` (ties broken deterministically by the
//! target pair's node ids, so that simulations are reproducible).
//!
//! Were generation and consumption to cease, repeatedly applying preferable
//! swaps drives the inventory toward a max-min fair allocation: no pool's
//! count can be increased without decreasing one that is already smaller
//! (see `run_to_quiescence` and its tests).

use crate::inventory::Inventory;
use qnet_topology::{NodeId, NodePair};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Reusable candidate buffer for [`BalancerPolicy::find_preferable_swap`].
    /// The scan runs once per swap-scan event (millions of times per
    /// simulation) and its candidate list is usually empty or tiny; keeping
    /// one buffer per thread makes the steady-state scan allocation-free.
    /// The buffer is `take`n for the duration of a scan rather than borrowed,
    /// so caller-supplied closures may re-enter the balancer safely.
    static RICH_SCRATCH: RefCell<Vec<(NodeId, f64)>> = const { RefCell::new(Vec::new()) };
}

/// A read-only view of pair counts. The ground-truth [`Inventory`] implements
/// it; the gossip layer's possibly-stale view (paper §6, "classical
/// overheads") implements it too.
pub trait CountView {
    /// The viewed count of Bell pairs between the endpoints of `pair`.
    fn count(&self, pair: NodePair) -> u64;
}

impl CountView for Inventory {
    #[inline]
    fn count(&self, pair: NodePair) -> u64 {
        Inventory::count(self, pair)
    }
}

/// A swap the balancer has decided to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapCandidate {
    /// The repeater performing the swap (the paper's `x`).
    pub repeater: NodeId,
    /// One entanglement peer (the paper's `y`).
    pub left: NodeId,
    /// The other entanglement peer (the paper's `y'`).
    pub right: NodeId,
    /// The (viewed) count `C_y(y')` of the beneficiary pair at decision time.
    pub target_count: u64,
}

impl SwapCandidate {
    /// The pair that gains a Bell pair from this swap.
    pub fn beneficiary(&self) -> NodePair {
        NodePair::new(self.left, self.right)
    }
}

/// The §4 balancing policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancerPolicy;

impl BalancerPolicy {
    /// Find the preferable swap node `x` should perform, if any.
    ///
    /// * `local` supplies `x`'s own pool counts and entanglement peers — a
    ///   node always knows its own buffers exactly.
    /// * `remote` supplies the counts of *other* pairs (`C_y(y')`), which may
    ///   be a stale gossip view.
    /// * `overhead` maps a pair to its distillation overhead `D`.
    ///
    /// Generic (rather than `&dyn`) over the remote view and overhead map so
    /// the million-scan hot path monomorphizes: the beneficiary probe in the
    /// candidate loop inlines straight into a count-matrix load instead of a
    /// virtual call per pair.
    pub fn find_preferable_swap<R, F>(
        &self,
        local: &Inventory,
        remote: &R,
        node: NodeId,
        overhead: &F,
    ) -> Option<SwapCandidate>
    where
        R: CountView + ?Sized,
        F: Fn(NodePair) -> f64 + ?Sized,
    {
        let peers = local.peer_counts(node);
        if peers.len() < 2 {
            return None;
        }

        // A peer can only take part in a preferable swap if its pool leaves
        // margin for the beneficiary: `C_y(y') ≥ 0` forces
        // `C_x(peer) − D ≥ 1`. Filtering first makes a scan O(peers) plus
        // O(rich²) instead of O(peers²) — on an internet-scale graph a hub's
        // peer list runs to hundreds, but almost every pool holds a single
        // pair, so `rich` stays tiny. The counts ride inline in the peer
        // index, so this pass is one sequential walk with no matrix probes.
        // The filter is exact (no candidate that survives it is judged
        // differently), so results are bit-identical to the exhaustive scan.
        let mut rich = RICH_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
        rich.clear();
        for &(peer, count) in peers {
            let pair = NodePair::new(node, peer);
            let margin = count as f64 - overhead(pair);
            if margin + 1e-12 >= 1.0 {
                rich.push((peer, margin));
            }
        }

        let mut best: Option<SwapCandidate> = None;
        'candidates: for (i, &(left, left_margin)) in rich.iter().enumerate() {
            for &(right, right_margin) in &rich[i + 1..] {
                let beneficiary = NodePair::new(left, right);
                let target_count = remote.count(beneficiary);
                let preferable =
                    (target_count as f64 + 1.0) <= left_margin.min(right_margin) + 1e-12;
                if !preferable {
                    continue;
                }
                let candidate = SwapCandidate {
                    repeater: node,
                    left,
                    right,
                    target_count,
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        target_count < b.target_count
                            || (target_count == b.target_count
                                && candidate.beneficiary() < b.beneficiary())
                    }
                };
                if better {
                    best = Some(candidate);
                    // `rich` ascends by node id, so the (left, right) loop
                    // enumerates beneficiaries in ascending `NodePair` order:
                    // a preferable candidate at the count floor can never be
                    // displaced by a later one (which ties on count at best
                    // and always loses the beneficiary tie-break).
                    if target_count == 0 {
                        break 'candidates;
                    }
                }
            }
        }
        RICH_SCRATCH.with(|cell| *cell.borrow_mut() = rich);
        best
    }

    /// Execute one balancing scan at `node`: if a preferable swap exists,
    /// apply it to the inventory (consuming `⌈D⌉` pairs on each side) and
    /// return it.
    pub fn scan_and_swap<F>(
        &self,
        inventory: &mut Inventory,
        node: NodeId,
        overhead: &F,
    ) -> Option<SwapCandidate>
    where
        F: Fn(NodePair) -> f64 + ?Sized,
    {
        let candidate = {
            let view: &Inventory = inventory;
            self.find_preferable_swap(view, view, node, overhead)?
        };
        let cost_left = overhead(NodePair::new(node, candidate.left)).ceil() as u64;
        let cost_right = overhead(NodePair::new(node, candidate.right)).ceil() as u64;
        inventory
            .apply_swap(node, candidate.left, candidate.right, cost_left, cost_right)
            .expect("preferable swap must be executable");
        Some(candidate)
    }

    /// Repeatedly apply preferable swaps (scanning nodes in id order, round
    /// after round) until no node has one. Returns the executed swaps.
    ///
    /// This is the "generation and consumption cease" setting of §4, used to
    /// check that the protocol converges to a max-min-fair balance; the live
    /// simulation interleaves scans with generation and consumption instead.
    pub fn run_to_quiescence<F>(
        &self,
        inventory: &mut Inventory,
        overhead: &F,
        max_swaps: usize,
    ) -> Vec<SwapCandidate>
    where
        F: Fn(NodePair) -> f64 + ?Sized,
    {
        let n = inventory.node_count();
        let mut executed = Vec::new();
        loop {
            let mut any = false;
            for node in (0..n).map(NodeId::from) {
                if executed.len() >= max_swaps {
                    return executed;
                }
                if let Some(c) = self.scan_and_swap(inventory, node, overhead) {
                    executed.push(c);
                    any = true;
                }
            }
            if !any {
                return executed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    fn uniform(d: f64) -> impl Fn(NodePair) -> f64 {
        move |_| d
    }

    #[test]
    fn no_swap_without_two_peers() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(1, 0)).unwrap();
        inv.add_pair(pair(1, 0)).unwrap();
        assert!(policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(1.0))
            .is_none());
    }

    #[test]
    fn preferable_swap_respects_margin() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        // Node 1 shares 3 pairs with node 0 and 3 with node 2; pair (0,2) has
        // none. With D = 1: target 0 + 1 ≤ min(3−1, 3−1) = 2 → preferable.
        for _ in 0..3 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        let c = policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(1.0))
            .expect("preferable");
        assert_eq!(c.repeater, NodeId(1));
        assert_eq!(c.beneficiary(), pair(0, 2));
        assert_eq!(c.target_count, 0);

        // With D = 2 the margin shrinks: 0 + 1 ≤ min(3−2, 3−2) = 1 → still
        // preferable (boundary case).
        assert!(policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(2.0))
            .is_some());
        // With D = 3 the margin is 0 → not preferable.
        assert!(policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(3.0))
            .is_none());
    }

    #[test]
    fn does_not_help_a_richer_pair() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        for _ in 0..3 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        // The beneficiary pair already holds 4 pairs — more than either pool
        // of the repeater: not preferable.
        for _ in 0..4 {
            inv.add_pair(pair(0, 2)).unwrap();
        }
        assert!(policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(1.0))
            .is_none());
    }

    #[test]
    fn picks_the_poorest_beneficiary() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(4);
        // Node 0 shares plenty with 1, 2 and 3.
        for _ in 0..6 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(0, 2)).unwrap();
            inv.add_pair(pair(0, 3)).unwrap();
        }
        // Pair (1,2) already has 2; pair (1,3) has 1; pair (2,3) has none.
        inv.add_pair(pair(1, 2)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        inv.add_pair(pair(1, 3)).unwrap();
        let c = policy
            .find_preferable_swap(&inv, &inv, NodeId(0), &uniform(1.0))
            .expect("preferable");
        assert_eq!(c.beneficiary(), pair(2, 3));
        assert_eq!(c.target_count, 0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(4);
        for _ in 0..5 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(0, 2)).unwrap();
            inv.add_pair(pair(0, 3)).unwrap();
        }
        // All beneficiaries have count 0; the smallest pair (1,2) wins.
        let c = policy
            .find_preferable_swap(&inv, &inv, NodeId(0), &uniform(1.0))
            .unwrap();
        assert_eq!(c.beneficiary(), pair(1, 2));
    }

    #[test]
    fn scan_and_swap_applies_distillation_cost() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        for _ in 0..5 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        let c = policy
            .scan_and_swap(&mut inv, NodeId(1), &uniform(2.0))
            .expect("swap executed");
        assert_eq!(c.beneficiary(), pair(0, 2));
        assert_eq!(inv.count(pair(0, 1)), 3);
        assert_eq!(inv.count(pair(1, 2)), 3);
        assert_eq!(inv.count(pair(0, 2)), 1);
    }

    #[test]
    fn quiescence_on_a_path_spreads_pairs() {
        // Path 0—1—2 with a big stock on each generation edge: balancing
        // should populate the (0,2) pool until counts are (max-min) level.
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        for _ in 0..9 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        let swaps = policy.run_to_quiescence(&mut inv, &uniform(1.0), 10_000);
        assert!(!swaps.is_empty());
        // After quiescence no preferable swap remains anywhere.
        for node in 0..3 {
            assert!(policy
                .find_preferable_swap(&inv, &inv, NodeId(node), &uniform(1.0))
                .is_none());
        }
        // Max-min property at the repeater: the beneficiary pool is within
        // one distillation margin of the donor pools.
        let c01 = inv.count(pair(0, 1));
        let c12 = inv.count(pair(1, 2));
        let c02 = inv.count(pair(0, 2));
        assert!(c02 >= 1, "some pairs must have been pushed to (0,2)");
        assert!(
            c02 + 1 > c01.min(c12).saturating_sub(1),
            "no further swap is preferable"
        );
        // Conservation: every swap destroys one net pair.
        assert_eq!((c01 + c12 + c02) as usize, 18 - swaps.len());
    }

    #[test]
    fn quiescence_respects_max_swaps_budget() {
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        for _ in 0..50 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        let swaps = policy.run_to_quiescence(&mut inv, &uniform(1.0), 3);
        assert_eq!(swaps.len(), 3);
    }

    #[test]
    fn stale_remote_view_changes_the_decision() {
        // A gossip view that believes pair (0,2) already has many pairs makes
        // the repeater skip the swap even though ground truth is zero.
        struct Pessimist;
        impl CountView for Pessimist {
            fn count(&self, _pair: NodePair) -> u64 {
                100
            }
        }
        let policy = BalancerPolicy;
        let mut inv = Inventory::new(3);
        for _ in 0..5 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        assert!(policy
            .find_preferable_swap(&inv, &inv, NodeId(1), &uniform(1.0))
            .is_some());
        assert!(policy
            .find_preferable_swap(&inv, &Pessimist, NodeId(1), &uniform(1.0))
            .is_none());
    }
}
