//! The experiment runner: configuration → simulation → results.
//!
//! [`Experiment`] owns the full recipe of one §5-style run (network
//! configuration, workload, swap policy, knowledge model, seed, horizon),
//! resolves the policy from the [`crate::policy`] registry, drives the
//! discrete-event engine to completion and returns an [`ExperimentResult`]
//! that carries both the headline swap-overhead number and the full
//! [`RunMetrics`] for deeper analysis. Sweeps (Figures 4 and 5, the
//! ablations) are thin loops over `Experiment` in `qnet-bench`.

use crate::classical::KnowledgeModel;
use crate::config::NetworkConfig;
use crate::metrics::RunMetrics;
use crate::network::QuantumNetworkWorld;
pub use crate::policy::{PolicyId, ProtocolMode};
use crate::workload::{Workload, WorkloadSpec};
use qnet_sim::{Engine, EventQueue, SimTime, StopCondition, World};
use qnet_topology::Topology;
use serde::{Deserialize, Serialize};

/// Everything needed to reproduce one simulation run.
///
/// `Copy + Send`: the whole recipe is a small, flat value (the policy is
/// selected by its interned [`PolicyId`] name and instantiated per run), so
/// parallel sweep runners can hand configs to worker threads by value (see
/// the `configs_are_cheap_to_clone_and_send` test for the compile-time
/// guarantees `qnet-campaign` relies on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The physical-network configuration.
    pub network: NetworkConfig,
    /// The consumption workload specification.
    pub workload: WorkloadSpec,
    /// Which swap policy to run, by registry name. (The field keeps its
    /// pre-plugin-API name `mode` so serialized configs round-trip.)
    pub mode: PolicyId,
    /// How nodes learn remote buffer counts.
    pub knowledge: KnowledgeModel,
    /// Root RNG seed (drives topology randomness, workload selection,
    /// generation arrivals and scan staggering).
    pub seed: u64,
    /// Simulated-time horizon in seconds; runs stop earlier if every
    /// injected request is satisfied and no arrival is outstanding. For
    /// open-loop workloads, arrivals scheduled beyond this horizon are never
    /// injected (they count as neither satisfied nor unsatisfied).
    pub max_sim_time_s: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        let topology = Topology::Cycle { nodes: 9 };
        ExperimentConfig {
            network: NetworkConfig::new(topology),
            workload: WorkloadSpec::paper_default(topology.node_count()),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 1,
            max_sim_time_s: 5_000.0,
        }
    }
}

impl ExperimentConfig {
    /// The paper's §5 configuration for a given topology and distillation
    /// overhead: `g = 1` on generation edges, 35 consumer pairs, sequential
    /// requests, oblivious protocol with global knowledge.
    pub fn paper_section5(topology: Topology, distillation: f64, seed: u64) -> Self {
        ExperimentConfig {
            network: NetworkConfig::new(topology)
                .with_topology_seed(seed)
                .with_distillation(crate::config::DistillationSpec::Uniform(distillation)),
            workload: WorkloadSpec::paper_default(topology.node_count()),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed,
            max_sim_time_s: 20_000.0,
        }
    }

    /// Builder: select the swap policy (anything convertible to a
    /// [`PolicyId`], including the legacy [`ProtocolMode`] variants).
    pub fn with_policy(mut self, policy: impl Into<PolicyId>) -> Self {
        self.mode = policy.into();
        self
    }
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Label of the topology that was simulated.
    pub topology: String,
    /// Number of nodes.
    pub node_count: usize,
    /// The swap policy that ran.
    pub mode: PolicyId,
    /// Resolved distillation overhead `D`.
    pub distillation_overhead: f64,
    /// Number of satisfied consumption requests.
    pub satisfied_requests: usize,
    /// Number of requests still pending at the end.
    pub unsatisfied_requests: u64,
    /// Total swap operations performed.
    pub swaps_performed: u64,
    /// Simulated seconds the run covered.
    pub simulated_seconds: f64,
    /// The full metrics of the run.
    pub metrics: RunMetrics,
}

impl ExperimentResult {
    /// The paper's swap-overhead metric (`None` if the denominator is zero).
    pub fn swap_overhead(&self) -> Option<f64> {
        self.metrics.swap_overhead()
    }

    /// Median sojourn latency (arrival → satisfaction) in simulated seconds.
    pub fn latency_p50_s(&self) -> Option<f64> {
        self.metrics.sojourn_percentile(0.50)
    }

    /// 95th-percentile sojourn latency in simulated seconds.
    pub fn latency_p95_s(&self) -> Option<f64> {
        self.metrics.sojourn_percentile(0.95)
    }

    /// Fraction of requests satisfied.
    pub fn satisfaction_ratio(&self) -> f64 {
        self.metrics.satisfaction_ratio()
    }

    /// One line of human-readable summary (used by the figure binaries).
    pub fn summary_line(&self) -> String {
        format!(
            "{topo:>16}  N={n:<3} D={d:<4} mode={mode:?}  satisfied={sat}/{tot}  swaps={swaps}  overhead={overhead}",
            topo = self.topology,
            n = self.node_count,
            d = self.distillation_overhead,
            mode = self.mode,
            sat = self.satisfied_requests,
            tot = self.satisfied_requests as u64
                + self.unsatisfied_requests
                + self.metrics.fidelity_rejected_requests,
            swaps = self.swaps_performed,
            overhead = self
                .swap_overhead()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".to_string()),
        )
    }
}

/// A runnable experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Wrap a configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Run the simulation to completion (all requests satisfied) or to the
    /// configured horizon, and collect the results.
    ///
    /// Open-loop workloads stream their arrivals lazily (see
    /// [`WorkloadSpec::stream`]): the request vector is never materialised,
    /// so a 10⁶-request horizon costs the same memory as a 10³-request one.
    /// The delivered arrival sequence — and the resulting metrics — are
    /// identical to the eager [`Experiment::run_with_workload`] path.
    pub fn run(&self) -> ExperimentResult {
        // The workload spec's node count must match the topology.
        let mut spec = self.config.workload;
        spec.node_count = self.config.network.node_count();
        if spec.is_open_loop() {
            let mut staging = EventQueue::new();
            let world = QuantumNetworkWorld::with_arrival_stream(
                self.config.network,
                spec.stream(self.config.seed),
                self.config.mode.instantiate(),
                self.config.knowledge,
                self.config.seed,
                &mut staging,
            );
            self.drive(world, staging)
        } else {
            self.run_with_workload(spec.generate(self.config.seed))
        }
    }

    /// Run with an explicitly supplied workload (used by ablations that pin
    /// the request sequence across configurations). Always eager: every
    /// arrival event is scheduled up front.
    pub fn run_with_workload(&self, workload: Workload) -> ExperimentResult {
        let mut staging = EventQueue::new();
        let world = QuantumNetworkWorld::new(
            self.config.network,
            workload,
            self.config.mode.instantiate(),
            self.config.knowledge,
            self.config.seed,
            &mut staging,
        );
        self.drive(world, staging)
    }

    /// Re-stage the seeded events onto a fresh engine (re-assigning seqs in
    /// (time, seq) order) and run to the configured horizon.
    fn drive(
        &self,
        world: QuantumNetworkWorld,
        mut staging: EventQueue<<QuantumNetworkWorld as World>::Event>,
    ) -> ExperimentResult {
        let mut engine: Engine<QuantumNetworkWorld> = Engine::new(world);
        while let Some(ev) = staging.pop() {
            engine.queue_mut().schedule_at(ev.time, ev.event);
        }

        let horizon = SimTime::from_secs_f64(self.config.max_sim_time_s);
        engine.run(StopCondition::at_horizon(horizon));
        let ended = engine.now();
        let mut world = engine.into_world();
        world.finish();
        let metrics = world.metrics();

        ExperimentResult {
            topology: self.config.network.topology.label(),
            node_count: self.config.network.node_count(),
            mode: self.config.mode,
            distillation_overhead: self.config.network.distillation_overhead(),
            satisfied_requests: metrics.satisfied_count(),
            unsatisfied_requests: metrics.unsatisfied_requests,
            swaps_performed: metrics.swaps_performed,
            simulated_seconds: ended.as_secs_f64(),
            metrics,
        }
    }
}

/// Run the same experiment with several seeds and average the swap overhead
/// (ignoring runs whose denominator is zero). Returns
/// `(mean overhead, satisfied fraction)`.
pub fn mean_overhead_over_seeds(config: &ExperimentConfig, seeds: &[u64]) -> (Option<f64>, f64) {
    let mut overheads = Vec::new();
    let mut satisfied = 0usize;
    let mut total = 0usize;
    for &seed in seeds {
        let mut c = *config;
        c.seed = seed;
        c.network.topology_seed = seed;
        let result = Experiment::new(c).run();
        if let Some(o) = result.swap_overhead() {
            overheads.push(o);
        }
        satisfied += result.satisfied_requests;
        total += result.satisfied_requests
            + result.unsatisfied_requests as usize
            + result.metrics.fidelity_rejected_requests as usize;
    }
    let mean = if overheads.is_empty() {
        None
    } else {
        Some(overheads.iter().sum::<f64>() / overheads.len() as f64)
    };
    let ratio = if total == 0 {
        1.0
    } else {
        satisfied as f64 / total as f64
    };
    (mean, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistillationSpec;
    use crate::workload::TrafficModel;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes: 7 }),
            workload: WorkloadSpec::closed_loop(7, 6, 10),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 5,
            max_sim_time_s: 2_000.0,
        }
    }

    #[test]
    fn oblivious_run_completes_and_reports() {
        let result = Experiment::new(small_config()).run();
        assert_eq!(result.node_count, 7);
        assert_eq!(result.topology, "cycle-7");
        assert!(result.satisfied_requests >= 8, "{result:?}");
        assert!(result.swaps_performed > 0);
        if let Some(o) = result.swap_overhead() {
            assert!(o >= 1.0, "overhead {o}");
        }
        assert!(result.simulated_seconds > 0.0);
        assert!(!result.summary_line().is_empty());
    }

    #[test]
    fn identical_seeds_identical_results() {
        let a = Experiment::new(small_config()).run();
        let b = Experiment::new(small_config()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn planned_mode_uses_fewer_or_equal_swaps_than_oblivious_spends() {
        // The planned baseline performs only the swaps each request needs;
        // the oblivious balancer spends extra swaps positioning pairs.
        let mut oblivious = small_config();
        oblivious.workload = oblivious.workload.with_requests(6);
        let planned = oblivious.with_policy(PolicyId::PLANNED);
        let ro = Experiment::new(oblivious).run();
        let rp = Experiment::new(planned).run();
        assert!(rp.satisfied_requests >= 5);
        assert!(ro.satisfied_requests >= 5);
        assert!(
            rp.swaps_performed <= ro.swaps_performed,
            "planned {} vs oblivious {}",
            rp.swaps_performed,
            ro.swaps_performed
        );
    }

    #[test]
    fn hybrid_mode_satisfies_at_least_as_many_requests() {
        let mut base = small_config();
        base.workload = base.workload.with_requests(8);
        base.max_sim_time_s = 400.0;
        let hybrid = base.with_policy(PolicyId::HYBRID);
        let rb = Experiment::new(base).run();
        let rh = Experiment::new(hybrid).run();
        assert!(rh.satisfied_requests >= rb.satisfied_requests);
    }

    #[test]
    fn legacy_protocol_mode_still_selects_policies() {
        // The ProtocolMode shim converts into the same runs as PolicyId.
        let direct = small_config().with_policy(PolicyId::HYBRID);
        let shimmed = small_config().with_policy(ProtocolMode::Hybrid);
        assert_eq!(direct, shimmed);
        assert_eq!(
            Experiment::new(direct).run(),
            Experiment::new(shimmed).run()
        );
    }

    #[test]
    fn higher_distillation_increases_overhead() {
        let mut d1 = small_config();
        d1.workload = d1.workload.with_requests(8);
        let mut d2 = d1;
        d2.network = d2.network.with_distillation(DistillationSpec::Uniform(2.0));
        let r1 = Experiment::new(d1).run();
        let r2 = Experiment::new(d2).run();
        let (o1, o2) = (r1.swap_overhead(), r2.swap_overhead());
        if let (Some(o1), Some(o2)) = (o1, o2) {
            assert!(o2 >= o1 * 0.8, "D=2 overhead {o2} vs D=1 {o1}");
        }
    }

    #[test]
    fn paper_section5_config_matches_description() {
        let c = ExperimentConfig::paper_section5(Topology::Cycle { nodes: 25 }, 2.0, 9);
        assert_eq!(c.network.node_count(), 25);
        assert_eq!(c.network.distillation_overhead(), 2.0);
        assert_eq!(c.workload.consumer_pairs, 35);
        assert_eq!(c.mode, PolicyId::OBLIVIOUS);
    }

    #[test]
    fn mean_overhead_over_seeds_aggregates() {
        let mut c = small_config();
        c.workload = c.workload.with_requests(5);
        c.max_sim_time_s = 1_000.0;
        let (mean, ratio) = mean_overhead_over_seeds(&c, &[1, 2]);
        assert!(ratio > 0.0);
        if let Some(m) = mean {
            assert!(m >= 1.0);
        }
    }

    #[test]
    fn configs_are_cheap_to_clone_and_send() {
        // Compile-time guarantees the qnet-campaign parallel runner relies
        // on: configs and experiments are plain `Copy + Send + Sync` values
        // (no heap, no interior mutability), and results are `Send`.
        fn assert_copy_send_sync<T: Copy + Send + Sync + 'static>() {}
        fn assert_send<T: Send + 'static>() {}
        assert_copy_send_sync::<ExperimentConfig>();
        assert_copy_send_sync::<Experiment>();
        assert_copy_send_sync::<NetworkConfig>();
        assert_copy_send_sync::<WorkloadSpec>();
        assert_copy_send_sync::<PolicyId>();
        assert_send::<ExperimentResult>();
        // And "cheap" stays true: a config is a flat, zero-heap value. The
        // bound covers the original 256 bytes plus the ~64-byte physics
        // model the link-physics subsystem added.
        assert!(std::mem::size_of::<ExperimentConfig>() <= 320);
    }

    #[test]
    fn unreachable_horizon_reports_unsatisfied() {
        // A tiny horizon cannot satisfy far-apart requests.
        let mut c = small_config();
        c.max_sim_time_s = 0.05;
        let r = Experiment::new(c).run();
        assert!(r.unsatisfied_requests > 0);
        assert!(r.satisfaction_ratio() < 1.0);
    }

    #[test]
    fn open_loop_run_reports_sojourn_latency() {
        let mut c = small_config();
        c.workload = c.workload.with_traffic(TrafficModel::OpenLoopPoisson {
            rate_hz: 0.2,
            horizon_s: 500.0,
        });
        c.max_sim_time_s = 1_500.0;
        let r = Experiment::new(c).run();
        assert!(r.satisfied_requests > 0, "{r:?}");
        assert!(r.metrics.arrived_requests >= r.satisfied_requests as u64);
        let (p50, p95) = (r.latency_p50_s().unwrap(), r.latency_p95_s().unwrap());
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!(p50 >= 0.0);
        // Open-loop sojourns are measured from arrival, not from t = 0: the
        // last satisfaction time is far beyond the p95 sojourn.
        let last = r.metrics.satisfied.last().unwrap();
        assert!(last.satisfied_at.as_secs_f64() > p95);
        // Identical configs still reproduce identical results.
        assert_eq!(r, Experiment::new(c).run());
    }

    #[test]
    fn lazy_open_loop_matches_eager_scheduling() {
        // `run()` streams open-loop arrivals in batches; `run_with_workload`
        // schedules every arrival up front. Full results (every satisfied
        // request, every counter) must be identical across policies and
        // seeds — the differential pin for the lazy generator.
        for mode in [
            PolicyId::OBLIVIOUS,
            PolicyId::HYBRID,
            PolicyId::PLANNED,
            PolicyId::CONNECTIONLESS,
        ] {
            for seed in [7u64, 21] {
                let mut c = small_config();
                c.mode = mode;
                c.seed = seed;
                c.workload = c.workload.with_traffic(TrafficModel::OpenLoopPoisson {
                    rate_hz: 0.5,
                    horizon_s: 400.0,
                });
                c.max_sim_time_s = 1_000.0;
                let mut spec = c.workload;
                spec.node_count = c.network.node_count();
                let eager = Experiment::new(c).run_with_workload(spec.generate(seed));
                let lazy = Experiment::new(c).run();
                assert_eq!(lazy, eager, "lazy vs eager diverged: {mode:?} seed {seed}");
            }
        }
    }

    #[test]
    fn lazy_arrivals_cross_many_batches() {
        // More requests than several ARRIVAL_BATCHes, so the generator wake
        // fires repeatedly mid-run; the run must still complete and satisfy.
        let mut c = small_config();
        c.workload = c.workload.with_traffic(TrafficModel::OpenLoopPoisson {
            rate_hz: 40.0,
            horizon_s: 120.0,
        });
        c.network.generation_rate = 500.0;
        c.max_sim_time_s = 300.0;
        let r = Experiment::new(c).run();
        assert!(
            r.metrics.arrived_requests as usize > 3 * crate::network::ARRIVAL_BATCH,
            "want multiple batches, got {} arrivals",
            r.metrics.arrived_requests
        );
        assert!(r.satisfied_requests > 0);
        assert_eq!(r, Experiment::new(c).run(), "lazy runs reproduce");
    }

    #[test]
    fn open_loop_arrivals_stop_at_the_run_horizon() {
        // The workload offers arrivals for 1000 s, but the run stops at 50 s:
        // only arrivals up to the run horizon are injected.
        let mut c = small_config();
        c.workload = c.workload.with_traffic(TrafficModel::OpenLoopPoisson {
            rate_hz: 1.0,
            horizon_s: 1_000.0,
        });
        c.max_sim_time_s = 50.0;
        let r = Experiment::new(c).run();
        let offered = c.workload.generate(c.seed).len() as u64;
        assert!(r.metrics.arrived_requests < offered);
        assert!(r.simulated_seconds <= 50.0 + 1e-9);
    }
}
