//! Hybrid oblivious + minimal planning — paper §6.
//!
//! Path-oblivious balancing can be viewed as *seeding*: when a consumption
//! request arrives and the needed pair is not immediately available, the
//! consuming pair can look for a shortest path **among the existing Bell
//! pairs** (which may be much shorter than the generation-graph path, thanks
//! to the seeding) and perform just the few swaps needed to close the gap.
//! The paper proposes this as a mitigation for the starvation effect it
//! observed; the hybrid ablation experiment measures how much it helps.

use crate::inventory::Inventory;
use qnet_topology::{bfs_path, Graph, NodeId, NodePair};

/// Build the *entanglement graph*: nodes are the network nodes, and an edge
/// joins `x` and `y` whenever the inventory currently stores at least
/// `min_count` pairs `[x, y]`.
pub fn entanglement_graph(inventory: &Inventory, min_count: u64) -> Graph {
    let mut g = Graph::with_nodes(inventory.node_count());
    for (pair, count) in inventory.nonzero_pairs() {
        if count >= min_count {
            g.add_edge(pair.lo(), pair.hi());
        }
    }
    g
}

/// Find the shortest path between the endpoints of `pair` in the entanglement
/// graph induced by pools holding at least `min_count` pairs. Returns `None`
/// if no such path exists.
pub fn entanglement_path(
    inventory: &Inventory,
    pair: NodePair,
    min_count: u64,
) -> Option<Vec<NodeId>> {
    let graph = entanglement_graph(inventory, min_count);
    bfs_path(&graph, pair.lo(), pair.hi()).map(|p| p.nodes)
}

/// Attempt the §6 hybrid repair: if the consuming pair is not directly
/// satisfiable, find a shortest path over the existing Bell pairs and execute
/// nested swapping along it so that `need` pairs of `pair` become available.
/// Returns the number of repair swaps performed, or `None` if no
/// entanglement path could provide them.
pub fn hybrid_repair(inventory: &mut Inventory, pair: NodePair, need: u64, k: u64) -> Option<u64> {
    if inventory.count(pair) >= need {
        return Some(0);
    }
    // Require only k pairs per hop when searching; the nested executor will
    // verify exact availability (and is atomic on failure).
    let path = entanglement_path(inventory, pair, k)?;
    if path.len() < 2 {
        return None;
    }
    crate::planned::execute_nested_along_path(inventory, &path, need, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn entanglement_graph_reflects_counts() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        let g1 = entanglement_graph(&inv, 1);
        assert!(g1.has_edge(NodeId(0), NodeId(1)));
        assert!(g1.has_edge(NodeId(1), NodeId(2)));
        assert!(!g1.has_edge(NodeId(2), NodeId(3)));
        let g2 = entanglement_graph(&inv, 2);
        assert!(g2.has_edge(NodeId(0), NodeId(1)));
        assert!(!g2.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn entanglement_path_can_shortcut_the_generation_graph() {
        // Suppose balancing already produced a long-distance pair (0,3): the
        // entanglement path from 0 to 4 is then just 0—3—4, regardless of how
        // far apart they are in the generation graph.
        let mut inv = Inventory::new(5);
        inv.add_pair(pair(0, 3)).unwrap();
        inv.add_pair(pair(3, 4)).unwrap();
        let path = entanglement_path(&inv, pair(0, 4), 1).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(3), NodeId(4)]);
        assert!(entanglement_path(&inv, pair(0, 2), 1).is_none());
    }

    #[test]
    fn hybrid_repair_produces_the_needed_pair() {
        let mut inv = Inventory::new(5);
        inv.add_pair(pair(0, 3)).unwrap();
        inv.add_pair(pair(3, 4)).unwrap();
        let swaps = hybrid_repair(&mut inv, pair(0, 4), 1, 1).unwrap();
        assert_eq!(swaps, 1);
        assert_eq!(inv.count(pair(0, 4)), 1);
    }

    #[test]
    fn hybrid_repair_noop_when_already_available() {
        let mut inv = Inventory::new(3);
        inv.add_pair(pair(0, 2)).unwrap();
        assert_eq!(hybrid_repair(&mut inv, pair(0, 2), 1, 1), Some(0));
        assert_eq!(inv.count(pair(0, 2)), 1, "nothing consumed by the repair");
    }

    #[test]
    fn hybrid_repair_fails_gracefully() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        // No path from 0 to 3 over existing pairs.
        assert!(hybrid_repair(&mut inv, pair(0, 3), 1, 1).is_none());
        // A path exists but lacks the quantity needed for k = 2: the nested
        // executor refuses and leaves the inventory untouched.
        inv.add_pair(pair(1, 3)).unwrap();
        let before = inv.clone();
        assert!(hybrid_repair(&mut inv, pair(0, 3), 1, 2).is_none());
        assert_eq!(inv, before);
    }
}
