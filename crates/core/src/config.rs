//! Network configuration.
//!
//! [`NetworkConfig`] bundles everything the simulation and the LP model need
//! to know about the physical substrate: the generation-graph topology, the
//! per-edge generation rate, the per-node swap-scan rate, and the overhead
//! models of §3.2 (distillation `D`, loss `L`, QEC `R`) plus optional memory
//! decoherence parameters used by the transport-layer extensions.

use crate::physics::PhysicsModel;
use crate::rates::RateMatrices;
use qnet_quantum::decoherence::DecoherenceModel;
use qnet_quantum::distill::{overhead_factor, DistillationProtocol};
use qnet_topology::{FabricSpec, Graph, LinkFabric, NodePair, Topology};
use serde::{DeError, Deserialize, Serialize, Value};

/// How the distillation overhead `D_{x,y}` is specified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistillationSpec {
    /// A uniform overhead applied to every pair (the paper's evaluation uses
    /// `D ∈ {1, 2, 3, …}`; `D = 1` means "no distillation needed").
    Uniform(f64),
    /// Derive the overhead from physics: raw pairs of fidelity `raw_fidelity`
    /// must be pumped to at least `target_fidelity` with the BBPSSW
    /// recurrence ([`qnet_quantum::distill`]).
    FromFidelity {
        /// Fidelity of freshly generated pairs.
        raw_fidelity: f64,
        /// Fidelity required before a pair may be consumed or swapped.
        target_fidelity: f64,
    },
}

impl DistillationSpec {
    /// Resolve the spec to a numeric overhead factor `D ≥ 1`.
    pub fn overhead(&self) -> f64 {
        match *self {
            DistillationSpec::Uniform(d) => {
                assert!(d >= 1.0, "distillation overhead must be ≥ 1");
                d
            }
            DistillationSpec::FromFidelity {
                raw_fidelity,
                target_fidelity,
            } => overhead_factor(DistillationProtocol::Bbpssw, raw_fidelity, target_fidelity)
                .expect("target fidelity unreachable from the raw fidelity")
                .max(1.0),
        }
    }
}

/// Full description of the simulated quantum network.
///
/// All-scalar and `Copy`: cloning is a register-width memcpy, so sweep
/// engines (`qnet-campaign`) can fan thousands of configs across worker
/// threads without allocation.
///
/// Serialization (manual impls below): the `physics` field is emitted only
/// when it is not [`PhysicsModel::Ideal`], so pre-physics configs keep their
/// exact bytes and legacy JSON deserializes with ideal physics implied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Generation-graph topology recipe.
    pub topology: Topology,
    /// Seed used to instantiate random topologies.
    pub topology_seed: u64,
    /// Bell-pair generation rate on every generation edge (pairs per second).
    pub generation_rate: f64,
    /// Whether generation events arrive as a Poisson process (true) or at
    /// fixed intervals (false).
    pub poisson_generation: bool,
    /// Rate at which each node runs its swap scan (scans per second).
    pub swap_scan_rate: f64,
    /// Distillation overhead specification (the paper's `D`).
    pub distillation: DistillationSpec,
    /// Loss factor `L ≥ 1` of §3.2: for every usable arrival, `L` raw
    /// arrivals are needed (decoherence-induced discard).
    pub loss_factor: f64,
    /// QEC overhead `R ≥ 1` of §3.2: generation is thinned by this factor.
    pub qec_overhead: f64,
    /// Memory decoherence model (used by transport-layer cutoff extensions;
    /// the paper's core evaluation assumes ideal memories).
    pub decoherence: DecoherenceModel,
    /// Optional per-node buffer limit on stored qubit halves (`None` models
    /// the paper's limitless buffers).
    pub buffer_limit: Option<u64>,
    /// The physical model stored pairs obey during the live simulation:
    /// ageless tokens ([`PhysicsModel::Ideal`], the default — the paper's
    /// semantics, byte-identical results) or fidelity-tracked, decaying
    /// memories ([`PhysicsModel::Decoherent`]).
    pub physics: PhysicsModel,
    /// Optional heterogeneous link fabric: a hardware preset realized into
    /// per-edge [`qnet_topology::LinkProfile`]s over the built graph. `None`
    /// (the default) keeps the paper's homogeneous links and the legacy
    /// serialized bytes; `Some` gives every edge its own generation rate
    /// and — under decoherent physics — its own birth fidelity and `T2`.
    pub fabric: Option<FabricSpec>,
}

impl Serialize for NetworkConfig {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("topology".to_string(), self.topology.to_value()),
            ("topology_seed".to_string(), self.topology_seed.to_value()),
            (
                "generation_rate".to_string(),
                self.generation_rate.to_value(),
            ),
            (
                "poisson_generation".to_string(),
                self.poisson_generation.to_value(),
            ),
            ("swap_scan_rate".to_string(), self.swap_scan_rate.to_value()),
            ("distillation".to_string(), self.distillation.to_value()),
            ("loss_factor".to_string(), self.loss_factor.to_value()),
            ("qec_overhead".to_string(), self.qec_overhead.to_value()),
            ("decoherence".to_string(), self.decoherence.to_value()),
            ("buffer_limit".to_string(), self.buffer_limit.to_value()),
        ];
        // Emitted only when physical: legacy (ideal) configs keep their
        // exact pre-physics bytes.
        if !self.physics.is_ideal() {
            entries.push(("physics".to_string(), self.physics.to_value()));
        }
        // Same shim for the fabric: homogeneous configs keep their bytes.
        if let Some(fabric) = &self.fabric {
            entries.push(("fabric".to_string(), fabric.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for NetworkConfig {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("NetworkConfig object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let physics = match field("physics") {
            Value::Null => PhysicsModel::Ideal,
            v => PhysicsModel::from_value(v)?,
        };
        let fabric = match field("fabric") {
            Value::Null => None,
            v => Some(FabricSpec::from_value(v)?),
        };
        Ok(NetworkConfig {
            topology: Deserialize::from_value(field("topology"))?,
            topology_seed: Deserialize::from_value(field("topology_seed"))?,
            generation_rate: Deserialize::from_value(field("generation_rate"))?,
            poisson_generation: Deserialize::from_value(field("poisson_generation"))?,
            swap_scan_rate: Deserialize::from_value(field("swap_scan_rate"))?,
            distillation: Deserialize::from_value(field("distillation"))?,
            loss_factor: Deserialize::from_value(field("loss_factor"))?,
            qec_overhead: Deserialize::from_value(field("qec_overhead"))?,
            decoherence: Deserialize::from_value(field("decoherence"))?,
            buffer_limit: Deserialize::from_value(field("buffer_limit"))?,
            physics,
            fabric,
        })
    }
}

impl NetworkConfig {
    /// A configuration matching the paper's §5 defaults for the given
    /// topology: `g = 1` on every generation edge, Poisson generation,
    /// uniform `D = 1`, no loss, no QEC, ideal memories, unlimited buffers.
    pub fn new(topology: Topology) -> Self {
        NetworkConfig {
            topology,
            topology_seed: 0,
            generation_rate: 1.0,
            poisson_generation: true,
            swap_scan_rate: 4.0,
            distillation: DistillationSpec::Uniform(1.0),
            loss_factor: 1.0,
            qec_overhead: 1.0,
            decoherence: DecoherenceModel::ideal(),
            buffer_limit: None,
            physics: PhysicsModel::Ideal,
            fabric: None,
        }
    }

    /// Builder: set the topology seed.
    pub fn with_topology_seed(mut self, seed: u64) -> Self {
        self.topology_seed = seed;
        self
    }

    /// Builder: set the per-edge generation rate.
    pub fn with_generation_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "generation rate must be positive");
        self.generation_rate = rate;
        self
    }

    /// Builder: set the per-node swap-scan rate.
    pub fn with_swap_scan_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "swap scan rate must be positive");
        self.swap_scan_rate = rate;
        self
    }

    /// Builder: set the distillation spec.
    pub fn with_distillation(mut self, spec: DistillationSpec) -> Self {
        self.distillation = spec;
        self
    }

    /// Builder: set the §3.2 loss factor.
    pub fn with_loss_factor(mut self, loss: f64) -> Self {
        assert!(loss >= 1.0, "loss factor must be ≥ 1");
        self.loss_factor = loss;
        self
    }

    /// Builder: set the §3.2 QEC overhead.
    pub fn with_qec_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 1.0, "QEC overhead must be ≥ 1");
        self.qec_overhead = overhead;
        self
    }

    /// Builder: use fixed-interval rather than Poisson generation.
    pub fn with_deterministic_generation(mut self) -> Self {
        self.poisson_generation = false;
        self
    }

    /// Builder: cap per-node buffers.
    pub fn with_buffer_limit(mut self, limit: u64) -> Self {
        self.buffer_limit = Some(limit);
        self
    }

    /// Builder: set the link-physics model. For decoherent physics the
    /// static [`NetworkConfig::decoherence`] field is kept consistent with
    /// the model's coherence time (the LP extensions and the live lot store
    /// then describe the same memories).
    pub fn with_physics(mut self, physics: PhysicsModel) -> Self {
        self.physics = physics;
        self.decoherence = physics.decoherence_model();
        self
    }

    /// Builder: attach a heterogeneous link fabric. Per-edge generation
    /// rates replace the uniform [`NetworkConfig::generation_rate`], and
    /// under decoherent physics each edge also gets its own birth fidelity
    /// and memory coherence time. The preset also calibrates the node
    /// hardware around the links: [`NetworkConfig::swap_scan_rate`] is set
    /// to the preset's control-plane cadence and
    /// [`NetworkConfig::buffer_limit`] to its quantum-memory budget (call
    /// the respective builders *after* this to override either).
    pub fn with_fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = Some(fabric);
        self.swap_scan_rate = fabric.preset.swap_scan_rate_hz();
        self.buffer_limit = fabric.preset.memory_qubits_per_node();
        self
    }

    /// Realize the configured fabric over the built graph (`None` when the
    /// config is homogeneous). Deterministic in `(topology, topology_seed,
    /// preset)`.
    pub fn build_fabric(&self, graph: &Graph) -> Option<LinkFabric> {
        self.fabric
            .map(|spec| spec.realize(&self.topology, graph, self.topology_seed))
    }

    /// Number of nodes in the configured topology.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// The resolved distillation overhead `D`.
    pub fn distillation_overhead(&self) -> f64 {
        self.distillation.overhead()
    }

    /// Number of raw pairs a swap or consumption must draw from a pool:
    /// `⌈D⌉` (the integer the discrete simulation uses; the LP uses the
    /// real-valued `D`).
    pub fn pairs_per_distilled(&self) -> u64 {
        self.distillation_overhead().ceil() as u64
    }

    /// Instantiate the generation graph.
    pub fn build_graph(&self) -> Graph {
        self.topology.build(self.topology_seed)
    }

    /// The rate matrices implied by this configuration (uniform generation on
    /// the generation graph, QEC-thinned; consumption left at zero — the
    /// discrete workload drives consumption in simulation, while LP
    /// experiments set consumption rates explicitly).
    pub fn rate_matrices(&self) -> RateMatrices {
        let graph = self.build_graph();
        RateMatrices::uniform_generation(&graph, self.generation_rate)
            .with_qec_thinning(self.qec_overhead)
    }

    /// Distillation overhead for a specific pair. With the current specs this
    /// is uniform, but the accessor keeps call sites ready for per-pair
    /// overheads (paper §3.2 allows `D_{x,y}` to vary).
    pub fn pair_distillation_overhead(&self, _pair: NodePair) -> f64 {
        self.distillation_overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = NetworkConfig::new(Topology::Cycle { nodes: 25 });
        assert_eq!(c.node_count(), 25);
        assert_eq!(c.generation_rate, 1.0);
        assert_eq!(c.distillation_overhead(), 1.0);
        assert_eq!(c.pairs_per_distilled(), 1);
        assert_eq!(c.loss_factor, 1.0);
        assert_eq!(c.qec_overhead, 1.0);
        assert!(c.buffer_limit.is_none());
        let g = c.build_graph();
        assert_eq!(g.node_count(), 25);
        assert_eq!(g.edge_count(), 25);
    }

    #[test]
    fn builder_chain() {
        let c = NetworkConfig::new(Topology::TorusGrid { side: 4 })
            .with_topology_seed(9)
            .with_generation_rate(2.0)
            .with_swap_scan_rate(8.0)
            .with_distillation(DistillationSpec::Uniform(3.0))
            .with_loss_factor(1.5)
            .with_qec_overhead(2.0)
            .with_deterministic_generation()
            .with_buffer_limit(64);
        assert_eq!(c.topology_seed, 9);
        assert_eq!(c.generation_rate, 2.0);
        assert_eq!(c.swap_scan_rate, 8.0);
        assert_eq!(c.distillation_overhead(), 3.0);
        assert_eq!(c.pairs_per_distilled(), 3);
        assert!(!c.poisson_generation);
        assert_eq!(c.buffer_limit, Some(64));
        // QEC thinning shows up in the rate matrices.
        let r = c.rate_matrices();
        let e = r.generation_pairs()[0];
        assert!((r.generation(e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_derived_distillation() {
        let spec = DistillationSpec::FromFidelity {
            raw_fidelity: 0.85,
            target_fidelity: 0.95,
        };
        let d = spec.overhead();
        assert!(d > 1.0, "pumping 0.85 → 0.95 requires real work, got {d}");
        let c = NetworkConfig::new(Topology::Cycle { nodes: 5 }).with_distillation(spec);
        assert!(c.pairs_per_distilled() >= 2);
    }

    #[test]
    fn ideal_physics_keeps_the_legacy_serialized_bytes() {
        let c = NetworkConfig::new(Topology::Cycle { nodes: 5 });
        let v = c.to_value();
        assert!(v.get_field("physics").is_none(), "ideal omits physics");
        assert!(v.get_field("fabric").is_none(), "no fabric omits fabric");
        // A legacy document (no physics key) loads with ideal implied.
        let back = NetworkConfig::from_value(&v).unwrap();
        assert!(back.physics.is_ideal());
        assert!(back.fabric.is_none());
        assert_eq!(back.topology, c.topology);
    }

    #[test]
    fn fabric_round_trips_and_realizes_per_edge_profiles() {
        use qnet_topology::HardwarePreset;
        let spec = FabricSpec::new(HardwarePreset::MetroFiber);
        let c = NetworkConfig::new(Topology::Cycle { nodes: 7 })
            .with_topology_seed(3)
            .with_fabric(spec);
        let v = c.to_value();
        assert_eq!(
            v.get_field("fabric").and_then(|f| f.as_str()),
            Some("metro-fiber")
        );
        let back = NetworkConfig::from_value(&v).unwrap();
        assert_eq!(back.fabric, Some(spec));
        // The preset calibrates the node hardware too: scan cadence and the
        // finite metro memory bank; explicit builder calls afterwards still
        // override.
        assert_eq!(c.swap_scan_rate, 4.0);
        assert_eq!(c.buffer_limit, Some(512));
        assert_eq!(c.with_swap_scan_rate(2.0).swap_scan_rate, 2.0);
        assert_eq!(c.with_buffer_limit(128).buffer_limit, Some(128));

        let graph = c.build_graph();
        let fabric = c.build_fabric(&graph).unwrap();
        assert_eq!(fabric.len(), graph.edge_count());
        // Rates are heterogeneous (different synthesized lengths) and
        // deterministic in the topology seed.
        let rates: Vec<f64> = fabric.iter().map(|(_, p)| p.generation_rate_hz).collect();
        assert!(rates.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
        assert_eq!(
            c.build_fabric(&graph),
            c.build_fabric(&graph),
            "realization is deterministic"
        );
        assert!(NetworkConfig::new(Topology::Cycle { nodes: 7 })
            .build_fabric(&graph)
            .is_none());
    }

    #[test]
    fn decoherent_physics_round_trips_through_config_json() {
        let physics = PhysicsModel::decoherent(0.5).with_fidelity_floor(0.7);
        let c = NetworkConfig::new(Topology::Cycle { nodes: 5 }).with_physics(physics);
        assert_eq!(c.decoherence.coherence_time_s, 0.5);
        let v = c.to_value();
        assert!(v.get_field("physics").is_some());
        let back = NetworkConfig::from_value(&v).unwrap();
        assert_eq!(back.physics, physics);
        assert_eq!(back.physics.fidelity_floor(), Some(0.7));
    }

    #[test]
    #[should_panic]
    fn uniform_distillation_below_one_panics() {
        let _ = DistillationSpec::Uniform(0.5).overhead();
    }

    #[test]
    #[should_panic]
    fn zero_generation_rate_panics() {
        let _ = NetworkConfig::new(Topology::Cycle { nodes: 3 }).with_generation_rate(0.0);
    }
}
