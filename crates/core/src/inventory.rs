//! The network-wide Bell-pair inventory.
//!
//! Because Bell pairs are interchangeable (paper §1), the global state the
//! protocol cares about is just the count `C_x(y) = C_y(x)` of pairs whose
//! qubits sit at `x` and `y`. [`Inventory`] stores those counts in a
//! [`PairMatrix`] and implements the three primitive mutations — generate,
//! swap, consume — with the bookkeeping (per-node qubit totals, cumulative
//! counters) the balancer, the buffer-limit model and the metrics need.
//!
//! ## The lot store (decoherent physics)
//!
//! Under [`crate::physics::PhysicsModel::Decoherent`] the inventory layers a
//! **lot store** over the counts: every stored pair additionally carries a
//! creation timestamp and a birth fidelity ([`PairLot`]). The store is
//! deliberately hidden behind the exact same mutation API the count-space
//! model uses — `add_pair`, `remove_pairs`, `apply_swap` — so every caller,
//! including swap policies that mutate the inventory directly through
//! [`crate::policy::PolicyCtx`], keeps ages and fidelities consistent
//! without knowing the store exists. The world advances the store's clock
//! ([`Inventory::set_clock`]) before dispatching each event; consumption
//! and swap inputs draw lots in the configured
//! [`crate::physics::ConsumeOrder`]; a swap ages both inputs to the swap
//! time, composes them with [`qnet_quantum::swap::swap_werner_fidelity`]
//! and restarts the product's clock. When the store is disabled (ideal
//! physics — the default) none of this code runs and behaviour is
//! bit-identical to the count-space model.
//!
//! Serialization intentionally covers only the count-space state (the
//! legacy byte layout); the lot store is runtime-only.

use crate::physics::{ConsumeOrder, PhysicsModel};
use qnet_quantum::decoherence::DecoherenceModel;
use qnet_quantum::swap::swap_werner_fidelity;
use qnet_sim::{SimDuration, SimTime};
use qnet_topology::{NodeId, NodePair, PairMatrix};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, VecDeque};

/// Reasons an inventory mutation can be refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InventoryError {
    /// Not enough pairs of the requested kind are stored.
    InsufficientPairs {
        /// How many were requested.
        requested: u64,
        /// How many are stored.
        available: u64,
    },
    /// A node's buffer limit would be exceeded.
    BufferFull {
        /// The node whose buffer is full.
        node: u32,
    },
}

/// One stored Bell pair tracked by the lot store: when it was created and
/// the fidelity it was born with. Its *current* fidelity is the birth value
/// decayed over its age by the configured decoherence model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLot {
    /// Simulated time the pair was stored (generation or swap production).
    pub created_at: SimTime,
    /// Fidelity at creation (initial fidelity for elementary pairs, the
    /// Werner-composed value for swap products).
    pub birth_fidelity: f64,
    /// Memory coherence time governing this lot's decay. Elementary pairs
    /// inherit it from their generation edge (heterogeneous under a link
    /// fabric); a swap product inherits the *worst* input memory.
    pub coherence_time_s: f64,
}

/// Which data structures back the lot store's pools and link overrides.
///
/// Selected per inventory at construction: explicitly via
/// [`Inventory::with_backend`], or for [`Inventory::new`] from the
/// `QNET_INVENTORY` environment variable (`flat` / `btree`; unset or
/// unrecognized means the default flat backend). Both backends keep pools
/// in the exact same per-pool order and walk them in the exact same
/// lexicographic [`NodePair`] order, so switching backends never changes
/// simulation output — only its speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum InventoryBackend {
    /// Contiguous slot-map pools addressed by a dense triangular pair index
    /// (default): O(1) pool addressing, cache-friendly ordered walks.
    #[default]
    Flat,
    /// `BTreeMap`-keyed pools — the historical implementation, kept as a
    /// runtime fallback and differential oracle.
    BTree,
}

/// Backend requested by the `QNET_INVENTORY` environment variable
/// (consulted per inventory creation so tests can toggle it): `btree` /
/// `b-tree` / `btreemap` select the legacy maps, anything else (including
/// unset) the flat backend.
fn backend_from_env() -> InventoryBackend {
    match std::env::var("QNET_INVENTORY") {
        Ok(v) if matches!(v.as_str(), "btree" | "b-tree" | "btreemap") => InventoryBackend::BTree,
        _ => InventoryBackend::Flat,
    }
}

/// The sentinel marking "no pool allocated" in [`FlatPools::slot_of`].
const NO_SLOT: u32 = u32::MAX;

/// Flat pool storage: a dense triangular `pair → slot` table into a slab of
/// pool queues, plus a sorted occupied-pair list so ordered whole-store
/// walks (cutoff sweeps, earliest-lot queries) visit pools in exactly the
/// lexicographic `NodePair` order the `BTreeMap` backend iterates in.
///
/// Swap products entangle arbitrary node pairs, not just generation-graph
/// edges, so the slot table is **pair**-dense (N·(N−1)/2 entries) rather
/// than edge-dense: 4 bytes per potential pair buys O(1) pool addressing
/// with no hashing, no tree descent, and no per-node pointer chasing.
#[derive(Debug, Clone)]
struct FlatPools {
    n: usize,
    /// Triangular `pair → slab slot` table ([`NO_SLOT`] = no pool).
    slot_of: Vec<u32>,
    /// Pool queues; slots are recycled through `free` when a pool empties.
    slab: Vec<VecDeque<PairLot>>,
    /// Slab slots whose pools have emptied, available for reuse.
    free: Vec<u32>,
    /// Pairs with a non-empty pool, kept sorted (lexicographic order).
    occupied: Vec<NodePair>,
    /// Sorted per-edge `(pair, (birth_fidelity, coherence_time_s))`
    /// overrides; resolved by binary search at generation time.
    link_overrides: Vec<(NodePair, (f64, f64))>,
}

impl FlatPools {
    fn new(n: usize) -> Self {
        FlatPools {
            n,
            slot_of: vec![NO_SLOT; n * n.saturating_sub(1) / 2],
            slab: Vec::new(),
            free: Vec::new(),
            occupied: Vec::new(),
            link_overrides: Vec::new(),
        }
    }

    /// Index of `pair` in the triangular slot table (same layout as
    /// `PairMatrix`).
    fn tri(&self, pair: NodePair) -> usize {
        let (i, j) = (pair.lo().index(), pair.hi().index());
        debug_assert!(j < self.n, "pair out of range for flat pools");
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    fn pool(&self, pair: NodePair) -> Option<&VecDeque<PairLot>> {
        match self.slot_of[self.tri(pair)] {
            NO_SLOT => None,
            slot => Some(&self.slab[slot as usize]),
        }
    }

    fn push(&mut self, pair: NodePair, lot: PairLot) {
        let t = self.tri(pair);
        let slot = match self.slot_of[t] {
            NO_SLOT => {
                let slot = self.free.pop().unwrap_or_else(|| {
                    self.slab.push(VecDeque::new());
                    (self.slab.len() - 1) as u32
                });
                self.slot_of[t] = slot;
                let pos = self.occupied.partition_point(|&p| p < pair);
                self.occupied.insert(pos, pair);
                slot
            }
            slot => slot,
        };
        self.slab[slot as usize].push_back(lot);
    }

    /// Return `pair`'s pool slot for draining, or `NO_SLOT` when absent.
    fn slot(&self, pair: NodePair) -> u32 {
        self.slot_of[self.tri(pair)]
    }

    /// Recycle `pair`'s slot if its pool has emptied.
    fn release_if_empty(&mut self, pair: NodePair) {
        let t = self.tri(pair);
        let slot = self.slot_of[t];
        if slot != NO_SLOT && self.slab[slot as usize].is_empty() {
            self.slot_of[t] = NO_SLOT;
            self.free.push(slot);
            if let Ok(pos) = self.occupied.binary_search(&pair) {
                self.occupied.remove(pos);
            }
        }
    }
}

/// Pool/override storage behind the lot store, one variant per
/// [`InventoryBackend`]. Every method pair is order-identical across the
/// variants — same per-pool FIFO order, same lexicographic whole-store walk
/// — which is what lets `QNET_INVENTORY` switch backends without moving a
/// single golden byte.
#[derive(Debug, Clone)]
enum PoolStore {
    BTree {
        pools: BTreeMap<NodePair, VecDeque<PairLot>>,
        link_overrides: BTreeMap<NodePair, (f64, f64)>,
    },
    Flat(FlatPools),
}

impl PoolStore {
    fn pool(&self, pair: NodePair) -> Option<&VecDeque<PairLot>> {
        match self {
            PoolStore::BTree { pools, .. } => pools.get(&pair),
            PoolStore::Flat(flat) => flat.pool(pair),
        }
    }

    fn push(&mut self, pair: NodePair, lot: PairLot) {
        match self {
            PoolStore::BTree { pools, .. } => pools.entry(pair).or_default().push_back(lot),
            PoolStore::Flat(flat) => flat.push(pair, lot),
        }
    }

    fn link_override(&self, pair: NodePair) -> Option<(f64, f64)> {
        match self {
            PoolStore::BTree { link_overrides, .. } => link_overrides.get(&pair).copied(),
            PoolStore::Flat(flat) => flat
                .link_overrides
                .binary_search_by_key(&pair, |&(p, _)| p)
                .ok()
                .map(|pos| flat.link_overrides[pos].1),
        }
    }

    fn set_link_overrides(&mut self, links: impl IntoIterator<Item = (NodePair, (f64, f64))>) {
        match self {
            PoolStore::BTree { link_overrides, .. } => {
                *link_overrides = links.into_iter().collect()
            }
            PoolStore::Flat(flat) => {
                flat.link_overrides = links.into_iter().collect();
                flat.link_overrides.sort_unstable_by_key(|&(p, _)| p);
            }
        }
    }
}

impl PartialEq for PoolStore {
    /// Logical equality: same occupied pools with the same lots in the same
    /// order, and the same overrides — independent of slab layout, so two
    /// stores that converged through different histories still compare
    /// equal, and `BTree == Flat` whenever their contents agree.
    fn eq(&self, other: &Self) -> bool {
        let overrides = |store: &Self| -> Vec<(NodePair, (f64, f64))> {
            match store {
                PoolStore::BTree { link_overrides, .. } => {
                    link_overrides.iter().map(|(&p, &v)| (p, v)).collect()
                }
                PoolStore::Flat(flat) => flat.link_overrides.clone(),
            }
        };
        let occupied = |store: &Self| -> Vec<NodePair> {
            match store {
                PoolStore::BTree { pools, .. } => pools.keys().copied().collect(),
                PoolStore::Flat(flat) => flat.occupied.clone(),
            }
        };
        let (a, b) = (occupied(self), occupied(other));
        a == b
            && overrides(self) == overrides(other)
            && a.iter().all(|&pair| self.pool(pair) == other.pool(pair))
    }
}

/// Per-pool age/fidelity bookkeeping, active only under decoherent physics.
/// Lots within a pool are kept in creation order (pushes always append and
/// creation times are monotone), so the pool front is always the oldest.
///
/// Pools hold only *occupied* pairs, so whole-store walks (cutoff sweeps,
/// earliest-lot queries) cost O(stored pairs) instead of O(N²) — the
/// difference between |N| = 49 and |N| = 10³ — and both [`PoolStore`]
/// backends walk them in exactly the lexicographic `all_pairs` order the
/// original dense matrix scanned in, so expiry event order (and with it
/// every decoherent golden result) is backend-independent.
#[derive(Debug, Clone, PartialEq)]
struct LotStore {
    decoherence: DecoherenceModel,
    initial_fidelity: f64,
    order: ConsumeOrder,
    clock: SimTime,
    pools: PoolStore,
}

/// Fidelity of `lot` at `clock`, decayed under the lot's own memory
/// coherence time (free function so pool borrows can overlap it).
fn aged_fidelity_at(clock: SimTime, lot: &PairLot) -> f64 {
    let age = clock.saturating_since(lot.created_at).as_secs_f64();
    DecoherenceModel {
        coherence_time_s: lot.coherence_time_s,
    }
    .fidelity_after(lot.birth_fidelity, age)
}

impl LotStore {
    fn new(physics: &PhysicsModel, n: usize, backend: InventoryBackend) -> Self {
        LotStore {
            decoherence: physics.decoherence_model(),
            initial_fidelity: physics.initial_fidelity(),
            order: physics.consume_order(),
            clock: SimTime::ZERO,
            pools: match backend {
                InventoryBackend::BTree => PoolStore::BTree {
                    pools: BTreeMap::new(),
                    link_overrides: BTreeMap::new(),
                },
                InventoryBackend::Flat => PoolStore::Flat(FlatPools::new(n)),
            },
        }
    }

    /// Current fidelity of `lot` at the store clock, decayed under the
    /// lot's own memory coherence time.
    fn aged_fidelity(&self, lot: &PairLot) -> f64 {
        aged_fidelity_at(self.clock, lot)
    }

    /// Store one lot. `birth` is `Some((fidelity, t2))` for swap products
    /// (the composed values); elementary pairs pass `None` and inherit their
    /// generation edge's override, falling back to the global physics.
    fn push(&mut self, pair: NodePair, birth: Option<(f64, f64)>) {
        let (birth_fidelity, coherence_time_s) = birth.unwrap_or_else(|| {
            self.pools
                .link_override(pair)
                .unwrap_or((self.initial_fidelity, self.decoherence.coherence_time_s))
        });
        self.pools.push(
            pair,
            PairLot {
                created_at: self.clock,
                birth_fidelity,
                coherence_time_s,
            },
        );
    }

    /// Remove `count` lots from `pair`'s pool in the configured order and
    /// return the best aged fidelity among them (the pair that actually
    /// serves the request/swap; the rest are the `⌈D⌉` distillation fuel)
    /// together with the worst coherence time among them (a swap product is
    /// only as durable as its weakest input memory). Allocation-free: the
    /// folds run as lots pop.
    ///
    /// # Panics
    /// Panics if the pool holds fewer than `count` lots — count-space
    /// availability is always validated first, and the store mirrors the
    /// counts exactly.
    fn take(&mut self, pair: NodePair, count: u64) -> (f64, f64) {
        let clock = self.clock;
        let order = self.order;
        let mut best = 0.25f64;
        let mut weakest_t2 = f64::INFINITY;
        {
            let pool = match &mut self.pools {
                PoolStore::BTree { pools, .. } => pools.entry(pair).or_default(),
                PoolStore::Flat(flat) => {
                    let slot = flat.slot(pair);
                    assert!(
                        slot != NO_SLOT || count == 0,
                        "lot store out of sync with counts for {pair}"
                    );
                    if slot == NO_SLOT {
                        return (best, weakest_t2);
                    }
                    &mut flat.slab[slot as usize]
                }
            };
            assert!(
                pool.len() as u64 >= count,
                "lot store out of sync with counts for {pair}"
            );
            for _ in 0..count {
                let lot = match order {
                    ConsumeOrder::OldestFirst => pool.pop_front(),
                    ConsumeOrder::NewestFirst => pool.pop_back(),
                }
                .expect("length checked");
                best = best.max(aged_fidelity_at(clock, &lot));
                weakest_t2 = weakest_t2.min(lot.coherence_time_s);
            }
        }
        match &mut self.pools {
            PoolStore::BTree { pools, .. } => {
                if pools.get(&pair).is_some_and(|pool| pool.is_empty()) {
                    pools.remove(&pair);
                }
            }
            PoolStore::Flat(flat) => flat.release_if_empty(pair),
        }
        (best, weakest_t2)
    }
}

/// The global Bell-pair count state.
///
/// Serialization (manual impls below) covers exactly the legacy count-space
/// fields; the runtime-only lot store is rebuilt per run, never persisted.
#[derive(Debug, Clone)]
pub struct Inventory {
    counts: PairMatrix<u64>,
    /// Number of stored qubit halves per node (each stored pair contributes
    /// one half to each endpoint).
    node_load: Vec<u64>,
    /// Optional per-node buffer limit.
    buffer_limit: Option<u64>,
    /// Cumulative number of pairs ever added (generated or produced by swap).
    total_added: u64,
    /// Cumulative number of pairs ever removed (consumed or used by swap).
    total_removed: u64,
    /// Age/fidelity lots, present only under decoherent physics.
    lots: Option<LotStore>,
    /// Per-node sorted `(peer, count)` lists, mirrored on every count
    /// mutation. The swap-scan candidate search walks this contiguous slice
    /// in O(degree) — counts inline, so no random probes into the N²/2
    /// matrix — the structure that makes |N| ≈ 10³ swap scans tractable.
    /// Runtime state derived from `counts`; never serialized.
    peer_index: Vec<Vec<(NodeId, u64)>>,
    /// Which pool storage the lot store uses when enabled. Runtime
    /// configuration; never serialized.
    backend: InventoryBackend,
}

impl PartialEq for Inventory {
    /// Logical equality: the backend tag is a representation choice, not
    /// state — a flat and a B-tree inventory that hold the same pairs (and
    /// lots, via the pool store's own logical equality) compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
            && self.node_load == other.node_load
            && self.buffer_limit == other.buffer_limit
            && self.total_added == other.total_added
            && self.total_removed == other.total_removed
            && self.lots == other.lots
            && self.peer_index == other.peer_index
    }
}

impl Serialize for Inventory {
    fn to_value(&self) -> Value {
        // The legacy (pre-physics) byte layout: count-space state only.
        Value::Map(vec![
            ("counts".to_string(), self.counts.to_value()),
            ("node_load".to_string(), self.node_load.to_value()),
            ("buffer_limit".to_string(), self.buffer_limit.to_value()),
            ("total_added".to_string(), self.total_added.to_value()),
            ("total_removed".to_string(), self.total_removed.to_value()),
        ])
    }
}

impl Deserialize for Inventory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("Inventory object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let counts: PairMatrix<u64> = Deserialize::from_value(field("counts"))?;
        let node_load: Vec<u64> = Deserialize::from_value(field("node_load"))?;
        // The peer index is runtime state derived from the counts.
        let mut peer_index: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); node_load.len()];
        for (pair, &count) in counts.iter() {
            if count > 0 {
                peer_index[pair.lo().index()].push((pair.hi(), count));
                peer_index[pair.hi().index()].push((pair.lo(), count));
            }
        }
        for peers in &mut peer_index {
            peers.sort_unstable_by_key(|&(p, _)| p);
        }
        Ok(Inventory {
            counts,
            node_load,
            buffer_limit: Deserialize::from_value(field("buffer_limit"))?,
            total_added: Deserialize::from_value(field("total_added"))?,
            total_removed: Deserialize::from_value(field("total_removed"))?,
            lots: None,
            peer_index,
            backend: backend_from_env(),
        })
    }
}

impl Inventory {
    /// An empty inventory over `n` nodes with unlimited buffers, on the
    /// environment-selected backend (flat unless `QNET_INVENTORY=btree`).
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, backend_from_env())
    }

    /// An empty inventory on an explicitly chosen pool backend.
    pub fn with_backend(n: usize, backend: InventoryBackend) -> Self {
        Inventory {
            counts: PairMatrix::new(n),
            node_load: vec![0; n],
            buffer_limit: None,
            total_added: 0,
            total_removed: 0,
            lots: None,
            peer_index: vec![Vec::new(); n],
            backend,
        }
    }

    /// Which pool backend the lot store uses (or would use) when enabled.
    pub fn backend(&self) -> InventoryBackend {
        self.backend
    }

    /// Attach the age/fidelity lot store for decoherent physics. A no-op for
    /// [`PhysicsModel::Ideal`]; call before any pair is stored.
    pub fn enable_lot_tracking(&mut self, physics: &PhysicsModel) {
        if physics.is_ideal() {
            return;
        }
        assert_eq!(
            self.total_pairs(),
            0,
            "enable lot tracking on an empty inventory"
        );
        self.lots = Some(LotStore::new(physics, self.node_count(), self.backend));
    }

    /// Attach per-edge `(pair, birth_fidelity, coherence_time_s)` overrides
    /// from a realized link fabric: elementary pairs generated on a listed
    /// edge are born at that edge's fidelity and decay under that edge's
    /// memory coherence time. A no-op without the lot store (ideal physics
    /// has no ages to track).
    pub fn set_link_physics<I>(&mut self, links: I)
    where
        I: IntoIterator<Item = (NodePair, f64, f64)>,
    {
        if let Some(store) = &mut self.lots {
            store
                .pools
                .set_link_overrides(links.into_iter().map(|(pair, f0, t2)| (pair, (f0, t2))));
        }
    }

    /// True when the age/fidelity lot store is active (decoherent physics).
    pub fn tracks_lots(&self) -> bool {
        self.lots.is_some()
    }

    /// Advance the lot store's clock to `now`. The simulation world calls
    /// this before dispatching each event so every mutation inside the event
    /// (including policy-driven swaps) ages and timestamps pairs correctly.
    /// A no-op without the lot store.
    pub fn set_clock(&mut self, now: SimTime) {
        if let Some(store) = &mut self.lots {
            store.clock = now;
        }
    }

    /// The stored lots for `pair`, oldest first (empty without the lot
    /// store). Exposed for observers and tests; counts remain the protocol's
    /// source of truth. Borrows the pool in place — no per-call `Vec`.
    pub fn lots_for(&self, pair: NodePair) -> impl Iterator<Item = PairLot> + '_ {
        self.lots
            .as_ref()
            .and_then(|store| store.pools.pool(pair))
            .into_iter()
            .flat_map(|pool| pool.iter().copied())
    }

    /// Current (aged) fidelity of every stored lot for `pair`, in storage
    /// order. Empty without the lot store. Borrows the pool in place — no
    /// per-call `Vec`.
    pub fn fidelities_for(&self, pair: NodePair) -> impl Iterator<Item = f64> + '_ {
        self.lots.as_ref().into_iter().flat_map(move |store| {
            store
                .pools
                .pool(pair)
                .into_iter()
                .flat_map(|pool| pool.iter())
                .map(|lot| store.aged_fidelity(lot))
        })
    }

    /// Creation time of the oldest stored lot across all pools (`None` when
    /// the store is absent or empty). Drives cutoff-sweep scheduling. Walks
    /// only the occupied pools.
    pub fn earliest_lot_time(&self) -> Option<SimTime> {
        let store = self.lots.as_ref()?;
        match &store.pools {
            PoolStore::BTree { pools, .. } => pools
                .values()
                .flat_map(|pool| pool.front())
                .map(|lot| lot.created_at)
                .min(),
            PoolStore::Flat(flat) => flat
                .occupied
                .iter()
                .flat_map(|&pair| flat.pool(pair).and_then(|pool| pool.front()))
                .map(|lot| lot.created_at)
                .min(),
        }
    }

    /// Discard every lot whose storage age has reached `cutoff` at the
    /// current clock (`created_at + cutoff <= clock`, so a sweep scheduled
    /// exactly at an expiry time collects it). Returns one entry per expired
    /// pair; counts, node loads and the removed-total are updated. A no-op
    /// without the lot store.
    pub fn purge_expired(&mut self, cutoff: SimDuration) -> Vec<NodePair> {
        let Some(store) = &mut self.lots else {
            return Vec::new();
        };
        let clock = store.clock;
        let mut expired = Vec::new();
        // Both backends walk occupied pools in lexicographic NodePair order
        // — the same order the old dense matrix scan produced.
        match &mut store.pools {
            PoolStore::BTree { pools, .. } => {
                for (&pair, pool) in pools.iter_mut() {
                    while let Some(front) = pool.front() {
                        if front.created_at + cutoff <= clock {
                            pool.pop_front();
                            expired.push(pair);
                        } else {
                            break;
                        }
                    }
                }
                pools.retain(|_, pool| !pool.is_empty());
            }
            PoolStore::Flat(flat) => {
                for k in 0..flat.occupied.len() {
                    let pair = flat.occupied[k];
                    let slot = flat.slot_of[flat.tri(pair)] as usize;
                    let pool = &mut flat.slab[slot];
                    while let Some(front) = pool.front() {
                        if front.created_at + cutoff <= clock {
                            pool.pop_front();
                            expired.push(pair);
                        } else {
                            break;
                        }
                    }
                }
                // Recycle the slots of pools the sweep emptied.
                let mut k = 0;
                while k < flat.occupied.len() {
                    let pair = flat.occupied[k];
                    let t = flat.tri(pair);
                    let slot = flat.slot_of[t];
                    if flat.slab[slot as usize].is_empty() {
                        flat.slot_of[t] = NO_SLOT;
                        flat.free.push(slot);
                        flat.occupied.remove(k);
                    } else {
                        k += 1;
                    }
                }
            }
        }
        for &pair in &expired {
            let count = self.counts.get_mut(pair);
            *count -= 1;
            let count = *count;
            Self::set_peer_count(&mut self.peer_index, pair, count);
            self.node_load[pair.lo().index()] -= 1;
            self.node_load[pair.hi().index()] -= 1;
            self.total_removed += 1;
        }
        expired
    }

    /// An empty inventory with a per-node buffer limit.
    pub fn with_buffer_limit(n: usize, limit: u64) -> Self {
        Inventory {
            buffer_limit: Some(limit),
            ..Inventory::new(n)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_load.len()
    }

    /// The per-node buffer limit, if one is configured.
    pub fn buffer_limit(&self) -> Option<u64> {
        self.buffer_limit
    }

    /// Count of stored pairs between the endpoints of `pair`.
    pub fn count(&self, pair: NodePair) -> u64 {
        *self.counts.get(pair)
    }

    /// Number of stored qubit halves at `node`.
    pub fn node_load(&self, node: NodeId) -> u64 {
        self.node_load[node.index()]
    }

    /// Total number of stored pairs.
    pub fn total_pairs(&self) -> u64 {
        self.counts.total()
    }

    /// Cumulative number of pairs ever added.
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Cumulative number of pairs ever removed.
    pub fn total_removed(&self) -> u64 {
        self.total_removed
    }

    /// The nodes that currently share at least one pair with `node`
    /// (its *entanglement neighbors*), in ascending id order.
    ///
    /// Served from the maintained per-node index — no allocation, no O(N)
    /// scan — so a swap scan at a node of degree d costs O(d) + O(rich²)
    /// regardless of network size.
    pub fn entangled_peers(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.peer_index[node.index()].iter().map(|&(peer, _)| peer)
    }

    /// `(peer, count)` for every entanglement neighbor of `node`, in
    /// ascending peer-id order. The counts are carried inline so a scan over
    /// a hub's peers is one sequential walk of a small contiguous slice —
    /// no per-peer random probe into the N²/2 count matrix, which is what
    /// dominates swap-scan cost at |N| ≈ 10³.
    pub fn peer_counts(&self, node: NodeId) -> &[(NodeId, u64)] {
        &self.peer_index[node.index()]
    }

    /// Mirror `pair`'s new count into both endpoints' peer lists: insert on
    /// 0 → nonzero, remove on nonzero → 0, plain write otherwise.
    fn set_peer_count(peer_index: &mut [Vec<(NodeId, u64)>], pair: NodePair, count: u64) {
        for (node, peer) in [(pair.lo(), pair.hi()), (pair.hi(), pair.lo())] {
            let list = &mut peer_index[node.index()];
            match list.binary_search_by_key(&peer, |&(p, _)| p) {
                Ok(pos) => {
                    if count == 0 {
                        list.remove(pos);
                    } else {
                        list[pos].1 = count;
                    }
                }
                Err(pos) => {
                    if count > 0 {
                        list.insert(pos, (peer, count));
                    }
                }
            }
        }
    }

    /// All pairs with a non-zero count, in lexicographic pair order.
    ///
    /// Assembled from the peer index in O(N + occupied pools) — the same
    /// order a full scan of the N²/2 count matrix would produce, without
    /// touching it (the entanglement-graph build runs this on every hybrid
    /// repair attempt).
    pub fn nonzero_pairs(&self) -> Vec<(NodePair, u64)> {
        let mut pairs = Vec::new();
        for (lo, peers) in self.peer_index.iter().enumerate() {
            let lo = NodeId::from(lo);
            for &(hi, count) in peers {
                if hi > lo {
                    pairs.push((NodePair::new(lo, hi), count));
                }
            }
        }
        pairs
    }

    /// Record the generation of one elementary pair between the endpoints of
    /// `pair` (born, under decoherent physics, at its generation edge's
    /// fidelity when a link fabric is attached and the configured global
    /// initial fidelity otherwise).
    pub fn add_pair(&mut self, pair: NodePair) -> Result<(), InventoryError> {
        self.add_pair_with_birth(pair, None)
    }

    /// Shared insertion path: `birth` is `Some((fidelity, coherence_time))`
    /// for swap products and `None` for elementary pairs (which resolve
    /// their birth values from the link fabric or the global physics).
    fn add_pair_with_birth(
        &mut self,
        pair: NodePair,
        birth: Option<(f64, f64)>,
    ) -> Result<(), InventoryError> {
        if let Some(limit) = self.buffer_limit {
            for node in [pair.lo(), pair.hi()] {
                if self.node_load[node.index()] >= limit {
                    return Err(InventoryError::BufferFull { node: node.0 });
                }
            }
        }
        let count = self.counts.get_mut(pair);
        *count += 1;
        let count = *count;
        Self::set_peer_count(&mut self.peer_index, pair, count);
        self.node_load[pair.lo().index()] += 1;
        self.node_load[pair.hi().index()] += 1;
        self.total_added += 1;
        if let Some(store) = &mut self.lots {
            store.push(pair, birth);
        }
        Ok(())
    }

    /// Remove `count` pairs between the endpoints of `pair` (consumption or
    /// swap input usage).
    pub fn remove_pairs(&mut self, pair: NodePair, count: u64) -> Result<(), InventoryError> {
        self.remove_pairs_with_fidelity(pair, count).map(|_| ())
    }

    /// Remove `count` pairs and report the best current (aged) fidelity
    /// among them — the fidelity actually delivered when the removal serves
    /// a consumption. `Ok(None)` without the lot store (ideal physics).
    pub fn remove_pairs_with_fidelity(
        &mut self,
        pair: NodePair,
        count: u64,
    ) -> Result<Option<f64>, InventoryError> {
        self.remove_pairs_full(pair, count)
            .map(|taken| taken.map(|(fidelity, _)| fidelity))
    }

    /// Removal path that also reports the worst coherence time among the
    /// removed lots (what a swap product inherits).
    fn remove_pairs_full(
        &mut self,
        pair: NodePair,
        count: u64,
    ) -> Result<Option<(f64, f64)>, InventoryError> {
        let available = self.count(pair);
        if available < count {
            return Err(InventoryError::InsufficientPairs {
                requested: count,
                available,
            });
        }
        let remaining = self.counts.get_mut(pair);
        *remaining -= count;
        let remaining = *remaining;
        if count > 0 {
            Self::set_peer_count(&mut self.peer_index, pair, remaining);
        }
        self.node_load[pair.lo().index()] -= count;
        self.node_load[pair.hi().index()] -= count;
        self.total_removed += count;
        Ok(self
            .lots
            .as_mut()
            .filter(|_| count > 0)
            .map(|store| store.take(pair, count)))
    }

    /// Perform the swap `y ← x → y'` in count space: consume `cost_left`
    /// pairs of `[x, y]` and `cost_right` pairs of `[x, y']`, produce one
    /// pair `[y, y']`.
    ///
    /// The costs are the `⌈D⌉` factors of the distill-before-swap model
    /// described in DESIGN.md; with `D = 1` this is the textbook swap that
    /// consumes one pair on each side.
    pub fn apply_swap(
        &mut self,
        repeater: NodeId,
        left: NodeId,
        right: NodeId,
        cost_left: u64,
        cost_right: u64,
    ) -> Result<(), InventoryError> {
        assert!(
            left != right && left != repeater && right != repeater,
            "degenerate swap"
        );
        let left_pair = NodePair::new(repeater, left);
        let right_pair = NodePair::new(repeater, right);
        // Validate both removals before mutating anything so a failure leaves
        // the inventory untouched.
        if self.count(left_pair) < cost_left {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_left,
                available: self.count(left_pair),
            });
        }
        if self.count(right_pair) < cost_right {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_right,
                available: self.count(right_pair),
            });
        }
        let f_left = self
            .remove_pairs_full(left_pair, cost_left)
            .expect("checked");
        let f_right = self
            .remove_pairs_full(right_pair, cost_right)
            .expect("checked");
        // Under decoherent physics the product pair's clock restarts now,
        // at the Werner-composed fidelity of the two (aged) inputs, decaying
        // under the worse of the two input memories.
        let composed = match (f_left, f_right) {
            (Some((fa, ta)), Some((fb, tb))) => Some((swap_werner_fidelity(fa, fb), ta.min(tb))),
            _ => None,
        };
        self.add_pair_with_birth(NodePair::new(left, right), composed)
    }

    /// The minimum pair count over a set of pairs (used by balance tests).
    pub fn min_count_over(&self, pairs: &[NodePair]) -> Option<u64> {
        pairs.iter().map(|&p| self.count(p)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn add_and_count() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        assert_eq!(inv.count(pair(1, 0)), 2);
        assert_eq!(inv.count(pair(2, 3)), 1);
        assert_eq!(inv.count(pair(0, 2)), 0);
        assert_eq!(inv.total_pairs(), 3);
        assert_eq!(inv.total_added(), 3);
        assert_eq!(inv.node_load(NodeId(0)), 2);
        assert_eq!(inv.node_load(NodeId(3)), 1);
        assert_eq!(
            inv.entangled_peers(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        assert_eq!(inv.nonzero_pairs().len(), 2);
    }

    #[test]
    fn remove_pairs_checks_availability() {
        let mut inv = Inventory::new(3);
        inv.add_pair(pair(0, 1)).unwrap();
        assert_eq!(
            inv.remove_pairs(pair(0, 1), 2),
            Err(InventoryError::InsufficientPairs {
                requested: 2,
                available: 1
            })
        );
        inv.remove_pairs(pair(0, 1), 1).unwrap();
        assert_eq!(inv.count(pair(0, 1)), 0);
        assert_eq!(inv.total_removed(), 1);
        assert_eq!(inv.node_load(NodeId(0)), 0);
    }

    #[test]
    fn swap_moves_entanglement() {
        // A—C and C—B become A—B (Fig. 2 of the paper).
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
        assert_eq!(inv.count(NodePair::new(a, c)), 0);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        // The repeater's qubits are measured out: its load drops to zero.
        assert_eq!(inv.node_load(c), 0);
        assert_eq!(inv.node_load(a), 1);
        assert_eq!(inv.node_load(b), 1);
    }

    #[test]
    fn swap_with_distillation_cost_consumes_more() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        for _ in 0..3 {
            inv.add_pair(NodePair::new(a, c)).unwrap();
            inv.add_pair(NodePair::new(c, b)).unwrap();
        }
        inv.apply_swap(c, a, b, 2, 3).unwrap();
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
    }

    #[test]
    fn swap_fails_atomically() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        // Missing the C—B pair entirely.
        let err = inv.apply_swap(c, a, b, 1, 1).unwrap_err();
        assert!(matches!(err, InventoryError::InsufficientPairs { .. }));
        // Nothing was consumed.
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.total_removed(), 0);
    }

    #[test]
    fn swap_never_increases_node_pair_total() {
        // Paper §3: "a swap never increases the number of Bell pairs held at
        // a node".
        let mut inv = Inventory::new(4);
        for _ in 0..5 {
            inv.add_pair(pair(0, 2)).unwrap();
            inv.add_pair(pair(2, 3)).unwrap();
        }
        let before: Vec<u64> = (0..4).map(|i| inv.node_load(NodeId(i))).collect();
        inv.apply_swap(NodeId(2), NodeId(0), NodeId(3), 1, 1)
            .unwrap();
        for i in 0..4 {
            assert!(inv.node_load(NodeId(i)) <= before[i as usize]);
        }
        assert_eq!(inv.total_pairs(), 9);
    }

    #[test]
    fn buffer_limit_is_enforced() {
        let mut inv = Inventory::with_buffer_limit(3, 2);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 2)).unwrap();
        // Node 0 now holds two halves; a third is refused.
        assert_eq!(
            inv.add_pair(pair(0, 1)),
            Err(InventoryError::BufferFull { node: 0 })
        );
        // Other nodes still have room.
        inv.add_pair(pair(1, 2)).unwrap();
        assert_eq!(inv.total_pairs(), 3);
    }

    #[test]
    #[should_panic]
    fn degenerate_swap_panics() {
        let mut inv = Inventory::new(3);
        let _ = inv.apply_swap(NodeId(0), NodeId(1), NodeId(1), 1, 1);
    }

    fn decoherent_inventory(n: usize, t2: f64) -> Inventory {
        let mut inv = Inventory::new(n);
        inv.enable_lot_tracking(&PhysicsModel::decoherent(t2));
        inv
    }

    #[test]
    fn lot_store_is_off_by_default_and_for_ideal_physics() {
        let mut inv = Inventory::new(3);
        assert!(!inv.tracks_lots());
        inv.enable_lot_tracking(&PhysicsModel::Ideal);
        assert!(!inv.tracks_lots());
        inv.add_pair(pair(0, 1)).unwrap();
        assert!(inv.lots_for(pair(0, 1)).next().is_none());
        assert_eq!(inv.remove_pairs_with_fidelity(pair(0, 1), 1), Ok(None));
        assert_eq!(inv.earliest_lot_time(), None);
        assert!(inv.purge_expired(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn lots_mirror_counts_and_carry_timestamps() {
        let mut inv = decoherent_inventory(3, 10.0);
        inv.set_clock(SimTime::from_secs(1));
        inv.add_pair(pair(0, 1)).unwrap();
        inv.set_clock(SimTime::from_secs(3));
        inv.add_pair(pair(0, 1)).unwrap();
        let lots: Vec<PairLot> = inv.lots_for(pair(0, 1)).collect();
        assert_eq!(lots.len(), 2);
        assert_eq!(lots[0].created_at, SimTime::from_secs(1));
        assert_eq!(lots[1].created_at, SimTime::from_secs(3));
        assert_eq!(
            lots[0].birth_fidelity,
            PhysicsModel::DEFAULT_INITIAL_FIDELITY
        );
        assert_eq!(inv.earliest_lot_time(), Some(SimTime::from_secs(1)));
        // Aged fidelities decay with storage time: the older lot is worse.
        let fids: Vec<f64> = inv.fidelities_for(pair(0, 1)).collect();
        assert!(fids[0] < fids[1]);
        assert!(fids[1] < PhysicsModel::DEFAULT_INITIAL_FIDELITY + 1e-12);
    }

    #[test]
    fn consume_order_selects_which_lot_is_delivered() {
        for (order, expect_created) in [
            (ConsumeOrder::OldestFirst, SimTime::from_secs(0)),
            (ConsumeOrder::NewestFirst, SimTime::from_secs(5)),
        ] {
            let mut inv = Inventory::new(3);
            inv.enable_lot_tracking(&PhysicsModel::decoherent(10.0).with_consume_order(order));
            inv.set_clock(SimTime::ZERO);
            inv.add_pair(pair(0, 1)).unwrap();
            inv.set_clock(SimTime::from_secs(5));
            inv.add_pair(pair(0, 1)).unwrap();
            inv.set_clock(SimTime::from_secs(6));
            inv.remove_pairs(pair(0, 1), 1).unwrap();
            let remaining: Vec<PairLot> = inv.lots_for(pair(0, 1)).collect();
            assert_eq!(remaining.len(), 1);
            // The *other* lot was consumed.
            assert_ne!(remaining[0].created_at, expect_created);
        }
    }

    #[test]
    fn delivered_fidelity_is_the_best_aged_lot() {
        let mut inv = decoherent_inventory(3, 2.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.set_clock(SimTime::from_secs(4));
        inv.add_pair(pair(0, 1)).unwrap();
        // Consuming both (D = 2 style) delivers the fresh pair's fidelity,
        // regardless of pop order.
        let f = inv
            .remove_pairs_with_fidelity(pair(0, 1), 2)
            .unwrap()
            .unwrap();
        assert!((f - PhysicsModel::DEFAULT_INITIAL_FIDELITY).abs() < 1e-12);
    }

    #[test]
    fn swap_ages_inputs_and_restarts_the_product_clock() {
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        let mut inv = decoherent_inventory(3, 1.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        let swap_at = SimTime::from_secs(1);
        inv.set_clock(swap_at);
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        let product: Vec<PairLot> = inv.lots_for(NodePair::new(a, b)).collect();
        assert_eq!(product.len(), 1);
        assert_eq!(product[0].created_at, swap_at, "product clock restarts");
        // Both inputs aged one coherence time before composing.
        let model = DecoherenceModel::with_coherence_time(1.0);
        let aged = model.fidelity_after(PhysicsModel::DEFAULT_INITIAL_FIDELITY, 1.0);
        let expected = swap_werner_fidelity(aged, aged);
        assert!(
            (product[0].birth_fidelity - expected).abs() < 1e-12,
            "got {}, expected {expected}",
            product[0].birth_fidelity
        );
        // Composition can only lose fidelity relative to the aged inputs.
        assert!(product[0].birth_fidelity <= aged + 1e-12);
    }

    #[test]
    fn purge_expired_discards_old_lots_and_updates_counts() {
        let mut inv = decoherent_inventory(4, 10.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        inv.set_clock(SimTime::from_secs(4));
        inv.add_pair(pair(0, 1)).unwrap();

        inv.set_clock(SimTime::from_secs(5));
        let expired = inv.purge_expired(SimDuration::from_secs(5));
        // The two t = 0 lots have age exactly 5 (inclusive boundary); the
        // t = 4 lot survives.
        assert_eq!(expired.len(), 2);
        assert!(expired.contains(&pair(0, 1)) && expired.contains(&pair(2, 3)));
        assert_eq!(inv.count(pair(0, 1)), 1);
        assert_eq!(inv.count(pair(2, 3)), 0);
        assert_eq!(inv.total_removed(), 2);
        assert_eq!(inv.node_load(NodeId(2)), 0);
        assert_eq!(inv.earliest_lot_time(), Some(SimTime::from_secs(4)));
        // Nothing else is due yet.
        assert!(inv.purge_expired(SimDuration::from_secs(5)).is_empty());
    }

    #[test]
    fn serialization_keeps_the_legacy_count_space_layout() {
        let mut plain = Inventory::new(3);
        plain.add_pair(pair(0, 1)).unwrap();
        let mut tracked = decoherent_inventory(3, 1.0);
        tracked.add_pair(pair(0, 1)).unwrap();
        // The lot store never leaks into the serialized form.
        assert_eq!(plain.to_value(), tracked.to_value());
        let back = Inventory::from_value(&plain.to_value()).unwrap();
        assert_eq!(back.count(pair(0, 1)), 1);
        assert!(!back.tracks_lots());
    }

    #[test]
    fn peer_index_tracks_zero_nonzero_transitions() {
        let mut inv = Inventory::new(5);
        assert!(inv.peer_counts(NodeId(0)).is_empty());
        inv.add_pair(pair(0, 3)).unwrap();
        inv.add_pair(pair(0, 3)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        // Ascending order, as the balancer's tie-breaking requires, with
        // the pool counts mirrored inline.
        assert_eq!(
            inv.peer_counts(NodeId(0)),
            &[(NodeId(1), 1), (NodeId(3), 2)]
        );
        assert_eq!(
            inv.peer_counts(NodeId(3)),
            &[(NodeId(0), 2), (NodeId(2), 1)]
        );
        // Removing one of two pairs keeps the peer; removing the last drops it.
        inv.remove_pairs(pair(0, 3), 1).unwrap();
        assert_eq!(
            inv.peer_counts(NodeId(0)),
            &[(NodeId(1), 1), (NodeId(3), 1)]
        );
        inv.remove_pairs(pair(0, 3), 1).unwrap();
        assert_eq!(inv.peer_counts(NodeId(0)), &[(NodeId(1), 1)]);
        // A swap retargets the index: consuming 0—1 and 0—3 produces 1—3.
        inv.add_pair(pair(0, 3)).unwrap();
        inv.apply_swap(NodeId(0), NodeId(1), NodeId(3), 1, 1)
            .unwrap();
        assert!(inv.peer_counts(NodeId(0)).is_empty());
        assert_eq!(inv.peer_counts(NodeId(1)), &[(NodeId(3), 1)]);
        // Expiry transitions update the index too.
        let mut aged = decoherent_inventory(3, 10.0);
        aged.set_clock(SimTime::ZERO);
        aged.add_pair(pair(0, 1)).unwrap();
        aged.set_clock(SimTime::from_secs(9));
        assert_eq!(aged.peer_counts(NodeId(0)), &[(NodeId(1), 1)]);
        aged.purge_expired(SimDuration::from_secs(5));
        assert!(aged.peer_counts(NodeId(0)).is_empty());
    }

    #[test]
    fn peer_index_is_rebuilt_on_deserialize() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 2)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        let back = Inventory::from_value(&inv.to_value()).unwrap();
        assert_eq!(
            back.peer_counts(NodeId(2)),
            &[(NodeId(0), 1), (NodeId(1), 2)]
        );
        assert_eq!(back, inv);
    }

    #[test]
    fn link_physics_overrides_birth_fidelity_and_memory() {
        let mut inv = decoherent_inventory(3, 10.0);
        inv.set_link_physics([(pair(0, 1), 0.9, 0.5)]);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(pair(0, 1)).unwrap(); // fabric edge: f0 = 0.9, T2 = 0.5 s
        inv.add_pair(pair(1, 2)).unwrap(); // unlisted edge: global defaults
        let fabric_lot = inv.lots_for(pair(0, 1)).next().unwrap();
        assert_eq!(fabric_lot.birth_fidelity, 0.9);
        assert_eq!(fabric_lot.coherence_time_s, 0.5);
        let default_lot = inv.lots_for(pair(1, 2)).next().unwrap();
        assert_eq!(
            default_lot.birth_fidelity,
            PhysicsModel::DEFAULT_INITIAL_FIDELITY
        );
        assert_eq!(default_lot.coherence_time_s, 10.0);
        // The short-memory lot decays much faster than the default one.
        inv.set_clock(SimTime::from_secs(1));
        let fast = inv.fidelities_for(pair(0, 1)).next().unwrap();
        let slow = inv.fidelities_for(pair(1, 2)).next().unwrap();
        let expected_fast = DecoherenceModel::with_coherence_time(0.5).fidelity_after(0.9, 1.0);
        assert!((fast - expected_fast).abs() < 1e-12);
        assert!(slow > fast);
    }

    #[test]
    fn swap_product_inherits_the_weakest_input_memory() {
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        let mut inv = decoherent_inventory(3, 10.0);
        inv.set_link_physics([
            (NodePair::new(a, c), 0.95, 0.5),
            (NodePair::new(c, b), 0.95, 4.0),
        ]);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        let product: Vec<PairLot> = inv.lots_for(NodePair::new(a, b)).collect();
        assert_eq!(product.len(), 1);
        assert_eq!(product[0].coherence_time_s, 0.5, "worst memory dominates");
    }

    #[test]
    fn min_count_over_pairs() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        let pairs = [pair(0, 1), pair(1, 2), pair(2, 3)];
        assert_eq!(inv.min_count_over(&pairs), Some(0));
        assert_eq!(inv.min_count_over(&pairs[..2]), Some(1));
        assert_eq!(inv.min_count_over(&[]), None);
    }

    #[test]
    fn env_var_selects_backend_per_creation() {
        // The env var is consulted at construction, like QNET_EVENT_QUEUE.
        // Racing env-reading tests are harmless here: both backends are
        // behaviorally identical, which is this module's own invariant.
        std::env::set_var("QNET_INVENTORY", "btree");
        assert_eq!(Inventory::new(3).backend(), InventoryBackend::BTree);
        std::env::set_var("QNET_INVENTORY", "flat");
        assert_eq!(Inventory::new(3).backend(), InventoryBackend::Flat);
        std::env::remove_var("QNET_INVENTORY");
        assert_eq!(Inventory::new(3).backend(), InventoryBackend::Flat);
        // Explicit construction ignores the environment.
        assert_eq!(
            Inventory::with_backend(3, InventoryBackend::BTree).backend(),
            InventoryBackend::BTree
        );
    }

    /// Deterministic pseudo-random stream (SplitMix-style) for the
    /// differential test below — no RNG dependency inside the unit tests.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The differential proof the flat backend rests on: identical mutation
    /// sequences drive both backends through identical observable states —
    /// counts, lot order, purge results, and serialized bytes.
    #[test]
    fn flat_and_btree_backends_stay_identical() {
        for seed in [3_u64, 17, 42] {
            let n = 8;
            let mut flat = Inventory::with_backend(n, InventoryBackend::Flat);
            let mut btree = Inventory::with_backend(n, InventoryBackend::BTree);
            let physics = PhysicsModel::decoherent(6.0);
            flat.enable_lot_tracking(&physics);
            btree.enable_lot_tracking(&physics);
            let mut state = seed;
            for step in 0..400 {
                let now = SimTime::from_secs(step / 10);
                flat.set_clock(now);
                btree.set_clock(now);
                let a = (mix(&mut state) % n as u64) as u32;
                let b = (mix(&mut state) % (n as u64 - 1)) as u32;
                let b = if b >= a { b + 1 } else { b };
                let p = pair(a, b);
                match mix(&mut state) % 10 {
                    0..=4 => {
                        assert_eq!(flat.add_pair(p), btree.add_pair(p));
                    }
                    5..=6 => {
                        let k = mix(&mut state) % 3;
                        assert_eq!(
                            flat.remove_pairs_with_fidelity(p, k),
                            btree.remove_pairs_with_fidelity(p, k)
                        );
                    }
                    7..=8 => {
                        let c = (mix(&mut state) % n as u64) as u32;
                        if c != a && c != b {
                            assert_eq!(
                                flat.apply_swap(NodeId(c), NodeId(a), NodeId(b), 1, 1),
                                btree.apply_swap(NodeId(c), NodeId(a), NodeId(b), 1, 1)
                            );
                        }
                    }
                    _ => {
                        assert_eq!(
                            flat.purge_expired(SimDuration::from_secs(20)),
                            btree.purge_expired(SimDuration::from_secs(20))
                        );
                    }
                }
                assert_eq!(
                    flat.lots_for(p).collect::<Vec<PairLot>>(),
                    btree.lots_for(p).collect::<Vec<PairLot>>(),
                    "seed {seed} step {step}: lot order diverged"
                );
            }
            assert_eq!(flat, btree, "seed {seed}: logical state diverged");
            assert_eq!(flat.nonzero_pairs(), btree.nonzero_pairs());
            assert_eq!(flat.earliest_lot_time(), btree.earliest_lot_time());
            assert_eq!(
                flat.to_value(),
                btree.to_value(),
                "seed {seed}: serialization diverged"
            );
        }
    }
}
