//! The network-wide Bell-pair inventory.
//!
//! Because Bell pairs are interchangeable (paper §1), the global state the
//! protocol cares about is just the count `C_x(y) = C_y(x)` of pairs whose
//! qubits sit at `x` and `y`. [`Inventory`] stores those counts in a
//! [`PairMatrix`] and implements the three primitive mutations — generate,
//! swap, consume — with the bookkeeping (per-node qubit totals, cumulative
//! counters) the balancer, the buffer-limit model and the metrics need.

use qnet_topology::{NodeId, NodePair, PairMatrix};
use serde::{Deserialize, Serialize};

/// Reasons an inventory mutation can be refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InventoryError {
    /// Not enough pairs of the requested kind are stored.
    InsufficientPairs {
        /// How many were requested.
        requested: u64,
        /// How many are stored.
        available: u64,
    },
    /// A node's buffer limit would be exceeded.
    BufferFull {
        /// The node whose buffer is full.
        node: u32,
    },
}

/// The global Bell-pair count state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inventory {
    counts: PairMatrix<u64>,
    /// Number of stored qubit halves per node (each stored pair contributes
    /// one half to each endpoint).
    node_load: Vec<u64>,
    /// Optional per-node buffer limit.
    buffer_limit: Option<u64>,
    /// Cumulative number of pairs ever added (generated or produced by swap).
    total_added: u64,
    /// Cumulative number of pairs ever removed (consumed or used by swap).
    total_removed: u64,
}

impl Inventory {
    /// An empty inventory over `n` nodes with unlimited buffers.
    pub fn new(n: usize) -> Self {
        Inventory {
            counts: PairMatrix::new(n),
            node_load: vec![0; n],
            buffer_limit: None,
            total_added: 0,
            total_removed: 0,
        }
    }

    /// An empty inventory with a per-node buffer limit.
    pub fn with_buffer_limit(n: usize, limit: u64) -> Self {
        Inventory {
            buffer_limit: Some(limit),
            ..Inventory::new(n)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_load.len()
    }

    /// Count of stored pairs between the endpoints of `pair`.
    pub fn count(&self, pair: NodePair) -> u64 {
        *self.counts.get(pair)
    }

    /// Number of stored qubit halves at `node`.
    pub fn node_load(&self, node: NodeId) -> u64 {
        self.node_load[node.index()]
    }

    /// Total number of stored pairs.
    pub fn total_pairs(&self) -> u64 {
        self.counts.total()
    }

    /// Cumulative number of pairs ever added.
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Cumulative number of pairs ever removed.
    pub fn total_removed(&self) -> u64 {
        self.total_removed
    }

    /// The nodes that currently share at least one pair with `node`
    /// (its *entanglement neighbors*), in ascending id order.
    pub fn entangled_peers(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.node_count())
            .map(NodeId::from)
            .filter(|&other| other != node && self.count(NodePair::new(node, other)) > 0)
            .collect()
    }

    /// Iterate over all pairs with a non-zero count.
    pub fn nonzero_pairs(&self) -> Vec<(NodePair, u64)> {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (p, c))
            .collect()
    }

    /// Record the generation (or swap-production) of one pair between the
    /// endpoints of `pair`.
    pub fn add_pair(&mut self, pair: NodePair) -> Result<(), InventoryError> {
        if let Some(limit) = self.buffer_limit {
            for node in [pair.lo(), pair.hi()] {
                if self.node_load[node.index()] >= limit {
                    return Err(InventoryError::BufferFull { node: node.0 });
                }
            }
        }
        *self.counts.get_mut(pair) += 1;
        self.node_load[pair.lo().index()] += 1;
        self.node_load[pair.hi().index()] += 1;
        self.total_added += 1;
        Ok(())
    }

    /// Remove `count` pairs between the endpoints of `pair` (consumption or
    /// swap input usage).
    pub fn remove_pairs(&mut self, pair: NodePair, count: u64) -> Result<(), InventoryError> {
        let available = self.count(pair);
        if available < count {
            return Err(InventoryError::InsufficientPairs {
                requested: count,
                available,
            });
        }
        *self.counts.get_mut(pair) -= count;
        self.node_load[pair.lo().index()] -= count;
        self.node_load[pair.hi().index()] -= count;
        self.total_removed += count;
        Ok(())
    }

    /// Perform the swap `y ← x → y'` in count space: consume `cost_left`
    /// pairs of `[x, y]` and `cost_right` pairs of `[x, y']`, produce one
    /// pair `[y, y']`.
    ///
    /// The costs are the `⌈D⌉` factors of the distill-before-swap model
    /// described in DESIGN.md; with `D = 1` this is the textbook swap that
    /// consumes one pair on each side.
    pub fn apply_swap(
        &mut self,
        repeater: NodeId,
        left: NodeId,
        right: NodeId,
        cost_left: u64,
        cost_right: u64,
    ) -> Result<(), InventoryError> {
        assert!(
            left != right && left != repeater && right != repeater,
            "degenerate swap"
        );
        let left_pair = NodePair::new(repeater, left);
        let right_pair = NodePair::new(repeater, right);
        // Validate both removals before mutating anything so a failure leaves
        // the inventory untouched.
        if self.count(left_pair) < cost_left {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_left,
                available: self.count(left_pair),
            });
        }
        if self.count(right_pair) < cost_right {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_right,
                available: self.count(right_pair),
            });
        }
        self.remove_pairs(left_pair, cost_left).expect("checked");
        self.remove_pairs(right_pair, cost_right).expect("checked");
        self.add_pair(NodePair::new(left, right))
    }

    /// The minimum pair count over a set of pairs (used by balance tests).
    pub fn min_count_over(&self, pairs: &[NodePair]) -> Option<u64> {
        pairs.iter().map(|&p| self.count(p)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn add_and_count() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        assert_eq!(inv.count(pair(1, 0)), 2);
        assert_eq!(inv.count(pair(2, 3)), 1);
        assert_eq!(inv.count(pair(0, 2)), 0);
        assert_eq!(inv.total_pairs(), 3);
        assert_eq!(inv.total_added(), 3);
        assert_eq!(inv.node_load(NodeId(0)), 2);
        assert_eq!(inv.node_load(NodeId(3)), 1);
        assert_eq!(inv.entangled_peers(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(inv.nonzero_pairs().len(), 2);
    }

    #[test]
    fn remove_pairs_checks_availability() {
        let mut inv = Inventory::new(3);
        inv.add_pair(pair(0, 1)).unwrap();
        assert_eq!(
            inv.remove_pairs(pair(0, 1), 2),
            Err(InventoryError::InsufficientPairs {
                requested: 2,
                available: 1
            })
        );
        inv.remove_pairs(pair(0, 1), 1).unwrap();
        assert_eq!(inv.count(pair(0, 1)), 0);
        assert_eq!(inv.total_removed(), 1);
        assert_eq!(inv.node_load(NodeId(0)), 0);
    }

    #[test]
    fn swap_moves_entanglement() {
        // A—C and C—B become A—B (Fig. 2 of the paper).
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
        assert_eq!(inv.count(NodePair::new(a, c)), 0);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        // The repeater's qubits are measured out: its load drops to zero.
        assert_eq!(inv.node_load(c), 0);
        assert_eq!(inv.node_load(a), 1);
        assert_eq!(inv.node_load(b), 1);
    }

    #[test]
    fn swap_with_distillation_cost_consumes_more() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        for _ in 0..3 {
            inv.add_pair(NodePair::new(a, c)).unwrap();
            inv.add_pair(NodePair::new(c, b)).unwrap();
        }
        inv.apply_swap(c, a, b, 2, 3).unwrap();
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
    }

    #[test]
    fn swap_fails_atomically() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        // Missing the C—B pair entirely.
        let err = inv.apply_swap(c, a, b, 1, 1).unwrap_err();
        assert!(matches!(err, InventoryError::InsufficientPairs { .. }));
        // Nothing was consumed.
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.total_removed(), 0);
    }

    #[test]
    fn swap_never_increases_node_pair_total() {
        // Paper §3: "a swap never increases the number of Bell pairs held at
        // a node".
        let mut inv = Inventory::new(4);
        for _ in 0..5 {
            inv.add_pair(pair(0, 2)).unwrap();
            inv.add_pair(pair(2, 3)).unwrap();
        }
        let before: Vec<u64> = (0..4).map(|i| inv.node_load(NodeId(i))).collect();
        inv.apply_swap(NodeId(2), NodeId(0), NodeId(3), 1, 1)
            .unwrap();
        for i in 0..4 {
            assert!(inv.node_load(NodeId(i)) <= before[i as usize]);
        }
        assert_eq!(inv.total_pairs(), 9);
    }

    #[test]
    fn buffer_limit_is_enforced() {
        let mut inv = Inventory::with_buffer_limit(3, 2);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 2)).unwrap();
        // Node 0 now holds two halves; a third is refused.
        assert_eq!(
            inv.add_pair(pair(0, 1)),
            Err(InventoryError::BufferFull { node: 0 })
        );
        // Other nodes still have room.
        inv.add_pair(pair(1, 2)).unwrap();
        assert_eq!(inv.total_pairs(), 3);
    }

    #[test]
    #[should_panic]
    fn degenerate_swap_panics() {
        let mut inv = Inventory::new(3);
        let _ = inv.apply_swap(NodeId(0), NodeId(1), NodeId(1), 1, 1);
    }

    #[test]
    fn min_count_over_pairs() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        let pairs = [pair(0, 1), pair(1, 2), pair(2, 3)];
        assert_eq!(inv.min_count_over(&pairs), Some(0));
        assert_eq!(inv.min_count_over(&pairs[..2]), Some(1));
        assert_eq!(inv.min_count_over(&[]), None);
    }
}
