//! The network-wide Bell-pair inventory.
//!
//! Because Bell pairs are interchangeable (paper §1), the global state the
//! protocol cares about is just the count `C_x(y) = C_y(x)` of pairs whose
//! qubits sit at `x` and `y`. [`Inventory`] stores those counts in a
//! [`PairMatrix`] and implements the three primitive mutations — generate,
//! swap, consume — with the bookkeeping (per-node qubit totals, cumulative
//! counters) the balancer, the buffer-limit model and the metrics need.
//!
//! ## The lot store (decoherent physics)
//!
//! Under [`crate::physics::PhysicsModel::Decoherent`] the inventory layers a
//! **lot store** over the counts: every stored pair additionally carries a
//! creation timestamp and a birth fidelity ([`PairLot`]). The store is
//! deliberately hidden behind the exact same mutation API the count-space
//! model uses — `add_pair`, `remove_pairs`, `apply_swap` — so every caller,
//! including swap policies that mutate the inventory directly through
//! [`crate::policy::PolicyCtx`], keeps ages and fidelities consistent
//! without knowing the store exists. The world advances the store's clock
//! ([`Inventory::set_clock`]) before dispatching each event; consumption
//! and swap inputs draw lots in the configured
//! [`crate::physics::ConsumeOrder`]; a swap ages both inputs to the swap
//! time, composes them with [`qnet_quantum::swap::swap_werner_fidelity`]
//! and restarts the product's clock. When the store is disabled (ideal
//! physics — the default) none of this code runs and behaviour is
//! bit-identical to the count-space model.
//!
//! Serialization intentionally covers only the count-space state (the
//! legacy byte layout); the lot store is runtime-only.

use crate::physics::{ConsumeOrder, PhysicsModel};
use qnet_quantum::decoherence::DecoherenceModel;
use qnet_quantum::swap::swap_werner_fidelity;
use qnet_sim::{SimDuration, SimTime};
use qnet_topology::{NodeId, NodePair, PairMatrix};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Reasons an inventory mutation can be refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InventoryError {
    /// Not enough pairs of the requested kind are stored.
    InsufficientPairs {
        /// How many were requested.
        requested: u64,
        /// How many are stored.
        available: u64,
    },
    /// A node's buffer limit would be exceeded.
    BufferFull {
        /// The node whose buffer is full.
        node: u32,
    },
}

/// One stored Bell pair tracked by the lot store: when it was created and
/// the fidelity it was born with. Its *current* fidelity is the birth value
/// decayed over its age by the configured decoherence model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLot {
    /// Simulated time the pair was stored (generation or swap production).
    pub created_at: SimTime,
    /// Fidelity at creation (initial fidelity for elementary pairs, the
    /// Werner-composed value for swap products).
    pub birth_fidelity: f64,
}

/// Per-pool age/fidelity bookkeeping, active only under decoherent physics.
/// Lots within a pool are kept in creation order (pushes always append and
/// creation times are monotone), so the pool front is always the oldest.
#[derive(Debug, Clone, PartialEq)]
struct LotStore {
    decoherence: DecoherenceModel,
    initial_fidelity: f64,
    order: ConsumeOrder,
    clock: SimTime,
    pools: PairMatrix<VecDeque<PairLot>>,
}

impl LotStore {
    fn new(n: usize, physics: &PhysicsModel) -> Self {
        LotStore {
            decoherence: physics.decoherence_model(),
            initial_fidelity: physics.initial_fidelity(),
            order: physics.consume_order(),
            clock: SimTime::ZERO,
            pools: PairMatrix::new(n),
        }
    }

    /// Current fidelity of `lot` at the store clock.
    fn aged_fidelity(&self, lot: &PairLot) -> f64 {
        let age = self.clock.saturating_since(lot.created_at).as_secs_f64();
        self.decoherence.fidelity_after(lot.birth_fidelity, age)
    }

    fn push(&mut self, pair: NodePair, birth_fidelity: f64) {
        self.pools.get_mut(pair).push_back(PairLot {
            created_at: self.clock,
            birth_fidelity,
        });
    }

    /// Remove `count` lots from `pair`'s pool in the configured order and
    /// return the best aged fidelity among them (the pair that actually
    /// serves the request/swap; the rest are the `⌈D⌉` distillation fuel).
    ///
    /// # Panics
    /// Panics if the pool holds fewer than `count` lots — count-space
    /// availability is always validated first, and the store mirrors the
    /// counts exactly.
    fn take(&mut self, pair: NodePair, count: u64) -> f64 {
        let pool = self.pools.get_mut(pair);
        assert!(
            pool.len() as u64 >= count,
            "lot store out of sync with counts for {pair}"
        );
        let mut taken = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let lot = match self.order {
                ConsumeOrder::OldestFirst => pool.pop_front(),
                ConsumeOrder::NewestFirst => pool.pop_back(),
            }
            .expect("length checked");
            taken.push(lot);
        }
        taken
            .iter()
            .map(|lot| self.aged_fidelity(lot))
            .fold(0.25, f64::max)
    }
}

/// The global Bell-pair count state.
///
/// Serialization (manual impls below) covers exactly the legacy count-space
/// fields; the runtime-only lot store is rebuilt per run, never persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct Inventory {
    counts: PairMatrix<u64>,
    /// Number of stored qubit halves per node (each stored pair contributes
    /// one half to each endpoint).
    node_load: Vec<u64>,
    /// Optional per-node buffer limit.
    buffer_limit: Option<u64>,
    /// Cumulative number of pairs ever added (generated or produced by swap).
    total_added: u64,
    /// Cumulative number of pairs ever removed (consumed or used by swap).
    total_removed: u64,
    /// Age/fidelity lots, present only under decoherent physics.
    lots: Option<LotStore>,
}

impl Serialize for Inventory {
    fn to_value(&self) -> Value {
        // The legacy (pre-physics) byte layout: count-space state only.
        Value::Map(vec![
            ("counts".to_string(), self.counts.to_value()),
            ("node_load".to_string(), self.node_load.to_value()),
            ("buffer_limit".to_string(), self.buffer_limit.to_value()),
            ("total_added".to_string(), self.total_added.to_value()),
            ("total_removed".to_string(), self.total_removed.to_value()),
        ])
    }
}

impl Deserialize for Inventory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("Inventory object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        Ok(Inventory {
            counts: Deserialize::from_value(field("counts"))?,
            node_load: Deserialize::from_value(field("node_load"))?,
            buffer_limit: Deserialize::from_value(field("buffer_limit"))?,
            total_added: Deserialize::from_value(field("total_added"))?,
            total_removed: Deserialize::from_value(field("total_removed"))?,
            lots: None,
        })
    }
}

impl Inventory {
    /// An empty inventory over `n` nodes with unlimited buffers.
    pub fn new(n: usize) -> Self {
        Inventory {
            counts: PairMatrix::new(n),
            node_load: vec![0; n],
            buffer_limit: None,
            total_added: 0,
            total_removed: 0,
            lots: None,
        }
    }

    /// Attach the age/fidelity lot store for decoherent physics. A no-op for
    /// [`PhysicsModel::Ideal`]; call before any pair is stored.
    pub fn enable_lot_tracking(&mut self, physics: &PhysicsModel) {
        if physics.is_ideal() {
            return;
        }
        assert_eq!(
            self.total_pairs(),
            0,
            "enable lot tracking on an empty inventory"
        );
        self.lots = Some(LotStore::new(self.node_count(), physics));
    }

    /// True when the age/fidelity lot store is active (decoherent physics).
    pub fn tracks_lots(&self) -> bool {
        self.lots.is_some()
    }

    /// Advance the lot store's clock to `now`. The simulation world calls
    /// this before dispatching each event so every mutation inside the event
    /// (including policy-driven swaps) ages and timestamps pairs correctly.
    /// A no-op without the lot store.
    pub fn set_clock(&mut self, now: SimTime) {
        if let Some(store) = &mut self.lots {
            store.clock = now;
        }
    }

    /// The stored lots for `pair`, oldest first (empty without the lot
    /// store). Exposed for observers and tests; counts remain the protocol's
    /// source of truth.
    pub fn lots_for(&self, pair: NodePair) -> Vec<PairLot> {
        match &self.lots {
            Some(store) => store.pools.get(pair).iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Current (aged) fidelity of every stored lot for `pair`, in storage
    /// order. Empty without the lot store.
    pub fn fidelities_for(&self, pair: NodePair) -> Vec<f64> {
        match &self.lots {
            Some(store) => store
                .pools
                .get(pair)
                .iter()
                .map(|lot| store.aged_fidelity(lot))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Creation time of the oldest stored lot across all pools (`None` when
    /// the store is absent or empty). Drives cutoff-sweep scheduling.
    pub fn earliest_lot_time(&self) -> Option<SimTime> {
        let store = self.lots.as_ref()?;
        store
            .pools
            .iter()
            .flat_map(|(_, pool)| pool.front())
            .map(|lot| lot.created_at)
            .min()
    }

    /// Discard every lot whose storage age has reached `cutoff` at the
    /// current clock (`created_at + cutoff <= clock`, so a sweep scheduled
    /// exactly at an expiry time collects it). Returns one entry per expired
    /// pair; counts, node loads and the removed-total are updated. A no-op
    /// without the lot store.
    pub fn purge_expired(&mut self, cutoff: SimDuration) -> Vec<NodePair> {
        let Some(store) = &mut self.lots else {
            return Vec::new();
        };
        let clock = store.clock;
        let n = store.pools.node_count();
        let mut expired = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let pair = NodePair::new(NodeId(i as u32), NodeId(j as u32));
                let pool = store.pools.get_mut(pair);
                while let Some(front) = pool.front() {
                    if front.created_at + cutoff <= clock {
                        pool.pop_front();
                        expired.push(pair);
                    } else {
                        break;
                    }
                }
            }
        }
        for &pair in &expired {
            *self.counts.get_mut(pair) -= 1;
            self.node_load[pair.lo().index()] -= 1;
            self.node_load[pair.hi().index()] -= 1;
            self.total_removed += 1;
        }
        expired
    }

    /// An empty inventory with a per-node buffer limit.
    pub fn with_buffer_limit(n: usize, limit: u64) -> Self {
        Inventory {
            buffer_limit: Some(limit),
            ..Inventory::new(n)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_load.len()
    }

    /// Count of stored pairs between the endpoints of `pair`.
    pub fn count(&self, pair: NodePair) -> u64 {
        *self.counts.get(pair)
    }

    /// Number of stored qubit halves at `node`.
    pub fn node_load(&self, node: NodeId) -> u64 {
        self.node_load[node.index()]
    }

    /// Total number of stored pairs.
    pub fn total_pairs(&self) -> u64 {
        self.counts.total()
    }

    /// Cumulative number of pairs ever added.
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Cumulative number of pairs ever removed.
    pub fn total_removed(&self) -> u64 {
        self.total_removed
    }

    /// The nodes that currently share at least one pair with `node`
    /// (its *entanglement neighbors*), in ascending id order.
    pub fn entangled_peers(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.node_count())
            .map(NodeId::from)
            .filter(|&other| other != node && self.count(NodePair::new(node, other)) > 0)
            .collect()
    }

    /// Iterate over all pairs with a non-zero count.
    pub fn nonzero_pairs(&self) -> Vec<(NodePair, u64)> {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (p, c))
            .collect()
    }

    /// Record the generation of one elementary pair between the endpoints of
    /// `pair` (born at the configured initial fidelity under decoherent
    /// physics).
    pub fn add_pair(&mut self, pair: NodePair) -> Result<(), InventoryError> {
        let f0 = self.lots.as_ref().map(|s| s.initial_fidelity);
        self.add_pair_with_fidelity(pair, f0)
    }

    /// Shared insertion path: `birth_fidelity` is `None` for ideal physics
    /// and the elementary/composed fidelity otherwise.
    fn add_pair_with_fidelity(
        &mut self,
        pair: NodePair,
        birth_fidelity: Option<f64>,
    ) -> Result<(), InventoryError> {
        if let Some(limit) = self.buffer_limit {
            for node in [pair.lo(), pair.hi()] {
                if self.node_load[node.index()] >= limit {
                    return Err(InventoryError::BufferFull { node: node.0 });
                }
            }
        }
        *self.counts.get_mut(pair) += 1;
        self.node_load[pair.lo().index()] += 1;
        self.node_load[pair.hi().index()] += 1;
        self.total_added += 1;
        if let Some(store) = &mut self.lots {
            store.push(pair, birth_fidelity.unwrap_or(store.initial_fidelity));
        }
        Ok(())
    }

    /// Remove `count` pairs between the endpoints of `pair` (consumption or
    /// swap input usage).
    pub fn remove_pairs(&mut self, pair: NodePair, count: u64) -> Result<(), InventoryError> {
        self.remove_pairs_with_fidelity(pair, count).map(|_| ())
    }

    /// Remove `count` pairs and report the best current (aged) fidelity
    /// among them — the fidelity actually delivered when the removal serves
    /// a consumption. `Ok(None)` without the lot store (ideal physics).
    pub fn remove_pairs_with_fidelity(
        &mut self,
        pair: NodePair,
        count: u64,
    ) -> Result<Option<f64>, InventoryError> {
        let available = self.count(pair);
        if available < count {
            return Err(InventoryError::InsufficientPairs {
                requested: count,
                available,
            });
        }
        *self.counts.get_mut(pair) -= count;
        self.node_load[pair.lo().index()] -= count;
        self.node_load[pair.hi().index()] -= count;
        self.total_removed += count;
        Ok(self
            .lots
            .as_mut()
            .filter(|_| count > 0)
            .map(|store| store.take(pair, count)))
    }

    /// Perform the swap `y ← x → y'` in count space: consume `cost_left`
    /// pairs of `[x, y]` and `cost_right` pairs of `[x, y']`, produce one
    /// pair `[y, y']`.
    ///
    /// The costs are the `⌈D⌉` factors of the distill-before-swap model
    /// described in DESIGN.md; with `D = 1` this is the textbook swap that
    /// consumes one pair on each side.
    pub fn apply_swap(
        &mut self,
        repeater: NodeId,
        left: NodeId,
        right: NodeId,
        cost_left: u64,
        cost_right: u64,
    ) -> Result<(), InventoryError> {
        assert!(
            left != right && left != repeater && right != repeater,
            "degenerate swap"
        );
        let left_pair = NodePair::new(repeater, left);
        let right_pair = NodePair::new(repeater, right);
        // Validate both removals before mutating anything so a failure leaves
        // the inventory untouched.
        if self.count(left_pair) < cost_left {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_left,
                available: self.count(left_pair),
            });
        }
        if self.count(right_pair) < cost_right {
            return Err(InventoryError::InsufficientPairs {
                requested: cost_right,
                available: self.count(right_pair),
            });
        }
        let f_left = self
            .remove_pairs_with_fidelity(left_pair, cost_left)
            .expect("checked");
        let f_right = self
            .remove_pairs_with_fidelity(right_pair, cost_right)
            .expect("checked");
        // Under decoherent physics the product pair's clock restarts now,
        // at the Werner-composed fidelity of the two (aged) inputs.
        let composed = match (f_left, f_right) {
            (Some(a), Some(b)) => Some(swap_werner_fidelity(a, b)),
            _ => None,
        };
        self.add_pair_with_fidelity(NodePair::new(left, right), composed)
    }

    /// The minimum pair count over a set of pairs (used by balance tests).
    pub fn min_count_over(&self, pairs: &[NodePair]) -> Option<u64> {
        pairs.iter().map(|&p| self.count(p)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn add_and_count() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        assert_eq!(inv.count(pair(1, 0)), 2);
        assert_eq!(inv.count(pair(2, 3)), 1);
        assert_eq!(inv.count(pair(0, 2)), 0);
        assert_eq!(inv.total_pairs(), 3);
        assert_eq!(inv.total_added(), 3);
        assert_eq!(inv.node_load(NodeId(0)), 2);
        assert_eq!(inv.node_load(NodeId(3)), 1);
        assert_eq!(inv.entangled_peers(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(inv.nonzero_pairs().len(), 2);
    }

    #[test]
    fn remove_pairs_checks_availability() {
        let mut inv = Inventory::new(3);
        inv.add_pair(pair(0, 1)).unwrap();
        assert_eq!(
            inv.remove_pairs(pair(0, 1), 2),
            Err(InventoryError::InsufficientPairs {
                requested: 2,
                available: 1
            })
        );
        inv.remove_pairs(pair(0, 1), 1).unwrap();
        assert_eq!(inv.count(pair(0, 1)), 0);
        assert_eq!(inv.total_removed(), 1);
        assert_eq!(inv.node_load(NodeId(0)), 0);
    }

    #[test]
    fn swap_moves_entanglement() {
        // A—C and C—B become A—B (Fig. 2 of the paper).
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
        assert_eq!(inv.count(NodePair::new(a, c)), 0);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        // The repeater's qubits are measured out: its load drops to zero.
        assert_eq!(inv.node_load(c), 0);
        assert_eq!(inv.node_load(a), 1);
        assert_eq!(inv.node_load(b), 1);
    }

    #[test]
    fn swap_with_distillation_cost_consumes_more() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        for _ in 0..3 {
            inv.add_pair(NodePair::new(a, c)).unwrap();
            inv.add_pair(NodePair::new(c, b)).unwrap();
        }
        inv.apply_swap(c, a, b, 2, 3).unwrap();
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.count(NodePair::new(c, b)), 0);
        assert_eq!(inv.count(NodePair::new(a, b)), 1);
    }

    #[test]
    fn swap_fails_atomically() {
        let mut inv = Inventory::new(3);
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        inv.add_pair(NodePair::new(a, c)).unwrap();
        // Missing the C—B pair entirely.
        let err = inv.apply_swap(c, a, b, 1, 1).unwrap_err();
        assert!(matches!(err, InventoryError::InsufficientPairs { .. }));
        // Nothing was consumed.
        assert_eq!(inv.count(NodePair::new(a, c)), 1);
        assert_eq!(inv.total_removed(), 0);
    }

    #[test]
    fn swap_never_increases_node_pair_total() {
        // Paper §3: "a swap never increases the number of Bell pairs held at
        // a node".
        let mut inv = Inventory::new(4);
        for _ in 0..5 {
            inv.add_pair(pair(0, 2)).unwrap();
            inv.add_pair(pair(2, 3)).unwrap();
        }
        let before: Vec<u64> = (0..4).map(|i| inv.node_load(NodeId(i))).collect();
        inv.apply_swap(NodeId(2), NodeId(0), NodeId(3), 1, 1)
            .unwrap();
        for i in 0..4 {
            assert!(inv.node_load(NodeId(i)) <= before[i as usize]);
        }
        assert_eq!(inv.total_pairs(), 9);
    }

    #[test]
    fn buffer_limit_is_enforced() {
        let mut inv = Inventory::with_buffer_limit(3, 2);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 2)).unwrap();
        // Node 0 now holds two halves; a third is refused.
        assert_eq!(
            inv.add_pair(pair(0, 1)),
            Err(InventoryError::BufferFull { node: 0 })
        );
        // Other nodes still have room.
        inv.add_pair(pair(1, 2)).unwrap();
        assert_eq!(inv.total_pairs(), 3);
    }

    #[test]
    #[should_panic]
    fn degenerate_swap_panics() {
        let mut inv = Inventory::new(3);
        let _ = inv.apply_swap(NodeId(0), NodeId(1), NodeId(1), 1, 1);
    }

    fn decoherent_inventory(n: usize, t2: f64) -> Inventory {
        let mut inv = Inventory::new(n);
        inv.enable_lot_tracking(&PhysicsModel::decoherent(t2));
        inv
    }

    #[test]
    fn lot_store_is_off_by_default_and_for_ideal_physics() {
        let mut inv = Inventory::new(3);
        assert!(!inv.tracks_lots());
        inv.enable_lot_tracking(&PhysicsModel::Ideal);
        assert!(!inv.tracks_lots());
        inv.add_pair(pair(0, 1)).unwrap();
        assert!(inv.lots_for(pair(0, 1)).is_empty());
        assert_eq!(inv.remove_pairs_with_fidelity(pair(0, 1), 1), Ok(None));
        assert_eq!(inv.earliest_lot_time(), None);
        assert!(inv.purge_expired(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn lots_mirror_counts_and_carry_timestamps() {
        let mut inv = decoherent_inventory(3, 10.0);
        inv.set_clock(SimTime::from_secs(1));
        inv.add_pair(pair(0, 1)).unwrap();
        inv.set_clock(SimTime::from_secs(3));
        inv.add_pair(pair(0, 1)).unwrap();
        let lots = inv.lots_for(pair(0, 1));
        assert_eq!(lots.len(), 2);
        assert_eq!(lots[0].created_at, SimTime::from_secs(1));
        assert_eq!(lots[1].created_at, SimTime::from_secs(3));
        assert_eq!(
            lots[0].birth_fidelity,
            PhysicsModel::DEFAULT_INITIAL_FIDELITY
        );
        assert_eq!(inv.earliest_lot_time(), Some(SimTime::from_secs(1)));
        // Aged fidelities decay with storage time: the older lot is worse.
        let fids = inv.fidelities_for(pair(0, 1));
        assert!(fids[0] < fids[1]);
        assert!(fids[1] < PhysicsModel::DEFAULT_INITIAL_FIDELITY + 1e-12);
    }

    #[test]
    fn consume_order_selects_which_lot_is_delivered() {
        for (order, expect_created) in [
            (ConsumeOrder::OldestFirst, SimTime::from_secs(0)),
            (ConsumeOrder::NewestFirst, SimTime::from_secs(5)),
        ] {
            let mut inv = Inventory::new(3);
            inv.enable_lot_tracking(&PhysicsModel::decoherent(10.0).with_consume_order(order));
            inv.set_clock(SimTime::ZERO);
            inv.add_pair(pair(0, 1)).unwrap();
            inv.set_clock(SimTime::from_secs(5));
            inv.add_pair(pair(0, 1)).unwrap();
            inv.set_clock(SimTime::from_secs(6));
            inv.remove_pairs(pair(0, 1), 1).unwrap();
            let remaining = inv.lots_for(pair(0, 1));
            assert_eq!(remaining.len(), 1);
            // The *other* lot was consumed.
            assert_ne!(remaining[0].created_at, expect_created);
        }
    }

    #[test]
    fn delivered_fidelity_is_the_best_aged_lot() {
        let mut inv = decoherent_inventory(3, 2.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.set_clock(SimTime::from_secs(4));
        inv.add_pair(pair(0, 1)).unwrap();
        // Consuming both (D = 2 style) delivers the fresh pair's fidelity,
        // regardless of pop order.
        let f = inv
            .remove_pairs_with_fidelity(pair(0, 1), 2)
            .unwrap()
            .unwrap();
        assert!((f - PhysicsModel::DEFAULT_INITIAL_FIDELITY).abs() < 1e-12);
    }

    #[test]
    fn swap_ages_inputs_and_restarts_the_product_clock() {
        let (a, c, b) = (NodeId(0), NodeId(2), NodeId(1));
        let mut inv = decoherent_inventory(3, 1.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(NodePair::new(a, c)).unwrap();
        inv.add_pair(NodePair::new(c, b)).unwrap();
        let swap_at = SimTime::from_secs(1);
        inv.set_clock(swap_at);
        inv.apply_swap(c, a, b, 1, 1).unwrap();
        let product = inv.lots_for(NodePair::new(a, b));
        assert_eq!(product.len(), 1);
        assert_eq!(product[0].created_at, swap_at, "product clock restarts");
        // Both inputs aged one coherence time before composing.
        let model = DecoherenceModel::with_coherence_time(1.0);
        let aged = model.fidelity_after(PhysicsModel::DEFAULT_INITIAL_FIDELITY, 1.0);
        let expected = swap_werner_fidelity(aged, aged);
        assert!(
            (product[0].birth_fidelity - expected).abs() < 1e-12,
            "got {}, expected {expected}",
            product[0].birth_fidelity
        );
        // Composition can only lose fidelity relative to the aged inputs.
        assert!(product[0].birth_fidelity <= aged + 1e-12);
    }

    #[test]
    fn purge_expired_discards_old_lots_and_updates_counts() {
        let mut inv = decoherent_inventory(4, 10.0);
        inv.set_clock(SimTime::ZERO);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(2, 3)).unwrap();
        inv.set_clock(SimTime::from_secs(4));
        inv.add_pair(pair(0, 1)).unwrap();

        inv.set_clock(SimTime::from_secs(5));
        let expired = inv.purge_expired(SimDuration::from_secs(5));
        // The two t = 0 lots have age exactly 5 (inclusive boundary); the
        // t = 4 lot survives.
        assert_eq!(expired.len(), 2);
        assert!(expired.contains(&pair(0, 1)) && expired.contains(&pair(2, 3)));
        assert_eq!(inv.count(pair(0, 1)), 1);
        assert_eq!(inv.count(pair(2, 3)), 0);
        assert_eq!(inv.total_removed(), 2);
        assert_eq!(inv.node_load(NodeId(2)), 0);
        assert_eq!(inv.earliest_lot_time(), Some(SimTime::from_secs(4)));
        // Nothing else is due yet.
        assert!(inv.purge_expired(SimDuration::from_secs(5)).is_empty());
    }

    #[test]
    fn serialization_keeps_the_legacy_count_space_layout() {
        let mut plain = Inventory::new(3);
        plain.add_pair(pair(0, 1)).unwrap();
        let mut tracked = decoherent_inventory(3, 1.0);
        tracked.add_pair(pair(0, 1)).unwrap();
        // The lot store never leaks into the serialized form.
        assert_eq!(plain.to_value(), tracked.to_value());
        let back = Inventory::from_value(&plain.to_value()).unwrap();
        assert_eq!(back.count(pair(0, 1)), 1);
        assert!(!back.tracks_lots());
    }

    #[test]
    fn min_count_over_pairs() {
        let mut inv = Inventory::new(4);
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(0, 1)).unwrap();
        inv.add_pair(pair(1, 2)).unwrap();
        let pairs = [pair(0, 1), pair(1, 2), pair(2, 3)];
        assert_eq!(inv.min_count_over(&pairs), Some(0));
        assert_eq!(inv.min_count_over(&pairs[..2]), Some(1));
        assert_eq!(inv.min_count_over(&[]), None);
    }
}
