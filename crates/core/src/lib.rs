//! # qnet-core — path-oblivious entanglement swapping
//!
//! This crate implements the primary contribution of *"Path-Oblivious
//! Entanglement Swapping for the Quantum Internet"* (HotNets 2025):
//!
//! * the **steady-state LP formulation** of generation / swap / consumption
//!   rates (§3), including the decoherence / distillation / QEC extensions of
//!   §3.2 and the optimisation objectives of §3.3 ([`lp_model`]),
//! * the **max-min distributed balancing protocol** of §4 ([`balancer`]),
//! * the **planned-path baselines** the paper compares against — the nested
//!   swapping cost recursion used as the swap-overhead denominator, and
//!   executable connection-oriented / connectionless protocols ([`planned`],
//!   [`nested`]),
//! * the **simulation harness** of §5: generation and swapping processes on
//!   cycle / grid generation graphs, the 35-consumer-pair sequential
//!   workload, and the swap-overhead metric ([`network`], [`workload`],
//!   [`experiment`], [`metrics`]),
//! * the §6 extensions: hybrid oblivious + minimal planning ([`hybrid`]),
//!   partial-knowledge (gossip) dissemination of buffer counts ([`gossip`]),
//!   classical-overhead accounting ([`classical`]), and the simulated
//!   classical control plane — stale per-node knowledge views refreshed by
//!   latency-delayed gossip ([`control`]).
//!
//! ## Quick start
//!
//! ```
//! use qnet_core::config::{DistillationSpec, NetworkConfig};
//! use qnet_core::experiment::{Experiment, ExperimentConfig};
//! use qnet_core::policy::PolicyId;
//! use qnet_core::workload::WorkloadSpec;
//! use qnet_topology::Topology;
//!
//! let config = ExperimentConfig {
//!     network: NetworkConfig::new(Topology::Cycle { nodes: 9 })
//!         .with_distillation(DistillationSpec::Uniform(1.0)),
//!     workload: WorkloadSpec::paper_default(9).with_requests(40),
//!     mode: PolicyId::OBLIVIOUS,
//!     seed: 7,
//!     ..ExperimentConfig::default()
//! };
//! let result = Experiment::new(config).run();
//! assert!(result.satisfied_requests > 0);
//! assert!(result.swap_overhead().unwrap() >= 1.0);
//! ```
//!
//! Swapping disciplines are plugins: see [`policy`] for the [`SwapPolicy`]
//! trait, the registry, and the built-in implementations, and [`observer`]
//! for the metrics-sink hooks the simulation world fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod classical;
pub mod config;
pub mod control;
pub mod experiment;
pub mod gossip;
pub mod hybrid;
pub mod inventory;
pub mod lp_model;
pub mod metrics;
pub mod nested;
pub mod network;
pub mod observer;
pub mod physics;
pub mod planned;
pub mod policy;
pub mod rates;
#[cfg(test)]
pub(crate) mod test_support;
pub mod trace;
pub mod workload;

pub use balancer::{BalancerPolicy, SwapCandidate};
pub use config::{DistillationSpec, NetworkConfig};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult, ProtocolMode};
pub use inventory::Inventory;
pub use lp_model::{LpObjective, SteadyStateModel};
pub use nested::nested_swap_cost;
pub use observer::{MetricsRecorder, RunObserver};
pub use physics::{ConsumeOrder, PhysicsModel};
pub use policy::{
    PolicyCtx, PolicyFamily, PolicyId, PolicyRegistry, QueueDiscipline, RequestAction, SwapPolicy,
};
pub use rates::RateMatrices;
pub use trace::TraceWriter;
pub use workload::{ConsumptionRequest, PairSelection, TrafficModel, Workload, WorkloadSpec};
