//! The discrete-event simulation model of the quantum network (§5).
//!
//! The model wires together the substrates: Bell-pair generation processes on
//! every generation-graph edge, per-node swap-scan processes running the §4
//! balancer (or one of the baseline/ablation protocols), and the sequential
//! consumption workload. It implements [`qnet_sim::World`] so the generic
//! engine drives it; [`crate::experiment`] owns the engine and extracts the
//! metrics.

use crate::balancer::BalancerPolicy;
use crate::classical::{ClassicalStats, KnowledgeModel};
use crate::config::NetworkConfig;
use crate::gossip::GossipState;
use crate::hybrid::hybrid_repair;
use crate::inventory::Inventory;
use crate::metrics::{RunMetrics, SatisfiedRequest};
use crate::planned::execute_nested_along_path;
use crate::workload::{ConsumptionRequest, Workload};
use qnet_sim::{EventQueue, PoissonProcess, SimDuration, SimRng, SimTime, World};
use qnet_topology::{bfs_path, Graph, NodeId, NodePair};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which protocol the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// The paper's path-oblivious max-min balancing protocol (§4).
    Oblivious,
    /// Oblivious balancing plus the §6 consumer-side repair over existing
    /// Bell pairs when the head request is not directly satisfiable.
    Hybrid,
    /// Planned-path, connection-oriented baseline: each request executes
    /// nested swapping along its shortest generation-graph path, in request
    /// order.
    PlannedConnectionOriented,
    /// Planned-path, connectionless baseline: every pending request may
    /// execute as soon as its path has the pairs (no head-of-line blocking),
    /// competing for pairs at shared links.
    PlannedConnectionless,
}

impl ProtocolMode {
    /// True for the two planned-path baselines.
    pub fn is_planned(&self) -> bool {
        matches!(
            self,
            ProtocolMode::PlannedConnectionOriented | ProtocolMode::PlannedConnectionless
        )
    }
}

/// Events driving the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A Bell-pair generation attempt completes on a generation edge.
    Generate {
        /// The generation edge.
        edge: NodePair,
    },
    /// A node runs its swap scan.
    SwapScan {
        /// The scanning node.
        node: NodeId,
    },
}

/// The simulation model.
#[derive(Debug)]
pub struct QuantumNetworkWorld {
    config: NetworkConfig,
    mode: ProtocolMode,
    knowledge: KnowledgeModel,
    graph: Graph,
    inventory: Inventory,
    balancer: BalancerPolicy,
    gossip: Option<GossipState>,
    pending: VecDeque<ConsumptionRequest>,
    rng: SimRng,
    generation: PoissonProcess,
    // Statistics.
    swaps_performed: u64,
    pairs_generated: u64,
    pairs_lost: u64,
    satisfied: Vec<SatisfiedRequest>,
    classical: ClassicalStats,
    last_event_time: SimTime,
}

impl QuantumNetworkWorld {
    /// Build the model and seed the event queue with the initial generation
    /// and scan events.
    pub fn new(
        config: NetworkConfig,
        workload: Workload,
        mode: ProtocolMode,
        knowledge: KnowledgeModel,
        seed: u64,
        queue: &mut EventQueue<NetEvent>,
    ) -> Self {
        let graph = config.build_graph();
        let n = graph.node_count();
        let inventory = match config.buffer_limit {
            Some(limit) => Inventory::with_buffer_limit(n, limit),
            None => Inventory::new(n),
        };
        let gossip = match knowledge {
            KnowledgeModel::Gossip { peers_per_refresh } => {
                Some(GossipState::new(n, peers_per_refresh))
            }
            KnowledgeModel::Global => None,
        };
        let rng = SimRng::new(seed).derive("network");
        let generation = PoissonProcess::new(config.generation_rate);

        let mut world = QuantumNetworkWorld {
            config,
            mode,
            knowledge,
            graph,
            inventory,
            balancer: BalancerPolicy,
            gossip,
            pending: workload.requests.into(),
            rng,
            generation,
            swaps_performed: 0,
            pairs_generated: 0,
            pairs_lost: 0,
            satisfied: Vec::new(),
            classical: ClassicalStats::new(),
            last_event_time: SimTime::ZERO,
        };
        world.seed_events(queue);
        world
    }

    fn seed_events(&mut self, queue: &mut EventQueue<NetEvent>) {
        let edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        for (a, b) in edges {
            let edge = NodePair::new(a, b);
            if let Some(at) = self.next_generation_time(SimTime::ZERO) {
                queue.schedule_at(at, NetEvent::Generate { edge });
            }
        }
        if !self.mode.is_planned() {
            let scan_interval = SimDuration::from_secs_f64(1.0 / self.config.swap_scan_rate);
            for node in self.graph.nodes() {
                // Stagger the first scans so all nodes do not fire in lockstep.
                let offset = scan_interval.mul_f64(self.rng.uniform());
                queue.schedule_at(SimTime::ZERO + offset, NetEvent::SwapScan { node });
            }
        }
    }

    fn next_generation_time(&mut self, now: SimTime) -> Option<SimTime> {
        if self.config.poisson_generation {
            self.generation.next_arrival(now, &mut self.rng)
        } else {
            Some(now + SimDuration::from_secs_f64(1.0 / self.config.generation_rate))
        }
    }

    /// True when every consumption request has been satisfied.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Current inventory (read-only).
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The generation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of swaps performed so far.
    pub fn swaps_performed(&self) -> u64 {
        self.swaps_performed
    }

    /// Shortest-path hop count between the endpoints of `pair` in the
    /// generation graph.
    fn shortest_hops(&self, pair: NodePair) -> usize {
        bfs_path(&self.graph, pair.lo(), pair.hi())
            .map(|p| p.hops())
            .unwrap_or(usize::MAX)
    }

    fn record_inventory_change(&mut self) {
        let msgs = self.knowledge.messages_per_change(self.graph.node_count());
        self.classical.record_count_updates(msgs);
    }

    /// Consume `k` pairs for the head request if possible; record it.
    fn try_satisfy(&mut self, now: SimTime) {
        loop {
            let Some(head) = self.pending.front().copied() else {
                return;
            };
            // Connectionless planned mode handles *all* pending requests, not
            // just the head; it is dealt with separately.
            if self.mode == ProtocolMode::PlannedConnectionless {
                self.try_satisfy_connectionless(now);
                return;
            }
            let k = self.config.pairs_per_distilled();
            let mut repair_swaps = 0u64;

            let directly_available = self.inventory.count(head.pair) >= k;
            if !directly_available {
                match self.mode {
                    ProtocolMode::Oblivious => return,
                    ProtocolMode::Hybrid => {
                        match hybrid_repair(&mut self.inventory, head.pair, k, k) {
                            Some(swaps) => {
                                repair_swaps = swaps;
                                self.swaps_performed += swaps;
                                for _ in 0..swaps {
                                    self.classical.record_swap_correction();
                                    self.record_inventory_change();
                                }
                            }
                            None => return,
                        }
                    }
                    ProtocolMode::PlannedConnectionOriented => {
                        let Some(path) = bfs_path(&self.graph, head.pair.lo(), head.pair.hi())
                        else {
                            // Unreachable consumer: drop the request so the
                            // simulation cannot livelock.
                            self.pending.pop_front();
                            continue;
                        };
                        match execute_nested_along_path(&mut self.inventory, &path.nodes, k, k) {
                            Some(swaps) => {
                                repair_swaps = swaps;
                                self.swaps_performed += swaps;
                                for _ in 0..swaps {
                                    self.classical.record_swap_correction();
                                    self.record_inventory_change();
                                }
                            }
                            None => return,
                        }
                    }
                    ProtocolMode::PlannedConnectionless => unreachable!("handled above"),
                }
            }

            if self.inventory.count(head.pair) < k {
                return;
            }
            self.inventory
                .remove_pairs(head.pair, k)
                .expect("checked availability");
            self.classical.record_teleportation();
            self.record_inventory_change();
            self.satisfied.push(SatisfiedRequest {
                sequence: head.sequence,
                pair: head.pair,
                satisfied_at: now,
                shortest_path_hops: self.shortest_hops(head.pair),
                repair_swaps,
            });
            self.pending.pop_front();
        }
    }

    /// Connectionless planned mode: attempt every pending request, in
    /// sequence order, satisfying any whose path currently has the pairs.
    fn try_satisfy_connectionless(&mut self, now: SimTime) {
        let k = self.config.pairs_per_distilled();
        let mut remaining = VecDeque::new();
        while let Some(req) = self.pending.pop_front() {
            let mut repair_swaps = 0u64;
            let mut ok = self.inventory.count(req.pair) >= k;
            if !ok {
                if let Some(path) = bfs_path(&self.graph, req.pair.lo(), req.pair.hi()) {
                    if let Some(swaps) =
                        execute_nested_along_path(&mut self.inventory, &path.nodes, k, k)
                    {
                        repair_swaps = swaps;
                        self.swaps_performed += swaps;
                        for _ in 0..swaps {
                            self.classical.record_swap_correction();
                            self.record_inventory_change();
                        }
                        ok = self.inventory.count(req.pair) >= k;
                    }
                }
            }
            if ok {
                self.inventory
                    .remove_pairs(req.pair, k)
                    .expect("checked availability");
                self.classical.record_teleportation();
                self.record_inventory_change();
                self.satisfied.push(SatisfiedRequest {
                    sequence: req.sequence,
                    pair: req.pair,
                    satisfied_at: now,
                    shortest_path_hops: self.shortest_hops(req.pair),
                    repair_swaps,
                });
            } else {
                remaining.push_back(req);
            }
        }
        self.pending = remaining;
    }

    fn handle_generate(&mut self, now: SimTime, edge: NodePair, queue: &mut EventQueue<NetEvent>) {
        // §3.2 loss: only a fraction 1/L of raw generations survive to be
        // stored as usable pairs.
        let survives = self.rng.chance(1.0 / self.config.loss_factor);
        if survives {
            if self.inventory.add_pair(edge).is_ok() {
                self.pairs_generated += 1;
                self.record_inventory_change();
                self.try_satisfy(now);
            } else {
                // Buffer full: the freshly generated pair is dropped.
                self.pairs_lost += 1;
            }
        } else {
            self.pairs_lost += 1;
        }
        if !self.is_done() {
            if let Some(at) = self.next_generation_time(now) {
                queue.schedule_at(at, NetEvent::Generate { edge });
            }
        }
    }

    fn handle_swap_scan(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<NetEvent>) {
        // Gossip refresh (and its classical cost) happens before the decision.
        if let Some(gossip) = &mut self.gossip {
            let msgs = gossip.refresh(node, &self.inventory);
            self.classical.record_count_updates(msgs);
        }

        let overhead = {
            let d = self.config.distillation_overhead();
            move |_: NodePair| d
        };

        let candidate = match &self.gossip {
            Some(gossip) => {
                let view = gossip.view_of(node);
                self.balancer
                    .find_preferable_swap(&self.inventory, &view, node, &overhead)
            }
            None => self.balancer.find_preferable_swap(
                &self.inventory,
                &self.inventory,
                node,
                &overhead,
            ),
        };

        if let Some(c) = candidate {
            let k = self.config.pairs_per_distilled();
            if self
                .inventory
                .apply_swap(c.repeater, c.left, c.right, k, k)
                .is_ok()
            {
                self.swaps_performed += 1;
                self.classical.record_swap_correction();
                self.record_inventory_change();
                self.try_satisfy(now);
            }
        }

        if !self.is_done() {
            let interval = SimDuration::from_secs_f64(1.0 / self.config.swap_scan_rate);
            queue.schedule_after(now, interval, NetEvent::SwapScan { node });
        }
    }

    /// Extract the run metrics (consumes nothing; can be called at any time).
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            distillation_overhead: self.config.distillation_overhead(),
            swaps_performed: self.swaps_performed,
            pairs_generated: self.pairs_generated,
            pairs_lost: self.pairs_lost,
            satisfied: self.satisfied.clone(),
            unsatisfied_requests: self.pending.len() as u64,
            classical: self.classical,
            ended_at: self.last_event_time,
            leftover_pairs: self.inventory.total_pairs(),
        }
    }
}

impl World for QuantumNetworkWorld {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        self.last_event_time = now;
        match event {
            NetEvent::Generate { edge } => self.handle_generate(now, edge, queue),
            NetEvent::SwapScan { node } => self.handle_swap_scan(now, node, queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistillationSpec;
    use crate::workload::Workload;
    use qnet_sim::{Engine, StopCondition};
    use qnet_topology::Topology;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    fn run_world(
        config: NetworkConfig,
        workload: Workload,
        mode: ProtocolMode,
        seed: u64,
        horizon_s: u64,
    ) -> QuantumNetworkWorld {
        let mut engine = {
            let mut queue = EventQueue::new();
            let world = QuantumNetworkWorld::new(
                config,
                workload,
                mode,
                KnowledgeModel::Global,
                seed,
                &mut queue,
            );
            let mut engine = Engine::new(world);
            // Move the pre-seeded events into the engine's queue.
            while let Some(ev) = queue.pop() {
                engine.queue_mut().schedule_at(ev.time, ev.event);
            }
            engine
        };
        engine.run(StopCondition::at_horizon(SimTime::from_secs(horizon_s)));
        engine.into_world()
    }

    #[test]
    fn oblivious_mode_satisfies_neighbor_requests_quickly() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 5 });
        let workload = Workload::from_pairs(vec![pair(0, 1), pair(2, 3), pair(3, 4)]);
        let world = run_world(config, workload, ProtocolMode::Oblivious, 1, 60);
        assert!(world.is_done(), "neighbor pairs are directly generated");
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 3);
        assert!(m.pairs_generated > 0);
        // Requests were satisfied in sequence order.
        let seqs: Vec<u64> = m.satisfied.iter().map(|s| s.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn oblivious_mode_serves_distant_pairs_via_swaps() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3)]);
        let world = run_world(config, workload, ProtocolMode::Oblivious, 3, 600);
        assert!(
            world.is_done(),
            "balancing must eventually reach pair (0,3)"
        );
        let m = world.metrics();
        assert!(m.swaps_performed > 0, "a 3-hop pair needs swaps");
        assert_eq!(m.satisfied[0].shortest_path_hops, 3);
        assert!(m.swap_overhead().unwrap() >= 1.0);
    }

    #[test]
    fn planned_connection_oriented_mode_executes_nested_swaps() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let world = run_world(
            config,
            workload,
            ProtocolMode::PlannedConnectionOriented,
            5,
            600,
        );
        assert!(world.is_done());
        let m = world.metrics();
        // Each 3-hop request takes exactly 2 swaps at D = 1 in planned mode.
        assert_eq!(m.swaps_performed, 4);
        assert!(m.satisfied.iter().all(|s| s.repair_swaps == 2));
    }

    #[test]
    fn connectionless_mode_ignores_head_of_line_blocking() {
        // First request is between far-apart nodes; a later neighbor request
        // should still be served promptly in connectionless mode.
        let config = NetworkConfig::new(Topology::Cycle { nodes: 8 });
        let workload = Workload::from_pairs(vec![pair(0, 4), pair(5, 6)]);
        let world = run_world(
            config,
            workload,
            ProtocolMode::PlannedConnectionless,
            7,
            600,
        );
        let m = world.metrics();
        assert!(m.satisfied.iter().any(|s| s.pair == pair(5, 6)));
        // In connectionless mode satisfaction order need not follow sequence
        // order.
        if m.satisfied.len() == 2 {
            assert!(m.satisfied[0].pair == pair(5, 6) || m.satisfied[0].sequence == 0);
        }
    }

    #[test]
    fn hybrid_mode_repairs_from_seeded_pairs() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 9 });
        let workload = Workload::from_pairs(vec![pair(0, 4)]);
        let world = run_world(config, workload, ProtocolMode::Hybrid, 11, 600);
        assert!(world.is_done());
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 1);
    }

    #[test]
    fn distillation_overhead_increases_work() {
        let workload = || Workload::from_pairs(vec![pair(0, 2), pair(1, 3)]);
        let base = NetworkConfig::new(Topology::Cycle { nodes: 6 });
        let d1 = run_world(base, workload(), ProtocolMode::Oblivious, 13, 900);
        let d2 = run_world(
            base.with_distillation(DistillationSpec::Uniform(2.0)),
            workload(),
            ProtocolMode::Oblivious,
            13,
            900,
        );
        let m1 = d1.metrics();
        let m2 = d2.metrics();
        assert!(!m1.satisfied.is_empty());
        assert!(!m2.satisfied.is_empty());
        // More raw pairs must be generated per satisfied request when D = 2.
        let per1 = m1.pairs_generated as f64 / m1.satisfied.len() as f64;
        let per2 = m2.pairs_generated as f64 / m2.satisfied.len() as f64;
        assert!(
            per2 > per1,
            "D=2 should consume more raw pairs ({per1} vs {per2})"
        );
    }

    #[test]
    fn buffer_limit_causes_losses() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 5 }).with_buffer_limit(2);
        // An unsatisfiable far request keeps the simulation generating.
        let workload = Workload::from_pairs(vec![pair(0, 2)]);
        let world = run_world(config, workload, ProtocolMode::Oblivious, 17, 120);
        let m = world.metrics();
        assert!(m.pairs_lost > 0, "full buffers must drop pairs");
    }

    #[test]
    fn gossip_knowledge_still_makes_progress() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3)]);
        let mut queue = EventQueue::new();
        let world = QuantumNetworkWorld::new(
            config,
            workload,
            ProtocolMode::Oblivious,
            KnowledgeModel::Gossip {
                peers_per_refresh: 2,
            },
            19,
            &mut queue,
        );
        let mut engine = Engine::new(world);
        while let Some(ev) = queue.pop() {
            engine.queue_mut().schedule_at(ev.time, ev.event);
        }
        engine.run(StopCondition::at_horizon(SimTime::from_secs(600)));
        let world = engine.into_world();
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 1, "gossip view is stale but sufficient");
        assert!(
            m.classical.count_update_messages > 0,
            "gossip pulls cost messages"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 6 });
        let workload = Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let a = run_world(config, workload.clone(), ProtocolMode::Oblivious, 23, 300);
        let b = run_world(config, workload.clone(), ProtocolMode::Oblivious, 23, 300);
        let c = run_world(config, workload, ProtocolMode::Oblivious, 24, 300);
        assert_eq!(a.metrics(), b.metrics());
        assert_ne!(a.metrics(), c.metrics());
    }
}
