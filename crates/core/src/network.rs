//! The discrete-event simulation substrate of the quantum network (§5).
//!
//! The model wires together the physical substrates — Bell-pair generation
//! processes on every generation-graph edge, the inventory, the knowledge
//! (gossip) layer and the consumption workload — and delegates every
//! protocol *decision* to a pluggable [`SwapPolicy`]: which swap a scanning
//! node performs, how a blocked request is handled, and in which order the
//! request queue drains. Statistics are not baked in either: the world fires
//! [`crate::observer::RunObserver`] hooks, and the standard
//! [`MetricsRecorder`] observer folds them into [`RunMetrics`].
//!
//! Requests are **injected over simulated time**: every
//! [`ConsumptionRequest`] of the workload is scheduled as a
//! [`NetEvent::RequestArrival`] at its arrival time, so open-loop traffic
//! models interleave arrivals with generation and swap scans, and the
//! pending queue a policy sees can grow mid-run. Closed-loop batches
//! degenerate to all arrivals at `t = 0`, reproducing the paper's
//! sequential semantics (and the pre-traffic-model results) exactly. The
//! run ends when the horizon is reached or when the queue is drained *and*
//! no arrival is outstanding.
//!
//! It implements [`qnet_sim::World`] so the generic engine drives it;
//! [`crate::experiment`] owns the engine, resolves a policy from the
//! registry and extracts the metrics.

use crate::balancer::SwapCandidate;
use crate::classical::KnowledgeModel;
use crate::config::NetworkConfig;
use crate::control::{
    self, ControlPlane, DecisionTelemetry, PropagationDelays, StaleControl, PROCESSING_DELAY_S,
};
use crate::gossip::GossipState;
use crate::inventory::Inventory;
use crate::metrics::{RunMetrics, SatisfiedRequest};
use crate::observer::{MetricsRecorder, RunObserver, SwapKind};
use crate::policy::{PolicyCtx, QueueDiscipline, RequestAction, SwapPolicy};
use crate::workload::{ArrivalStream, ConsumptionRequest, Workload};
use qnet_sim::{EventQueue, PoissonProcess, SimDuration, SimRng, SimTime, World};
use qnet_topology::{EdgeIndex, Graph, NodeId, NodePair, PathOracle};
use std::collections::{BTreeMap, VecDeque};

pub use crate::policy::ProtocolMode;

/// Events driving the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A Bell-pair generation attempt completes on a generation edge.
    Generate {
        /// The generation edge.
        edge: NodePair,
    },
    /// A node runs its swap scan.
    SwapScan {
        /// The scanning node.
        node: NodeId,
    },
    /// A consumption request enters the system.
    RequestArrival {
        /// The arriving request.
        request: ConsumptionRequest,
    },
    /// Discard stored pairs that outlived the physics cutoff (scheduled only
    /// under decoherent physics with a finite cutoff; never fires under the
    /// default ideal physics, keeping those runs byte-identical).
    CutoffSweep,
    /// Pump the next batch of lazily generated arrivals out of the world's
    /// [`ArrivalStream`]. Scheduled at the last arrival time of the previous
    /// batch (with a later tie-break seq, so it pops after that arrival) and
    /// handled without touching the clocked world state, so lazily driven
    /// runs match eagerly scheduled ones.
    ArrivalWake,
    /// A node runs one gossip exchange: it pulls `peers_per_refresh`
    /// rotating peers' count rows, which arrive after their classical
    /// propagation delay. Scheduled only under the stale control plane
    /// (gossip knowledge without `QNET_KNOWLEDGE=truth`); never fires under
    /// `Global` knowledge, keeping those runs byte-identical.
    GossipExchange {
        /// The exchanging (pulling) node.
        node: NodeId,
    },
    /// Execute a balancing swap proposed on a node's (possibly stale)
    /// believed counts. Scheduled one classical coordination round-trip
    /// after the scan that proposed it; by the time it fires, ground truth
    /// may have drifted and the swap can *miss*. Stale control plane only.
    SwapExecute {
        /// The proposed swap.
        candidate: SwapCandidate,
    },
}

/// How many lazily generated arrivals are scheduled per
/// [`NetEvent::ArrivalWake`]: large enough to amortise the wake overhead,
/// small enough that the event queue never holds more than a sliver of a
/// million-request horizon.
pub const ARRIVAL_BATCH: usize = 1024;

/// The pending-request store.
///
/// `Fifo` is the exact arrival-order deque: head-of-line draining and
/// active-hook any-order draining walk it directly, because the precise
/// offer sequence (including offers to blocked requests) is observable
/// through [`SwapPolicy::on_blocked_request`]. `Indexed` keys requests by
/// consumer pair and is used only when the policy declares its blocked
/// hook inert ([`SwapPolicy::blocked_hook_is_inert`]) under any-order
/// draining: re-offering a blocked request is then provably a no-op, so a
/// drain can jump straight to satisfiable pairs instead of re-walking
/// every blocked request — O(pairs) per satisfaction instead of
/// O(pending) per event.
#[derive(Debug)]
enum PendingQueue {
    Fifo(VecDeque<ConsumptionRequest>),
    Indexed {
        by_pair: BTreeMap<NodePair, VecDeque<ConsumptionRequest>>,
        len: usize,
    },
}

impl PendingQueue {
    fn for_policy(policy: &dyn SwapPolicy) -> Self {
        if policy.queue_discipline() == QueueDiscipline::AnyOrder && policy.blocked_hook_is_inert()
        {
            PendingQueue::Indexed {
                by_pair: BTreeMap::new(),
                len: 0,
            }
        } else {
            PendingQueue::Fifo(VecDeque::new())
        }
    }

    fn len(&self) -> usize {
        match self {
            PendingQueue::Fifo(q) => q.len(),
            PendingQueue::Indexed { len, .. } => *len,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_back(&mut self, request: ConsumptionRequest) {
        match self {
            PendingQueue::Fifo(q) => q.push_back(request),
            PendingQueue::Indexed { by_pair, len } => {
                by_pair.entry(request.pair).or_default().push_back(request);
                *len += 1;
            }
        }
    }

    /// The FIFO deque (head-of-line and exact any-order paths only).
    fn fifo(&mut self) -> &mut VecDeque<ConsumptionRequest> {
        match self {
            PendingQueue::Fifo(q) => q,
            PendingQueue::Indexed { .. } => {
                unreachable!("indexed store only drives inert any-order draining")
            }
        }
    }
}

/// The simulation substrate: policy-agnostic world state plus the attached
/// policy and observers.
#[derive(Debug)]
pub struct QuantumNetworkWorld {
    config: NetworkConfig,
    policy: Box<dyn SwapPolicy>,
    knowledge: KnowledgeModel,
    graph: Graph,
    inventory: Inventory,
    /// The classical control plane: `None` under `Global` knowledge
    /// (instantaneous truth), the legacy synchronous gossip or the stale
    /// event-driven plane otherwise (see [`crate::control`]).
    control: Option<ControlPlane>,
    /// Scratch the policy fills with row ages / misses during stale
    /// decisions; drained into observer hooks after every policy call.
    telemetry: DecisionTelemetry,
    pending: PendingQueue,
    /// Requests scheduled as arrival events but not yet delivered.
    arrivals_outstanding: usize,
    /// Lazily generated arrivals not yet scheduled (open-loop streaming
    /// runs). `None` once exhausted — and always `None` for eager runs.
    arrival_stream: Option<ArrivalStream>,
    /// Cached [`SwapPolicy::blocked_hook_is_inert`] (the policy is behind a
    /// vtable; this sits on the per-blocked-offer hot path).
    inert_blocked_hook: bool,
    /// Memoised shortest-path rows over the immutable generation graph:
    /// `consume` needs the hop count of every satisfied request, and policy
    /// path caches need whole paths — one BFS row per touched source
    /// answers all of them (all-pairs precomputed on small graphs).
    oracle: PathOracle,
    /// Dense edge ids over the generation graph (frozen at construction).
    edge_index: EdgeIndex,
    /// Per-edge generation rates addressed by edge id: the fabric profile's
    /// rate or the homogeneous configured rate. Replaces a per-generation
    /// `BTreeMap` profile lookup on the hot path.
    edge_rates: Vec<f64>,
    rng: SimRng,
    recorder: MetricsRecorder,
    extra_observers: Vec<Box<dyn RunObserver>>,
    /// Storage-age cutoff of the physics model, if any.
    cutoff: Option<SimDuration>,
    /// End-to-end fidelity floor of the physics model, if any.
    fidelity_floor: Option<f64>,
    /// Whether a [`NetEvent::CutoffSweep`] is currently scheduled.
    sweep_pending: bool,
}

impl QuantumNetworkWorld {
    /// Build the model and seed the event queue with the initial generation
    /// and scan events.
    pub fn new(
        config: NetworkConfig,
        workload: Workload,
        policy: Box<dyn SwapPolicy>,
        knowledge: KnowledgeModel,
        seed: u64,
        queue: &mut EventQueue<NetEvent>,
    ) -> Self {
        let mut world = Self::without_arrivals(config, policy, knowledge, seed, queue);
        world.arrivals_outstanding = workload.requests.len();
        // Requests are injected over simulated time: closed-loop batches all
        // arrive at t = 0 (before the first generation event), open-loop
        // traffic interleaves with the physical processes.
        for request in workload.requests {
            queue.schedule_at(request.arrival_time, NetEvent::RequestArrival { request });
        }
        world
    }

    /// Build the model with a lazy [`ArrivalStream`] instead of a
    /// materialised [`Workload`]: only [`ARRIVAL_BATCH`] arrivals are
    /// scheduled at a time, with a self-rescheduling [`NetEvent::ArrivalWake`]
    /// pumping the next batch, so memory stays flat however long the
    /// open-loop horizon is. The delivered arrival sequence is identical to
    /// the eager path (both draw from the same generator).
    pub fn with_arrival_stream(
        config: NetworkConfig,
        stream: ArrivalStream,
        policy: Box<dyn SwapPolicy>,
        knowledge: KnowledgeModel,
        seed: u64,
        queue: &mut EventQueue<NetEvent>,
    ) -> Self {
        let mut world = Self::without_arrivals(config, policy, knowledge, seed, queue);
        world.arrival_stream = Some(stream);
        world.pump_arrivals(queue);
        world
    }

    fn without_arrivals(
        config: NetworkConfig,
        policy: Box<dyn SwapPolicy>,
        knowledge: KnowledgeModel,
        seed: u64,
        queue: &mut EventQueue<NetEvent>,
    ) -> Self {
        let graph = config.build_graph();
        let n = graph.node_count();
        let mut inventory = match config.buffer_limit {
            Some(limit) => Inventory::with_buffer_limit(n, limit),
            None => Inventory::new(n),
        };
        // Decoherent physics: pairs become age/fidelity-tracked lots. Under
        // the default ideal physics this is a no-op and every code path
        // below behaves exactly as the pre-physics stack.
        inventory.enable_lot_tracking(&config.physics);
        // A link fabric attaches hardware-calibrated per-edge profiles:
        // elementary pairs are born at the edge's fidelity and decay with
        // the edge's memory, instead of the global physics numbers.
        let fabric = config.build_fabric(&graph);
        if let Some(fabric) = &fabric {
            inventory.set_link_physics(
                fabric
                    .iter()
                    .map(|(pair, prof)| (pair, prof.initial_fidelity, prof.coherence_time_s)),
            );
        }
        let rng = SimRng::new(seed).derive("network");
        let pending = PendingQueue::for_policy(policy.as_ref());
        let inert_blocked_hook = policy.blocked_hook_is_inert();
        let oracle = PathOracle::new(&graph);
        let control = match knowledge {
            KnowledgeModel::Global => None,
            KnowledgeModel::Gossip {
                peers_per_refresh,
                refresh_period_s,
            } => Some(if control::stale_backend_from_env() {
                let delays = PropagationDelays::new(&graph, fabric.as_ref(), &oracle);
                // Period 0.0 couples exchanges to the swap-scan cadence,
                // the rate the legacy synchronous backend refreshed at.
                let period = if refresh_period_s > 0.0 {
                    refresh_period_s
                } else {
                    1.0 / config.swap_scan_rate
                };
                ControlPlane::Stale(StaleControl::new(n, peers_per_refresh, period, delays))
            } else {
                ControlPlane::Legacy(GossipState::new(n, peers_per_refresh))
            }),
        };
        let edge_index = EdgeIndex::new(&graph);
        let edge_rates = edge_index.table(|pair| {
            fabric
                .as_ref()
                .and_then(|f| f.profile(pair))
                .map(|p| p.generation_rate_hz)
                .unwrap_or(config.generation_rate)
        });

        let mut world = QuantumNetworkWorld {
            config,
            policy,
            knowledge,
            graph,
            inventory,
            control,
            telemetry: DecisionTelemetry::default(),
            pending,
            arrivals_outstanding: 0,
            arrival_stream: None,
            inert_blocked_hook,
            oracle,
            edge_index,
            edge_rates,
            rng,
            recorder: MetricsRecorder::new(),
            extra_observers: Vec::new(),
            cutoff: config.physics.cutoff_s().map(SimDuration::from_secs_f64),
            fidelity_floor: config.physics.fidelity_floor(),
            sweep_pending: false,
        };
        world.seed_events(queue);
        world
    }

    /// Schedule up to [`ARRIVAL_BATCH`] requests from the arrival stream,
    /// plus one [`NetEvent::ArrivalWake`] at the last scheduled arrival time
    /// when the stream has more to give. The wake is scheduled after its
    /// co-timed arrival (later seq), so the next batch is pumped exactly
    /// when the queue would otherwise run out of arrivals.
    fn pump_arrivals(&mut self, queue: &mut EventQueue<NetEvent>) {
        let Some(stream) = self.arrival_stream.as_mut() else {
            return;
        };
        let mut last_at = None;
        for _ in 0..ARRIVAL_BATCH {
            match stream.next_request() {
                Some(request) => {
                    self.arrivals_outstanding += 1;
                    last_at = Some(request.arrival_time);
                    queue.schedule_at(request.arrival_time, NetEvent::RequestArrival { request });
                }
                None => {
                    self.arrival_stream = None;
                    return;
                }
            }
        }
        if let Some(at) = last_at {
            queue.schedule_at(at, NetEvent::ArrivalWake);
        }
    }

    /// Attach an additional [`RunObserver`]; hooks fire in attachment order
    /// after the built-in metrics recorder.
    pub fn add_observer(&mut self, observer: Box<dyn RunObserver>) {
        self.extra_observers.push(observer);
    }

    /// Detach and return the extra observers (for post-run inspection).
    pub fn take_observers(&mut self) -> Vec<Box<dyn RunObserver>> {
        std::mem::take(&mut self.extra_observers)
    }

    /// Fire an observer hook on the metrics recorder and every extra
    /// observer, in order.
    fn notify(&mut self, mut hook: impl FnMut(&mut dyn RunObserver)) {
        hook(&mut self.recorder);
        for o in &mut self.extra_observers {
            hook(o.as_mut());
        }
    }

    fn seed_events(&mut self, queue: &mut EventQueue<NetEvent>) {
        let edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        for (a, b) in edges {
            let edge = NodePair::new(a, b);
            if let Some(at) = self.next_generation_time(SimTime::ZERO, edge) {
                queue.schedule_at(at, NetEvent::Generate { edge });
            }
        }
        if self.policy.schedules_swap_scans() {
            let scan_interval = SimDuration::from_secs_f64(1.0 / self.config.swap_scan_rate);
            for node in self.graph.nodes() {
                // Stagger the first scans so all nodes do not fire in lockstep.
                let offset = scan_interval.mul_f64(self.rng.uniform());
                queue.schedule_at(SimTime::ZERO + offset, NetEvent::SwapScan { node });
            }
        }
        // Stale gossip exchanges stagger deterministically (period · i/n)
        // with no RNG draws, so adding the control plane never perturbs the
        // draw sequence of the physical processes above.
        if let Some(ControlPlane::Stale(ctl)) = &self.control {
            let period = ctl.period();
            let n = self.graph.node_count();
            for (i, node) in self.graph.nodes().enumerate() {
                let offset = period.mul_f64(i as f64 / n as f64);
                queue.schedule_at(SimTime::ZERO + offset, NetEvent::GossipExchange { node });
            }
        }
    }

    /// Generation rate of `edge`: its fabric profile's rate when a link
    /// fabric is attached, the homogeneous configured rate otherwise.
    /// Served from the dense per-edge table (binary search over the sorted
    /// edge list — a dozen probes of one contiguous array, not a tree walk).
    fn generation_rate(&self, edge: NodePair) -> f64 {
        match self.edge_index.edge_id(edge) {
            Some(id) => self.edge_rates[id as usize],
            None => self.config.generation_rate,
        }
    }

    fn next_generation_time(&mut self, now: SimTime, edge: NodePair) -> Option<SimTime> {
        let rate = self.generation_rate(edge);
        if self.config.poisson_generation {
            // `PoissonProcess` is memoryless: one exponential draw per call,
            // so constructing it per edge keeps the RNG sequence identical
            // to the homogeneous path whenever the rates coincide.
            PoissonProcess::new(rate).next_arrival(now, &mut self.rng)
        } else {
            Some(now + SimDuration::from_secs_f64(1.0 / rate))
        }
    }

    /// True when every injected consumption request has been satisfied (or
    /// dropped) and no arrival is still outstanding.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty() && self.arrivals_outstanding == 0 && self.arrival_stream.is_none()
    }

    /// Current inventory (read-only).
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The generation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The attached policy.
    pub fn policy(&self) -> &dyn SwapPolicy {
        self.policy.as_ref()
    }

    /// Number of swaps performed so far.
    pub fn swaps_performed(&self) -> u64 {
        self.recorder.swaps_performed()
    }

    /// Shortest-path hop count between the endpoints of `pair` in the
    /// generation graph (memoised per source by the oracle; the graph never
    /// changes after construction).
    fn shortest_hops(&self, pair: NodePair) -> usize {
        self.oracle
            .hops(&self.graph, pair.lo(), pair.hi())
            .unwrap_or(usize::MAX)
    }

    fn record_inventory_change(&mut self, now: SimTime) {
        let msgs = self.knowledge.messages_per_change(self.graph.node_count());
        self.notify(|o| o.on_count_updates(now, msgs));
    }

    /// Hand the policy a decision context over the split-borrowed substrate.
    fn blocked_request_action(
        &mut self,
        now: SimTime,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        let action = {
            let QuantumNetworkWorld {
                policy,
                config,
                graph,
                inventory,
                control,
                telemetry,
                oracle,
                ..
            } = self;
            let mut ctx = PolicyCtx {
                config,
                graph,
                inventory,
                control: control.as_ref(),
                now,
                telemetry,
                oracle,
            };
            policy.on_blocked_request(&mut ctx, request)
        };
        self.drain_decision_telemetry(now);
        action
    }

    /// Forward whatever row ages / misses the last policy call recorded to
    /// the observers. A no-op (single branch) under global knowledge, where
    /// the telemetry pad is never written.
    fn drain_decision_telemetry(&mut self, now: SimTime) {
        if self.telemetry.is_empty() {
            return;
        }
        for age_s in self.telemetry.take_ages() {
            self.notify(|o| o.on_stale_decision(now, age_s));
        }
        for pair in self.telemetry.take_misses() {
            self.notify(|o| o.on_swap_missed(now, pair));
        }
    }

    /// Account `swaps` repair swaps performed inside a policy hook.
    fn account_repair_swaps(&mut self, now: SimTime, swaps: u64) {
        for _ in 0..swaps {
            self.notify(|o| o.on_swap(now, SwapKind::Repair));
            self.notify(|o| o.on_swap_correction(now));
            self.record_inventory_change(now);
        }
    }

    /// Consume `k` pairs for `request` and record the outcome: a
    /// satisfaction, or — when the delivered fidelity falls below the
    /// physics model's floor — a fidelity rejection (the pairs are spent
    /// either way, exactly as a real teleportation would spend them).
    fn consume(&mut self, now: SimTime, request: ConsumptionRequest, k: u64, repair_swaps: u64) {
        let fidelity = self
            .inventory
            .remove_pairs_with_fidelity(request.pair, k)
            .expect("checked availability");
        self.notify(|o| o.on_teleportation(now));
        self.record_inventory_change(now);
        if let (Some(floor), Some(f)) = (self.fidelity_floor, fidelity) {
            if f < floor {
                self.notify(|o| o.on_fidelity_rejected(now, &request, f));
                return;
            }
        }
        let satisfied = SatisfiedRequest {
            sequence: request.sequence,
            pair: request.pair,
            arrival_time: request.arrival_time,
            satisfied_at: now,
            shortest_path_hops: self.shortest_hops(request.pair),
            repair_swaps,
            fidelity,
        };
        self.notify(|o| o.on_request_satisfied(now, &satisfied));
    }

    /// Drain the request queue under the policy's discipline.
    fn try_satisfy(&mut self, now: SimTime) {
        match self.policy.queue_discipline() {
            QueueDiscipline::HeadOfLine => self.try_satisfy_head_of_line(now),
            QueueDiscipline::AnyOrder => match &self.pending {
                PendingQueue::Indexed { .. } => self.try_satisfy_any_order_indexed(now),
                PendingQueue::Fifo(_) => self.try_satisfy_any_order(now),
            },
        }
    }

    /// Head-of-line draining: only the oldest pending request may proceed.
    fn try_satisfy_head_of_line(&mut self, now: SimTime) {
        loop {
            let Some(head) = self.pending.fifo().front().copied() else {
                return;
            };
            let k = self.config.pairs_per_distilled();
            let mut repair_swaps = 0u64;

            if self.inventory.count(head.pair) < k {
                // An inert hook would return `Wait` without side effects:
                // skip the vtable call and the context construction.
                if self.inert_blocked_hook {
                    return;
                }
                match self.blocked_request_action(now, &head) {
                    RequestAction::Wait => return,
                    RequestAction::Drop => {
                        self.pending.fifo().pop_front();
                        self.notify(|o| o.on_request_dropped(now, &head));
                        continue;
                    }
                    RequestAction::Repaired(swaps) => {
                        repair_swaps = swaps;
                        self.account_repair_swaps(now, swaps);
                    }
                }
            }

            if self.inventory.count(head.pair) < k {
                return;
            }
            self.consume(now, head, k, repair_swaps);
            self.pending.fifo().pop_front();
        }
    }

    /// Any-order draining through the per-pair index (inert-hook policies
    /// only): repeatedly satisfy the lowest-sequence request among pairs
    /// whose inventory covers `k`. Because consumption only ever removes
    /// inventory, a blocked request can never become satisfiable during the
    /// drain, so this greedy min-sequence walk consumes exactly the
    /// requests — in exactly the order — the full-queue walk of
    /// [`Self::try_satisfy_any_order`] would, while never touching blocked
    /// requests (whose offers would be inert no-ops).
    fn try_satisfy_any_order_indexed(&mut self, now: SimTime) {
        let k = self.config.pairs_per_distilled();
        loop {
            let PendingQueue::Indexed { by_pair, len } = &mut self.pending else {
                return;
            };
            let mut best: Option<NodePair> = None;
            let mut best_seq = u64::MAX;
            for (&pair, queue) in by_pair.iter() {
                let Some(front) = queue.front() else {
                    continue;
                };
                if front.sequence < best_seq && self.inventory.count(pair) >= k {
                    best_seq = front.sequence;
                    best = Some(pair);
                }
            }
            let Some(pair) = best else {
                return;
            };
            let queue = by_pair.get_mut(&pair).expect("selected above");
            let req = queue.pop_front().expect("non-empty");
            if queue.is_empty() {
                by_pair.remove(&pair);
            }
            *len -= 1;
            self.consume(now, req, k, 0);
        }
    }

    /// Targeted drain after an event that increased exactly one pair's
    /// inventory. On the indexed store this skips the walk over every
    /// pending pair: the drain loop maintains the invariant that every
    /// pending pair's count is below `k` when it returns, and a generation
    /// or swap raises a single pair's count, so only *that* pair can have
    /// become satisfiable — and its queue drains in FIFO order, which is
    /// exactly the min-sequence order the full walk would pick while it is
    /// the only satisfiable pair. O(drained) instead of O(pending pairs)
    /// per generation/swap event. Falls back to the policy's full
    /// discipline on the FIFO store (whose offer sequence is observable).
    fn try_satisfy_after_gain(&mut self, now: SimTime, pair: NodePair) {
        if !matches!(self.pending, PendingQueue::Indexed { .. }) {
            return self.try_satisfy(now);
        }
        let k = self.config.pairs_per_distilled();
        while self.inventory.count(pair) >= k {
            let PendingQueue::Indexed { by_pair, len } = &mut self.pending else {
                unreachable!("checked above; the store variant never changes");
            };
            let Some(queue) = by_pair.get_mut(&pair) else {
                return;
            };
            let req = queue.pop_front().expect("indexed queues are non-empty");
            if queue.is_empty() {
                by_pair.remove(&pair);
            }
            *len -= 1;
            self.consume(now, req, k, 0);
        }
    }

    /// Any-order draining: offer every pending request, in sequence order,
    /// satisfying any whose pairs are (or can be made) available.
    fn try_satisfy_any_order(&mut self, now: SimTime) {
        let k = self.config.pairs_per_distilled();
        let mut remaining = VecDeque::new();
        while let Some(req) = self.pending.fifo().pop_front() {
            let mut repair_swaps = 0u64;
            let mut ok = self.inventory.count(req.pair) >= k;
            if !ok {
                match self.blocked_request_action(now, &req) {
                    RequestAction::Wait => {}
                    RequestAction::Drop => {
                        self.notify(|o| o.on_request_dropped(now, &req));
                        continue;
                    }
                    RequestAction::Repaired(swaps) => {
                        repair_swaps = swaps;
                        self.account_repair_swaps(now, swaps);
                        ok = self.inventory.count(req.pair) >= k;
                    }
                }
            }
            if ok {
                self.consume(now, req, k, repair_swaps);
            } else {
                remaining.push_back(req);
            }
        }
        self.pending = PendingQueue::Fifo(remaining);
    }

    /// Make sure a cutoff sweep is scheduled whenever tracked pairs exist.
    /// The sweep chain is self-sustaining (each sweep schedules the next
    /// from the oldest surviving lot); this re-arms it after it dies out.
    fn arm_cutoff_sweep(&mut self, now: SimTime, queue: &mut EventQueue<NetEvent>) {
        let Some(cutoff) = self.cutoff else {
            return;
        };
        if !self.sweep_pending {
            queue.schedule_at(now + cutoff, NetEvent::CutoffSweep);
            self.sweep_pending = true;
        }
    }

    /// Discard every stored pair whose age reached the cutoff, then chain
    /// the next sweep to the oldest surviving lot's expiry time.
    fn handle_cutoff_sweep(&mut self, now: SimTime, queue: &mut EventQueue<NetEvent>) {
        self.sweep_pending = false;
        let cutoff = self.cutoff.expect("sweeps only scheduled with a cutoff");
        let expired = self.inventory.purge_expired(cutoff);
        for pair in expired {
            self.notify(|o| o.on_pair_expired(now, pair));
            // An expiry changes buffer counts like any other mutation, so
            // the knowledge layer pays for disseminating it.
            self.record_inventory_change(now);
        }
        if !self.is_done() {
            if let Some(oldest) = self.inventory.earliest_lot_time() {
                // Survivors expire strictly after `now` (the purge was
                // inclusive), so the chain always advances.
                queue.schedule_at(oldest + cutoff, NetEvent::CutoffSweep);
                self.sweep_pending = true;
            }
        }
    }

    fn handle_generate(&mut self, now: SimTime, edge: NodePair, queue: &mut EventQueue<NetEvent>) {
        // §3.2 loss: only a fraction 1/L of raw generations survive to be
        // stored as usable pairs.
        let survives = self.rng.chance(1.0 / self.config.loss_factor);
        if survives && self.inventory.add_pair(edge).is_ok() {
            self.notify(|o| o.on_pair_generated(now, edge));
            self.record_inventory_change(now);
            self.arm_cutoff_sweep(now, queue);
            // Only `edge` gained inventory: the drain can target it.
            self.try_satisfy_after_gain(now, edge);
        } else {
            // Lost before storage, or dropped on a full buffer.
            self.notify(|o| o.on_pair_lost(now, edge));
        }
        if !self.is_done() {
            if let Some(at) = self.next_generation_time(now, edge) {
                queue.schedule_at(at, NetEvent::Generate { edge });
            }
        }
    }

    fn handle_swap_scan(&mut self, now: SimTime, node: NodeId, queue: &mut EventQueue<NetEvent>) {
        // Legacy synchronous gossip: knowledge refresh (and its classical
        // cost) happens right before the policy's decision. The stale plane
        // refreshes via its own [`NetEvent::GossipExchange`] events instead.
        if let Some(ControlPlane::Legacy(gossip)) = &mut self.control {
            let msgs = gossip.refresh(node, &self.inventory);
            self.notify(|o| o.on_count_updates(now, msgs));
        }

        let candidate = {
            let QuantumNetworkWorld {
                policy,
                config,
                graph,
                inventory,
                control,
                telemetry,
                oracle,
                ..
            } = self;
            let mut ctx = PolicyCtx {
                config,
                graph,
                inventory,
                control: control.as_ref(),
                now,
                telemetry,
                oracle,
            };
            policy.on_swap_scan(&mut ctx, node)
        };
        self.drain_decision_telemetry(now);

        if let Some(c) = candidate {
            match &self.control {
                // Stale plane: the repeater must coordinate the swap with
                // both remote beneficiaries over the classical network, so
                // execution lands one round-trip later — against a truth
                // that may have drifted from the counts the scan believed.
                Some(ControlPlane::Stale(ctl)) => {
                    let delays = ctl.delays();
                    let worst = delays
                        .delay_s(NodePair::new(c.repeater, c.left))
                        .max(delays.delay_s(NodePair::new(c.repeater, c.right)));
                    let exec_delay = SimDuration::from_secs_f64(2.0 * worst + PROCESSING_DELAY_S);
                    queue.schedule_at(now + exec_delay, NetEvent::SwapExecute { candidate: c });
                }
                _ => {
                    self.execute_balancing_swap(now, c, queue);
                }
            }
        }

        if !self.is_done() {
            let interval = SimDuration::from_secs_f64(1.0 / self.config.swap_scan_rate);
            queue.schedule_after(now, interval, NetEvent::SwapScan { node });
        }
    }

    /// Apply a balancing-swap candidate against ground truth and account
    /// it. Returns `false` when the inventory can no longer cover the swap
    /// (only possible when the candidate was decided on stale counts).
    fn execute_balancing_swap(
        &mut self,
        now: SimTime,
        c: SwapCandidate,
        queue: &mut EventQueue<NetEvent>,
    ) -> bool {
        let k = self.config.pairs_per_distilled();
        if self
            .inventory
            .apply_swap(c.repeater, c.left, c.right, k, k)
            .is_ok()
        {
            self.notify(|o| o.on_swap(now, SwapKind::Balancing));
            self.notify(|o| o.on_swap_correction(now));
            self.record_inventory_change(now);
            self.arm_cutoff_sweep(now, queue);
            // The swap product is the only pair that gained inventory.
            self.try_satisfy_after_gain(now, NodePair::new(c.left, c.right));
            true
        } else {
            false
        }
    }

    /// A deferred (stale-decided) swap reaches its execution time: apply it
    /// against ground truth, or record a miss when truth has drifted away
    /// from the counts the proposing scan believed.
    fn handle_swap_execute(
        &mut self,
        now: SimTime,
        c: SwapCandidate,
        queue: &mut EventQueue<NetEvent>,
    ) {
        if !self.execute_balancing_swap(now, c, queue) {
            self.notify(|o| o.on_swap_missed(now, NodePair::new(c.left, c.right)));
        }
    }

    /// A gossip exchange fires under the stale control plane: pull the next
    /// rotating peers' rows (they arrive after their propagation delay) and
    /// charge the classical message cost.
    fn handle_gossip_exchange(
        &mut self,
        now: SimTime,
        node: NodeId,
        queue: &mut EventQueue<NetEvent>,
    ) {
        let Some(ControlPlane::Stale(ctl)) = &mut self.control else {
            return;
        };
        let period = ctl.period();
        let msgs = ctl.exchange(now, node, &self.inventory);
        self.notify(|o| o.on_count_updates(now, msgs));
        if !self.is_done() {
            queue.schedule_after(now, period, NetEvent::GossipExchange { node });
        }
    }

    fn handle_request_arrival(&mut self, now: SimTime, request: ConsumptionRequest) {
        self.arrivals_outstanding = self.arrivals_outstanding.saturating_sub(1);
        self.notify(|o| o.on_request_arrival(now, &request));
        let had_pending = !self.pending.is_empty();
        self.pending.push_back(request);
        // A request arriving into a stocked network may be satisfiable
        // immediately (open-loop traffic), but an arrival changes no
        // inventory, so requests already pending stay exactly as blocked as
        // they were at the last generation/swap event — re-offering them
        // would be O(queue) of provably redundant policy consultations.
        // Only the newcomer is offered: directly when it is alone in the
        // queue; via the single-request path under any-order draining; not
        // at all under head-of-line (it sits behind the blocked head).
        if !had_pending {
            self.try_satisfy(now);
        } else if self.policy.queue_discipline() == QueueDiscipline::AnyOrder {
            match &self.pending {
                PendingQueue::Indexed { .. } => self.try_satisfy_newest_indexed(now, request.pair),
                PendingQueue::Fifo(_) => self.try_satisfy_new_tail(now),
            }
        }
    }

    /// The indexed arrival fast path: offer only the just-arrived request
    /// (the back of its pair's queue). Blocked means wait — the hook is
    /// inert by construction of the indexed store.
    fn try_satisfy_newest_indexed(&mut self, now: SimTime, pair: NodePair) {
        let k = self.config.pairs_per_distilled();
        if self.inventory.count(pair) < k {
            return;
        }
        let PendingQueue::Indexed { by_pair, len } = &mut self.pending else {
            return;
        };
        let Some(queue) = by_pair.get_mut(&pair) else {
            return;
        };
        let req = queue.pop_back().expect("the arrival was just pushed");
        if queue.is_empty() {
            by_pair.remove(&pair);
        }
        *len -= 1;
        self.consume(now, req, k, 0);
    }

    /// Offer only the most recently arrived request (the queue tail) to the
    /// policy — the any-order arrival fast path.
    fn try_satisfy_new_tail(&mut self, now: SimTime) {
        let k = self.config.pairs_per_distilled();
        let Some(req) = self.pending.fifo().pop_back() else {
            return;
        };
        let mut repair_swaps = 0u64;
        let mut ok = self.inventory.count(req.pair) >= k;
        if !ok {
            match self.blocked_request_action(now, &req) {
                RequestAction::Wait => {}
                RequestAction::Drop => {
                    self.notify(|o| o.on_request_dropped(now, &req));
                    return;
                }
                RequestAction::Repaired(swaps) => {
                    repair_swaps = swaps;
                    self.account_repair_swaps(now, swaps);
                    ok = self.inventory.count(req.pair) >= k;
                }
            }
        }
        if ok {
            self.consume(now, req, k, repair_swaps);
        } else {
            self.pending.fifo().push_back(req);
        }
    }

    /// Give the policy its end-of-run accounting hook.
    pub fn finish(&mut self) {
        let now = self.recorder.last_event_time();
        {
            let QuantumNetworkWorld {
                policy,
                config,
                graph,
                inventory,
                control,
                telemetry,
                oracle,
                ..
            } = self;
            let mut ctx = PolicyCtx {
                config,
                graph,
                inventory,
                control: control.as_ref(),
                now,
                telemetry,
                oracle,
            };
            policy.on_run_end(&mut ctx);
        }
        self.drain_decision_telemetry(now);
    }

    /// Extract the run metrics (consumes nothing; can be called at any time).
    pub fn metrics(&self) -> RunMetrics {
        self.recorder.snapshot(
            self.config.distillation_overhead(),
            self.pending.len() as u64,
            self.inventory.total_pairs(),
        )
    }
}

impl World for QuantumNetworkWorld {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        // The generator wake is pure bookkeeping: it schedules the next
        // arrival batch without aging the inventory or firing observer
        // hooks, so a lazily driven run sees exactly the clocked events an
        // eagerly scheduled run would.
        if matches!(event, NetEvent::ArrivalWake) {
            self.pump_arrivals(queue);
            return;
        }
        // Age the lot store to the event time before anything mutates the
        // inventory (including policy hooks). A no-op under ideal physics.
        self.inventory.set_clock(now);
        self.notify(|o| o.on_event(now));
        // In-flight gossip rows mature before the event's decision logic,
        // so views are as fresh as the classical network allows — never
        // fresher. A single no-op branch under global knowledge.
        if let Some(ControlPlane::Stale(ctl)) = &mut self.control {
            ctl.deliver_matured(now);
        }
        match event {
            NetEvent::Generate { edge } => self.handle_generate(now, edge, queue),
            NetEvent::SwapScan { node } => self.handle_swap_scan(now, node, queue),
            NetEvent::RequestArrival { request } => self.handle_request_arrival(now, request),
            NetEvent::CutoffSweep => self.handle_cutoff_sweep(now, queue),
            NetEvent::ArrivalWake => unreachable!("intercepted above"),
            NetEvent::GossipExchange { node } => self.handle_gossip_exchange(now, node, queue),
            NetEvent::SwapExecute { candidate } => self.handle_swap_execute(now, candidate, queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistillationSpec;
    use crate::observer::EventCounts;
    use crate::policy::PolicyId;
    use crate::test_support::{pair, run_world, run_world_with_knowledge};
    use crate::workload::Workload;
    use qnet_topology::Topology;

    #[test]
    fn distillation_overhead_increases_work() {
        let workload = || Workload::from_pairs(vec![pair(0, 2), pair(1, 3)]);
        let base = NetworkConfig::new(Topology::Cycle { nodes: 6 });
        let d1 = run_world(base, workload(), PolicyId::OBLIVIOUS, 13, 900);
        let d2 = run_world(
            base.with_distillation(DistillationSpec::Uniform(2.0)),
            workload(),
            PolicyId::OBLIVIOUS,
            13,
            900,
        );
        let m1 = d1.metrics();
        let m2 = d2.metrics();
        assert!(!m1.satisfied.is_empty());
        assert!(!m2.satisfied.is_empty());
        // More raw pairs must be generated per satisfied request when D = 2.
        let per1 = m1.pairs_generated as f64 / m1.satisfied.len() as f64;
        let per2 = m2.pairs_generated as f64 / m2.satisfied.len() as f64;
        assert!(
            per2 > per1,
            "D=2 should consume more raw pairs ({per1} vs {per2})"
        );
    }

    #[test]
    fn buffer_limit_causes_losses() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 5 }).with_buffer_limit(2);
        // An unsatisfiable far request keeps the simulation generating.
        let workload = Workload::from_pairs(vec![pair(0, 2)]);
        let world = run_world(config, workload, PolicyId::OBLIVIOUS, 17, 120);
        let m = world.metrics();
        assert!(m.pairs_lost > 0, "full buffers must drop pairs");
    }

    #[test]
    fn gossip_knowledge_still_makes_progress() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3)]);
        let world = run_world_with_knowledge(
            config,
            workload,
            PolicyId::OBLIVIOUS,
            KnowledgeModel::Gossip {
                peers_per_refresh: 2,
                refresh_period_s: 0.0,
            },
            19,
            600,
        );
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 1, "gossip view is stale but sufficient");
        assert!(
            m.classical.count_update_messages > 0,
            "gossip pulls cost messages"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 6 });
        let workload = Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let a = run_world(config, workload.clone(), PolicyId::OBLIVIOUS, 23, 300);
        let b = run_world(config, workload.clone(), PolicyId::OBLIVIOUS, 23, 300);
        let c = run_world(config, workload, PolicyId::OBLIVIOUS, 24, 300);
        assert_eq!(a.metrics(), b.metrics());
        assert_ne!(a.metrics(), c.metrics());
    }

    #[test]
    fn decoherent_runs_deliver_fidelity_and_expire_pairs() {
        use crate::physics::PhysicsModel;
        // Aggressive decoherence: T2 = 1 s with a 2 s cutoff on a cycle-7
        // at 1 pair/s per edge — most stored pairs rot before use.
        let physics = PhysicsModel::decoherent(1.0).with_cutoff_age(2.0);
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 }).with_physics(physics);
        let workload = Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let world = run_world(config, workload, PolicyId::OBLIVIOUS, 29, 900);
        let m = world.metrics();
        assert!(!m.satisfied.is_empty());
        for s in &m.satisfied {
            let f = s.fidelity.expect("decoherent deliveries carry fidelity");
            assert!((0.25..=1.0).contains(&f), "fidelity {f}");
        }
        assert!(m.expired_pairs > 0, "short cutoff must expire pairs");
        assert!(m.fidelity_stats().count() > 0);
    }

    #[test]
    fn decoherent_runs_are_deterministic() {
        use crate::physics::PhysicsModel;
        let physics = PhysicsModel::decoherent(0.8).with_fidelity_floor(0.6);
        let config = NetworkConfig::new(Topology::Cycle { nodes: 6 }).with_physics(physics);
        let workload = || Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let a = run_world(config, workload(), PolicyId::OBLIVIOUS, 31, 600);
        let b = run_world(config, workload(), PolicyId::OBLIVIOUS, 31, 600);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn fidelity_floor_rejects_low_quality_deliveries() {
        use crate::physics::PhysicsModel;
        // A punishing floor on a long chain: a 4-hop delivery composes four
        // Werner pairs (≈ 0.93 even when fresh at F₀ = 0.98), so every
        // delivery lands below 0.95. The cutoff is disabled so pairs live
        // long enough to be swapped at all — the floor alone does the work.
        let physics = PhysicsModel::decoherent(2.0)
            .with_fidelity_floor(0.95)
            .with_cutoff_age(f64::INFINITY);
        let config = NetworkConfig::new(Topology::Cycle { nodes: 8 }).with_physics(physics);
        let workload = Workload::from_pairs(vec![pair(0, 4)]);
        let world = run_world(config, workload, PolicyId::PLANNED, 37, 400);
        let m = world.metrics();
        assert!(
            m.fidelity_rejected_requests > 0,
            "a 0.95 floor at T2=0.5s must reject deliveries: {m:?}"
        );
        // Every delivery that did survive met the floor.
        for s in &m.satisfied {
            assert!(s.fidelity.unwrap() >= 0.95);
        }
    }

    #[test]
    fn ideal_physics_stays_byte_identical_to_the_prephysics_world() {
        use crate::physics::PhysicsModel;
        // `with_physics(Ideal)` and the default construction run the exact
        // same event sequence: no clocks, no sweeps, no fidelity.
        let base = NetworkConfig::new(Topology::Cycle { nodes: 6 });
        let explicit = base.with_physics(PhysicsModel::Ideal);
        let workload = || Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let a = run_world(base, workload(), PolicyId::OBLIVIOUS, 23, 300);
        let b = run_world(explicit, workload(), PolicyId::OBLIVIOUS, 23, 300);
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma, mb);
        assert_eq!(ma.expired_pairs, 0);
        assert_eq!(ma.fidelity_rejected_requests, 0);
        assert!(ma.satisfied.iter().all(|s| s.fidelity.is_none()));
    }

    #[test]
    fn link_fabric_drives_per_edge_rates_and_memories() {
        use crate::physics::PhysicsModel;
        use qnet_topology::{FabricSpec, HardwarePreset};
        // Metro fiber on the deployed NYC template: every edge gets its own
        // generation rate, birth fidelity and memory from its length.
        let physics = PhysicsModel::decoherent(10.0).with_cutoff_age(f64::INFINITY);
        let base = NetworkConfig::new(Topology::DeployedFiber).with_physics(physics);
        let fabric = base.with_fabric(FabricSpec::new(HardwarePreset::MetroFiber));
        let workload = || Workload::from_pairs(vec![pair(0, 4), pair(2, 7)]);
        let a = run_world(fabric, workload(), PolicyId::OBLIVIOUS, 41, 900);
        let b = run_world(fabric, workload(), PolicyId::OBLIVIOUS, 41, 900);
        assert_eq!(a.metrics(), b.metrics(), "fabric runs stay deterministic");
        let m = a.metrics();
        assert!(!m.satisfied.is_empty());
        for s in &m.satisfied {
            let f = s.fidelity.expect("fabric runs track fidelity");
            assert!((0.25..=1.0).contains(&f), "fidelity {f}");
        }
        // The per-edge rates actually differ from the homogeneous substrate:
        // the same seed produces a different event history without a fabric.
        let plain = run_world(base, workload(), PolicyId::OBLIVIOUS, 41, 900);
        assert_ne!(plain.metrics(), m, "fabric must change the physics");
    }

    #[test]
    fn scale_free_fabric_runs_end_to_end() {
        use qnet_topology::{FabricSpec, HardwarePreset};
        // Ideal physics on a Barabási–Albert graph: the fabric still drives
        // per-edge generation rates even without decoherence tracking.
        let config = NetworkConfig::new(Topology::ScaleFree {
            nodes: 40,
            attach: 2,
        })
        .with_fabric(FabricSpec::new(HardwarePreset::Lab));
        let workload = Workload::from_pairs(vec![pair(0, 9), pair(3, 17)]);
        let world = run_world(config, workload, PolicyId::OBLIVIOUS, 43, 600);
        let m = world.metrics();
        assert!(!m.satisfied.is_empty(), "scale-free fabric run satisfies");
        assert!(m.satisfied.iter().all(|s| s.fidelity.is_none()));
    }

    /// Wraps a policy, forcing any-order draining and overriding the
    /// inertness declaration — the two halves of the differential test for
    /// the indexed pending store.
    #[derive(Debug)]
    struct AnyOrderWrapper {
        inner: Box<dyn SwapPolicy>,
        inert: bool,
    }

    impl SwapPolicy for AnyOrderWrapper {
        fn id(&self) -> PolicyId {
            self.inner.id()
        }
        fn schedules_swap_scans(&self) -> bool {
            self.inner.schedules_swap_scans()
        }
        fn queue_discipline(&self) -> QueueDiscipline {
            QueueDiscipline::AnyOrder
        }
        fn blocked_hook_is_inert(&self) -> bool {
            self.inert
        }
        fn on_swap_scan(
            &mut self,
            ctx: &mut PolicyCtx<'_>,
            node: NodeId,
        ) -> Option<crate::SwapCandidate> {
            self.inner.on_swap_scan(ctx, node)
        }
        fn on_blocked_request(
            &mut self,
            ctx: &mut PolicyCtx<'_>,
            request: &ConsumptionRequest,
        ) -> RequestAction {
            self.inner.on_blocked_request(ctx, request)
        }
    }

    #[test]
    fn indexed_any_order_drain_matches_exact_walk() {
        use crate::workload::WorkloadSpec;
        use qnet_sim::{Engine, StopCondition};

        // The oblivious hook is pure Wait, so running it as an any-order
        // policy with the exact full-queue walk (inert declared false → Fifo
        // store) and with the per-pair indexed drain (inert true → Indexed
        // store) must produce identical metrics, satisfaction order
        // included.
        let run = |inert: bool, seed: u64, workload: Workload| {
            let config = NetworkConfig::new(Topology::Cycle { nodes: 9 });
            let policy = Box::new(AnyOrderWrapper {
                inner: PolicyId::OBLIVIOUS.instantiate(),
                inert,
            });
            let mut queue = EventQueue::new();
            let world = QuantumNetworkWorld::new(
                config,
                workload,
                policy,
                KnowledgeModel::Global,
                seed,
                &mut queue,
            );
            let mut engine = Engine::new(world);
            while let Some(ev) = queue.pop() {
                engine.queue_mut().schedule_at(ev.time, ev.event);
            }
            engine.run(StopCondition::at_horizon(SimTime::from_secs(900)));
            engine.into_world().metrics()
        };
        for seed in [3u64, 17, 42] {
            let closed = WorkloadSpec::closed_loop(9, 6, 40);
            let open = WorkloadSpec::open_loop(9, 6, 0.5, 300.0);
            for spec in [closed, open] {
                let exact = run(false, seed, spec.generate(seed));
                let indexed = run(true, seed, spec.generate(seed));
                assert_eq!(exact, indexed, "seed {seed} spec {spec:?}");
                assert!(
                    !exact.satisfied.is_empty(),
                    "vacuous differential at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn extra_observers_see_the_run() {
        use qnet_sim::{Engine, StopCondition};
        use std::sync::{Arc, Mutex};

        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3)]);
        let mut queue = EventQueue::new();
        let mut world = QuantumNetworkWorld::new(
            config,
            workload,
            PolicyId::OBLIVIOUS.instantiate(),
            KnowledgeModel::Global,
            3,
            &mut queue,
        );
        let counts = Arc::new(Mutex::new(EventCounts::default()));
        world.add_observer(Box::new(Arc::clone(&counts)));
        let mut engine = Engine::new(world);
        while let Some(ev) = queue.pop() {
            engine.queue_mut().schedule_at(ev.time, ev.event);
        }
        engine.run(StopCondition::at_horizon(SimTime::from_secs(600)));
        let world = engine.into_world();
        let metrics = world.metrics();
        let counts = counts.lock().unwrap();
        assert_eq!(counts.satisfied as usize, metrics.satisfied.len());
        assert_eq!(counts.swaps, metrics.swaps_performed);
        assert!(counts.events > 0);
    }
}
