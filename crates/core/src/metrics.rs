//! Experiment metrics, headed by the paper's swap-overhead measure.
//!
//! §5 defines **swap overhead** as the number of swaps the distributed
//! algorithm performs divided by `Σ_c s(ℓ(c))`: the nested-swapping optimum
//! summed over the satisfied consumption events' shortest-path lengths. The
//! measure is ≥ 1 by construction (the denominator is the minimum possible);
//! the paper notes it is conservative because practical planned-path systems
//! rarely achieve the optimum and because leftover swapped pairs retain
//! value.

use crate::classical::ClassicalStats;
use crate::nested::{nested_swap_cost, overhead_denominator};
use qnet_sim::stats::{RunningStats, StreamingQuantiles};
use qnet_sim::SimTime;
use qnet_topology::NodePair;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// One satisfied consumption event.
///
/// Serialization: the `fidelity` field is emitted only when present
/// (decoherent physics), so pre-physics results keep their exact bytes —
/// see the manual [`Serialize`] impl below.
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
pub struct SatisfiedRequest {
    /// Position in the request sequence.
    pub sequence: u64,
    /// The consuming pair.
    pub pair: NodePair,
    /// Simulated time at which the request arrived (always `t = 0` for
    /// closed-loop batches).
    pub arrival_time: SimTime,
    /// Simulated time of satisfaction.
    pub satisfied_at: SimTime,
    /// Hop count of the shortest generation-graph path between the pair's
    /// endpoints (the `ℓ(c)` of the overhead denominator).
    pub shortest_path_hops: usize,
    /// Swaps the hybrid repair step performed specifically for this request
    /// (0 in pure oblivious mode).
    pub repair_swaps: u64,
    /// End-to-end fidelity of the delivered entanglement (`None` under
    /// ideal physics, where pairs are noiseless tokens).
    pub fidelity: Option<f64>,
}

impl Serialize for SatisfiedRequest {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("sequence".to_string(), self.sequence.to_value()),
            ("pair".to_string(), self.pair.to_value()),
            ("arrival_time".to_string(), self.arrival_time.to_value()),
            ("satisfied_at".to_string(), self.satisfied_at.to_value()),
            (
                "shortest_path_hops".to_string(),
                self.shortest_path_hops.to_value(),
            ),
            ("repair_swaps".to_string(), self.repair_swaps.to_value()),
        ];
        if let Some(f) = self.fidelity {
            entries.push(("fidelity".to_string(), f.to_value()));
        }
        Value::Map(entries)
    }
}

impl SatisfiedRequest {
    /// The request's sojourn latency (arrival → satisfaction) in simulated
    /// seconds. For closed-loop batches this equals the satisfaction time.
    pub fn sojourn_s(&self) -> f64 {
        self.satisfied_at
            .saturating_since(self.arrival_time)
            .as_secs_f64()
    }
}

/// Fixed-memory summary of the satisfied-request stream.
///
/// The [`crate::observer::MetricsRecorder`] buffers [`SatisfiedRequest`]s
/// exactly up to its exact-sample threshold; the next satisfaction folds
/// the buffer (and everything after it) into this summary and per-request
/// storage stops. Every derived statistic [`RunMetrics`] reports remains
/// available: counts, repair swaps, the overhead denominator (via the
/// hop-count histogram — exact), inter-satisfaction timing (exact), means
/// (Welford — exact), and quantiles (via
/// [`qnet_sim::stats::LogQuantileSketch`] — within its documented ~0.4 %
/// relative value error). Memory is O(distinct hop counts + sketch
/// buckets), independent of the number of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedSummary {
    count: u64,
    repair_swaps: u64,
    first_satisfied_at: SimTime,
    last_satisfied_at: SimTime,
    /// Satisfactions per shortest-path hop count (the exact multiset of
    /// `ℓ(c)` values, so the overhead denominator stays exact).
    hops_counts: BTreeMap<usize, u64>,
    sojourn_stats: RunningStats,
    sojourn_quantiles: StreamingQuantiles,
    fidelity_stats: RunningStats,
    fidelity_quantiles: StreamingQuantiles,
}

impl Default for StreamedSummary {
    fn default() -> Self {
        StreamedSummary::new()
    }
}

impl StreamedSummary {
    /// An empty summary whose quantile collectors sketch from the first
    /// sample (threshold 0): the buffering already happened in the
    /// recorder's exact phase.
    pub fn new() -> Self {
        StreamedSummary {
            count: 0,
            repair_swaps: 0,
            first_satisfied_at: SimTime::ZERO,
            last_satisfied_at: SimTime::ZERO,
            hops_counts: BTreeMap::new(),
            sojourn_stats: RunningStats::new(),
            sojourn_quantiles: StreamingQuantiles::new(0),
            fidelity_stats: RunningStats::new(),
            fidelity_quantiles: StreamingQuantiles::new(0),
        }
    }

    /// Fold one satisfaction into the summary.
    pub fn record(&mut self, r: &SatisfiedRequest) {
        if self.count == 0 {
            self.first_satisfied_at = r.satisfied_at;
        }
        self.last_satisfied_at = r.satisfied_at;
        self.count += 1;
        self.repair_swaps += r.repair_swaps;
        *self.hops_counts.entry(r.shortest_path_hops).or_insert(0) += 1;
        let sojourn = r.sojourn_s();
        self.sojourn_stats.record(sojourn);
        self.sojourn_quantiles.record(sojourn);
        if let Some(f) = r.fidelity {
            self.fidelity_stats.record(f);
            self.fidelity_quantiles.record(f);
        }
    }

    /// Satisfactions folded in.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Serialize for StreamedSummary {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("count".to_string(), self.count.to_value()),
            ("repair_swaps".to_string(), self.repair_swaps.to_value()),
            (
                "first_satisfied_at".to_string(),
                self.first_satisfied_at.to_value(),
            ),
            (
                "last_satisfied_at".to_string(),
                self.last_satisfied_at.to_value(),
            ),
            (
                "hops_counts".to_string(),
                Value::Seq(
                    self.hops_counts
                        .iter()
                        .map(|(&h, &c)| Value::Seq(vec![h.to_value(), c.to_value()]))
                        .collect(),
                ),
            ),
            (
                "sojourn_mean_s".to_string(),
                self.sojourn_stats.mean().to_value(),
            ),
        ];
        for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            entries.push((
                format!("sojourn_{label}_s"),
                self.sojourn_quantiles.quantile(q).to_value(),
            ));
        }
        if self.fidelity_stats.count() > 0 {
            entries.push((
                "fidelity_mean".to_string(),
                self.fidelity_stats.mean().to_value(),
            ));
            for (label, q) in [("p50", 0.50), ("p95", 0.95)] {
                entries.push((
                    format!("fidelity_{label}"),
                    self.fidelity_quantiles.quantile(q).to_value(),
                ));
            }
        }
        Value::Map(entries)
    }
}

/// Aggregate metrics of one simulation run.
///
/// Serialization: the physics counters (`expired_pairs`,
/// `fidelity_rejected_requests`) are emitted only when non-zero, so
/// pre-physics results keep their exact bytes — see the manual impls below.
/// A streamed-summary run additionally emits a `streamed` object (the
/// summary's derived statistics); such documents are write-only — the live
/// sketches are not serialized, so they do not deserialize back into a
/// `RunMetrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Distillation overhead `D` used for the denominator.
    pub distillation_overhead: f64,
    /// Total swap operations performed (balancer + any planned/hybrid
    /// execution swaps).
    pub swaps_performed: u64,
    /// Bell pairs generated.
    pub pairs_generated: u64,
    /// Bell pairs lost to decoherence/loss before being stored.
    pub pairs_lost: u64,
    /// Stored pairs discarded by the physics model's storage cutoff
    /// (decoherent physics only; 0 under ideal physics).
    pub expired_pairs: u64,
    /// The satisfied requests, in satisfaction order. Empty in streamed
    /// mode (see `streamed`), where per-request storage was dropped for
    /// flat memory.
    pub satisfied: Vec<SatisfiedRequest>,
    /// `Some` when the run crossed the recorder's exact-sample threshold
    /// and per-request buffering gave way to the fixed-memory
    /// [`StreamedSummary`]. All derived statistics below route through it
    /// when present; quantiles then come from a log-bucketed sketch instead
    /// of exact nearest-rank (surfaced in campaign reports as the
    /// `sketch_quantiles` column).
    pub streamed: Option<StreamedSummary>,
    /// Requests injected into the system (arrivals delivered before the run
    /// ended; open-loop arrivals beyond the run horizon never count).
    pub arrived_requests: u64,
    /// Requests that remained unsatisfied when the simulation ended.
    pub unsatisfied_requests: u64,
    /// Requests the policy dropped as unsatisfiable (e.g. disconnected
    /// endpoints); counted in neither `satisfied` nor `unsatisfied`.
    pub dropped_requests: u64,
    /// Deliveries that consumed their pairs but fell below the physics
    /// model's end-to-end fidelity floor (decoherent physics only).
    pub fidelity_rejected_requests: u64,
    /// Classical message counters.
    pub classical: ClassicalStats,
    /// Simulated time at which the run ended.
    pub ended_at: SimTime,
    /// Pairs still stored in the inventory at the end of the run (the
    /// "leftover value" the paper's conservative-scoring note mentions).
    pub leftover_pairs: u64,
    /// Swap actions that were believed feasible on stale counts but failed
    /// against drifted ground truth (stale control plane only; 0 under
    /// global knowledge and the legacy gossip backend).
    pub missed_swaps: u64,
    /// Mean age in seconds of the believed knowledge rows consulted at
    /// decision time (`None` outside the stale control plane).
    pub stale_row_age_mean_s: Option<f64>,
    /// 95th-percentile believed-row age in seconds at decision time
    /// (`None` outside the stale control plane).
    pub stale_row_age_p95_s: Option<f64>,
}

impl Serialize for RunMetrics {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            (
                "distillation_overhead".to_string(),
                self.distillation_overhead.to_value(),
            ),
            (
                "swaps_performed".to_string(),
                self.swaps_performed.to_value(),
            ),
            (
                "pairs_generated".to_string(),
                self.pairs_generated.to_value(),
            ),
            ("pairs_lost".to_string(), self.pairs_lost.to_value()),
            ("satisfied".to_string(), self.satisfied.to_value()),
            (
                "arrived_requests".to_string(),
                self.arrived_requests.to_value(),
            ),
            (
                "unsatisfied_requests".to_string(),
                self.unsatisfied_requests.to_value(),
            ),
            (
                "dropped_requests".to_string(),
                self.dropped_requests.to_value(),
            ),
            ("classical".to_string(), self.classical.to_value()),
            ("ended_at".to_string(), self.ended_at.to_value()),
            ("leftover_pairs".to_string(), self.leftover_pairs.to_value()),
        ];
        // Physics counters join only when physics actually fired, keeping
        // the pre-physics byte layout for ideal runs.
        if self.expired_pairs > 0 {
            entries.push(("expired_pairs".to_string(), self.expired_pairs.to_value()));
        }
        if self.fidelity_rejected_requests > 0 {
            entries.push((
                "fidelity_rejected_requests".to_string(),
                self.fidelity_rejected_requests.to_value(),
            ));
        }
        // Staleness columns join only for stale-control-plane runs, so
        // global-knowledge (and legacy-backend) cells keep legacy bytes.
        if self.missed_swaps > 0 {
            entries.push(("missed_swaps".to_string(), self.missed_swaps.to_value()));
        }
        if let Some(mean) = self.stale_row_age_mean_s {
            entries.push(("stale_row_age_mean_s".to_string(), mean.to_value()));
        }
        if let Some(p95) = self.stale_row_age_p95_s {
            entries.push(("stale_row_age_p95_s".to_string(), p95.to_value()));
        }
        if let Some(summary) = &self.streamed {
            entries.push(("streamed".to_string(), summary.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for RunMetrics {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("RunMetrics object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let counter = |name: &str| -> Result<u64, DeError> {
            match field(name) {
                Value::Null => Ok(0),
                v => Deserialize::from_value(v),
            }
        };
        let optional = |name: &str| -> Result<Option<f64>, DeError> {
            match field(name) {
                Value::Null => Ok(None),
                v => Deserialize::from_value(v).map(Some),
            }
        };
        if !matches!(field("streamed"), Value::Null) {
            // The live sketches behind a streamed summary are write-only;
            // a summary document cannot be rehydrated into a RunMetrics.
            return Err(DeError::expected(
                "buffered RunMetrics (streamed summaries are write-only)",
                value,
            ));
        }
        Ok(RunMetrics {
            distillation_overhead: Deserialize::from_value(field("distillation_overhead"))?,
            swaps_performed: Deserialize::from_value(field("swaps_performed"))?,
            pairs_generated: Deserialize::from_value(field("pairs_generated"))?,
            pairs_lost: Deserialize::from_value(field("pairs_lost"))?,
            expired_pairs: counter("expired_pairs")?,
            satisfied: Deserialize::from_value(field("satisfied"))?,
            streamed: None,
            arrived_requests: Deserialize::from_value(field("arrived_requests"))?,
            unsatisfied_requests: Deserialize::from_value(field("unsatisfied_requests"))?,
            dropped_requests: Deserialize::from_value(field("dropped_requests"))?,
            fidelity_rejected_requests: counter("fidelity_rejected_requests")?,
            classical: Deserialize::from_value(field("classical"))?,
            ended_at: Deserialize::from_value(field("ended_at"))?,
            leftover_pairs: Deserialize::from_value(field("leftover_pairs"))?,
            missed_swaps: counter("missed_swaps")?,
            stale_row_age_mean_s: optional("stale_row_age_mean_s")?,
            stale_row_age_p95_s: optional("stale_row_age_p95_s")?,
        })
    }
}

impl RunMetrics {
    /// Whether this run's per-request data was folded into a fixed-memory
    /// [`StreamedSummary`] (quantiles are then sketch-backed).
    pub fn is_streamed(&self) -> bool {
        self.streamed.is_some()
    }

    /// Number of satisfied requests.
    pub fn satisfied_count(&self) -> usize {
        match &self.streamed {
            Some(s) => s.count as usize,
            None => self.satisfied.len(),
        }
    }

    /// The swap-overhead denominator `Σ_c s(ℓ(c))`. Exact in both modes
    /// (the streamed summary keeps the full hop-count histogram).
    pub fn overhead_denominator(&self) -> f64 {
        if let Some(s) = &self.streamed {
            return s
                .hops_counts
                .iter()
                .map(|(&hops, &count)| {
                    count as f64 * nested_swap_cost(hops, self.distillation_overhead)
                })
                .sum();
        }
        let lengths: Vec<usize> = self
            .satisfied
            .iter()
            .map(|s| s.shortest_path_hops)
            .collect();
        overhead_denominator(&lengths, self.distillation_overhead)
    }

    /// The paper's swap-overhead metric. `None` when the denominator is zero
    /// (no satisfied request, or all satisfied requests were single-hop with
    /// `s(1) = 0`).
    pub fn swap_overhead(&self) -> Option<f64> {
        let denom = self.overhead_denominator();
        if denom <= 0.0 {
            None
        } else {
            Some(self.swaps_performed as f64 / denom)
        }
    }

    /// Mean time between consecutive satisfactions (a throughput proxy);
    /// `None` with fewer than two satisfactions. Exact in both modes.
    pub fn mean_inter_satisfaction_time(&self) -> Option<f64> {
        if let Some(s) = &self.streamed {
            if s.count < 2 {
                return None;
            }
            return Some(
                s.last_satisfied_at
                    .saturating_since(s.first_satisfied_at)
                    .as_secs_f64()
                    / (s.count - 1) as f64,
            );
        }
        if self.satisfied.len() < 2 {
            return None;
        }
        let first = self.satisfied.first().unwrap().satisfied_at;
        let last = self.satisfied.last().unwrap().satisfied_at;
        Some(last.saturating_since(first).as_secs_f64() / (self.satisfied.len() - 1) as f64)
    }

    /// Fraction of requests satisfied. Fidelity-rejected deliveries count
    /// against the ratio (the request consumed resources yet its user got
    /// entanglement below spec); under ideal physics the formula reduces to
    /// the legacy satisfied / (satisfied + unsatisfied).
    pub fn satisfaction_ratio(&self) -> f64 {
        let satisfied = self.satisfied_count() as u64;
        let total = satisfied + self.unsatisfied_requests + self.fidelity_rejected_requests;
        if total == 0 {
            1.0
        } else {
            satisfied as f64 / total as f64
        }
    }

    /// Total swaps spent on hybrid repairs. Exact in both modes.
    pub fn repair_swaps(&self) -> u64 {
        match &self.streamed {
            Some(s) => s.repair_swaps,
            None => self.satisfied.iter().map(|s| s.repair_swaps).sum(),
        }
    }

    /// The per-request sojourn latencies (arrival → satisfaction) in
    /// simulated seconds, in satisfaction order. Empty in streamed mode
    /// (per-request data is gone); use [`RunMetrics::sojourn_stats`] /
    /// [`RunMetrics::sojourn_percentile`], which work in both modes.
    pub fn sojourn_samples(&self) -> Vec<f64> {
        self.satisfied.iter().map(|s| s.sojourn_s()).collect()
    }

    /// Welford statistics over the sojourn latencies (empty accumulator if
    /// nothing was satisfied). Feeds the campaign aggregation's mean/CI
    /// machinery so closed- and open-loop rows share one path. Exact in
    /// both modes (the streamed summary keeps the running accumulator).
    pub fn sojourn_stats(&self) -> RunningStats {
        if let Some(s) = &self.streamed {
            return s.sojourn_stats;
        }
        let mut stats = RunningStats::new();
        for s in &self.satisfied {
            stats.record(s.sojourn_s());
        }
        stats
    }

    /// The `q`-quantile of the sojourn latencies: exact nearest-rank over
    /// the sorted samples in buffered mode, sketch-backed (documented
    /// ~0.4 % relative value error) in streamed mode. `None` when nothing
    /// was satisfied.
    pub fn sojourn_percentile(&self, q: f64) -> Option<f64> {
        if let Some(s) = &self.streamed {
            return s.sojourn_quantiles.quantile(q);
        }
        let mut samples = self.sojourn_samples();
        samples.sort_by(f64::total_cmp);
        qnet_sim::stats::percentile_of_sorted(&samples, q)
    }

    /// End-to-end fidelities of the delivered entanglement, in satisfaction
    /// order. Empty under ideal physics (deliveries carry no fidelity) and
    /// in streamed mode; use [`RunMetrics::fidelity_stats`] /
    /// [`RunMetrics::fidelity_percentile`], which work in both modes.
    pub fn delivered_fidelity_samples(&self) -> Vec<f64> {
        self.satisfied.iter().filter_map(|s| s.fidelity).collect()
    }

    /// Welford statistics over the delivered fidelities (empty accumulator
    /// under ideal physics). Shares the campaign aggregation's mean/CI
    /// machinery with the overhead and latency columns. Exact in both
    /// modes.
    pub fn fidelity_stats(&self) -> RunningStats {
        if let Some(s) = &self.streamed {
            return s.fidelity_stats;
        }
        let mut stats = RunningStats::new();
        for f in self.delivered_fidelity_samples() {
            stats.record(f);
        }
        stats
    }

    /// The `q`-quantile of the delivered fidelities: exact nearest-rank in
    /// buffered mode, sketch-backed in streamed mode. `None` when no
    /// delivery carried a fidelity.
    pub fn fidelity_percentile(&self, q: f64) -> Option<f64> {
        if let Some(s) = &self.streamed {
            return s.fidelity_quantiles.quantile(q);
        }
        let mut samples = self.delivered_fidelity_samples();
        samples.sort_by(f64::total_cmp);
        qnet_sim::stats::percentile_of_sorted(&samples, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::NodeId;

    fn satisfied(seq: u64, hops: usize, at_secs: u64) -> SatisfiedRequest {
        SatisfiedRequest {
            sequence: seq,
            pair: NodePair::new(NodeId(0), NodeId(1)),
            arrival_time: SimTime::ZERO,
            satisfied_at: SimTime::from_secs(at_secs),
            shortest_path_hops: hops,
            repair_swaps: 0,
            fidelity: None,
        }
    }

    fn base_metrics() -> RunMetrics {
        RunMetrics {
            distillation_overhead: 1.0,
            swaps_performed: 10,
            pairs_generated: 100,
            pairs_lost: 0,
            expired_pairs: 0,
            satisfied: vec![satisfied(0, 2, 1), satisfied(1, 4, 3), satisfied(2, 3, 5)],
            streamed: None,
            arrived_requests: 4,
            unsatisfied_requests: 1,
            dropped_requests: 0,
            fidelity_rejected_requests: 0,
            classical: ClassicalStats::new(),
            ended_at: SimTime::from_secs(10),
            leftover_pairs: 7,
            missed_swaps: 0,
            stale_row_age_mean_s: None,
            stale_row_age_p95_s: None,
        }
    }

    #[test]
    fn denominator_and_overhead() {
        let m = base_metrics();
        // s(2)=1, s(4)=2, s(3)=1 at D=1 → denominator 4.
        assert!((m.overhead_denominator() - 4.0).abs() < 1e-12);
        assert!((m.swap_overhead().unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(m.satisfied_count(), 3);
    }

    #[test]
    fn overhead_none_when_denominator_zero() {
        let mut m = base_metrics();
        m.satisfied = vec![satisfied(0, 1, 1)];
        assert!(m.swap_overhead().is_none());
        m.satisfied.clear();
        assert!(m.swap_overhead().is_none());
    }

    #[test]
    fn distillation_scales_denominator() {
        let mut m = base_metrics();
        m.distillation_overhead = 2.0;
        // s(2)=2, s(4)=8, s(3)=4 → 14.
        assert!((m.overhead_denominator() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn satisfaction_ratio_and_timing() {
        let m = base_metrics();
        assert!((m.satisfaction_ratio() - 0.75).abs() < 1e-12);
        // Satisfactions at t = 1, 3, 5 → mean gap 2s.
        assert!((m.mean_inter_satisfaction_time().unwrap() - 2.0).abs() < 1e-9);
        let empty = RunMetrics {
            satisfied: vec![],
            unsatisfied_requests: 0,
            ..base_metrics()
        };
        assert_eq!(empty.satisfaction_ratio(), 1.0);
        assert!(empty.mean_inter_satisfaction_time().is_none());
    }

    #[test]
    fn repair_swaps_summed() {
        let mut m = base_metrics();
        m.satisfied[1].repair_swaps = 3;
        m.satisfied[2].repair_swaps = 2;
        assert_eq!(m.repair_swaps(), 5);
    }

    #[test]
    fn sojourn_latency_accounts_for_arrival_times() {
        let mut m = base_metrics();
        // Arrivals at t = 0, 2, 4; satisfactions at t = 1, 3, 5 → sojourns
        // 1, 1, 1 with arrival offsets; without offsets they are 1, 3, 5.
        assert_eq!(m.sojourn_samples(), vec![1.0, 3.0, 5.0]);
        m.satisfied[1].arrival_time = SimTime::from_secs(2);
        m.satisfied[2].arrival_time = SimTime::from_secs(4);
        assert_eq!(m.sojourn_samples(), vec![1.0, 1.0, 1.0]);
        let stats = m.sojourn_stats();
        assert_eq!(stats.count(), 3);
        assert!((stats.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_stats_cover_only_deliveries_with_fidelity() {
        let mut m = base_metrics();
        assert!(m.delivered_fidelity_samples().is_empty());
        assert_eq!(m.fidelity_percentile(0.5), None);
        assert_eq!(m.fidelity_stats().count(), 0);
        m.satisfied[0].fidelity = Some(0.9);
        m.satisfied[2].fidelity = Some(0.7);
        assert_eq!(m.delivered_fidelity_samples(), vec![0.9, 0.7]);
        assert_eq!(m.fidelity_percentile(0.5), Some(0.7));
        assert_eq!(m.fidelity_percentile(0.95), Some(0.9));
        let stats = m.fidelity_stats();
        assert_eq!(stats.count(), 2);
        assert!((stats.mean() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fidelity_rejections_count_against_satisfaction() {
        let mut m = base_metrics(); // 3 satisfied, 1 unsatisfied → 0.75
        assert!((m.satisfaction_ratio() - 0.75).abs() < 1e-12);
        m.fidelity_rejected_requests = 4; // 3 of 8 served to spec
        assert!((m.satisfaction_ratio() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn physics_fields_keep_legacy_bytes_when_inactive() {
        let ideal = base_metrics();
        let v = ideal.to_value();
        assert!(v.get_field("expired_pairs").is_none());
        assert!(v.get_field("fidelity_rejected_requests").is_none());
        let sat = &v.get_field("satisfied").unwrap().as_seq().unwrap()[0];
        assert!(sat.get_field("fidelity").is_none());
        // Legacy documents (no physics keys) load with zeros/None implied.
        let back = RunMetrics::from_value(&v).unwrap();
        assert_eq!(back, ideal);

        // Decoherent metrics round-trip their physics fields.
        let mut physical = base_metrics();
        physical.expired_pairs = 5;
        physical.fidelity_rejected_requests = 2;
        physical.satisfied[1].fidelity = Some(0.83);
        let v = physical.to_value();
        assert_eq!(*v.get_field("expired_pairs").unwrap(), 5u64);
        let back = RunMetrics::from_value(&v).unwrap();
        assert_eq!(back, physical);
        assert_eq!(back.satisfied[1].fidelity, Some(0.83));
    }

    #[test]
    fn staleness_fields_keep_legacy_bytes_when_inactive() {
        let global = base_metrics();
        let v = global.to_value();
        assert!(v.get_field("missed_swaps").is_none());
        assert!(v.get_field("stale_row_age_mean_s").is_none());
        assert!(v.get_field("stale_row_age_p95_s").is_none());
        let back = RunMetrics::from_value(&v).unwrap();
        assert_eq!(back, global);

        let mut stale = base_metrics();
        stale.missed_swaps = 3;
        stale.stale_row_age_mean_s = Some(0.42);
        stale.stale_row_age_p95_s = Some(1.25);
        let v = stale.to_value();
        assert_eq!(*v.get_field("missed_swaps").unwrap(), 3u64);
        let back = RunMetrics::from_value(&v).unwrap();
        assert_eq!(back, stale);
    }

    #[test]
    fn sojourn_percentiles_nearest_rank() {
        let m = base_metrics(); // sojourns 1, 3, 5
        assert_eq!(m.sojourn_percentile(0.5), Some(3.0));
        assert_eq!(m.sojourn_percentile(0.95), Some(5.0));
        assert_eq!(m.sojourn_percentile(0.0), Some(1.0));
        let empty = RunMetrics {
            satisfied: vec![],
            ..base_metrics()
        };
        assert_eq!(empty.sojourn_percentile(0.5), None);
        assert_eq!(empty.sojourn_stats().count(), 0);
    }
}
