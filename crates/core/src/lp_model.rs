//! The paper's steady-state LP formulation (§3).
//!
//! For every unordered pair `{x, y}` the arrival and departure rates of
//! Bell pairs `[x, y]` are (Eqs. 1–4, including the §3.2 overhead extension):
//!
//! ```text
//! r⁺(x,y) = L · ( g(x,y) + Σ_i σ_i(x,y) )
//! r⁻(x,y) = D · ( c(x,y) + Σ_i ( σ_x(i,y) + σ_y(i,x) ) )
//! ```
//!
//! where `σ_i(x,y)` is the rate at which node `i` performs the swap
//! `x ← i → y`, `L ∈ (0, 1]` is the survival fraction of fully distilled
//! pairs (loss), and `D ≥ 1` is the distillation overhead. In steady state
//! `r⁺ = r⁻` for every pair. The external inputs are the generation
//! capacities `γ(x,y)` and the desired consumption rates `κ(x,y)`; the swap
//! rates (and, depending on the objective, `g` and `c`) are the decision
//! variables.
//!
//! [`SteadyStateModel::solve`] builds and solves the LP for each of the §3.3
//! objectives.

use crate::rates::RateMatrices;
use qnet_lp::{max_min_allocation, LinearProgram, Objective, Solution, SolveStatus, VarId};
use qnet_topology::{NodeId, NodePair, PairMatrix};
use serde::{Deserialize, Serialize};

/// The §3.3 optimisation objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpObjective {
    /// Generation is sufficient: satisfy the full demand while minimising
    /// total generation `Σ g(x,y)`.
    MinTotalGeneration,
    /// Generation is sufficient: satisfy the full demand while minimising the
    /// maximum per-pair generation rate.
    MinMaxGeneration,
    /// Generation is insufficient: maximise total consumption `Σ c(x,y)`
    /// subject to `g ≤ γ` and `c ≤ κ`.
    MaxTotalConsumption,
    /// Generation is insufficient: maximise the minimum consumption rate over
    /// the demanding pairs (lexicographic max-min, by progressive filling).
    MaxMinConsumption,
    /// Generation is insufficient: find the largest `α` such that every
    /// demanding pair gets `c(x,y) = α·κ(x,y)` (proportional fairness knob).
    MaxProportionalAlpha,
}

/// A swap rate `σ_i(x, y)` in a solved model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapRate {
    /// The repeater `i`.
    pub repeater: NodeId,
    /// The pair `{x, y}` whose entanglement the swap produces.
    pub produces: NodePair,
    /// The rate (swaps per second).
    pub rate: f64,
}

/// The solved steady-state allocation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SteadyStateSolution {
    /// Which objective was solved.
    pub objective: LpObjective,
    /// Solver status.
    pub status: SolveStatus,
    /// Objective value (sense depends on the objective).
    pub objective_value: f64,
    /// Chosen generation rates `g(x, y)`.
    pub generation: PairMatrix<f64>,
    /// Achieved consumption rates `c(x, y)`.
    pub consumption: PairMatrix<f64>,
    /// Non-zero swap rates.
    pub swap_rates: Vec<SwapRate>,
    /// The proportional-fairness factor `α` (only for
    /// [`LpObjective::MaxProportionalAlpha`]).
    pub alpha: Option<f64>,
}

impl SteadyStateSolution {
    /// The chosen generation rate for one pair.
    pub fn generation(&self, pair: NodePair) -> f64 {
        *self.generation.get(pair)
    }
    /// The achieved consumption rate for one pair.
    pub fn consumption(&self, pair: NodePair) -> f64 {
        *self.consumption.get(pair)
    }
    /// Total generation rate in the solution.
    pub fn total_generation(&self) -> f64 {
        self.generation.total()
    }
    /// Total consumption rate in the solution.
    pub fn total_consumption(&self) -> f64 {
        self.consumption.total()
    }
    /// Total swap rate in the solution.
    pub fn total_swap_rate(&self) -> f64 {
        self.swap_rates.iter().map(|s| s.rate).sum()
    }
    /// True when the underlying LP solved to optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

/// Builder/solver for the steady-state LP.
#[derive(Debug, Clone)]
pub struct SteadyStateModel {
    node_count: usize,
    /// Generation capacity `γ(x, y)`.
    capacity: PairMatrix<f64>,
    /// Desired consumption `κ(x, y)`.
    demand: PairMatrix<f64>,
    /// Survival fraction `L ∈ (0, 1]`.
    survival: f64,
    /// Distillation overhead `D ≥ 1`.
    distillation: f64,
}

/// Internal: variable bookkeeping for one LP build.
struct VarMap {
    sigma: Vec<(NodeId, NodePair, VarId)>,
    generation: Vec<(NodePair, VarId)>,
    consumption: Vec<(NodePair, VarId)>,
    aux: Option<VarId>,
}

impl SteadyStateModel {
    /// Create a model from generation capacities and a demand matrix, with no
    /// loss and unit distillation.
    pub fn new(rates: &RateMatrices, demand_rates: &RateMatrices) -> Self {
        assert_eq!(rates.node_count(), demand_rates.node_count());
        let n = rates.node_count();
        let mut capacity = PairMatrix::new(n);
        let mut demand = PairMatrix::new(n);
        for pair in qnet_topology::pairs::all_pairs(n) {
            capacity.set(pair, rates.generation(pair));
            demand.set(pair, demand_rates.consumption(pair));
        }
        SteadyStateModel {
            node_count: n,
            capacity,
            demand,
            survival: 1.0,
            distillation: 1.0,
        }
    }

    /// Builder: set the §3.2 overheads (survival fraction `L` and
    /// distillation overhead `D`).
    pub fn with_overheads(mut self, survival: f64, distillation: f64) -> Self {
        assert!(
            survival > 0.0 && survival <= 1.0,
            "survival must be in (0, 1]"
        );
        assert!(distillation >= 1.0, "distillation overhead must be ≥ 1");
        self.survival = survival;
        self.distillation = distillation;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of swap-rate variables `σ_i(x, y)` the LP will contain.
    pub fn sigma_count(&self) -> usize {
        let n = self.node_count;
        n * (n - 1) * (n - 2) / 2
    }

    /// The demanding pairs (κ > 0).
    pub fn demand_pairs(&self) -> Vec<NodePair> {
        self.demand.positive_pairs()
    }

    /// Build the LP skeleton shared by all objectives.
    ///
    /// `generation_is_variable` / `consumption_is_variable` control whether
    /// `g` / `c` are decision variables or constants fixed to their input
    /// values; `alpha` adds the proportional-fairness variable and ties
    /// consumption to `α·κ`.
    fn build(
        &self,
        generation_is_variable: bool,
        consumption_is_variable: bool,
        with_alpha: bool,
    ) -> (LinearProgram, VarMap) {
        let n = self.node_count;
        let mut lp = LinearProgram::new();
        let mut map = VarMap {
            sigma: Vec::new(),
            generation: Vec::new(),
            consumption: Vec::new(),
            aux: None,
        };

        // Swap-rate variables σ_i(x, y) for every repeater i and pair {x, y}
        // not containing i.
        for i in (0..n).map(NodeId::from) {
            for pair in qnet_topology::pairs::all_pairs(n) {
                if pair.contains(i) {
                    continue;
                }
                let v = lp.add_variable(format!("sigma[{i}][{pair}]"));
                map.sigma.push((i, pair, v));
            }
        }

        // Generation variables (bounded by capacity) when requested.
        if generation_is_variable {
            for pair in qnet_topology::pairs::all_pairs(n) {
                let cap = *self.capacity.get(pair);
                if cap > 0.0 {
                    let v = lp.add_bounded_variable(format!("g[{pair}]"), cap);
                    map.generation.push((pair, v));
                }
            }
        }

        // Consumption variables (bounded by demand) when requested.
        if consumption_is_variable {
            for pair in self.demand_pairs() {
                let cap = *self.demand.get(pair);
                let v = lp.add_bounded_variable(format!("c[{pair}]"), cap);
                map.consumption.push((pair, v));
            }
        }

        // Proportional-fairness variable.
        if with_alpha {
            let v = lp.add_bounded_variable("alpha", 1.0);
            map.aux = Some(v);
        }

        // Steady-state constraint per pair:
        //   L·g + L·Σσ_i(x,y) − D·c − D·Σ(σ_x(i,y)+σ_y(i,x)) = 0
        for pair in qnet_topology::pairs::all_pairs(n) {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            let mut rhs = 0.0;

            // Arrivals from swaps at third parties.
            for (i, p, v) in &map.sigma {
                if *p == pair {
                    terms.push((*v, self.survival));
                }
                // Departures: swaps performed *at* x or y that consume a pair
                // of {x, y}: σ_x(i, y) consumes [x,y] and [x,i]; in our
                // variable indexing that is the variable (repeater = x,
                // produces = {i, y}) for any i — it consumes one pair from
                // [x, i] and one from [x, y]. So a σ with repeater x whose
                // produced pair contains y consumes from [x, y].
                let (x, y) = pair.endpoints();
                if (*i == x && p.contains(y)) || (*i == y && p.contains(x)) {
                    terms.push((*v, -self.distillation));
                }
            }

            // Generation contribution.
            let cap = *self.capacity.get(pair);
            if generation_is_variable {
                if let Some((_, v)) = map.generation.iter().find(|(p, _)| *p == pair) {
                    terms.push((*v, self.survival));
                }
            } else if cap > 0.0 {
                rhs -= self.survival * cap;
            }

            // Consumption contribution.
            let kappa = *self.demand.get(pair);
            if with_alpha {
                if kappa > 0.0 {
                    let alpha = map.aux.expect("alpha variable exists");
                    terms.push((alpha, -self.distillation * kappa));
                }
            } else if consumption_is_variable {
                if let Some((_, v)) = map.consumption.iter().find(|(p, _)| *p == pair) {
                    terms.push((*v, -self.distillation));
                }
            } else if kappa > 0.0 {
                rhs += self.distillation * kappa;
            }

            lp.add_eq(format!("steady[{pair}]"), terms, rhs);
        }

        (lp, map)
    }

    /// Solve the model for the given objective.
    pub fn solve(&self, objective: LpObjective) -> SteadyStateSolution {
        match objective {
            LpObjective::MinTotalGeneration => self.solve_generation(false),
            LpObjective::MinMaxGeneration => self.solve_generation(true),
            LpObjective::MaxTotalConsumption => self.solve_consumption_total(),
            LpObjective::MaxMinConsumption => self.solve_consumption_maxmin(),
            LpObjective::MaxProportionalAlpha => self.solve_alpha(),
        }
    }

    fn solve_generation(&self, minimize_maximum: bool) -> SteadyStateSolution {
        let (mut lp, mut map) = self.build(true, false, false);
        if minimize_maximum {
            let m = lp.add_variable("max-generation");
            for (_, v) in &map.generation {
                lp.add_le("g-below-max", vec![(*v, 1.0), (m, -1.0)], 0.0);
            }
            lp.set_objective(Objective::Minimize(vec![(m, 1.0)]));
            map.aux = Some(m);
        } else {
            let terms: Vec<(VarId, f64)> = map.generation.iter().map(|(_, v)| (*v, 1.0)).collect();
            lp.set_objective(Objective::Minimize(terms));
        }
        let sol = qnet_lp::simplex::solve(&lp);
        self.extract(
            if minimize_maximum {
                LpObjective::MinMaxGeneration
            } else {
                LpObjective::MinTotalGeneration
            },
            &map,
            &sol,
            // Consumption was fixed to the demand.
            Some(&self.demand),
        )
    }

    fn solve_consumption_total(&self) -> SteadyStateSolution {
        let (mut lp, map) = self.build(true, true, false);
        let terms: Vec<(VarId, f64)> = map.consumption.iter().map(|(_, v)| (*v, 1.0)).collect();
        lp.set_objective(Objective::Maximize(terms));
        let sol = qnet_lp::simplex::solve(&lp);
        self.extract(LpObjective::MaxTotalConsumption, &map, &sol, None)
    }

    fn solve_consumption_maxmin(&self) -> SteadyStateSolution {
        let (lp, map) = self.build(true, true, false);
        let targets: Vec<VarId> = map.consumption.iter().map(|(_, v)| *v).collect();
        if targets.is_empty() {
            // No demand at all: the zero solution is trivially max-min fair.
            return self.extract(
                LpObjective::MaxMinConsumption,
                &map,
                &Solution {
                    status: SolveStatus::Optimal,
                    objective: 0.0,
                    values: vec![0.0; lp.variable_count()],
                },
                None,
            );
        }
        match max_min_allocation(&lp, &targets) {
            Ok(result) => {
                let sol = Solution {
                    status: SolveStatus::Optimal,
                    objective: result
                        .target_values
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min),
                    values: result.assignment[..lp.variable_count()].to_vec(),
                };
                self.extract(LpObjective::MaxMinConsumption, &map, &sol, None)
            }
            Err(status) => self.extract(
                LpObjective::MaxMinConsumption,
                &map,
                &Solution {
                    status,
                    objective: 0.0,
                    values: vec![0.0; lp.variable_count()],
                },
                None,
            ),
        }
    }

    fn solve_alpha(&self) -> SteadyStateSolution {
        let (mut lp, map) = self.build(true, false, true);
        let alpha = map.aux.expect("alpha variable");
        lp.set_objective(Objective::Maximize(vec![(alpha, 1.0)]));
        let sol = qnet_lp::simplex::solve(&lp);
        let mut out = self.extract(LpObjective::MaxProportionalAlpha, &map, &sol, None);
        if sol.is_optimal() {
            let a = sol.value(alpha);
            out.alpha = Some(a);
            // Consumption is α·κ by construction.
            let mut consumption = PairMatrix::new(self.node_count);
            for pair in self.demand_pairs() {
                consumption.set(pair, a * *self.demand.get(pair));
            }
            out.consumption = consumption;
            out.objective_value = a;
        }
        out
    }

    fn extract(
        &self,
        objective: LpObjective,
        map: &VarMap,
        sol: &Solution,
        fixed_consumption: Option<&PairMatrix<f64>>,
    ) -> SteadyStateSolution {
        let n = self.node_count;
        let mut generation = PairMatrix::new(n);
        let mut consumption = PairMatrix::new(n);
        let mut swap_rates = Vec::new();

        if sol.is_optimal() {
            for (pair, v) in &map.generation {
                generation.set(*pair, sol.value(*v));
            }
            if map.generation.is_empty() {
                // Generation was fixed to capacity.
                for pair in qnet_topology::pairs::all_pairs(n) {
                    generation.set(pair, *self.capacity.get(pair));
                }
            }
            match fixed_consumption {
                Some(fixed) => {
                    for pair in qnet_topology::pairs::all_pairs(n) {
                        consumption.set(pair, *fixed.get(pair));
                    }
                }
                None => {
                    for (pair, v) in &map.consumption {
                        consumption.set(*pair, sol.value(*v));
                    }
                }
            }
            for (i, pair, v) in &map.sigma {
                let rate = sol.value(*v);
                if rate > 1e-9 {
                    swap_rates.push(SwapRate {
                        repeater: *i,
                        produces: *pair,
                        rate,
                    });
                }
            }
        }

        SteadyStateSolution {
            objective,
            status: sol.status,
            objective_value: sol.objective,
            generation,
            consumption,
            swap_rates,
            alpha: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::builders::{cycle, path};
    use qnet_topology::NodeId;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    /// A 3-node path 0—1—2 with capacity 1 on each edge and demand between
    /// the path's endpoints.
    fn path3_model(demand: f64) -> SteadyStateModel {
        let g = path(3);
        let capacity = RateMatrices::uniform_generation(&g, 1.0);
        let mut demand_rates = RateMatrices::zeros(3);
        demand_rates.set_consumption(pair(0, 2), demand);
        SteadyStateModel::new(&capacity, &demand_rates)
    }

    #[test]
    fn sigma_count_formula() {
        let m = path3_model(0.1);
        assert_eq!(m.sigma_count(), 3);
        let g = cycle(6);
        let m6 = SteadyStateModel::new(
            &RateMatrices::uniform_generation(&g, 1.0),
            &RateMatrices::zeros(6),
        );
        assert_eq!(m6.sigma_count(), 6 * 5 * 4 / 2);
    }

    #[test]
    fn min_generation_on_path_charges_both_edges() {
        // Serving c(0,2) = 0.4 requires swaps at node 1 at rate 0.4, which
        // consume pairs on both edges, so g(0,1) = g(1,2) = 0.4 and the
        // minimum total generation is 0.8.
        let m = path3_model(0.4);
        let sol = m.solve(LpObjective::MinTotalGeneration);
        assert!(sol.is_optimal());
        assert!(
            (sol.total_generation() - 0.8).abs() < 1e-5,
            "{}",
            sol.total_generation()
        );
        assert!((sol.objective_value - 0.8).abs() < 1e-5);
        // The swap must happen at node 1.
        assert!(sol
            .swap_rates
            .iter()
            .any(|s| s.repeater == NodeId(1) && s.produces == pair(0, 2) && s.rate > 0.39));
        assert!((sol.total_consumption() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn min_generation_infeasible_when_demand_exceeds_capacity() {
        // Edge capacity is 1, so end-to-end demand of 1.5 cannot be met.
        let m = path3_model(1.5);
        let sol = m.solve(LpObjective::MinTotalGeneration);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn min_max_generation_balances_edges() {
        let m = path3_model(0.4);
        let sol = m.solve(LpObjective::MinMaxGeneration);
        assert!(sol.is_optimal());
        // Both edges need 0.4, so the minimised maximum is 0.4.
        assert!((sol.objective_value - 0.4).abs() < 1e-5);
        assert!((sol.generation(pair(0, 1)) - 0.4).abs() < 1e-5);
        assert!((sol.generation(pair(1, 2)) - 0.4).abs() < 1e-5);
    }

    #[test]
    fn max_total_consumption_saturates_bottleneck() {
        // With capacity 1 per edge and the end-to-end pair as the only
        // consumer, the maximum steady consumption is 1 (limited by either
        // edge), as long as the demand cap allows it.
        let m = path3_model(5.0);
        let sol = m.solve(LpObjective::MaxTotalConsumption);
        assert!(sol.is_optimal());
        assert!(
            (sol.total_consumption() - 1.0).abs() < 1e-5,
            "{}",
            sol.total_consumption()
        );
    }

    #[test]
    fn max_total_consumption_with_competing_direct_demand() {
        // Demand on (0,1) competes with the end-to-end demand for edge (0,1).
        // Total consumption is maximised by serving the direct pair only:
        // c(0,1) = 1 and c(0,2) = ...; serving (0,2) costs both edges, so the
        // total-throughput optimum favours the cheap pair.
        let g = path(3);
        let capacity = RateMatrices::uniform_generation(&g, 1.0);
        let mut demand = RateMatrices::zeros(3);
        demand.set_consumption(pair(0, 2), 2.0);
        demand.set_consumption(pair(0, 1), 2.0);
        let m = SteadyStateModel::new(&capacity, &demand);
        let sol = m.solve(LpObjective::MaxTotalConsumption);
        assert!(sol.is_optimal());
        // Every unit of c(0,2) consumes a unit of edge (0,1) that c(0,1)
        // could have used directly (and a unit of edge (1,2) on top), so the
        // total is capped by edge (0,1)'s capacity: max total = 1. Multiple
        // optimal splits achieve it, so only the total is asserted.
        assert!(
            (sol.total_consumption() - 1.0).abs() < 1e-5,
            "{}",
            sol.total_consumption()
        );
        assert!(lp_split_is_consistent(&sol));
    }

    /// Helper: the reported per-pair consumptions sum to the reported total.
    fn lp_split_is_consistent(sol: &SteadyStateSolution) -> bool {
        let sum: f64 = sol.consumption.iter().map(|(_, &v)| v).sum();
        (sum - sol.total_consumption()).abs() < 1e-9
    }

    #[test]
    fn max_min_consumption_shares_the_bottleneck() {
        // Same competing-demand setting: max-min fairness splits edge (0,1)
        // between the direct pair and the end-to-end pair: both get 0.5.
        let g = path(3);
        let capacity = RateMatrices::uniform_generation(&g, 1.0);
        let mut demand = RateMatrices::zeros(3);
        demand.set_consumption(pair(0, 2), 2.0);
        demand.set_consumption(pair(0, 1), 2.0);
        let m = SteadyStateModel::new(&capacity, &demand);
        let sol = m.solve(LpObjective::MaxMinConsumption);
        assert!(sol.is_optimal());
        assert!(
            (sol.consumption(pair(0, 1)) - 0.5).abs() < 1e-4,
            "{}",
            sol.consumption(pair(0, 1))
        );
        assert!(
            (sol.consumption(pair(0, 2)) - 0.5).abs() < 1e-4,
            "{}",
            sol.consumption(pair(0, 2))
        );
    }

    #[test]
    fn alpha_objective_scales_demand_uniformly() {
        let g = path(3);
        let capacity = RateMatrices::uniform_generation(&g, 1.0);
        let mut demand = RateMatrices::zeros(3);
        demand.set_consumption(pair(0, 2), 2.0);
        demand.set_consumption(pair(0, 1), 2.0);
        let m = SteadyStateModel::new(&capacity, &demand);
        let sol = m.solve(LpObjective::MaxProportionalAlpha);
        assert!(sol.is_optimal());
        let alpha = sol.alpha.expect("alpha present");
        // Edge (0,1) carries 2α (direct) + 2α (swapped) ≤ 1 → α = 0.25.
        assert!((alpha - 0.25).abs() < 1e-4, "alpha {alpha}");
        assert!((sol.consumption(pair(0, 1)) - 0.5).abs() < 1e-4);
        assert!((sol.consumption(pair(0, 2)) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn distillation_overhead_multiplies_generation_need() {
        // With D = 2 every departure costs two arrivals, so serving
        // c(0,2) = 0.2 needs g = 2·(2·0.2) per edge? — the swap at node 1
        // departs at rate D·σ from each edge pool and the consumption departs
        // at D·c from the (0,2) pool which is fed by σ·L. Working through:
        // σ = D·c / L = 0.4; per-edge g = D·σ / L = 0.8; total 1.6.
        let m = path3_model(0.2).with_overheads(1.0, 2.0);
        let sol = m.solve(LpObjective::MinTotalGeneration);
        assert!(sol.is_optimal());
        assert!(
            (sol.total_generation() - 1.6).abs() < 1e-4,
            "{}",
            sol.total_generation()
        );
    }

    #[test]
    fn loss_scales_generation_inversely() {
        // With survival L = 0.5 every arrival is halved: serving c = 0.2
        // needs twice the generation of the lossless case (0.4 per edge →
        // 0.8 total becomes 1.6? — σ·L = c → σ = 0.4; edge: g·L = σ →
        // g = 0.8; total 1.6).
        let m = path3_model(0.2).with_overheads(0.5, 1.0);
        let sol = m.solve(LpObjective::MinTotalGeneration);
        assert!(sol.is_optimal());
        assert!(
            (sol.total_generation() - 1.6).abs() < 1e-4,
            "{}",
            sol.total_generation()
        );
    }

    #[test]
    fn cycle_uses_both_directions() {
        // On a 4-cycle with demand between opposite corners, max total
        // consumption can route via either two-hop side; capacity 1 per edge
        // allows up to 2 in total (1 via each side).
        let g = cycle(4);
        let capacity = RateMatrices::uniform_generation(&g, 1.0);
        let mut demand = RateMatrices::zeros(4);
        demand.set_consumption(pair(0, 2), 10.0);
        let m = SteadyStateModel::new(&capacity, &demand);
        let sol = m.solve(LpObjective::MaxTotalConsumption);
        assert!(sol.is_optimal());
        assert!(
            (sol.total_consumption() - 2.0).abs() < 1e-4,
            "{}",
            sol.total_consumption()
        );
        // Swaps happen at nodes 1 and 3.
        let repeaters: Vec<u32> = sol.swap_rates.iter().map(|s| s.repeater.0).collect();
        assert!(repeaters.contains(&1) && repeaters.contains(&3));
    }

    #[test]
    #[should_panic]
    fn invalid_overheads_panic() {
        let _ = path3_model(0.1).with_overheads(0.0, 1.0);
    }
}
