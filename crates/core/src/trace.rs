//! Streaming JSONL run traces.
//!
//! [`TraceWriter`] is a [`RunObserver`] that serializes per-event records to
//! any `Write` sink as JSON lines, one self-describing object per event:
//!
//! ```text
//! {"kind":"arrival","t_s":12.5,"sequence":3,"pair":[0,4]}
//! {"kind":"swap","t_s":12.75,"swap":"balancing"}
//! {"kind":"satisfied","t_s":13.0,"sequence":3,"pair":[0,4],"sojourn_s":0.5,"hops":4}
//! {"kind":"drop","t_s":14.0,"sequence":5,"pair":[1,2]}
//! ```
//!
//! Attach one with [`crate::network::QuantumNetworkWorld::add_observer`];
//! the sink is flushed on drop (or explicitly via [`TraceWriter::into_sink`]).
//! Traces contain only seeded simulation data, so for a fixed configuration
//! the byte stream is deterministic — traces can be diffed like reports.
//!
//! By default only the request-lifecycle and swap events are written (the
//! per-pair generation/loss firehose is opt-in via
//! [`TraceWriter::with_pair_events`]), keeping traces proportional to the
//! workload rather than to `generation_rate × horizon`.

use crate::metrics::SatisfiedRequest;
use crate::observer::{RunObserver, SwapKind};
use crate::workload::ConsumptionRequest;
use qnet_sim::SimTime;
use qnet_topology::NodePair;
use serde::Value;
use std::fmt;
use std::io::Write;

/// A line-oriented JSON writer: one serialized [`Value`] per line, with
/// first-error latching and a line counter.
///
/// This is the I/O core shared by every JSONL event stream in the stack —
/// [`TraceWriter`] uses it for simulation traces, and the campaign
/// orchestrator reuses it for worker progress files and run event logs.
/// Writing stops at the first I/O failure (the producer is never
/// interrupted by a bad sink); the error surfaces through
/// [`JsonlSink::io_error`] / [`JsonlSink::into_sink`].
pub struct JsonlSink<W: Write + Send> {
    /// `Some` until [`JsonlSink::into_sink`] takes it; `Drop` flushes a
    /// still-owned sink best-effort.
    sink: Option<W>,
    /// First I/O error encountered (subsequent writes are skipped).
    error: Option<std::io::Error>,
    lines: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a sink (a `File`, `Vec<u8>`, `Stdout` lock, …).
    pub fn new(sink: W) -> Self {
        JsonlSink {
            sink: Some(sink),
            error: None,
            lines: 0,
        }
    }

    /// Serialize `value` and append it as one line. No-op after the first
    /// I/O error.
    pub fn write_value(&mut self, value: &Value) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(value).expect("JSONL record to_string");
        let sink = self.sink.as_mut().expect("sink present until into_sink");
        if let Err(e) = writeln!(sink, "{line}") {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }

    /// Flush the sink, surfacing any latched error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink
            .as_mut()
            .expect("sink present until into_sink")
            .flush()
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The first I/O error this sink ran into, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the sink, surfacing any I/O error recorded while
    /// writing (the `Drop` flush is best-effort and cannot report one).
    pub fn into_sink(mut self) -> std::io::Result<W> {
        let mut sink = self.sink.take().expect("sink present until into_sink");
        sink.flush()?;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(sink)
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort: a sink dropped without `into_sink` still flushes;
        // errors here have nowhere to go.
        if let Some(sink) = &mut self.sink {
            let _ = sink.flush();
        }
    }
}

impl<W: Write + Send> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("errored", &self.error.is_some())
            .finish()
    }
}

/// A [`RunObserver`] streaming one JSON line per observed event to a sink.
pub struct TraceWriter<W: Write + Send> {
    sink: JsonlSink<W>,
    include_pair_events: bool,
}

impl<W: Write + Send> TraceWriter<W> {
    /// Wrap a sink (a `File`, `Vec<u8>`, `Stdout` lock, …).
    pub fn new(sink: W) -> Self {
        TraceWriter {
            sink: JsonlSink::new(sink),
            include_pair_events: false,
        }
    }

    /// Also stream the high-volume `pair_generated` / `pair_lost` events.
    pub fn with_pair_events(mut self) -> Self {
        self.include_pair_events = true;
        self
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.sink.lines_written()
    }

    /// The first I/O error the writer ran into, if any (writing stops at the
    /// first failure; simulation itself is never interrupted by a bad sink).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.sink.io_error()
    }

    /// Flush and return the sink, surfacing any I/O error recorded during
    /// the run (the `Drop` flush is best-effort and cannot report one).
    pub fn into_sink(self) -> std::io::Result<W> {
        self.sink.into_sink()
    }

    fn write_record(&mut self, kind: &str, now: SimTime, fields: Vec<(String, Value)>) {
        let mut entries = vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("t_s".to_string(), Value::F64(now.as_secs_f64())),
        ];
        entries.extend(fields);
        self.sink.write_value(&Value::Map(entries));
    }
}

fn pair_value(pair: NodePair) -> Value {
    Value::Seq(vec![
        Value::U64(pair.lo().0 as u64),
        Value::U64(pair.hi().0 as u64),
    ])
}

fn request_fields(sequence: u64, pair: NodePair) -> Vec<(String, Value)> {
    vec![
        ("sequence".to_string(), Value::U64(sequence)),
        ("pair".to_string(), pair_value(pair)),
    ]
}

impl<W: Write + Send> fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWriter")
            .field("lines", &self.sink.lines_written())
            .field("include_pair_events", &self.include_pair_events)
            .field("errored", &self.sink.io_error().is_some())
            .finish()
    }
}

impl<W: Write + Send> RunObserver for TraceWriter<W> {
    fn on_pair_generated(&mut self, now: SimTime, edge: NodePair) {
        if self.include_pair_events {
            self.write_record(
                "pair_generated",
                now,
                vec![("edge".to_string(), pair_value(edge))],
            );
        }
    }

    fn on_pair_lost(&mut self, now: SimTime, edge: NodePair) {
        if self.include_pair_events {
            self.write_record(
                "pair_lost",
                now,
                vec![("edge".to_string(), pair_value(edge))],
            );
        }
    }

    fn on_pair_expired(&mut self, now: SimTime, pair: NodePair) {
        // Cutoff expiries scale with generation_rate × horizon at short
        // coherence times, so they ride with the pair-event firehose opt-in.
        if self.include_pair_events {
            self.write_record(
                "pair_expired",
                now,
                vec![("pair".to_string(), pair_value(pair))],
            );
        }
    }

    fn on_swap(&mut self, now: SimTime, kind: SwapKind) {
        let label = match kind {
            SwapKind::Balancing => "balancing",
            SwapKind::Repair => "repair",
        };
        self.write_record(
            "swap",
            now,
            vec![("swap".to_string(), Value::Str(label.to_string()))],
        );
    }

    fn on_swap_missed(&mut self, now: SimTime, pair: NodePair) {
        // A stale-knowledge decision was believed feasible but failed
        // against drifted ground truth (stale control plane only).
        self.write_record(
            "swap_missed",
            now,
            vec![("pair".to_string(), pair_value(pair))],
        );
    }

    fn on_request_arrival(&mut self, now: SimTime, request: &ConsumptionRequest) {
        self.write_record(
            "arrival",
            now,
            request_fields(request.sequence, request.pair),
        );
    }

    fn on_request_satisfied(&mut self, now: SimTime, request: &SatisfiedRequest) {
        let mut fields = request_fields(request.sequence, request.pair);
        fields.push(("sojourn_s".to_string(), Value::F64(request.sojourn_s())));
        fields.push((
            "hops".to_string(),
            Value::U64(request.shortest_path_hops as u64),
        ));
        if let Some(f) = request.fidelity {
            fields.push(("fidelity".to_string(), Value::F64(f)));
        }
        self.write_record("satisfied", now, fields);
    }

    fn on_request_dropped(&mut self, now: SimTime, request: &ConsumptionRequest) {
        self.write_record("drop", now, request_fields(request.sequence, request.pair));
    }

    fn on_fidelity_rejected(&mut self, now: SimTime, request: &ConsumptionRequest, fidelity: f64) {
        let mut fields = request_fields(request.sequence, request.pair);
        fields.push(("fidelity".to_string(), Value::F64(fidelity)));
        self.write_record("fidelity_reject", now, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::NodeId;
    use std::sync::{Arc, Mutex};

    fn sample_request() -> ConsumptionRequest {
        ConsumptionRequest {
            sequence: 3,
            pair: NodePair::new(NodeId(0), NodeId(4)),
            arrival_time: SimTime::from_secs(12),
        }
    }

    #[test]
    fn jsonl_sink_counts_lines_and_latches_errors() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.write_value(&Value::Map(vec![(
            "kind".to_string(),
            Value::Str("x".into()),
        )]));
        sink.write_value(&Value::U64(7));
        assert_eq!(sink.lines_written(), 2);
        assert!(sink.io_error().is_none());
        let text = String::from_utf8(sink.into_sink().unwrap()).unwrap();
        assert_eq!(text, "{\"kind\":\"x\"}\n7\n");

        // A failing sink latches the first error and stops counting.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut broken = JsonlSink::new(Broken);
        broken.write_value(&Value::U64(1));
        broken.write_value(&Value::U64(2));
        assert_eq!(broken.lines_written(), 0);
        assert!(broken.io_error().is_some());
        assert!(broken.into_sink().is_err());
    }

    #[test]
    fn writes_one_tagged_line_per_event() {
        let mut w = TraceWriter::new(Vec::new());
        let t = SimTime::from_secs(12);
        w.on_request_arrival(t, &sample_request());
        w.on_swap(t, SwapKind::Balancing);
        let sat = SatisfiedRequest {
            sequence: 3,
            pair: NodePair::new(NodeId(0), NodeId(4)),
            arrival_time: SimTime::from_secs(12),
            satisfied_at: SimTime::from_secs(13),
            shortest_path_hops: 4,
            repair_swaps: 0,
            fidelity: None,
        };
        w.on_request_satisfied(SimTime::from_secs(13), &sat);
        w.on_request_dropped(SimTime::from_secs(14), &sample_request());
        assert_eq!(w.lines_written(), 4);

        let text = String::from_utf8(w.into_sink().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let arrival: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(arrival["kind"], "arrival");
        assert_eq!(arrival["sequence"], 3);
        assert_eq!(arrival["pair"][1], 4);
        let satisfied: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(satisfied["kind"], "satisfied");
        assert_eq!(satisfied["sojourn_s"], 1.0);
        assert_eq!(satisfied["hops"], 4);
        let dropped: Value = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(dropped["kind"], "drop");
    }

    #[test]
    fn pair_events_are_opt_in() {
        let edge = NodePair::new(NodeId(0), NodeId(1));
        let mut quiet = TraceWriter::new(Vec::new());
        quiet.on_pair_generated(SimTime::ZERO, edge);
        quiet.on_pair_lost(SimTime::ZERO, edge);
        quiet.on_pair_expired(SimTime::ZERO, edge);
        assert_eq!(quiet.lines_written(), 0);

        let mut loud = TraceWriter::new(Vec::new()).with_pair_events();
        loud.on_pair_generated(SimTime::ZERO, edge);
        loud.on_pair_lost(SimTime::ZERO, edge);
        loud.on_pair_expired(SimTime::ZERO, edge);
        assert_eq!(loud.lines_written(), 3);
        let text = String::from_utf8(loud.into_sink().unwrap()).unwrap();
        assert!(text.contains("\"pair_generated\""));
        assert!(text.contains("\"pair_lost\""));
        assert!(text.contains("\"pair_expired\""));
    }

    #[test]
    fn physics_records_carry_fidelity() {
        let mut w = TraceWriter::new(Vec::new());
        let sat = SatisfiedRequest {
            sequence: 1,
            pair: NodePair::new(NodeId(0), NodeId(4)),
            arrival_time: SimTime::ZERO,
            satisfied_at: SimTime::from_secs(2),
            shortest_path_hops: 3,
            repair_swaps: 0,
            fidelity: Some(0.87),
        };
        w.on_request_satisfied(SimTime::from_secs(2), &sat);
        w.on_fidelity_rejected(SimTime::from_secs(3), &sample_request(), 0.41);
        let text = String::from_utf8(w.into_sink().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let satisfied: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(satisfied["fidelity"], 0.87);
        let rejected: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(rejected["kind"], "fidelity_reject");
        assert_eq!(rejected["fidelity"], 0.41);
    }

    #[test]
    fn traces_a_full_run_deterministically() {
        use crate::classical::KnowledgeModel;
        use crate::config::NetworkConfig;
        use crate::network::QuantumNetworkWorld;
        use crate::policy::PolicyId;
        use crate::workload::WorkloadSpec;
        use qnet_sim::{Engine, EventQueue, StopCondition};
        use qnet_topology::Topology;

        let run = || {
            let spec = WorkloadSpec::open_loop(7, 5, 0.5, 100.0);
            let mut queue = EventQueue::new();
            let mut world = QuantumNetworkWorld::new(
                NetworkConfig::new(Topology::Cycle { nodes: 7 }),
                spec.generate(5),
                PolicyId::OBLIVIOUS.instantiate(),
                KnowledgeModel::Global,
                5,
                &mut queue,
            );
            let trace = Arc::new(Mutex::new(TraceWriter::new(Vec::new())));
            world.add_observer(Box::new(Arc::clone(&trace)));
            let mut engine = Engine::new(world);
            while let Some(ev) = queue.pop() {
                engine.queue_mut().schedule_at(ev.time, ev.event);
            }
            engine.run(StopCondition::at_horizon(SimTime::from_secs(300)));
            drop(engine); // releases the world's clone of the observer Arc
            let writer = Arc::into_inner(trace)
                .expect("sole owner after the run")
                .into_inner()
                .unwrap();
            String::from_utf8(writer.into_sink().unwrap()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "traces must be seed-deterministic");
        assert!(a.lines().any(|l| l.contains("\"arrival\"")));
        assert!(a.lines().any(|l| l.contains("\"satisfied\"")));
        for line in a.lines() {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(!v["kind"].is_null());
        }
    }
}
