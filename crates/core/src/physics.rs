//! Link physics: fidelity-tracked, age-aware entanglement.
//!
//! The paper's evaluation treats Bell pairs as interchangeable tokens; this
//! module makes them first-class *physical* objects when the experiment asks
//! for it. A [`PhysicsModel`] travels on [`crate::config::NetworkConfig`]:
//!
//! * [`PhysicsModel::Ideal`] — the default, and exactly today's semantics:
//!   pairs are ageless count-space tokens, nothing new is simulated and all
//!   results stay byte-identical to the pre-physics stack;
//! * [`PhysicsModel::Decoherent`] — every stored pair carries a creation
//!   timestamp and a birth fidelity. Stored pairs decay under the Werner
//!   model of [`qnet_quantum::decoherence::DecoherenceModel`]; a swap at
//!   time `t` ages both input pairs to `t` and composes them with
//!   [`qnet_quantum::swap::swap_werner_fidelity`], restarting the product's
//!   clock at the composed fidelity; an optional cutoff discards pairs that
//!   outlive their usefulness (as timed simulation events); and an optional
//!   end-to-end fidelity floor turns deliveries below threshold into a
//!   distinct failure class ([`crate::metrics::RunMetrics::fidelity_rejected_requests`]).
//!
//! Which stored pairs a consumption or swap draws is governed by the
//! [`ConsumeOrder`] knob: oldest-first (FIFO — the natural queue discipline
//! of a quantum memory) or newest-first (LIFO — sacrifice freshness
//! ordering to serve requests with the best pairs). The choice is invisible
//! under ideal physics and only shifts *which* fidelities are delivered
//! under decoherent physics; counts are unaffected.
//!
//! Serialization keeps the compatibility contract of the rest of the stack:
//! configs and campaign grids omit the physics field entirely when it is
//! `Ideal`, so pre-physics JSON round-trips byte-for-byte and legacy
//! documents deserialize with `Ideal` implied.

use qnet_quantum::decoherence::{CutoffPolicy, DecoherenceModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which stored pair a consumption or swap input draws from a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsumeOrder {
    /// FIFO: the oldest stored pair is used first (drains decaying memory
    /// before it expires).
    OldestFirst,
    /// LIFO: the most recently stored pair is used first (best delivered
    /// fidelity, at the cost of letting old pairs rot to the cutoff).
    NewestFirst,
}

/// The physical model stored entanglement obeys during a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum PhysicsModel {
    /// The paper's idealisation (and the default): pairs are ageless,
    /// noiseless tokens. Today's exact semantics — byte-identical results.
    #[default]
    Ideal,
    /// Pairs carry age and fidelity; memories decay.
    Decoherent {
        /// Fidelity of a freshly generated (elementary) pair.
        initial_fidelity: f64,
        /// Memory coherence time in seconds (the Werner-parameter 1/e time).
        coherence_time_s: f64,
        /// Discard stored pairs older than this many seconds (`None`
        /// disables the cutoff). Enforced as timed simulation events,
        /// reported through [`crate::observer::RunObserver::on_pair_expired`].
        cutoff_s: Option<f64>,
        /// Minimum end-to-end fidelity a delivery must meet; deliveries
        /// below it consume their pairs but count as fidelity-rejected
        /// instead of satisfied. `None` accepts every delivery.
        fidelity_floor: Option<f64>,
        /// Which stored pair a consumption or swap input draws.
        order: ConsumeOrder,
    },
}

impl PhysicsModel {
    /// Default birth fidelity of elementary pairs under decoherent physics,
    /// when a spec does not say otherwise (heralded entanglement sources in
    /// the Davis et al. survey's range).
    pub const DEFAULT_INITIAL_FIDELITY: f64 = 0.98;

    /// The ideal (default) model.
    pub fn ideal() -> Self {
        PhysicsModel::Ideal
    }

    /// A decoherent model with the given coherence time, the default
    /// initial fidelity, no cutoff, no floor, oldest-first consumption.
    pub fn decoherent(coherence_time_s: f64) -> Self {
        assert!(
            coherence_time_s > 0.0 && coherence_time_s.is_finite(),
            "coherence time must be positive and finite"
        );
        PhysicsModel::Decoherent {
            initial_fidelity: Self::DEFAULT_INITIAL_FIDELITY,
            coherence_time_s,
            cutoff_s: None,
            fidelity_floor: None,
            order: ConsumeOrder::OldestFirst,
        }
    }

    /// Builder: set the elementary-pair birth fidelity (decoherent models
    /// only; a no-op on `Ideal`). If a fidelity floor is already set, the
    /// derived storage cutoff is recomputed from the new birth fidelity, so
    /// the builder order does not matter.
    pub fn with_initial_fidelity(mut self, f0: f64) -> Self {
        assert!((0.25..=1.0).contains(&f0), "fidelity must be in [1/4, 1]");
        if let PhysicsModel::Decoherent {
            initial_fidelity,
            fidelity_floor,
            ..
        } = &mut self
        {
            *initial_fidelity = f0;
            if let Some(floor) = *fidelity_floor {
                self = self.with_fidelity_floor(floor);
            }
        }
        self
    }

    /// Builder: set an explicit storage-age cutoff in seconds.
    pub fn with_cutoff_age(mut self, max_age_s: f64) -> Self {
        assert!(max_age_s > 0.0, "cutoff age must be positive");
        if let PhysicsModel::Decoherent { cutoff_s, .. } = &mut self {
            *cutoff_s = max_age_s.is_finite().then_some(max_age_s);
        }
        self
    }

    /// Builder: require deliveries to meet `floor`, and derive the storage
    /// cutoff from it — pairs are discarded once a *fresh* pair of the same
    /// age would have decayed below the floor, so storage never holds pairs
    /// that cannot meet the bar on their own.
    ///
    /// # Panics
    /// Panics if `floor` is outside `[1/4, 1)` or (on a decoherent model)
    /// not strictly below the birth fidelity — such a floor would discard
    /// every pair at creation and the run could never deliver anything.
    pub fn with_fidelity_floor(mut self, floor: f64) -> Self {
        assert!(
            (0.25..1.0).contains(&floor),
            "fidelity floor must be in [1/4, 1)"
        );
        if let PhysicsModel::Decoherent {
            initial_fidelity,
            coherence_time_s,
            cutoff_s,
            fidelity_floor,
            ..
        } = &mut self
        {
            assert!(
                floor < *initial_fidelity,
                "fidelity floor {floor} must be below the initial fidelity {initial_fidelity}"
            );
            *fidelity_floor = Some(floor);
            let model = DecoherenceModel::with_coherence_time(*coherence_time_s);
            let cutoff = CutoffPolicy::from_fidelity_floor(&model, *initial_fidelity, floor);
            *cutoff_s = cutoff.max_age_s.is_finite().then_some(cutoff.max_age_s);
        }
        self
    }

    /// Builder: set the consumption order.
    pub fn with_consume_order(mut self, new_order: ConsumeOrder) -> Self {
        if let PhysicsModel::Decoherent { order, .. } = &mut self {
            *order = new_order;
        }
        self
    }

    /// True for the ideal (token) model.
    pub fn is_ideal(&self) -> bool {
        matches!(self, PhysicsModel::Ideal)
    }

    /// The decay model stored pairs obey (`DecoherenceModel::ideal()` under
    /// ideal physics).
    pub fn decoherence_model(&self) -> DecoherenceModel {
        match *self {
            PhysicsModel::Ideal => DecoherenceModel::ideal(),
            PhysicsModel::Decoherent {
                coherence_time_s, ..
            } => DecoherenceModel::with_coherence_time(coherence_time_s),
        }
    }

    /// The storage-age cutoff in seconds, if any.
    pub fn cutoff_s(&self) -> Option<f64> {
        match *self {
            PhysicsModel::Ideal => None,
            PhysicsModel::Decoherent { cutoff_s, .. } => cutoff_s,
        }
    }

    /// The delivery fidelity floor, if any.
    pub fn fidelity_floor(&self) -> Option<f64> {
        match *self {
            PhysicsModel::Ideal => None,
            PhysicsModel::Decoherent { fidelity_floor, .. } => fidelity_floor,
        }
    }

    /// Birth fidelity of elementary pairs (1.0 under ideal physics).
    pub fn initial_fidelity(&self) -> f64 {
        match *self {
            PhysicsModel::Ideal => 1.0,
            PhysicsModel::Decoherent {
                initial_fidelity, ..
            } => initial_fidelity,
        }
    }

    /// The consumption order (oldest-first under ideal physics, where it is
    /// unobservable).
    pub fn consume_order(&self) -> ConsumeOrder {
        match *self {
            PhysicsModel::Ideal => ConsumeOrder::OldestFirst,
            PhysicsModel::Decoherent { order, .. } => order,
        }
    }

    /// Parse a CLI physics spec. Grammar (the `campaign --physics` axis):
    ///
    /// * `ideal` — the default token model;
    /// * `decoherent:T2` — Werner decay with coherence time `T2` seconds;
    /// * `decoherent:T2:FLOOR` — additionally require deliveries to meet
    ///   `FLOOR`, with the storage cutoff derived from it
    ///   (see [`PhysicsModel::with_fidelity_floor`]).
    ///
    /// Unknown names fail with an error enumerating the valid specs.
    pub fn parse(spec: &str) -> Result<PhysicsModel, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts[0] {
            "ideal" => {
                if parts.len() > 1 {
                    return Err(format!("{spec}: ideal takes no parameters"));
                }
                Ok(PhysicsModel::Ideal)
            }
            "decoherent" => {
                let t2: f64 = parts
                    .get(1)
                    .ok_or_else(|| format!("{spec}: decoherent needs a coherence time"))?
                    .parse()
                    .map_err(|_| format!("{spec}: bad coherence time"))?;
                if !(t2 > 0.0 && t2.is_finite()) {
                    return Err(format!(
                        "{spec}: coherence time must be positive and finite"
                    ));
                }
                if parts.len() > 3 {
                    return Err(format!("{spec}: decoherent takes at most two parameters"));
                }
                let mut model = PhysicsModel::decoherent(t2);
                if let Some(floor_s) = parts.get(2) {
                    let floor: f64 = floor_s
                        .parse()
                        .map_err(|_| format!("{spec}: bad fidelity floor"))?;
                    if !(0.25..1.0).contains(&floor) {
                        return Err(format!("{spec}: fidelity floor must be in [0.25, 1)"));
                    }
                    if floor >= model.initial_fidelity() {
                        return Err(format!(
                            "{spec}: fidelity floor must be below the initial fidelity {}",
                            model.initial_fidelity()
                        ));
                    }
                    model = model.with_fidelity_floor(floor);
                }
                Ok(model)
            }
            other => Err(format!(
                "unknown physics model '{other}' (valid: ideal, decoherent:T2, \
                 decoherent:T2:FLOOR; see --list-physics)"
            )),
        }
    }

    /// A compact human label (used by campaign summaries and dry runs).
    pub fn label(&self) -> String {
        match *self {
            PhysicsModel::Ideal => "ideal".to_string(),
            PhysicsModel::Decoherent {
                coherence_time_s,
                fidelity_floor,
                ..
            } => match fidelity_floor {
                Some(floor) => format!("decoherent:{coherence_time_s}:{floor}"),
                None => format!("decoherent:{coherence_time_s}"),
            },
        }
    }
}

impl fmt::Display for PhysicsModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_the_default_and_answers_ideally() {
        let p = PhysicsModel::default();
        assert!(p.is_ideal());
        assert_eq!(p.initial_fidelity(), 1.0);
        assert_eq!(p.cutoff_s(), None);
        assert_eq!(p.fidelity_floor(), None);
        assert!(p.decoherence_model().coherence_time_s.is_infinite());
        assert_eq!(p.consume_order(), ConsumeOrder::OldestFirst);
        assert_eq!(p.label(), "ideal");
    }

    #[test]
    fn decoherent_builders_compose() {
        let p = PhysicsModel::decoherent(2.0)
            .with_initial_fidelity(0.95)
            .with_consume_order(ConsumeOrder::NewestFirst);
        assert!(!p.is_ideal());
        assert_eq!(p.initial_fidelity(), 0.95);
        assert_eq!(p.consume_order(), ConsumeOrder::NewestFirst);
        assert_eq!(p.cutoff_s(), None);
        let d = p.decoherence_model();
        assert_eq!(d.coherence_time_s, 2.0);
    }

    #[test]
    fn fidelity_floor_derives_the_cutoff() {
        let p = PhysicsModel::decoherent(1.0).with_fidelity_floor(0.8);
        assert_eq!(p.fidelity_floor(), Some(0.8));
        let cutoff = p.cutoff_s().expect("finite cutoff");
        // At the cutoff age, a fresh pair decays exactly to the floor.
        let f = p
            .decoherence_model()
            .fidelity_after(p.initial_fidelity(), cutoff);
        assert!((f - 0.8).abs() < 1e-9, "cutoff {cutoff} → {f}");
    }

    #[test]
    fn builder_order_cannot_leave_a_stale_cutoff() {
        // Floor first, then a different birth fidelity: the cutoff must be
        // re-derived from the *new* fidelity, identically to the other
        // builder order.
        let a = PhysicsModel::decoherent(1.0)
            .with_fidelity_floor(0.8)
            .with_initial_fidelity(0.9);
        let b = PhysicsModel::decoherent(1.0)
            .with_initial_fidelity(0.9)
            .with_fidelity_floor(0.8);
        assert_eq!(a, b);
        let cutoff = a.cutoff_s().unwrap();
        let f = a.decoherence_model().fidelity_after(0.9, cutoff);
        assert!((f - 0.8).abs() < 1e-9, "cutoff {cutoff} → {f}");
    }

    #[test]
    #[should_panic]
    fn floor_at_or_above_birth_fidelity_panics() {
        // A floor the freshest pair cannot meet would silently discard
        // every pair at creation; refuse it loudly instead.
        let _ = PhysicsModel::decoherent(1.0)
            .with_initial_fidelity(0.5)
            .with_fidelity_floor(0.9);
    }

    #[test]
    fn explicit_cutoff_age() {
        let p = PhysicsModel::decoherent(5.0).with_cutoff_age(3.0);
        assert_eq!(p.cutoff_s(), Some(3.0));
        // Infinite cutoff disables.
        let p = PhysicsModel::decoherent(5.0).with_cutoff_age(f64::INFINITY);
        assert_eq!(p.cutoff_s(), None);
    }

    #[test]
    fn parse_grammar() {
        assert_eq!(PhysicsModel::parse("ideal").unwrap(), PhysicsModel::Ideal);
        let p = PhysicsModel::parse("decoherent:2.5").unwrap();
        assert_eq!(p.decoherence_model().coherence_time_s, 2.5);
        assert_eq!(p.fidelity_floor(), None);
        let p = PhysicsModel::parse("decoherent:2.5:0.8").unwrap();
        assert_eq!(p.fidelity_floor(), Some(0.8));
        assert!(p.cutoff_s().is_some());

        for bad in [
            "bogus",
            "decoherent",
            "decoherent:x",
            "decoherent:-1",
            "decoherent:1:1.5",
            "decoherent:1:0.99",
            "decoherent:1:0.8:9",
            "ideal:1",
        ] {
            let err = PhysicsModel::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
        // Unknown names enumerate the grammar.
        let err = PhysicsModel::parse("noisy").unwrap_err();
        assert!(
            err.contains("ideal") && err.contains("decoherent:T2"),
            "{err}"
        );
    }

    #[test]
    fn serialization_round_trips() {
        for p in [
            PhysicsModel::Ideal,
            PhysicsModel::decoherent(1.5),
            PhysicsModel::decoherent(1.5)
                .with_fidelity_floor(0.7)
                .with_consume_order(ConsumeOrder::NewestFirst),
        ] {
            let v = p.to_value();
            let back = PhysicsModel::from_value(&v).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    #[should_panic]
    fn non_positive_coherence_time_panics() {
        let _ = PhysicsModel::decoherent(0.0);
    }
}
