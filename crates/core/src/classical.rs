//! Classical-communication cost accounting.
//!
//! Swapping, teleportation and distillation all require classical messages
//! (paper §2 "Classical overheads" and the §4 note about sharing the
//! `|N| choose 2` edge counts). The simulation does not model classical
//! latency — the paper argues high-speed classical networks make it feasible
//! — but it *does* count the messages and bits each knowledge model incurs,
//! so the §6 gossip experiment can quantify the savings.

use serde::{Deserialize, Serialize};

/// Accumulated classical-communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassicalStats {
    /// Messages carrying a swap's 2-bit Bell-measurement result to one of
    /// the newly entangled endpoints.
    pub correction_messages: u64,
    /// Total correction payload in bits (2 per correction message).
    pub correction_bits: u64,
    /// Messages carrying buffer-count updates between nodes.
    pub count_update_messages: u64,
    /// Messages used to deliver consumption (teleportation) corrections.
    pub teleport_messages: u64,
}

impl ClassicalStats {
    /// New, all-zero counters.
    pub fn new() -> Self {
        ClassicalStats::default()
    }

    /// Record the classical completion of one swap: the 2-bit measurement
    /// result is sent to one endpoint.
    pub fn record_swap_correction(&mut self) {
        self.correction_messages += 1;
        self.correction_bits += 2;
    }

    /// Record the classical completion of one teleportation (2 bits to the
    /// destination).
    pub fn record_teleportation(&mut self) {
        self.teleport_messages += 1;
        self.correction_bits += 2;
    }

    /// Record `messages` buffer-count update messages.
    pub fn record_count_updates(&mut self, messages: u64) {
        self.count_update_messages += messages;
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.correction_messages + self.count_update_messages + self.teleport_messages
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &ClassicalStats) {
        self.correction_messages += other.correction_messages;
        self.correction_bits += other.correction_bits;
        self.count_update_messages += other.count_update_messages;
        self.teleport_messages += other.teleport_messages;
    }
}

/// How nodes learn the network-wide buffer counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KnowledgeModel {
    /// The paper's baseline assumption: immediate global knowledge of every
    /// `C_x(y)`. Each inventory change is broadcast to all other nodes.
    Global,
    /// The §6 BitTorrent-like relaxation: on each swap scan a node refreshes
    /// the counts of only `peers_per_refresh` rotating peers.
    Gossip {
        /// How many peers' count rows are refreshed per scan.
        peers_per_refresh: usize,
    },
}

impl KnowledgeModel {
    /// Count-update messages incurred when one inventory change is
    /// disseminated under this model to a network of `n` nodes.
    pub fn messages_per_change(&self, n: usize) -> u64 {
        match self {
            // The two endpoints already know; everyone else must be told.
            KnowledgeModel::Global => n.saturating_sub(2) as u64,
            // Changes are *not* pushed; peers pull during their refresh.
            KnowledgeModel::Gossip { .. } => 0,
        }
    }

    /// Count-update messages incurred by one node's swap scan.
    pub fn messages_per_scan(&self) -> u64 {
        match self {
            KnowledgeModel::Global => 0,
            KnowledgeModel::Gossip { peers_per_refresh } => *peers_per_refresh as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = ClassicalStats::new();
        s.record_swap_correction();
        s.record_swap_correction();
        s.record_teleportation();
        s.record_count_updates(10);
        assert_eq!(s.correction_messages, 2);
        assert_eq!(s.correction_bits, 6);
        assert_eq!(s.teleport_messages, 1);
        assert_eq!(s.count_update_messages, 10);
        assert_eq!(s.total_messages(), 13);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ClassicalStats::new();
        a.record_swap_correction();
        let mut b = ClassicalStats::new();
        b.record_count_updates(5);
        b.record_teleportation();
        a.merge(&b);
        assert_eq!(a.correction_messages, 1);
        assert_eq!(a.count_update_messages, 5);
        assert_eq!(a.teleport_messages, 1);
        assert_eq!(a.total_messages(), 7);
    }

    #[test]
    fn knowledge_model_message_counts() {
        let global = KnowledgeModel::Global;
        assert_eq!(global.messages_per_change(25), 23);
        assert_eq!(global.messages_per_change(2), 0);
        assert_eq!(global.messages_per_scan(), 0);

        let gossip = KnowledgeModel::Gossip {
            peers_per_refresh: 3,
        };
        assert_eq!(gossip.messages_per_change(25), 0);
        assert_eq!(gossip.messages_per_scan(), 3);
    }
}
