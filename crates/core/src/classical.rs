//! Classical-communication cost accounting.
//!
//! Swapping, teleportation and distillation all require classical messages
//! (paper §2 "Classical overheads" and the §4 note about sharing the
//! `|N| choose 2` edge counts). The simulation does not model classical
//! latency — the paper argues high-speed classical networks make it feasible
//! — but it *does* count the messages and bits each knowledge model incurs,
//! so the §6 gossip experiment can quantify the savings.

use serde::{DeError, Deserialize, Serialize, Value};

/// Accumulated classical-communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassicalStats {
    /// Messages carrying a swap's 2-bit Bell-measurement result to one of
    /// the newly entangled endpoints.
    pub correction_messages: u64,
    /// Total correction payload in bits (2 per correction message).
    pub correction_bits: u64,
    /// Messages carrying buffer-count updates between nodes.
    pub count_update_messages: u64,
    /// Messages used to deliver consumption (teleportation) corrections.
    pub teleport_messages: u64,
}

impl ClassicalStats {
    /// New, all-zero counters.
    pub fn new() -> Self {
        ClassicalStats::default()
    }

    /// Record the classical completion of one swap: the 2-bit measurement
    /// result is sent to one endpoint.
    pub fn record_swap_correction(&mut self) {
        self.correction_messages += 1;
        self.correction_bits += 2;
    }

    /// Record the classical completion of one teleportation (2 bits to the
    /// destination).
    pub fn record_teleportation(&mut self) {
        self.teleport_messages += 1;
        self.correction_bits += 2;
    }

    /// Record `messages` buffer-count update messages.
    pub fn record_count_updates(&mut self, messages: u64) {
        self.count_update_messages += messages;
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.correction_messages + self.count_update_messages + self.teleport_messages
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &ClassicalStats) {
        self.correction_messages += other.correction_messages;
        self.correction_bits += other.correction_bits;
        self.count_update_messages += other.count_update_messages;
        self.teleport_messages += other.teleport_messages;
    }
}

/// How nodes learn the network-wide buffer counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnowledgeModel {
    /// The paper's baseline assumption: immediate global knowledge of every
    /// `C_x(y)`. Each inventory change is broadcast to all other nodes.
    Global,
    /// The §6 BitTorrent-like relaxation: nodes periodically pull the count
    /// rows of `peers_per_refresh` rotating peers. Under the default stale
    /// control plane ([`crate::control`]) the pulled rows arrive after the
    /// classical propagation delay and policies decide on the resulting
    /// stale views; `QNET_KNOWLEDGE=truth` reverts to the legacy
    /// message-counting-only behaviour (instant refresh at every scan).
    Gossip {
        /// How many peers' count rows are refreshed per exchange.
        peers_per_refresh: usize,
        /// Seconds between a node's gossip exchanges. `0.0` (the legacy
        /// default, omitted from serialized form) couples the exchange to
        /// the swap-scan cadence: one exchange per `1 / swap_scan_rate`.
        refresh_period_s: f64,
    },
}

// Manual serde: the externally-tagged bytes must stay identical to the
// pre-period encoding for legacy values, so `refresh_period_s` is emitted
// only when nonzero and defaults to `0.0` when absent.
impl Serialize for KnowledgeModel {
    fn to_value(&self) -> Value {
        match self {
            KnowledgeModel::Global => Value::Str(String::from("Global")),
            KnowledgeModel::Gossip {
                peers_per_refresh,
                refresh_period_s,
            } => {
                let mut fields = vec![(
                    String::from("peers_per_refresh"),
                    peers_per_refresh.to_value(),
                )];
                if *refresh_period_s > 0.0 {
                    fields.push((
                        String::from("refresh_period_s"),
                        refresh_period_s.to_value(),
                    ));
                }
                Value::Map(vec![(String::from("Gossip"), Value::Map(fields))])
            }
        }
    }
}

impl Deserialize for KnowledgeModel {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s == "Global" => Ok(KnowledgeModel::Global),
            Value::Map(entries) if entries.len() == 1 && entries[0].0 == "Gossip" => {
                let inner = &entries[0].1;
                let peers_per_refresh = Deserialize::from_value(
                    inner.get_field("peers_per_refresh").unwrap_or(&Value::Null),
                )?;
                let refresh_period_s = match inner.get_field("refresh_period_s") {
                    None | Some(Value::Null) => 0.0,
                    Some(v) => Deserialize::from_value(v)?,
                };
                Ok(KnowledgeModel::Gossip {
                    peers_per_refresh,
                    refresh_period_s,
                })
            }
            _ => Err(DeError::expected("KnowledgeModel variant", value)),
        }
    }
}

impl KnowledgeModel {
    /// Count-update messages incurred when one inventory change is
    /// disseminated under this model to a network of `n` nodes.
    pub fn messages_per_change(&self, n: usize) -> u64 {
        match self {
            // The two endpoints already know; everyone else must be told.
            KnowledgeModel::Global => n.saturating_sub(2) as u64,
            // Changes are *not* pushed; peers pull during their refresh.
            KnowledgeModel::Gossip { .. } => 0,
        }
    }

    /// Count-update messages incurred by one node's swap scan.
    pub fn messages_per_scan(&self) -> u64 {
        match self {
            KnowledgeModel::Global => 0,
            KnowledgeModel::Gossip {
                peers_per_refresh, ..
            } => *peers_per_refresh as u64,
        }
    }

    /// Parse the campaign/CLI knowledge grammar: `global`, `gossip:K`, or
    /// `gossip:K:PERIOD` (peers per refresh `K`, refresh period in
    /// seconds; omitted period couples exchanges to the swap-scan
    /// cadence).
    pub fn parse(spec: &str) -> Result<KnowledgeModel, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("global") {
            return Ok(KnowledgeModel::Global);
        }
        let rest = spec
            .strip_prefix("gossip:")
            .ok_or_else(|| format!("unknown knowledge model '{spec}' (expected 'global', 'gossip:K', or 'gossip:K:PERIOD')"))?;
        let (peers_part, period_part) = match rest.split_once(':') {
            Some((p, t)) => (p, Some(t)),
            None => (rest, None),
        };
        let peers_per_refresh: usize = peers_part
            .parse()
            .map_err(|_| format!("invalid gossip peer count '{peers_part}'"))?;
        if peers_per_refresh == 0 {
            return Err("gossip peer count must be at least 1".to_string());
        }
        let refresh_period_s = match period_part {
            None => 0.0,
            Some(t) => {
                let period: f64 = t
                    .parse()
                    .map_err(|_| format!("invalid gossip refresh period '{t}'"))?;
                if period.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err("gossip refresh period must be positive".to_string());
                }
                period
            }
        };
        Ok(KnowledgeModel::Gossip {
            peers_per_refresh,
            refresh_period_s,
        })
    }

    /// The canonical grammar label for this model (inverse of
    /// [`KnowledgeModel::parse`]).
    pub fn label(&self) -> String {
        match self {
            KnowledgeModel::Global => "global".to_string(),
            KnowledgeModel::Gossip {
                peers_per_refresh,
                refresh_period_s,
            } => {
                if *refresh_period_s > 0.0 {
                    format!("gossip:{peers_per_refresh}:{refresh_period_s}")
                } else {
                    format!("gossip:{peers_per_refresh}")
                }
            }
        }
    }

    /// `true` for models whose runs consult stale believed counts under
    /// the default control-plane backend (i.e. everything but `Global`).
    pub fn is_stale(&self) -> bool {
        !matches!(self, KnowledgeModel::Global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = ClassicalStats::new();
        s.record_swap_correction();
        s.record_swap_correction();
        s.record_teleportation();
        s.record_count_updates(10);
        assert_eq!(s.correction_messages, 2);
        assert_eq!(s.correction_bits, 6);
        assert_eq!(s.teleport_messages, 1);
        assert_eq!(s.count_update_messages, 10);
        assert_eq!(s.total_messages(), 13);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ClassicalStats::new();
        a.record_swap_correction();
        let mut b = ClassicalStats::new();
        b.record_count_updates(5);
        b.record_teleportation();
        a.merge(&b);
        assert_eq!(a.correction_messages, 1);
        assert_eq!(a.count_update_messages, 5);
        assert_eq!(a.teleport_messages, 1);
        assert_eq!(a.total_messages(), 7);
    }

    #[test]
    fn knowledge_model_message_counts() {
        let global = KnowledgeModel::Global;
        assert_eq!(global.messages_per_change(25), 23);
        assert_eq!(global.messages_per_change(2), 0);
        assert_eq!(global.messages_per_scan(), 0);

        let gossip = KnowledgeModel::Gossip {
            peers_per_refresh: 3,
            refresh_period_s: 0.0,
        };
        assert_eq!(gossip.messages_per_change(25), 0);
        assert_eq!(gossip.messages_per_scan(), 3);
    }

    #[test]
    fn knowledge_model_grammar_round_trips() {
        assert_eq!(KnowledgeModel::parse("global"), Ok(KnowledgeModel::Global));
        assert_eq!(
            KnowledgeModel::parse("gossip:3"),
            Ok(KnowledgeModel::Gossip {
                peers_per_refresh: 3,
                refresh_period_s: 0.0,
            })
        );
        assert_eq!(
            KnowledgeModel::parse("gossip:2:0.5"),
            Ok(KnowledgeModel::Gossip {
                peers_per_refresh: 2,
                refresh_period_s: 0.5,
            })
        );
        for spec in ["global", "gossip:3", "gossip:2:0.5"] {
            let model = KnowledgeModel::parse(spec).unwrap();
            assert_eq!(model.label(), spec);
            assert_eq!(KnowledgeModel::parse(&model.label()), Ok(model));
        }
        assert!(KnowledgeModel::parse("gossip:0").is_err());
        assert!(KnowledgeModel::parse("gossip:2:-1").is_err());
        assert!(KnowledgeModel::parse("psychic").is_err());
    }

    #[test]
    fn knowledge_model_legacy_bytes_are_preserved() {
        // The period field must be invisible at its 0.0 default so legacy
        // grids/caches keep their exact bytes and fingerprints.
        let legacy = KnowledgeModel::Gossip {
            peers_per_refresh: 4,
            refresh_period_s: 0.0,
        };
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            "{\"Gossip\":{\"peers_per_refresh\":4}}"
        );
        assert_eq!(
            serde_json::to_string(&KnowledgeModel::Global).unwrap(),
            "\"Global\""
        );
        let timed = KnowledgeModel::Gossip {
            peers_per_refresh: 4,
            refresh_period_s: 0.5,
        };
        assert_eq!(
            serde_json::to_string(&timed).unwrap(),
            "{\"Gossip\":{\"peers_per_refresh\":4,\"refresh_period_s\":0.5}}"
        );
        for model in [KnowledgeModel::Global, legacy, timed] {
            let back = KnowledgeModel::from_value(&model.to_value()).unwrap();
            assert_eq!(back, model);
        }
    }
}
