//! Consumption workloads.
//!
//! The paper's evaluation (§5) draws **35 consumer pairs** from the set of
//! all `(|N| choose 2)` node pairs and builds "a sequence of consumption
//! requests from these pairs that must be satisfied in the order of the
//! sequence" — explicitly to avoid biasing the cost toward easy-to-satisfy
//! pairs. [`WorkloadSpec`] reproduces that construction and adds the knobs
//! the ablation experiments use (request count, selection discipline,
//! restriction to distinct pairs).

use qnet_sim::SimRng;
use qnet_topology::{NodeId, NodePair};
use serde::{Deserialize, Serialize};

/// How requests are drawn from the consumer-pair set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestDiscipline {
    /// Each request is an independent uniform draw from the consumer pairs.
    UniformRandom,
    /// Requests cycle deterministically through the consumer pairs.
    RoundRobin,
}

/// Specification of a consumption workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of nodes in the network (pairs are drawn over these).
    pub node_count: usize,
    /// Number of distinct consumer pairs (the paper uses 35; capped at the
    /// number of available pairs for small networks).
    pub consumer_pairs: usize,
    /// Total number of consumption requests in the sequence.
    pub requests: usize,
    /// How requests are drawn from the consumer pairs.
    pub discipline: RequestDiscipline,
}

impl WorkloadSpec {
    /// The paper's default: 35 consumer pairs, one request per pair
    /// (sequential), uniform-random ordering.
    pub fn paper_default(node_count: usize) -> Self {
        WorkloadSpec {
            node_count,
            consumer_pairs: 35,
            requests: 35,
            discipline: RequestDiscipline::UniformRandom,
        }
    }

    /// Builder: set the number of requests.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Builder: set the number of distinct consumer pairs.
    pub fn with_consumer_pairs(mut self, pairs: usize) -> Self {
        self.consumer_pairs = pairs;
        self
    }

    /// Builder: set the request discipline.
    pub fn with_discipline(mut self, discipline: RequestDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Materialise the workload with the given RNG seed.
    pub fn generate(&self, seed: u64) -> Workload {
        let max_pairs = self.node_count * self.node_count.saturating_sub(1) / 2;
        assert!(
            max_pairs > 0,
            "need at least two nodes to form consumer pairs"
        );
        let wanted = self.consumer_pairs.min(max_pairs).max(1);

        let mut rng = SimRng::new(seed).derive("workload");

        // Draw `wanted` distinct pairs uniformly from all (n choose 2) pairs
        // by shuffling the full pair list (n is experiment-scale, so this is
        // cheap and unbiased).
        let mut all: Vec<NodePair> = qnet_topology::pairs::all_pairs(self.node_count).collect();
        rng.shuffle(&mut all);
        let mut consumers: Vec<NodePair> = all.into_iter().take(wanted).collect();
        consumers.sort_unstable();

        let mut requests = Vec::with_capacity(self.requests);
        for k in 0..self.requests {
            let pair = match self.discipline {
                RequestDiscipline::UniformRandom => *rng.choose(&consumers).expect("non-empty"),
                RequestDiscipline::RoundRobin => consumers[k % consumers.len()],
            };
            requests.push(ConsumptionRequest {
                sequence: k as u64,
                pair,
            });
        }

        Workload {
            consumers,
            requests,
        }
    }
}

/// One consumption request: the pair that wants a Bell pair for
/// teleportation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumptionRequest {
    /// Position in the sequence (0-based). Requests must be satisfied in
    /// this order.
    pub sequence: u64,
    /// The consuming pair.
    pub pair: NodePair,
}

/// A materialised workload: the consumer-pair set and the ordered request
/// sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The distinct consumer pairs.
    pub consumers: Vec<NodePair>,
    /// The ordered request sequence.
    pub requests: Vec<ConsumptionRequest>,
}

impl Workload {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Build a workload directly from an explicit request list (used by
    /// tests and by the hybrid experiments).
    pub fn from_pairs(pairs: Vec<NodePair>) -> Self {
        let mut consumers = pairs.clone();
        consumers.sort_unstable();
        consumers.dedup();
        let requests = pairs
            .into_iter()
            .enumerate()
            .map(|(k, pair)| ConsumptionRequest {
                sequence: k as u64,
                pair,
            })
            .collect();
        Workload {
            consumers,
            requests,
        }
    }

    /// The distinct nodes that appear in at least one consumer pair.
    pub fn consumer_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .consumers
            .iter()
            .flat_map(|p| [p.lo(), p.hi()])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let spec = WorkloadSpec::paper_default(25);
        let w = spec.generate(1);
        assert_eq!(w.consumers.len(), 35);
        assert_eq!(w.len(), 35);
        // All consumers are distinct and canonical.
        let mut seen = w.consumers.clone();
        seen.dedup();
        assert_eq!(seen.len(), 35);
        // Every request comes from the consumer set.
        assert!(w.requests.iter().all(|r| w.consumers.contains(&r.pair)));
        // Sequence numbers are 0..n in order.
        assert!(w
            .requests
            .iter()
            .enumerate()
            .all(|(k, r)| r.sequence == k as u64));
    }

    #[test]
    fn small_networks_cap_consumer_pairs() {
        let spec = WorkloadSpec::paper_default(5);
        let w = spec.generate(3);
        assert_eq!(w.consumers.len(), 10, "5 choose 2");
        assert!(!w.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::paper_default(16).with_requests(100);
        let a = spec.generate(42);
        let b = spec.generate(42);
        let c = spec.generate(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_robin_cycles_through_consumers() {
        let spec = WorkloadSpec {
            node_count: 10,
            consumer_pairs: 4,
            requests: 12,
            discipline: RequestDiscipline::RoundRobin,
        };
        let w = spec.generate(7);
        assert_eq!(w.consumers.len(), 4);
        for (k, r) in w.requests.iter().enumerate() {
            assert_eq!(r.pair, w.consumers[k % 4]);
        }
    }

    #[test]
    fn uniform_random_uses_all_consumers_eventually() {
        let spec = WorkloadSpec {
            node_count: 10,
            consumer_pairs: 5,
            requests: 500,
            discipline: RequestDiscipline::UniformRandom,
        };
        let w = spec.generate(11);
        for c in &w.consumers {
            assert!(
                w.requests.iter().any(|r| r.pair == *c),
                "{c} never requested"
            );
        }
    }

    #[test]
    fn from_pairs_and_consumer_nodes() {
        let pairs = vec![
            NodePair::new(NodeId(3), NodeId(1)),
            NodePair::new(NodeId(1), NodeId(3)),
            NodePair::new(NodeId(0), NodeId(2)),
        ];
        let w = Workload::from_pairs(pairs);
        assert_eq!(w.len(), 3);
        assert_eq!(w.consumers.len(), 2, "duplicates removed");
        assert_eq!(
            w.consumer_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    #[should_panic]
    fn single_node_network_panics() {
        let _ = WorkloadSpec::paper_default(1).generate(0);
    }
}
