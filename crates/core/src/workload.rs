//! Consumption workloads: traffic models over consumer-pair sets.
//!
//! The paper's evaluation (§5) draws **35 consumer pairs** from the set of
//! all `(|N| choose 2)` node pairs and builds "a sequence of consumption
//! requests from these pairs that must be satisfied in the order of the
//! sequence" — explicitly to avoid biasing the cost toward easy-to-satisfy
//! pairs. That closed-loop batch is one point in a larger workload space: a
//! production quantum internet serves *open-loop* load (requests arrive over
//! time at some offered rate, à la the asynchronous-routing evaluations of
//! Yang et al.) with *skewed* per-pair demand.
//!
//! [`WorkloadSpec`] factors that space into two orthogonal axes:
//!
//! * a [`TrafficModel`] — **when** requests arrive:
//!   [`TrafficModel::ClosedLoopBatch`] (the paper's semantics: a fixed batch,
//!   all pending at `t = 0`) or [`TrafficModel::OpenLoopPoisson`] (a Poisson
//!   arrival process at `rate_hz` over an arrival horizon), and
//! * a [`PairSelection`] — **which** consumer pair each request draws:
//!   uniform, round-robin, or Zipf-skewed by popularity rank.
//!
//! [`WorkloadSpec::generate`] materialises a spec into a [`Workload`]: the
//! consumer-pair set plus the full request sequence with per-request
//! [`ConsumptionRequest::arrival_time`]s. Closed-loop batches reproduce the
//! pre-traffic-model request streams byte-for-byte (same RNG draw order),
//! and legacy flat `WorkloadSpec` JSON (`node_count` / `consumer_pairs` /
//! `requests` / `discipline`) still round-trips — see the serialization
//! shim at the bottom of this module.

use qnet_sim::{SimRng, SimTime};
use qnet_topology::{NodeId, NodePair};
use serde::{DeError, Deserialize, Serialize, Value};

/// How requests are drawn from the consumer-pair set.
///
/// Serialized with the same variant labels the legacy `RequestDiscipline`
/// enum used (`"UniformRandom"` / `"RoundRobin"`), so existing configs and
/// campaign reports keep their bytes; [`PairSelection::ZipfSkew`] extends
/// the value space for skewed demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PairSelection {
    /// Each request is an independent uniform draw from the consumer pairs.
    UniformRandom,
    /// Requests cycle deterministically through the consumer pairs.
    RoundRobin,
    /// Zipf-distributed popularity: the rank-`r` consumer pair (in the
    /// generated consumer ordering) is drawn with probability proportional
    /// to `1 / r^s`. `s = 0` degenerates to uniform; larger `s` concentrates
    /// demand on a few hot pairs.
    ZipfSkew {
        /// The skew exponent `s ≥ 0`.
        s: f64,
    },
}

/// Legacy name for the pre-traffic-model selection enum, kept as a
/// compatibility shim (same spirit as `ProtocolMode` for policies). New code
/// should use [`PairSelection`]; the two share serialized labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestDiscipline {
    /// Each request is an independent uniform draw from the consumer pairs.
    UniformRandom,
    /// Requests cycle deterministically through the consumer pairs.
    RoundRobin,
}

impl From<RequestDiscipline> for PairSelection {
    fn from(d: RequestDiscipline) -> PairSelection {
        match d {
            RequestDiscipline::UniformRandom => PairSelection::UniformRandom,
            RequestDiscipline::RoundRobin => PairSelection::RoundRobin,
        }
    }
}

/// When consumption requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// The paper's §5 semantics: a fixed batch of requests, all pending at
    /// `t = 0`, satisfied in sequence order.
    ClosedLoopBatch {
        /// Total number of consumption requests in the batch.
        requests: usize,
    },
    /// Open-loop offered load: requests arrive as a Poisson process at
    /// `rate_hz` for `horizon_s` simulated seconds. The request count is a
    /// random variable of the seed (mean `rate_hz × horizon_s`).
    OpenLoopPoisson {
        /// Mean arrival rate in requests per simulated second.
        rate_hz: f64,
        /// Arrivals stop after this many simulated seconds (the run itself
        /// may continue to its own horizon to drain the queue).
        horizon_s: f64,
    },
}

/// Specification of a consumption workload: a consumer-pair set, a traffic
/// model and a pair-selection discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of nodes in the network (pairs are drawn over these).
    pub node_count: usize,
    /// Number of distinct consumer pairs (the paper uses 35; capped at the
    /// number of available pairs for small networks).
    pub consumer_pairs: usize,
    /// When requests arrive.
    pub traffic: TrafficModel,
    /// How requests are drawn from the consumer pairs.
    pub selection: PairSelection,
}

impl WorkloadSpec {
    /// The paper's default: 35 consumer pairs, one closed-loop request per
    /// pair (sequential), uniform-random ordering.
    pub fn paper_default(node_count: usize) -> Self {
        WorkloadSpec {
            node_count,
            consumer_pairs: 35,
            traffic: TrafficModel::ClosedLoopBatch { requests: 35 },
            selection: PairSelection::UniformRandom,
        }
    }

    /// A closed-loop batch workload (the pre-traffic-model constructor).
    pub fn closed_loop(node_count: usize, consumer_pairs: usize, requests: usize) -> Self {
        WorkloadSpec {
            node_count,
            consumer_pairs,
            traffic: TrafficModel::ClosedLoopBatch { requests },
            selection: PairSelection::UniformRandom,
        }
    }

    /// An open-loop Poisson workload offering `rate_hz` requests per second
    /// for `horizon_s` simulated seconds.
    pub fn open_loop(
        node_count: usize,
        consumer_pairs: usize,
        rate_hz: f64,
        horizon_s: f64,
    ) -> Self {
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        assert!(
            horizon_s > 0.0 && horizon_s.is_finite(),
            "arrival horizon must be positive and finite"
        );
        WorkloadSpec {
            node_count,
            consumer_pairs,
            traffic: TrafficModel::OpenLoopPoisson { rate_hz, horizon_s },
            selection: PairSelection::UniformRandom,
        }
    }

    /// Builder: make the workload a closed-loop batch of `requests`.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.traffic = TrafficModel::ClosedLoopBatch { requests };
        self
    }

    /// Builder: set the number of distinct consumer pairs.
    pub fn with_consumer_pairs(mut self, pairs: usize) -> Self {
        self.consumer_pairs = pairs;
        self
    }

    /// Builder: set the pair-selection discipline (accepts the legacy
    /// [`RequestDiscipline`] variants as well as [`PairSelection`]).
    pub fn with_discipline(mut self, selection: impl Into<PairSelection>) -> Self {
        self.selection = selection.into();
        self
    }

    /// Builder: set the traffic model.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// True for open-loop traffic models.
    pub fn is_open_loop(&self) -> bool {
        matches!(self.traffic, TrafficModel::OpenLoopPoisson { .. })
    }

    /// The nominal request count: the batch size for closed-loop traffic,
    /// the *expected* arrival count (`rate × horizon`, rounded) for
    /// open-loop traffic. Used for reporting; the realised open-loop count
    /// varies by seed.
    pub fn nominal_requests(&self) -> usize {
        match self.traffic {
            TrafficModel::ClosedLoopBatch { requests } => requests,
            TrafficModel::OpenLoopPoisson { rate_hz, horizon_s } => {
                (rate_hz * horizon_s).round() as usize
            }
        }
    }

    /// The offered arrival rate, for open-loop traffic.
    pub fn arrival_rate_hz(&self) -> Option<f64> {
        match self.traffic {
            TrafficModel::OpenLoopPoisson { rate_hz, .. } => Some(rate_hz),
            TrafficModel::ClosedLoopBatch { .. } => None,
        }
    }

    /// Materialise the workload with the given RNG seed.
    ///
    /// Closed-loop batches draw exactly the same RNG stream as the
    /// pre-traffic-model implementation (consumer shuffle, then one draw per
    /// uniform request), so legacy runs are byte-identical. Open-loop
    /// arrival gaps come from an independent derived stream (`"arrivals"`),
    /// so pair selection stays aligned across traffic models.
    ///
    /// This is [`WorkloadSpec::stream`] collected to a `Vec`: the lazy and
    /// eager paths share one generator, so they cannot drift apart.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut stream = self.stream(seed);
        let mut requests = Vec::with_capacity(self.nominal_requests() + 1);
        while let Some(request) = stream.next_request() {
            requests.push(request);
        }
        Workload {
            consumers: stream.consumers,
            requests,
        }
    }

    /// Lazily generate the workload's request sequence.
    ///
    /// Yields exactly the requests [`WorkloadSpec::generate`] materialises,
    /// in order, with identical RNG draws: the consumer shuffle happens up
    /// front on the `"workload"` stream, pair selection continues on that
    /// stream one draw per request, and open-loop arrival gaps come from
    /// the independent `"arrivals"` stream — because the two streams are
    /// independent, interleaving their draws (one gap + one pair per
    /// request) produces the same values as the eager all-gaps-then-all-
    /// pairs order. This is what lets the simulation schedule 10⁶–10⁷
    /// Poisson arrivals in small batches without ever materialising the
    /// request vector.
    pub fn stream(&self, seed: u64) -> ArrivalStream {
        let max_pairs = self.node_count * self.node_count.saturating_sub(1) / 2;
        assert!(
            max_pairs > 0,
            "need at least two nodes to form consumer pairs"
        );
        let wanted = self.consumer_pairs.min(max_pairs).max(1);

        let mut rng = SimRng::new(seed).derive("workload");

        // Draw `wanted` distinct pairs uniformly from all (n choose 2) pairs
        // by shuffling the full pair list (n is experiment-scale, so this is
        // cheap and unbiased).
        let mut all: Vec<NodePair> = qnet_topology::pairs::all_pairs(self.node_count).collect();
        rng.shuffle(&mut all);
        let mut consumers: Vec<NodePair> = all.into_iter().take(wanted).collect();
        consumers.sort_unstable();

        let zipf_cdf = match self.selection {
            PairSelection::ZipfSkew { s } => Some(zipf_cdf(consumers.len(), s)),
            _ => None,
        };
        let traffic = match self.traffic {
            TrafficModel::ClosedLoopBatch { requests } => TrafficState::Closed {
                remaining: requests,
            },
            TrafficModel::OpenLoopPoisson { rate_hz, horizon_s } => {
                assert!(rate_hz > 0.0, "arrival rate must be positive");
                assert!(
                    horizon_s > 0.0 && horizon_s.is_finite(),
                    "arrival horizon must be positive and finite"
                );
                TrafficState::Open {
                    rng: SimRng::new(seed).derive("arrivals"),
                    rate_hz,
                    horizon_s,
                    t: 0.0,
                    exhausted: false,
                }
            }
        };

        ArrivalStream {
            consumers,
            selection: self.selection,
            zipf_cdf,
            selection_rng: rng,
            traffic,
            next_seq: 0,
        }
    }
}

/// Traffic-model position of an [`ArrivalStream`].
#[derive(Debug, Clone)]
enum TrafficState {
    /// Closed-loop batch: `remaining` requests left, all at `t = 0`.
    Closed { remaining: usize },
    /// Open-loop Poisson: the `"arrivals"` RNG plus the current arrival
    /// clock, exhausted once a gap overshoots the horizon.
    Open {
        rng: SimRng,
        rate_hz: f64,
        horizon_s: f64,
        t: f64,
        exhausted: bool,
    },
}

/// A lazily evaluated request sequence: the self-contained generator state
/// (consumer set, selection discipline, both RNG streams) that yields the
/// same [`ConsumptionRequest`]s [`WorkloadSpec::generate`] would
/// materialise, one at a time. Carried by the simulation world so open-loop
/// arrivals can be scheduled in batches — memory stays flat no matter how
/// many requests the horizon implies.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    consumers: Vec<NodePair>,
    selection: PairSelection,
    zipf_cdf: Option<Vec<f64>>,
    /// The `"workload"` RNG, positioned just past the consumer shuffle.
    selection_rng: SimRng,
    traffic: TrafficState,
    next_seq: u64,
}

impl ArrivalStream {
    /// The distinct consumer pairs (fixed at stream construction).
    pub fn consumers(&self) -> &[NodePair] {
        &self.consumers
    }

    /// Number of requests yielded so far.
    pub fn yielded(&self) -> u64 {
        self.next_seq
    }

    /// The next request, or `None` once the traffic model is exhausted
    /// (permanently: the stream is fused).
    pub fn next_request(&mut self) -> Option<ConsumptionRequest> {
        let ArrivalStream {
            consumers,
            selection,
            zipf_cdf,
            selection_rng,
            traffic,
            next_seq,
        } = self;
        let arrival_time = match traffic {
            TrafficState::Closed { remaining } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                SimTime::ZERO
            }
            TrafficState::Open {
                rng,
                rate_hz,
                horizon_s,
                t,
                exhausted,
            } => {
                if *exhausted {
                    return None;
                }
                *t += rng.sample_exponential(*rate_hz);
                if *t > *horizon_s {
                    *exhausted = true;
                    return None;
                }
                SimTime::from_secs_f64(*t)
            }
        };
        let pair = match selection {
            PairSelection::UniformRandom => *selection_rng.choose(consumers).expect("non-empty"),
            PairSelection::RoundRobin => consumers[(*next_seq as usize) % consumers.len()],
            PairSelection::ZipfSkew { .. } => {
                let cdf = zipf_cdf.as_deref().expect("computed at construction");
                consumers[sample_cdf(cdf, selection_rng.uniform())]
            }
        };
        let sequence = *next_seq;
        *next_seq += 1;
        Some(ConsumptionRequest {
            sequence,
            pair,
            arrival_time,
        })
    }
}

/// Cumulative Zipf weights: `cdf[r] = Σ_{i≤r} (i+1)^-s`, normalised to 1.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "Zipf needs at least one rank");
    assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be ≥ 0");
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += (rank as f64).powf(-s);
        cdf.push(total);
    }
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

/// Index of the first CDF entry ≥ `u` (binary search; `u ∈ [0, 1)`).
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// One consumption request: the pair that wants a Bell pair for
/// teleportation, and when the request entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumptionRequest {
    /// Position in the arrival sequence (0-based). Closed-loop requests must
    /// be satisfied in this order.
    pub sequence: u64,
    /// The consuming pair.
    pub pair: NodePair,
    /// Simulated time at which the request arrives (always `t = 0` for
    /// closed-loop batches).
    pub arrival_time: SimTime,
}

/// A materialised workload: the consumer-pair set and the ordered request
/// sequence (non-decreasing arrival times).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The distinct consumer pairs.
    pub consumers: Vec<NodePair>,
    /// The ordered request sequence.
    pub requests: Vec<ConsumptionRequest>,
}

impl Workload {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Build a workload directly from an explicit request list, all arriving
    /// at `t = 0` (used by tests and by the hybrid experiments).
    pub fn from_pairs(pairs: Vec<NodePair>) -> Self {
        let mut consumers = pairs.clone();
        consumers.sort_unstable();
        consumers.dedup();
        let requests = pairs
            .into_iter()
            .enumerate()
            .map(|(k, pair)| ConsumptionRequest {
                sequence: k as u64,
                pair,
                arrival_time: SimTime::ZERO,
            })
            .collect();
        Workload {
            consumers,
            requests,
        }
    }

    /// The distinct nodes that appear in at least one consumer pair.
    pub fn consumer_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .consumers
            .iter()
            .flat_map(|p| [p.lo(), p.hi()])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

// ---------------------------------------------------------------------------
// Serialization back-compat shim
// ---------------------------------------------------------------------------
//
// The pre-traffic-model `WorkloadSpec` was a flat struct serialized as
// `{node_count, consumer_pairs, requests, discipline}`. Closed-loop specs
// keep exactly that layout (so existing configs and campaign fingerprints
// stay byte-identical), with `discipline` now carrying the full
// `PairSelection` value space; open-loop specs add a `traffic` field in
// place of `requests`. Deserialization accepts both layouts.

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("node_count".to_string(), self.node_count.to_value()),
            ("consumer_pairs".to_string(), self.consumer_pairs.to_value()),
        ];
        match self.traffic {
            TrafficModel::ClosedLoopBatch { requests } => {
                entries.push(("requests".to_string(), requests.to_value()));
            }
            TrafficModel::OpenLoopPoisson { .. } => {
                entries.push(("traffic".to_string(), self.traffic.to_value()));
            }
        }
        entries.push(("discipline".to_string(), self.selection.to_value()));
        Value::Map(entries)
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("WorkloadSpec object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let traffic = match value.get_field("traffic") {
            Some(t) => TrafficModel::from_value(t)?,
            None => TrafficModel::ClosedLoopBatch {
                requests: usize::from_value(field("requests"))?,
            },
        };
        Ok(WorkloadSpec {
            node_count: usize::from_value(field("node_count"))?,
            consumer_pairs: usize::from_value(field("consumer_pairs"))?,
            traffic,
            selection: PairSelection::from_value(field("discipline"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let spec = WorkloadSpec::paper_default(25);
        let w = spec.generate(1);
        assert_eq!(w.consumers.len(), 35);
        assert_eq!(w.len(), 35);
        // All consumers are distinct and canonical.
        let mut seen = w.consumers.clone();
        seen.dedup();
        assert_eq!(seen.len(), 35);
        // Every request comes from the consumer set and arrives at t = 0.
        assert!(w.requests.iter().all(|r| w.consumers.contains(&r.pair)));
        assert!(w.requests.iter().all(|r| r.arrival_time == SimTime::ZERO));
        // Sequence numbers are 0..n in order.
        assert!(w
            .requests
            .iter()
            .enumerate()
            .all(|(k, r)| r.sequence == k as u64));
    }

    #[test]
    fn small_networks_cap_consumer_pairs() {
        let spec = WorkloadSpec::paper_default(5);
        let w = spec.generate(3);
        assert_eq!(w.consumers.len(), 10, "5 choose 2");
        assert!(!w.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::paper_default(16).with_requests(100);
        let a = spec.generate(42);
        let b = spec.generate(42);
        let c = spec.generate(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_robin_cycles_through_consumers() {
        let spec = WorkloadSpec::closed_loop(10, 4, 12).with_discipline(PairSelection::RoundRobin);
        let w = spec.generate(7);
        assert_eq!(w.consumers.len(), 4);
        for (k, r) in w.requests.iter().enumerate() {
            assert_eq!(r.pair, w.consumers[k % 4]);
        }
    }

    #[test]
    fn uniform_random_uses_all_consumers_eventually() {
        let spec = WorkloadSpec::closed_loop(10, 5, 500);
        let w = spec.generate(11);
        for c in &w.consumers {
            assert!(
                w.requests.iter().any(|r| r.pair == *c),
                "{c} never requested"
            );
        }
    }

    #[test]
    fn from_pairs_and_consumer_nodes() {
        let pairs = vec![
            NodePair::new(NodeId(3), NodeId(1)),
            NodePair::new(NodeId(1), NodeId(3)),
            NodePair::new(NodeId(0), NodeId(2)),
        ];
        let w = Workload::from_pairs(pairs);
        assert_eq!(w.len(), 3);
        assert_eq!(w.consumers.len(), 2, "duplicates removed");
        assert_eq!(
            w.consumer_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    #[should_panic]
    fn single_node_network_panics() {
        let _ = WorkloadSpec::paper_default(1).generate(0);
    }

    // --- open-loop traffic -------------------------------------------------

    #[test]
    fn poisson_arrivals_are_deterministic_per_seed() {
        let spec = WorkloadSpec::open_loop(10, 5, 2.0, 200.0);
        let a = spec.generate(9);
        let b = spec.generate(9);
        let c = spec.generate(10);
        assert_eq!(a, b, "same seed must reproduce the arrival sequence");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_bounded() {
        let spec = WorkloadSpec::open_loop(10, 5, 3.0, 100.0);
        let w = spec.generate(4);
        let horizon = SimTime::from_secs_f64(100.0);
        assert!(!w.is_empty());
        for pair in w.requests.windows(2) {
            assert!(pair[0].arrival_time <= pair[1].arrival_time);
        }
        assert!(w.requests.iter().all(|r| r.arrival_time <= horizon));
        assert!(w.requests.first().unwrap().arrival_time > SimTime::ZERO);
    }

    #[test]
    fn poisson_arrival_count_tracks_offered_load() {
        // 2 Hz over 500 s → 1000 expected arrivals; a 4-sigma band is
        // ±4·√1000 ≈ ±127.
        let spec = WorkloadSpec::open_loop(10, 5, 2.0, 500.0);
        let n = spec.generate(21).len() as f64;
        assert!((n - 1000.0).abs() < 130.0, "got {n} arrivals");
        assert_eq!(spec.nominal_requests(), 1000);
    }

    #[test]
    fn generate_matches_legacy_two_phase_draw_order() {
        // The pre-streaming implementation drew ALL arrival gaps from the
        // "arrivals" stream first, then ALL pair selections from the
        // "workload" stream. The interleaved generator must reproduce that
        // byte-for-byte because the two derived streams are independent.
        for seed in [1u64, 9, 77] {
            let spec = WorkloadSpec::open_loop(10, 5, 2.0, 200.0);

            let mut rng = SimRng::new(seed).derive("workload");
            let mut all: Vec<NodePair> = qnet_topology::pairs::all_pairs(10).collect();
            rng.shuffle(&mut all);
            let mut consumers: Vec<NodePair> = all.into_iter().take(5).collect();
            consumers.sort_unstable();

            // Phase 1: every arrival instant, before any pair draw.
            let mut arr = SimRng::new(seed).derive("arrivals");
            let mut times = Vec::new();
            let mut t = 0.0f64;
            loop {
                t += arr.sample_exponential(2.0);
                if t > 200.0 {
                    break;
                }
                times.push(SimTime::from_secs_f64(t));
            }
            // Phase 2: one uniform pair draw per request.
            let legacy: Vec<ConsumptionRequest> = times
                .iter()
                .enumerate()
                .map(|(k, &arrival_time)| ConsumptionRequest {
                    sequence: k as u64,
                    pair: *rng.choose(&consumers).unwrap(),
                    arrival_time,
                })
                .collect();

            let w = spec.generate(seed);
            assert_eq!(w.consumers, consumers);
            assert_eq!(w.requests, legacy);
        }
    }

    #[test]
    fn stream_is_fused_and_matches_generate() {
        let spec = WorkloadSpec::open_loop(10, 5, 2.0, 100.0);
        let w = spec.generate(13);
        let mut s = spec.stream(13);
        assert_eq!(s.consumers(), w.consumers.as_slice());
        let mut collected = Vec::new();
        while let Some(r) = s.next_request() {
            collected.push(r);
        }
        assert_eq!(collected, w.requests);
        assert_eq!(s.yielded(), w.len() as u64);
        assert!(s.next_request().is_none(), "stream is fused");
        assert!(s.next_request().is_none());
    }

    #[test]
    fn closed_loop_stream_matches_generate() {
        let spec = WorkloadSpec::closed_loop(12, 6, 300)
            .with_discipline(PairSelection::ZipfSkew { s: 1.2 });
        let w = spec.generate(5);
        let mut s = spec.stream(5);
        let mut collected = Vec::new();
        while let Some(r) = s.next_request() {
            collected.push(r);
        }
        assert_eq!(collected, w.requests);
    }

    #[test]
    fn zipf_selection_orders_frequencies_by_rank() {
        let spec = WorkloadSpec::closed_loop(12, 6, 3000)
            .with_discipline(PairSelection::ZipfSkew { s: 1.2 });
        let w = spec.generate(5);
        let counts: Vec<usize> = w
            .consumers
            .iter()
            .map(|c| w.requests.iter().filter(|r| r.pair == *c).count())
            .collect();
        // Rank 1 must dominate, and the head must far outweigh the tail.
        assert!(counts[0] > counts[counts.len() - 1]);
        assert!(
            counts[0] as f64 > 0.3 * w.len() as f64,
            "head pair got only {} of {}",
            counts[0],
            w.len()
        );
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let spec = WorkloadSpec::closed_loop(12, 6, 6000)
            .with_discipline(PairSelection::ZipfSkew { s: 0.0 });
        let w = spec.generate(8);
        for c in &w.consumers {
            let share = w.requests.iter().filter(|r| r.pair == *c).count() as f64 / w.len() as f64;
            assert!((share - 1.0 / 6.0).abs() < 0.03, "share {share}");
        }
    }

    #[test]
    fn zipf_cdf_shape() {
        let cdf = zipf_cdf(4, 1.0);
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        // Harmonic weights 1, 1/2, 1/3, 1/4 over 25/12.
        assert!((cdf[0] - 12.0 / 25.0).abs() < 1e-12);
        assert_eq!(sample_cdf(&cdf, 0.0), 0);
        assert_eq!(sample_cdf(&cdf, 0.999999), 3);
    }

    // --- serialization shim ------------------------------------------------

    #[test]
    fn closed_loop_serializes_to_the_legacy_flat_layout() {
        let spec = WorkloadSpec::closed_loop(9, 10, 12);
        let v = spec.to_value();
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            vec!["node_count", "consumer_pairs", "requests", "discipline"],
            "legacy byte layout"
        );
        assert_eq!(v["requests"], 12);
        assert_eq!(v["discipline"], "UniformRandom");
    }

    #[test]
    fn legacy_flat_maps_deserialize_into_closed_loop() {
        let legacy = Value::Map(vec![
            ("node_count".into(), Value::U64(9)),
            ("consumer_pairs".into(), Value::U64(10)),
            ("requests".into(), Value::U64(12)),
            ("discipline".into(), Value::Str("RoundRobin".into())),
        ]);
        let spec = WorkloadSpec::from_value(&legacy).unwrap();
        assert_eq!(spec.traffic, TrafficModel::ClosedLoopBatch { requests: 12 });
        assert_eq!(spec.selection, PairSelection::RoundRobin);
        // And it re-serializes to the same bytes.
        assert_eq!(spec.to_value(), legacy);
    }

    #[test]
    fn open_loop_specs_round_trip() {
        let spec = WorkloadSpec::open_loop(9, 10, 1.5, 400.0)
            .with_discipline(PairSelection::ZipfSkew { s: 0.9 });
        let v = spec.to_value();
        assert!(v.get_field("requests").is_none(), "no legacy key");
        let back = WorkloadSpec::from_value(&v).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn legacy_request_discipline_converts() {
        assert_eq!(
            PairSelection::from(RequestDiscipline::UniformRandom),
            PairSelection::UniformRandom
        );
        assert_eq!(
            PairSelection::from(RequestDiscipline::RoundRobin),
            PairSelection::RoundRobin
        );
        // Shared serialized labels.
        assert_eq!(
            RequestDiscipline::UniformRandom.to_value(),
            PairSelection::UniformRandom.to_value()
        );
    }
}
