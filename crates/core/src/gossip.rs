//! Partial-knowledge (gossip) dissemination of buffer counts — paper §6.
//!
//! The baseline protocol assumes every node knows every `C_x(y)` instantly,
//! which costs `O(|N|)` messages per inventory change. The paper suggests a
//! BitTorrent-like relaxation where each node tracks only a rotating, small
//! set of peers. [`GossipState`] models that: every node keeps a *stale copy*
//! of the global count matrix and, on each of its swap scans, refreshes the
//! rows of a few peers (chosen round-robin so coverage rotates). The
//! balancer then consults the stale copy for remote counts while always
//! using ground truth for the node's own pools.

use crate::balancer::CountView;
use crate::inventory::Inventory;
use qnet_topology::{NodeId, NodePair, PairMatrix};

/// Per-node stale views of the pair-count matrix.
#[derive(Debug, Clone)]
pub struct GossipState {
    /// `views[x]` is node `x`'s belief about every pair count.
    views: Vec<PairMatrix<u64>>,
    /// Next peer index each node will refresh (rotates).
    cursor: Vec<usize>,
    /// Peers refreshed per scan.
    peers_per_refresh: usize,
}

impl GossipState {
    /// Create a gossip state for `n` nodes where each scan refreshes
    /// `peers_per_refresh` peers' rows.
    pub fn new(n: usize, peers_per_refresh: usize) -> Self {
        assert!(
            peers_per_refresh >= 1,
            "must refresh at least one peer per scan"
        );
        GossipState {
            views: vec![PairMatrix::new(n); n],
            cursor: vec![0; n],
            peers_per_refresh,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.views.len()
    }

    /// Peers refreshed per scan.
    pub fn peers_per_refresh(&self) -> usize {
        self.peers_per_refresh
    }

    /// Node `node` refreshes its view of the next `peers_per_refresh` peers
    /// (round-robin over all other nodes), copying those peers' count rows
    /// from the ground-truth inventory. Returns the number of peers actually
    /// refreshed (= messages exchanged).
    pub fn refresh(&mut self, node: NodeId, truth: &Inventory) -> u64 {
        let n = self.node_count();
        if n <= 1 {
            return 0;
        }
        let mut refreshed = 0;
        for _ in 0..self.peers_per_refresh.min(n - 1) {
            // Advance the cursor, skipping the node itself.
            let mut peer = self.cursor[node.index()] % n;
            if peer == node.index() {
                peer = (peer + 1) % n;
            }
            self.cursor[node.index()] = (peer + 1) % n;
            let peer_id = NodeId::from(peer);
            // Copy the peer's row: every pair that contains the peer.
            for other in (0..n).map(NodeId::from) {
                if other == peer_id {
                    continue;
                }
                let pair = NodePair::new(peer_id, other);
                self.views[node.index()].set(pair, truth.count(pair));
            }
            refreshed += 1;
        }
        refreshed
    }

    /// The (possibly stale) count view held by `node`.
    pub fn view_of(&self, node: NodeId) -> StaleView<'_> {
        StaleView {
            counts: &self.views[node.index()],
        }
    }

    /// Update `node`'s own knowledge of a pair it participates in (a node
    /// always knows its own buffers; this keeps the stale matrix consistent
    /// for pairs the node can see directly).
    pub fn observe_local(&mut self, node: NodeId, pair: NodePair, count: u64) {
        if pair.contains(node) {
            self.views[node.index()].set(pair, count);
        }
    }
}

/// A borrowed stale count view implementing [`CountView`].
#[derive(Debug, Clone, Copy)]
pub struct StaleView<'a> {
    counts: &'a PairMatrix<u64>,
}

impl CountView for StaleView<'_> {
    fn count(&self, pair: NodePair) -> u64 {
        *self.counts.get(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{BalancerPolicy, CountView};

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn fresh_state_sees_zero_everywhere() {
        let g = GossipState::new(5, 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.view_of(NodeId(0)).count(pair(1, 2)), 0);
    }

    #[test]
    fn refresh_copies_peer_rows() {
        let mut truth = Inventory::new(4);
        truth.add_pair(pair(1, 2)).unwrap();
        truth.add_pair(pair(1, 2)).unwrap();
        truth.add_pair(pair(2, 3)).unwrap();

        let mut g = GossipState::new(4, 1);
        // Node 0's first refresh targets peer 1 (cursor starts at 0 = itself,
        // skipped): it learns the counts of pairs containing node 1.
        let msgs = g.refresh(NodeId(0), &truth);
        assert_eq!(msgs, 1);
        assert_eq!(g.view_of(NodeId(0)).count(pair(1, 2)), 2);
        // Pairs not containing the refreshed peer stay stale.
        assert_eq!(g.view_of(NodeId(0)).count(pair(2, 3)), 0);
        // The next refresh targets peer 2 and picks up the remaining pair.
        g.refresh(NodeId(0), &truth);
        assert_eq!(g.view_of(NodeId(0)).count(pair(2, 3)), 1);
    }

    #[test]
    fn rotation_covers_all_peers() {
        let mut truth = Inventory::new(5);
        for other in 1..5u32 {
            truth.add_pair(pair(0, other)).unwrap();
        }
        let mut g = GossipState::new(5, 1);
        // Node 3 refreshes four times: every other node's rows must have been
        // visited, so all pairs containing node 0 that also contain a visited
        // peer are known. After visiting peer 0 itself, all of them are.
        for _ in 0..4 {
            g.refresh(NodeId(3), &truth);
        }
        for other in 1..5u32 {
            assert_eq!(
                g.view_of(NodeId(3)).count(pair(0, other)),
                1,
                "pair (0,{other})"
            );
        }
    }

    #[test]
    fn observe_local_updates_own_pairs_only() {
        let mut g = GossipState::new(4, 1);
        g.observe_local(NodeId(1), pair(1, 3), 7);
        g.observe_local(NodeId(1), pair(0, 2), 9); // not its pair: ignored
        assert_eq!(g.view_of(NodeId(1)).count(pair(1, 3)), 7);
        assert_eq!(g.view_of(NodeId(1)).count(pair(0, 2)), 0);
    }

    #[test]
    fn stale_view_feeds_the_balancer() {
        let mut truth = Inventory::new(3);
        for _ in 0..4 {
            truth.add_pair(pair(0, 1)).unwrap();
            truth.add_pair(pair(1, 2)).unwrap();
        }
        let policy = BalancerPolicy;
        let overhead = |_: NodePair| 1.0;

        // With a never-refreshed view the remote count reads 0, so the swap
        // looks preferable (same decision as ground truth here).
        let g = GossipState::new(3, 1);
        let view = g.view_of(NodeId(1));
        assert!(policy
            .find_preferable_swap(&truth, &view, NodeId(1), &overhead)
            .is_some());

        // Make ground truth rich on (0,2) but keep the view stale: the
        // balancer over-eagerly swaps — exactly the kind of inefficiency the
        // gossip ablation quantifies.
        for _ in 0..10 {
            truth.add_pair(pair(0, 2)).unwrap();
        }
        assert!(policy
            .find_preferable_swap(&truth, &truth, NodeId(1), &overhead)
            .is_none());
        assert!(policy
            .find_preferable_swap(&truth, &view, NodeId(1), &overhead)
            .is_some());
    }

    #[test]
    #[should_panic]
    fn zero_peer_refresh_panics() {
        let _ = GossipState::new(3, 0);
    }
}
