//! Planned-path baselines.
//!
//! The paper (§1, §7) classifies prior art into *connection-oriented*
//! planned-path protocols (a specific path is reserved per request, swaps are
//! performed along it) and *connectionless* variants (the path is chosen per
//! request but Bell pairs at shared links are competed for). This module
//! provides the executable machinery both share: nested swapping along a
//! concrete node path, drawing base pairs from the inventory pools of
//! consecutive path edges, with the distill-before-use cost model described
//! in DESIGN.md (`⌈D⌉` pairs drawn per use).
//!
//! The planned-path swap policies ([`crate::policy::planned`]) drive these
//! executors from inside the simulation harness; the pure analytic optimum
//! used by the swap-overhead metric lives in [`crate::nested`].

use crate::balancer::CountView;
use crate::inventory::Inventory;
use qnet_topology::{NodeId, NodePair};
use std::collections::BTreeMap;

/// A count-space scratch view over an inventory: reads fall through to the
/// base counts, writes land in small overlay maps. Whether a nested build
/// succeeds depends *only* on pool counts, node loads and the buffer limit
/// — never on the lot store — so a dry run against this overlay predicts
/// [`build_segment`]'s verdict exactly without cloning the inventory (whose
/// count matrix alone is N²/2 words — the clone per blocked request was
/// what dominated planned-baseline runs at |N| ≈ 10³). The base counts are
/// ground truth for the exact dry run, or a stale believed view
/// ([`crate::control::KnowledgeView`]) when predicting what a
/// partial-knowledge consumer would decide; loads and the buffer limit
/// always come from truth.
struct CountOverlay<'a> {
    truth: &'a Inventory,
    believed: &'a dyn CountView,
    counts: BTreeMap<NodePair, u64>,
    loads: BTreeMap<NodeId, u64>,
}

impl<'a> CountOverlay<'a> {
    fn new(truth: &'a Inventory) -> Self {
        CountOverlay::with_believed(truth, truth)
    }

    fn with_believed(truth: &'a Inventory, believed: &'a dyn CountView) -> Self {
        CountOverlay {
            truth,
            believed,
            counts: BTreeMap::new(),
            loads: BTreeMap::new(),
        }
    }

    fn count(&self, pair: NodePair) -> u64 {
        self.counts
            .get(&pair)
            .copied()
            .unwrap_or_else(|| self.believed.count(pair))
    }

    fn load(&self, node: NodeId) -> u64 {
        self.loads
            .get(&node)
            .copied()
            .unwrap_or_else(|| self.truth.node_load(node))
    }

    fn add_load(&mut self, node: NodeId, delta: i64) {
        let load = self.load(node) as i64 + delta;
        self.loads.insert(node, load as u64);
    }

    /// Mirror of [`Inventory::apply_swap`]'s count-space bookkeeping,
    /// including its check order: both removals are validated first, then
    /// the product insertion hits the buffer check with the loads already
    /// decremented by the removals.
    fn apply_swap(&mut self, repeater: NodeId, left: NodeId, right: NodeId, k: u64) -> bool {
        let left_pair = NodePair::new(repeater, left);
        let right_pair = NodePair::new(repeater, right);
        if self.count(left_pair) < k || self.count(right_pair) < k {
            return false;
        }
        for (pair, far) in [(left_pair, left), (right_pair, right)] {
            let c = self.count(pair) - k;
            self.counts.insert(pair, c);
            self.add_load(repeater, -(k as i64));
            self.add_load(far, -(k as i64));
        }
        let product = NodePair::new(left, right);
        if let Some(limit) = self.truth.buffer_limit() {
            if self.load(product.lo()) >= limit || self.load(product.hi()) >= limit {
                return false;
            }
        }
        let c = self.count(product) + 1;
        self.counts.insert(product, c);
        self.add_load(product.lo(), 1);
        self.add_load(product.hi(), 1);
        true
    }
}

/// Read-only twin of [`build_segment`]: same recursion, same decisions,
/// mutating only the overlay. Returns whether the build would succeed.
fn dry_run_segment(
    overlay: &mut CountOverlay<'_>,
    path: &[NodeId],
    from: usize,
    to: usize,
    need: u64,
    k: u64,
) -> bool {
    debug_assert!(to > from);
    let pool = NodePair::new(path[from], path[to]);
    let have = overlay.count(pool);
    if have >= need {
        return true;
    }
    if to == from + 1 {
        return false;
    }
    let missing = need - have;
    let mid = from + (to - from) / 2;
    if !dry_run_segment(overlay, path, from, mid, k * missing, k)
        || !dry_run_segment(overlay, path, mid, to, k * missing, k)
    {
        return false;
    }
    for _ in 0..missing {
        if !overlay.apply_swap(path[mid], path[from], path[to], k) {
            return false;
        }
    }
    true
}

/// Ensure at least `need` pairs exist in the pool spanning
/// `path[from] .. path[to]`, creating missing ones by nested swapping.
/// Returns the number of swap operations performed, or `None` if the
/// required base pairs are not available (in which case the inventory may
/// have been partially mutated — callers that need atomicity should work on
/// a clone, as [`execute_nested_along_path`] does).
fn build_segment(
    inventory: &mut Inventory,
    path: &[NodeId],
    from: usize,
    to: usize,
    need: u64,
    k: u64,
) -> Option<u64> {
    debug_assert!(to > from);
    let pool = NodePair::new(path[from], path[to]);
    let have = inventory.count(pool);
    if have >= need {
        return Some(0);
    }
    if to == from + 1 {
        // Base segment: pairs can only come from generation, which is not
        // under the executor's control.
        return None;
    }
    let missing = need - have;
    let mid = from + (to - from) / 2;
    let mut swaps = 0;
    swaps += build_segment(inventory, path, from, mid, k * missing, k)?;
    swaps += build_segment(inventory, path, mid, to, k * missing, k)?;
    for _ in 0..missing {
        inventory
            .apply_swap(path[mid], path[from], path[to], k, k)
            .ok()?;
        swaps += 1;
    }
    Some(swaps)
}

/// Produce `count` raw Bell pairs between the first and last node of `path`
/// by nested swapping along it, atomically: either the pairs are produced and
/// `Some(swap_count)` is returned, or the inventory is left untouched.
///
/// `k` is the `⌈D⌉` distill-before-use factor: each swap draws `k` pairs from
/// each of its two input pools.
pub fn execute_nested_along_path(
    inventory: &mut Inventory,
    path: &[NodeId],
    count: u64,
    k: u64,
) -> Option<u64> {
    assert!(path.len() >= 2, "a swap path needs at least two nodes");
    assert!(k >= 1, "the distillation draw factor is at least one");
    if count == 0 {
        return Some(0);
    }
    // Dry-run the build on a count-space overlay first: its verdict is
    // exact, so a failed attempt (the common case in a congested network)
    // costs a few map entries instead of a full inventory clone, and a
    // successful build can mutate the ground truth directly.
    let mut overlay = CountOverlay::new(inventory);
    if !dry_run_segment(&mut overlay, path, 0, path.len() - 1, count, k) {
        return None;
    }
    let swaps = build_segment(inventory, path, 0, path.len() - 1, count, k)
        .expect("dry run verified count-space feasibility");
    Some(swaps)
}

/// Dry-run the nested build over *believed* counts: whether a consumer that
/// trusts `believed` for pool counts would judge `count` pairs spanning
/// `path` buildable. Node loads and the buffer limit still come from
/// `truth` — they are local-node state every node knows exactly. Used by
/// the stale control plane to separate "believed infeasible, wait" from
/// "believed feasible but truth disagrees — a missed swap".
pub(crate) fn dry_run_nested_along_path(
    truth: &Inventory,
    believed: &dyn CountView,
    path: &[NodeId],
    count: u64,
    k: u64,
) -> bool {
    assert!(path.len() >= 2, "a swap path needs at least two nodes");
    if count == 0 {
        return true;
    }
    let mut overlay = CountOverlay::with_believed(truth, believed);
    dry_run_segment(&mut overlay, path, 0, path.len() - 1, count, k)
}

/// The number of swaps [`execute_nested_along_path`] performs when every base
/// pool is empty of higher-level pairs and fully stocked with generated
/// pairs — i.e. the executable planned-path cost for an `n`-hop path. Equals
/// `⌈D⌉ · swaps_for_one_raw(n)` where `swaps_for_one_raw` follows the nested
/// recursion with joining swaps included.
pub fn planned_path_swap_cost(hops: usize, k: u64) -> u64 {
    fn one_raw(hops: usize, k: u64) -> u64 {
        if hops <= 1 {
            0
        } else {
            let left = hops / 2;
            let right = hops - left;
            1 + k * (one_raw(left, k) + one_raw(right, k))
        }
    }
    k * one_raw(hops, k)
}

/// The number of generated (base) pairs consumed from each edge pool when a
/// full nested execution runs over an `n`-hop path with draw factor `k`:
/// `k^{depth of that edge in the recursion}` summed appropriately. Returned
/// as the total over all edges (useful for provisioning checks in tests and
/// the planned-mode simulator).
pub fn planned_path_base_pairs(hops: usize, k: u64) -> u64 {
    fn base_for(hops: usize, k: u64) -> u64 {
        if hops == 1 {
            1
        } else {
            let left = hops / 2;
            let right = hops - left;
            k * (base_for(left, k) + base_for(right, k))
        }
    }
    k * base_for(hops, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::NodeId;

    fn path_nodes(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    fn stocked_inventory(nodes: usize, per_edge: u64) -> Inventory {
        let mut inv = Inventory::new(nodes);
        for i in 0..nodes - 1 {
            for _ in 0..per_edge {
                inv.add_pair(NodePair::new(NodeId(i as u32), NodeId(i as u32 + 1)))
                    .unwrap();
            }
        }
        inv
    }

    #[test]
    fn two_hop_execution() {
        let mut inv = stocked_inventory(3, 2);
        let swaps = execute_nested_along_path(&mut inv, &path_nodes(3), 1, 1).unwrap();
        assert_eq!(swaps, 1);
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(2))), 1);
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(1))), 1);
        assert_eq!(inv.count(NodePair::new(NodeId(1), NodeId(2))), 1);
    }

    #[test]
    fn four_hop_unit_distillation_uses_three_swaps() {
        let mut inv = stocked_inventory(5, 1);
        let swaps = execute_nested_along_path(&mut inv, &path_nodes(5), 1, 1).unwrap();
        assert_eq!(swaps, 3, "n − 1 swaps for a 4-hop path at D = 1");
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(4))), 1);
        assert_eq!(inv.total_pairs(), 1, "all base pairs consumed");
    }

    #[test]
    fn insufficient_base_pairs_is_atomic() {
        let mut inv = stocked_inventory(5, 1);
        // Remove one base pair so the execution must fail.
        inv.remove_pairs(NodePair::new(NodeId(2), NodeId(3)), 1)
            .unwrap();
        let before = inv.clone();
        assert!(execute_nested_along_path(&mut inv, &path_nodes(5), 1, 1).is_none());
        assert_eq!(
            inv, before,
            "failed execution must not mutate the inventory"
        );
    }

    #[test]
    fn distillation_draw_factor_multiplies_requirements() {
        // k = 2 over 2 hops: one output pair needs 2 pairs on each edge and
        // exactly one swap per output; producing 2 outputs needs 4 per edge.
        let mut inv = stocked_inventory(3, 4);
        let swaps = execute_nested_along_path(&mut inv, &path_nodes(3), 2, 2).unwrap();
        assert_eq!(swaps, 2);
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(2))), 2);
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(1))), 0);
        // With only 3 pairs per edge the same request must fail.
        let mut poor = stocked_inventory(3, 3);
        assert!(execute_nested_along_path(&mut poor, &path_nodes(3), 2, 2).is_none());
    }

    #[test]
    fn four_hop_with_distillation_matches_cost_formula() {
        let k = 2;
        let hops = 4;
        let base_needed = planned_path_base_pairs(hops, k);
        // Per edge the deepest recursion level draws k² pairs; stock each
        // edge generously and check the executed swap count matches the
        // formula.
        let mut inv = stocked_inventory(5, base_needed);
        let swaps = execute_nested_along_path(&mut inv, &path_nodes(5), k, k).unwrap();
        assert_eq!(swaps, planned_path_swap_cost(hops, k));
        assert_eq!(inv.count(NodePair::new(NodeId(0), NodeId(4))), k);
    }

    #[test]
    fn existing_mid_level_pairs_are_reused() {
        // If balancing already produced a (0,2) pair, the executor should use
        // it instead of building a fresh one.
        let mut inv = stocked_inventory(3, 0);
        inv.add_pair(NodePair::new(NodeId(0), NodeId(2))).unwrap();
        let swaps = execute_nested_along_path(&mut inv, &path_nodes(3), 1, 1).unwrap();
        assert_eq!(swaps, 0, "no swap needed, the pair already exists");
    }

    #[test]
    fn cost_formulas_match_hand_computation() {
        // D = 1: planned cost is the textbook n − 1 swaps.
        for hops in 1..10 {
            assert_eq!(planned_path_swap_cost(hops, 1), (hops - 1) as u64);
        }
        // D = 2, 4 hops: top level needs 2 raw end-to-end pairs, each raw
        // pair = 1 swap + 2 raw pairs per half, each of those = 1 swap.
        // one_raw(4) = 1 + 2·(1 + 1) = 5; total = 2·5 = 10.
        assert_eq!(planned_path_swap_cost(4, 2), 10);
        // Base pairs at D = 2 over 2 hops: 2·(1+1)·... = k·k·2 = wait:
        // base_for(2) = 2·(1 + 1) = 4; total = 2·4 = 8.
        assert_eq!(planned_path_base_pairs(2, 2), 8);
        assert_eq!(planned_path_base_pairs(1, 3), 3);
    }

    #[test]
    #[should_panic]
    fn single_node_path_panics() {
        let mut inv = Inventory::new(2);
        let _ = execute_nested_along_path(&mut inv, &[NodeId(0)], 1, 1);
    }
}
