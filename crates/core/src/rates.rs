//! Generation and consumption rate matrices.
//!
//! The paper's LP inputs (§3) are the symmetric rate functions `g(x, y)`
//! (pairwise Bell-pair generation capability, non-zero only on generation-
//! graph edges) and `c(x, y)` (teleportation demand). [`RateMatrices`] bundles
//! both, provides the feasibility sanity checks the paper derives
//! (`Σ_y c(x, y) ≤ Σ_y g(x, y)` per node, consumers connected in the
//! generation graph), and applies the §3.2 QEC thinning.

use qnet_topology::{Graph, NodePair, PairMatrix};
use serde::{Deserialize, Serialize};

/// The symmetric generation and consumption rate matrices over `n` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateMatrices {
    node_count: usize,
    generation: PairMatrix<f64>,
    consumption: PairMatrix<f64>,
}

/// Problems detected by [`RateMatrices::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateValidationError {
    /// A node consumes faster than it can possibly receive pairs
    /// (`Σ_y c(x, y) > Σ_y g(x, y)`).
    NodeOverSubscribed {
        /// The offending node index.
        node: usize,
        /// Its total consumption rate.
        consumption: f64,
        /// Its total generation rate.
        generation: f64,
    },
    /// A consumer pair lies in two different connected components of the
    /// generation graph, so no sequence of swaps can ever serve it.
    ConsumerDisconnected {
        /// The consumer pair.
        pair: (usize, usize),
    },
}

impl RateMatrices {
    /// All-zero rates over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        RateMatrices {
            node_count: n,
            generation: PairMatrix::new(n),
            consumption: PairMatrix::new(n),
        }
    }

    /// Uniform generation rate on every edge of a generation graph, zero
    /// elsewhere, zero consumption (the paper's §5 setting with
    /// `g(x, y) = 1`).
    pub fn uniform_generation(graph: &Graph, rate: f64) -> Self {
        let mut r = RateMatrices::zeros(graph.node_count());
        for (a, b) in graph.edges() {
            r.generation.set(NodePair::new(a, b), rate);
        }
        r
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Generation rate `g(x, y)`.
    pub fn generation(&self, pair: NodePair) -> f64 {
        *self.generation.get(pair)
    }

    /// Consumption rate `c(x, y)`.
    pub fn consumption(&self, pair: NodePair) -> f64 {
        *self.consumption.get(pair)
    }

    /// Set `g(x, y)`.
    pub fn set_generation(&mut self, pair: NodePair, rate: f64) {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rates must be finite and ≥ 0"
        );
        self.generation.set(pair, rate);
    }

    /// Set `c(x, y)`.
    pub fn set_consumption(&mut self, pair: NodePair, rate: f64) {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rates must be finite and ≥ 0"
        );
        self.consumption.set(pair, rate);
    }

    /// Pairs with `g(x, y) > 0` (the generation-graph edges).
    pub fn generation_pairs(&self) -> Vec<NodePair> {
        self.generation.positive_pairs()
    }

    /// Pairs with `c(x, y) > 0` (the consumers).
    pub fn consumption_pairs(&self) -> Vec<NodePair> {
        self.consumption.positive_pairs()
    }

    /// Total generation rate `Σ_{x<y} g(x, y)`.
    pub fn total_generation(&self) -> f64 {
        self.generation.total()
    }

    /// Total consumption rate `Σ_{x<y} c(x, y)`.
    pub fn total_consumption(&self) -> f64 {
        self.consumption.total()
    }

    /// Per-node total generation rate `Σ_y g(x, y)`.
    pub fn node_generation(&self, node: usize) -> f64 {
        self.node_total(&self.generation, node)
    }

    /// Per-node total consumption rate `Σ_y c(x, y)`.
    pub fn node_consumption(&self, node: usize) -> f64 {
        self.node_total(&self.consumption, node)
    }

    fn node_total(&self, m: &PairMatrix<f64>, node: usize) -> f64 {
        m.iter()
            .filter(|(p, _)| p.lo().index() == node || p.hi().index() == node)
            .map(|(_, &v)| v)
            .sum()
    }

    /// The generation graph induced by the positive generation rates.
    pub fn generation_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.node_count);
        for pair in self.generation_pairs() {
            g.add_edge(pair.lo(), pair.hi());
        }
        g
    }

    /// Apply the §3.2 QEC thinning: replace every `g(x, y)` with
    /// `g(x, y) / overhead` (the paper's `R`).
    pub fn with_qec_thinning(mut self, overhead: f64) -> Self {
        assert!(overhead >= 1.0, "QEC overhead must be ≥ 1");
        let pairs = self.generation_pairs();
        for pair in pairs {
            let g = self.generation(pair);
            self.generation.set(pair, g / overhead);
        }
        self
    }

    /// Run the paper's feasibility sanity checks.
    pub fn validate(&self) -> Result<(), Vec<RateValidationError>> {
        let mut errors = Vec::new();
        for node in 0..self.node_count {
            let c = self.node_consumption(node);
            let g = self.node_generation(node);
            if c > g + 1e-12 {
                errors.push(RateValidationError::NodeOverSubscribed {
                    node,
                    consumption: c,
                    generation: g,
                });
            }
        }
        let graph = self.generation_graph();
        let components = qnet_topology::connectivity::connected_components(&graph);
        if components.len() > 1 {
            let component_of = |node: qnet_topology::NodeId| {
                components
                    .iter()
                    .position(|c| c.contains(&node))
                    .expect("node belongs to a component")
            };
            for pair in self.consumption_pairs() {
                if component_of(pair.lo()) != component_of(pair.hi()) {
                    errors.push(RateValidationError::ConsumerDisconnected {
                        pair: (pair.lo().index(), pair.hi().index()),
                    });
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::builders::cycle;
    use qnet_topology::NodeId;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn uniform_generation_on_cycle() {
        let g = cycle(5);
        let r = RateMatrices::uniform_generation(&g, 1.0);
        assert_eq!(r.node_count(), 5);
        assert_eq!(r.generation_pairs().len(), 5);
        assert_eq!(r.generation(pair(0, 1)), 1.0);
        assert_eq!(r.generation(pair(0, 4)), 1.0);
        assert_eq!(r.generation(pair(0, 2)), 0.0);
        assert_eq!(r.total_generation(), 5.0);
        assert_eq!(r.total_consumption(), 0.0);
        assert_eq!(r.node_generation(0), 2.0);
    }

    #[test]
    fn generation_graph_round_trip() {
        let g = cycle(6);
        let r = RateMatrices::uniform_generation(&g, 2.0);
        let rebuilt = r.generation_graph();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn set_and_query_consumption() {
        let mut r = RateMatrices::zeros(4);
        r.set_consumption(pair(0, 2), 0.5);
        r.set_consumption(pair(1, 3), 0.25);
        assert_eq!(r.consumption(pair(2, 0)), 0.5);
        assert_eq!(r.consumption_pairs().len(), 2);
        assert_eq!(r.total_consumption(), 0.75);
        assert_eq!(r.node_consumption(3), 0.25);
    }

    #[test]
    fn qec_thinning_divides_generation() {
        let g = cycle(4);
        let r = RateMatrices::uniform_generation(&g, 8.0).with_qec_thinning(4.0);
        assert_eq!(r.generation(pair(0, 1)), 2.0);
        assert_eq!(r.total_generation(), 8.0);
    }

    #[test]
    #[should_panic]
    fn qec_overhead_below_one_panics() {
        let g = cycle(4);
        let _ = RateMatrices::uniform_generation(&g, 1.0).with_qec_thinning(0.5);
    }

    #[test]
    fn validation_catches_oversubscription() {
        let g = cycle(4);
        let mut r = RateMatrices::uniform_generation(&g, 1.0);
        // Node 0 generates at total rate 2 but consumes at rate 3.
        r.set_consumption(pair(0, 2), 3.0);
        let errs = r.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, RateValidationError::NodeOverSubscribed { node: 0, .. })));
    }

    #[test]
    fn validation_catches_disconnected_consumers() {
        let mut r = RateMatrices::zeros(4);
        r.set_generation(pair(0, 1), 1.0);
        r.set_generation(pair(2, 3), 1.0);
        r.set_consumption(pair(0, 3), 0.1);
        let errs = r.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            RateValidationError::ConsumerDisconnected { pair: (0, 3) }
        )));
    }

    #[test]
    fn validation_passes_for_modest_demand() {
        let g = cycle(6);
        let mut r = RateMatrices::uniform_generation(&g, 1.0);
        r.set_consumption(pair(0, 3), 0.5);
        r.set_consumption(pair(1, 4), 0.5);
        assert!(r.validate().is_ok());
    }

    #[test]
    #[should_panic]
    fn negative_rate_panics() {
        let mut r = RateMatrices::zeros(3);
        r.set_generation(pair(0, 1), -1.0);
    }
}
