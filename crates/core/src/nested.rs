//! Nested-swapping cost — the swap-overhead denominator.
//!
//! The paper (§5) scores its distributed algorithm against the minimum number
//! of swaps a planned-path approach would need, where each consumption event
//! is charged the cost of *nested swapping* along the shortest generation-
//! graph path. With all distillation overheads equal to `D`, that cost is
//!
//! ```text
//! s(1) = 0,   s(2) = D,   s(n) = D · ( s(⌊n/2⌋) + s(⌈n/2⌉) )   for n > 2.
//! ```
//!
//! This module implements that recursion exactly as the paper states it, plus
//! a variant ([`nested_swap_cost_with_joins`]) that also charges the
//! top-level joining swaps (`s'(n) = D·(s'(⌊n/2⌋) + s'(⌈n/2⌉)) + D`), which is
//! the count an executing simulator actually performs; EXPERIMENTS.md
//! discusses the difference.

/// The paper's nested swapping cost `s(n)` for an `n`-hop shortest path and
/// uniform distillation overhead `d`.
///
/// # Panics
/// Panics if `n == 0` (a consumption event between co-located endpoints is
/// excluded by the paper's `c(x, x) = 0` assumption) or if `d < 1`.
pub fn nested_swap_cost(n: usize, d: f64) -> f64 {
    assert!(n >= 1, "path length must be at least one hop");
    assert!(d >= 1.0, "distillation overhead must be ≥ 1");
    match n {
        1 => 0.0,
        2 => d,
        _ => d * (nested_swap_cost(n / 2, d) + nested_swap_cost(n.div_ceil(2), d)),
    }
}

/// Nested swapping cost including the top-level joining swaps: the number of
/// swap operations an executor performs to deliver one distilled pair over an
/// `n`-hop path when every level distils `⌈d⌉` inputs down to one.
pub fn nested_swap_cost_with_joins(n: usize, d: f64) -> f64 {
    assert!(n >= 1, "path length must be at least one hop");
    assert!(d >= 1.0, "distillation overhead must be ≥ 1");
    match n {
        1 => 0.0,
        _ => {
            d * (nested_swap_cost_with_joins(n / 2, d)
                + nested_swap_cost_with_joins(n.div_ceil(2), d))
                + d
        }
    }
}

/// The denominator of the swap-overhead metric: `Σ_c s(ℓ(c))` over the
/// satisfied consumption events' shortest-path hop counts.
pub fn overhead_denominator(path_lengths: &[usize], d: f64) -> f64 {
    path_lengths.iter().map(|&n| nested_swap_cost(n, d)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cases() {
        assert_eq!(nested_swap_cost(1, 1.0), 0.0);
        assert_eq!(nested_swap_cost(2, 1.0), 1.0);
        assert_eq!(nested_swap_cost(1, 3.0), 0.0);
        assert_eq!(nested_swap_cost(2, 3.0), 3.0);
    }

    #[test]
    fn small_path_lengths_match_hand_computation() {
        // s(3) = D·(s(1) + s(2)) = D².
        assert_eq!(nested_swap_cost(3, 2.0), 4.0);
        // s(4) = D·(s(2) + s(2)) = 2D².
        assert_eq!(nested_swap_cost(4, 2.0), 8.0);
        // s(5) = D·(s(2) + s(3)) = D·(D + D²) = D² + D³.
        assert_eq!(nested_swap_cost(5, 2.0), 12.0);
        // s(8) = D·(2·s(4)) = 4D³.
        assert_eq!(nested_swap_cost(8, 2.0), 32.0);
    }

    #[test]
    fn unit_distillation_costs_grow_sublinearly() {
        // With D = 1 the paper's recursion gives s(n) ≈ n/2 (it charges only
        // the lower levels), so it is a *lower bound* on executed swaps.
        assert_eq!(nested_swap_cost(4, 1.0), 2.0);
        assert_eq!(nested_swap_cost(8, 1.0), 4.0);
        assert_eq!(nested_swap_cost(6, 1.0), 2.0);
        assert_eq!(nested_swap_cost(7, 1.0), 3.0);
    }

    #[test]
    fn with_joins_matches_linear_chain_for_unit_d() {
        // Charging the joining swaps too, a D = 1 path of n hops needs the
        // textbook n − 1 swaps.
        for n in 1..20 {
            assert_eq!(nested_swap_cost_with_joins(n, 1.0), (n - 1) as f64, "n={n}");
        }
    }

    #[test]
    fn with_joins_dominates_paper_cost() {
        for n in 1..16 {
            for &d in &[1.0, 2.0, 3.0] {
                assert!(
                    nested_swap_cost_with_joins(n, d) >= nested_swap_cost(n, d),
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn cost_is_monotone_in_d_and_n() {
        for n in 2..12 {
            assert!(nested_swap_cost(n, 2.0) > nested_swap_cost(n, 1.0));
            assert!(nested_swap_cost(n, 3.0) > nested_swap_cost(n, 2.0));
        }
        for d in [1.0, 2.0, 4.0] {
            for n in 2..12 {
                assert!(nested_swap_cost(n + 1, d) >= nested_swap_cost(n, d));
            }
        }
    }

    #[test]
    fn exponential_growth_in_d_for_fixed_depth() {
        // For an 8-hop path the cost is 4D³: doubling D multiplies it by 8.
        let at1 = nested_swap_cost(8, 1.0);
        let at2 = nested_swap_cost(8, 2.0);
        let at4 = nested_swap_cost(8, 4.0);
        assert_eq!(at2 / at1, 8.0);
        assert_eq!(at4 / at2, 8.0);
    }

    #[test]
    fn denominator_sums_costs() {
        let lengths = [1, 2, 4];
        assert_eq!(overhead_denominator(&lengths, 1.0), 0.0 + 1.0 + 2.0);
        assert_eq!(overhead_denominator(&lengths, 2.0), 0.0 + 2.0 + 8.0);
        assert_eq!(overhead_denominator(&[], 2.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_hop_path_panics() {
        let _ = nested_swap_cost(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn sub_unit_distillation_panics() {
        let _ = nested_swap_cost(4, 0.5);
    }
}
