//! Run observers: metrics sinks the simulation world fires hooks into.
//!
//! The world ([`crate::network::QuantumNetworkWorld`]) no longer bakes its
//! statistics counters into its own fields; it emits typed events to every
//! attached [`RunObserver`]. The standard [`MetricsRecorder`] turns them
//! into the paper's [`RunMetrics`]; additional observers (streaming JSONL
//! tracers, per-node histograms, live dashboards) can be attached with
//! [`crate::network::QuantumNetworkWorld::add_observer`] without touching
//! the substrate or the policies.

use crate::classical::ClassicalStats;
use crate::metrics::{RunMetrics, SatisfiedRequest, StreamedSummary};
use crate::workload::ConsumptionRequest;
use qnet_sim::stats::{RunningStats, StreamingQuantiles, DEFAULT_EXACT_SAMPLE_THRESHOLD};
use qnet_sim::SimTime;
use qnet_topology::NodePair;

/// Why a swap happened, for observers that want to split the tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapKind {
    /// A balancing swap decided by a periodic swap scan.
    Balancing,
    /// A repair swap performed on behalf of a blocked consumption request.
    Repair,
}

/// A sink for the events of one simulation run.
///
/// Every hook has an empty default so observers implement only what they
/// care about. Hooks are invoked in attachment order, with the world's
/// primary metrics recorder always first.
pub trait RunObserver: std::fmt::Debug + Send {
    /// An event was delivered to the world at `now` (fires before the
    /// specific hooks of that event).
    fn on_event(&mut self, _now: SimTime) {}
    /// A generated Bell pair survived and was stored on `edge`.
    fn on_pair_generated(&mut self, _now: SimTime, _edge: NodePair) {}
    /// A generated Bell pair was lost (decoherence/loss or a full buffer).
    fn on_pair_lost(&mut self, _now: SimTime, _edge: NodePair) {}
    /// A stored pair outlived the physics model's storage cutoff and was
    /// discarded (decoherent physics only).
    fn on_pair_expired(&mut self, _now: SimTime, _pair: NodePair) {}
    /// A swap was executed.
    fn on_swap(&mut self, _now: SimTime, _kind: SwapKind) {}
    /// A swap's 2-bit correction message was sent.
    fn on_swap_correction(&mut self, _now: SimTime) {}
    /// A consumption (teleportation) correction was sent.
    fn on_teleportation(&mut self, _now: SimTime) {}
    /// `messages` classical buffer-count update messages were sent.
    fn on_count_updates(&mut self, _now: SimTime, _messages: u64) {}
    /// A consumption request arrived (was injected into the pending queue).
    fn on_request_arrival(&mut self, _now: SimTime, _request: &ConsumptionRequest) {}
    /// A consumption request was satisfied.
    fn on_request_satisfied(&mut self, _now: SimTime, _request: &SatisfiedRequest) {}
    /// A consumption request was dropped by the policy (e.g. unreachable
    /// endpoints).
    fn on_request_dropped(&mut self, _now: SimTime, _request: &ConsumptionRequest) {}
    /// A delivery consumed its pairs but fell below the physics model's
    /// end-to-end fidelity floor: the request leaves the queue as
    /// fidelity-rejected rather than satisfied (decoherent physics only).
    fn on_fidelity_rejected(
        &mut self,
        _now: SimTime,
        _request: &ConsumptionRequest,
        _fidelity: f64,
    ) {
    }
    /// An action decided on stale believed counts failed against ground
    /// truth (the counts had drifted): the proposed swap towards `pair`
    /// *missed*. Fires only under the stale control plane
    /// ([`crate::control`]); `Global`-knowledge runs never miss.
    fn on_swap_missed(&mut self, _now: SimTime, _pair: NodePair) {}
    /// A policy decision consulted a stale believed row that was
    /// `row_age_s` seconds old. One hook per load-bearing row, fired only
    /// under the stale control plane.
    fn on_stale_decision(&mut self, _now: SimTime, _row_age_s: f64) {}
}

/// The standard observer: folds the run's events into [`RunMetrics`].
///
/// Satisfied requests are buffered per-request — with their exact,
/// byte-stable serialization — up to the exact-sample threshold. The next
/// satisfaction folds the buffer into a fixed-memory
/// [`StreamedSummary`] and per-request storage stops, holding RSS flat
/// through million-request runs. The default threshold
/// ([`DEFAULT_EXACT_SAMPLE_THRESHOLD`]) far exceeds every golden workload,
/// so existing reports are unaffected; the `QNET_EXACT_SAMPLES` environment
/// variable overrides it (integration tests use a tiny value to exercise
/// the streamed mode cheaply).
#[derive(Debug)]
pub struct MetricsRecorder {
    swaps_performed: u64,
    pairs_generated: u64,
    pairs_lost: u64,
    pairs_expired: u64,
    satisfied: Vec<SatisfiedRequest>,
    streamed: Option<StreamedSummary>,
    exact_threshold: usize,
    arrived_requests: u64,
    dropped_requests: u64,
    fidelity_rejected_requests: u64,
    classical: ClassicalStats,
    last_event_time: SimTime,
    missed_swaps: u64,
    stale_age: RunningStats,
    stale_age_quantiles: StreamingQuantiles,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A fresh, all-zero recorder.
    pub fn new() -> Self {
        let exact_threshold = std::env::var("QNET_EXACT_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_EXACT_SAMPLE_THRESHOLD);
        MetricsRecorder {
            swaps_performed: 0,
            pairs_generated: 0,
            pairs_lost: 0,
            pairs_expired: 0,
            satisfied: Vec::new(),
            streamed: None,
            exact_threshold,
            arrived_requests: 0,
            dropped_requests: 0,
            fidelity_rejected_requests: 0,
            classical: ClassicalStats::default(),
            last_event_time: SimTime::ZERO,
            missed_swaps: 0,
            stale_age: RunningStats::new(),
            stale_age_quantiles: StreamingQuantiles::new(exact_threshold),
        }
    }

    /// A recorder with an explicit exact-sample threshold, ignoring the
    /// `QNET_EXACT_SAMPLES` environment variable. Tests use this to force
    /// streamed mode without mutating process-global state.
    pub fn with_exact_threshold(exact_threshold: usize) -> Self {
        MetricsRecorder {
            exact_threshold,
            stale_age_quantiles: StreamingQuantiles::new(exact_threshold),
            ..MetricsRecorder::new()
        }
    }

    /// Swaps recorded so far.
    pub fn swaps_performed(&self) -> u64 {
        self.swaps_performed
    }

    /// Simulated time of the most recent event.
    pub fn last_event_time(&self) -> SimTime {
        self.last_event_time
    }

    /// Assemble the run metrics from the recorded events plus the
    /// end-of-run facts only the world knows (distillation overhead, queue
    /// length, leftover inventory).
    pub fn snapshot(
        &self,
        distillation_overhead: f64,
        unsatisfied_requests: u64,
        leftover_pairs: u64,
    ) -> RunMetrics {
        RunMetrics {
            distillation_overhead,
            swaps_performed: self.swaps_performed,
            pairs_generated: self.pairs_generated,
            pairs_lost: self.pairs_lost,
            expired_pairs: self.pairs_expired,
            satisfied: self.satisfied.clone(),
            streamed: self.streamed.clone(),
            arrived_requests: self.arrived_requests,
            unsatisfied_requests,
            dropped_requests: self.dropped_requests,
            fidelity_rejected_requests: self.fidelity_rejected_requests,
            classical: self.classical,
            ended_at: self.last_event_time,
            leftover_pairs,
            missed_swaps: self.missed_swaps,
            stale_row_age_mean_s: (self.stale_age.count() > 0).then(|| self.stale_age.mean()),
            stale_row_age_p95_s: self.stale_age_quantiles.quantile(0.95),
        }
    }
}

impl RunObserver for MetricsRecorder {
    fn on_event(&mut self, now: SimTime) {
        self.last_event_time = now;
    }

    fn on_pair_generated(&mut self, _now: SimTime, _edge: NodePair) {
        self.pairs_generated += 1;
    }

    fn on_pair_lost(&mut self, _now: SimTime, _edge: NodePair) {
        self.pairs_lost += 1;
    }

    fn on_pair_expired(&mut self, _now: SimTime, _pair: NodePair) {
        self.pairs_expired += 1;
    }

    fn on_swap(&mut self, _now: SimTime, _kind: SwapKind) {
        self.swaps_performed += 1;
    }

    fn on_swap_correction(&mut self, _now: SimTime) {
        self.classical.record_swap_correction();
    }

    fn on_teleportation(&mut self, _now: SimTime) {
        self.classical.record_teleportation();
    }

    fn on_count_updates(&mut self, _now: SimTime, messages: u64) {
        self.classical.record_count_updates(messages);
    }

    fn on_request_arrival(&mut self, _now: SimTime, _request: &ConsumptionRequest) {
        self.arrived_requests += 1;
    }

    fn on_request_satisfied(&mut self, _now: SimTime, request: &SatisfiedRequest) {
        if let Some(summary) = &mut self.streamed {
            summary.record(request);
        } else if self.satisfied.len() >= self.exact_threshold {
            // Crossing the threshold: fold the exact buffer into the
            // fixed-memory summary and release the per-request storage.
            let mut summary = StreamedSummary::new();
            for r in self.satisfied.drain(..) {
                summary.record(&r);
            }
            self.satisfied.shrink_to_fit();
            summary.record(request);
            self.streamed = Some(summary);
        } else {
            self.satisfied.push(*request);
        }
    }

    fn on_request_dropped(&mut self, _now: SimTime, _request: &ConsumptionRequest) {
        self.dropped_requests += 1;
    }

    fn on_fidelity_rejected(
        &mut self,
        _now: SimTime,
        _request: &ConsumptionRequest,
        _fidelity: f64,
    ) {
        self.fidelity_rejected_requests += 1;
    }

    fn on_swap_missed(&mut self, _now: SimTime, _pair: NodePair) {
        self.missed_swaps += 1;
    }

    fn on_stale_decision(&mut self, _now: SimTime, row_age_s: f64) {
        self.stale_age.record(row_age_s);
        self.stale_age_quantiles.record(row_age_s);
    }
}

/// Share one observer between the world and the caller: an
/// `Arc<Mutex<O>>` forwards every hook to the inner observer, so state can
/// be inspected after (or during) the run from outside the world.
impl<O: RunObserver> RunObserver for std::sync::Arc<std::sync::Mutex<O>> {
    fn on_event(&mut self, now: SimTime) {
        self.lock().expect("observer poisoned").on_event(now);
    }
    fn on_pair_generated(&mut self, now: SimTime, edge: NodePair) {
        self.lock()
            .expect("observer poisoned")
            .on_pair_generated(now, edge);
    }
    fn on_pair_lost(&mut self, now: SimTime, edge: NodePair) {
        self.lock()
            .expect("observer poisoned")
            .on_pair_lost(now, edge);
    }
    fn on_pair_expired(&mut self, now: SimTime, pair: NodePair) {
        self.lock()
            .expect("observer poisoned")
            .on_pair_expired(now, pair);
    }
    fn on_swap(&mut self, now: SimTime, kind: SwapKind) {
        self.lock().expect("observer poisoned").on_swap(now, kind);
    }
    fn on_swap_correction(&mut self, now: SimTime) {
        self.lock()
            .expect("observer poisoned")
            .on_swap_correction(now);
    }
    fn on_teleportation(&mut self, now: SimTime) {
        self.lock()
            .expect("observer poisoned")
            .on_teleportation(now);
    }
    fn on_count_updates(&mut self, now: SimTime, messages: u64) {
        self.lock()
            .expect("observer poisoned")
            .on_count_updates(now, messages);
    }
    fn on_request_arrival(&mut self, now: SimTime, request: &ConsumptionRequest) {
        self.lock()
            .expect("observer poisoned")
            .on_request_arrival(now, request);
    }
    fn on_request_satisfied(&mut self, now: SimTime, request: &SatisfiedRequest) {
        self.lock()
            .expect("observer poisoned")
            .on_request_satisfied(now, request);
    }
    fn on_request_dropped(&mut self, now: SimTime, request: &ConsumptionRequest) {
        self.lock()
            .expect("observer poisoned")
            .on_request_dropped(now, request);
    }
    fn on_fidelity_rejected(&mut self, now: SimTime, request: &ConsumptionRequest, fidelity: f64) {
        self.lock()
            .expect("observer poisoned")
            .on_fidelity_rejected(now, request, fidelity);
    }
    fn on_swap_missed(&mut self, now: SimTime, pair: NodePair) {
        self.lock()
            .expect("observer poisoned")
            .on_swap_missed(now, pair);
    }
    fn on_stale_decision(&mut self, now: SimTime, row_age_s: f64) {
        self.lock()
            .expect("observer poisoned")
            .on_stale_decision(now, row_age_s);
    }
}

/// A minimal auxiliary observer counting event categories — useful in tests
/// and as the smallest possible template for custom observers.
#[derive(Debug, Default)]
pub struct EventCounts {
    /// Events delivered.
    pub events: u64,
    /// Swaps executed (balancing + repair).
    pub swaps: u64,
    /// Repair swaps only.
    pub repair_swaps: u64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests satisfied.
    pub satisfied: u64,
    /// Requests dropped.
    pub dropped: u64,
    /// Stored pairs discarded by the physics cutoff.
    pub expired: u64,
    /// Deliveries rejected for falling below the fidelity floor.
    pub fidelity_rejected: u64,
    /// Stale-decided swaps that missed against drifted ground truth.
    pub missed_swaps: u64,
    /// Stale believed rows consulted by policy decisions.
    pub stale_decisions: u64,
}

impl RunObserver for EventCounts {
    fn on_event(&mut self, _now: SimTime) {
        self.events += 1;
    }

    fn on_swap(&mut self, _now: SimTime, kind: SwapKind) {
        self.swaps += 1;
        if kind == SwapKind::Repair {
            self.repair_swaps += 1;
        }
    }

    fn on_request_arrival(&mut self, _now: SimTime, _request: &ConsumptionRequest) {
        self.arrivals += 1;
    }

    fn on_request_satisfied(&mut self, _now: SimTime, _request: &SatisfiedRequest) {
        self.satisfied += 1;
    }

    fn on_request_dropped(&mut self, _now: SimTime, _request: &ConsumptionRequest) {
        self.dropped += 1;
    }

    fn on_pair_expired(&mut self, _now: SimTime, _pair: NodePair) {
        self.expired += 1;
    }

    fn on_fidelity_rejected(
        &mut self,
        _now: SimTime,
        _request: &ConsumptionRequest,
        _fidelity: f64,
    ) {
        self.fidelity_rejected += 1;
    }

    fn on_swap_missed(&mut self, _now: SimTime, _pair: NodePair) {
        self.missed_swaps += 1;
    }

    fn on_stale_decision(&mut self, _now: SimTime, _row_age_s: f64) {
        self.stale_decisions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::{NodeId, NodePair};

    #[test]
    fn recorder_folds_events_into_metrics() {
        let mut r = MetricsRecorder::new();
        let t = SimTime::from_secs(3);
        r.on_event(t);
        r.on_pair_generated(t, NodePair::new(NodeId(0), NodeId(1)));
        r.on_pair_generated(t, NodePair::new(NodeId(1), NodeId(2)));
        r.on_pair_lost(t, NodePair::new(NodeId(0), NodeId(1)));
        r.on_swap(t, SwapKind::Balancing);
        r.on_swap(t, SwapKind::Repair);
        r.on_swap_correction(t);
        r.on_teleportation(t);
        r.on_count_updates(t, 7);
        let arrival = crate::workload::ConsumptionRequest {
            sequence: 0,
            pair: NodePair::new(NodeId(0), NodeId(2)),
            arrival_time: SimTime::ZERO,
        };
        r.on_request_arrival(t, &arrival);
        let sat = SatisfiedRequest {
            sequence: 0,
            pair: NodePair::new(NodeId(0), NodeId(2)),
            arrival_time: SimTime::ZERO,
            satisfied_at: t,
            shortest_path_hops: 2,
            repair_swaps: 1,
            fidelity: None,
        };
        r.on_request_satisfied(t, &sat);
        r.on_pair_expired(t, NodePair::new(NodeId(1), NodeId(2)));
        r.on_fidelity_rejected(t, &arrival, 0.4);

        let m = r.snapshot(1.0, 4, 9);
        assert_eq!(m.swaps_performed, 2);
        assert_eq!(m.arrived_requests, 1);
        assert_eq!(m.pairs_generated, 2);
        assert_eq!(m.pairs_lost, 1);
        assert_eq!(m.satisfied, vec![sat]);
        assert_eq!(m.unsatisfied_requests, 4);
        assert_eq!(m.expired_pairs, 1);
        assert_eq!(m.fidelity_rejected_requests, 1);
        assert_eq!(m.leftover_pairs, 9);
        assert_eq!(m.classical.correction_messages, 1);
        assert_eq!(m.classical.teleport_messages, 1);
        assert_eq!(m.classical.count_update_messages, 7);
        assert_eq!(m.ended_at, t);
    }

    #[test]
    fn streamed_recorder_matches_buffered_exactly_where_exact() {
        // Feed the same 500 synthetic satisfactions through a buffered
        // recorder (threshold far above the stream) and a streamed one
        // (threshold 8, so the fold happens mid-stream), then compare every
        // derived column. Everything except quantiles is exact in streamed
        // mode; quantiles carry the sketch's documented relative value
        // error (2⁻⁸ midpoint bound).
        let mut buffered = MetricsRecorder::with_exact_threshold(1_000_000);
        let mut streamed = MetricsRecorder::with_exact_threshold(8);
        let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
        let mut uniform = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        for seq in 0..500u64 {
            let arrival = SimTime::from_secs(seq);
            let sojourn_s = 0.001 + uniform() * 40.0;
            let sat = SatisfiedRequest {
                sequence: seq,
                pair: NodePair::new(NodeId(0), NodeId(2)),
                arrival_time: arrival,
                satisfied_at: arrival + qnet_sim::time::SimDuration::from_secs_f64(sojourn_s),
                shortest_path_hops: 1 + (seq % 5) as usize,
                repair_swaps: seq % 3,
                fidelity: (seq % 2 == 0).then(|| 0.5 + uniform() * 0.5),
            };
            let now = sat.satisfied_at;
            buffered.on_request_satisfied(now, &sat);
            streamed.on_request_satisfied(now, &sat);
        }
        let exact = buffered.snapshot(1.1, 3, 0);
        let sketch = streamed.snapshot(1.1, 3, 0);
        assert!(!exact.is_streamed());
        assert!(sketch.is_streamed());
        assert_eq!(sketch.satisfied_count(), exact.satisfied_count());
        assert_eq!(sketch.repair_swaps(), exact.repair_swaps());
        // Same value up to float summation order (the histogram multiplies
        // count × cost per hop bucket instead of adding per request).
        let (sd, ed) = (sketch.overhead_denominator(), exact.overhead_denominator());
        assert!(((sd - ed) / ed).abs() < 1e-12, "denominator {sd} vs {ed}");
        assert_eq!(
            sketch.mean_inter_satisfaction_time(),
            exact.mean_inter_satisfaction_time()
        );
        let close = |a: f64, b: f64| ((a - b) / b).abs() <= 1.0 / 256.0 + 1e-12;
        assert!((sketch.sojourn_stats().mean() - exact.sojourn_stats().mean()).abs() < 1e-9);
        assert!((sketch.fidelity_stats().mean() - exact.fidelity_stats().mean()).abs() < 1e-9);
        for q in [0.50, 0.95, 0.99] {
            let (s, e) = (
                sketch.sojourn_percentile(q).unwrap(),
                exact.sojourn_percentile(q).unwrap(),
            );
            assert!(close(s, e), "sojourn q={q}: sketch {s} vs exact {e}");
            let (s, e) = (
                sketch.fidelity_percentile(q).unwrap(),
                exact.fidelity_percentile(q).unwrap(),
            );
            assert!(close(s, e), "fidelity q={q}: sketch {s} vs exact {e}");
        }
        // The streamed snapshot dropped per-request storage.
        assert!(sketch.satisfied.is_empty());
        assert!(sketch.sojourn_samples().is_empty());
    }

    #[test]
    fn event_counts_observer_tallies() {
        let mut c = EventCounts::default();
        let t = SimTime::from_secs(1);
        c.on_event(t);
        c.on_swap(t, SwapKind::Repair);
        c.on_swap(t, SwapKind::Balancing);
        assert_eq!(c.events, 1);
        assert_eq!(c.swaps, 2);
        assert_eq!(c.repair_swaps, 1);
    }
}
