//! The swap-policy plugin API.
//!
//! The paper's core contribution is a *comparison between swapping
//! disciplines* (path-oblivious vs. planned vs. hybrid, §4–§5). This module
//! makes those disciplines first-class plugins instead of enum variants:
//!
//! * [`SwapPolicy`] — the trait a discipline implements. The simulation
//!   substrate ([`crate::network::QuantumNetworkWorld`]) owns generation,
//!   inventory, knowledge dissemination and the request queue; the policy
//!   owns every protocol *decision*: whether periodic swap scans run
//!   ([`SwapPolicy::schedules_swap_scans`]), which swap a scanning node
//!   performs ([`SwapPolicy::on_swap_scan`], consulting the control-plane
//!   knowledge via [`PolicyCtx`]), how a blocked consumption request is
//!   handled
//!   ([`SwapPolicy::on_blocked_request`]), in what order the request queue
//!   is drained ([`SwapPolicy::queue_discipline`]), and any end-of-run
//!   accounting ([`SwapPolicy::on_run_end`]).
//! * [`PolicyId`] — a cheap, `Copy` policy selector (an interned name) used
//!   by [`crate::experiment::ExperimentConfig`], the campaign grid axis and
//!   the `campaign` CLI. It serializes to the legacy `ProtocolMode` variant
//!   labels so pre-existing configs and reports keep their exact bytes.
//! * [`PolicyRegistry`] — a string-keyed registry mapping names (plus
//!   aliases and the legacy labels) to constructors. The four paper
//!   disciplines are pre-registered; external code adds its own with
//!   [`register`].
//!
//! The built-in disciplines live in the submodules [`oblivious`],
//! [`hybrid`], [`planned`] and [`greedy`] — the last one is a
//! nested-swap-*ordering* discipline in the spirit of Mai et al. ("Towards
//! Optimal Orders for Entanglement Swapping in Path Graphs") that was added
//! *through* this API as its proof of extensibility.

pub mod gossip_aware;
pub mod greedy;
pub mod hybrid;
pub mod oblivious;
pub mod planned;

use crate::balancer::SwapCandidate;
use crate::config::NetworkConfig;
use crate::control::{ControlPlane, DecisionTelemetry};
use crate::inventory::Inventory;
use crate::workload::ConsumptionRequest;
use qnet_sim::SimTime;
use qnet_topology::{Graph, NodeId, PathOracle};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::{OnceLock, RwLock};

// ---------------------------------------------------------------------------
// The policy-facing view of the simulation substrate
// ---------------------------------------------------------------------------

/// The slice of the simulation world a policy may consult (and, for the
/// inventory, mutate) while making a decision.
///
/// The world hands a fresh `PolicyCtx` to every hook invocation; policies
/// must not retain state derived from stale contexts across events beyond
/// what their discipline genuinely needs.
pub struct PolicyCtx<'a> {
    /// The network configuration (rates, distillation overhead, buffers).
    pub config: &'a NetworkConfig,
    /// The generation graph.
    pub graph: &'a Graph,
    /// The ground-truth Bell-pair inventory. Policies mutate it only through
    /// swap executions; the world accounts for the classical cost of every
    /// swap a hook reports back.
    pub inventory: &'a mut Inventory,
    /// The classical control plane, when the run uses partial knowledge
    /// (`None` under global knowledge — consult the inventory directly, it
    /// is exact). Under [`ControlPlane::Stale`] remote counts come from
    /// per-node [`crate::control::KnowledgeView`]s that lag ground truth.
    pub control: Option<&'a ControlPlane>,
    /// The current simulated time (decision timestamp for staleness
    /// accounting).
    pub now: SimTime,
    /// Scratch pad for staleness telemetry: policies deciding on believed
    /// counts record consulted-row ages and believed-feasible-but-failed
    /// misses here; the world drains it into observer hooks after each
    /// policy call.
    pub telemetry: &'a mut DecisionTelemetry,
    /// The world's shortest-path oracle over the immutable generation
    /// graph: memoized per-source BFS rows (all-pairs precomputed on small
    /// graphs). Planned/greedy disciplines query it instead of running
    /// their own BFS per consumer pair; answers are identical to
    /// [`qnet_topology::bfs_path`], tie-breaks included.
    pub oracle: &'a PathOracle,
}

impl<'a> PolicyCtx<'a> {
    /// The `⌈D⌉` distill-before-use draw factor every swap and consumption
    /// pays under the configured distillation spec.
    pub fn pairs_per_distilled(&self) -> u64 {
        self.config.pairs_per_distilled()
    }
}

/// What a policy decided about a consumption request that is not directly
/// satisfiable from the inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestAction {
    /// Nothing can be done now; leave the request pending.
    Wait,
    /// The policy performed this many repair swaps toward the request; the
    /// world re-checks availability, accounts the swaps' classical cost and
    /// consumes the pairs if they are now there.
    Repaired(u64),
    /// Give up on the request permanently (e.g. its endpoints are not
    /// connected in the generation graph).
    Drop,
}

/// In which order the world offers pending requests to the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Strict head-of-line: only the oldest pending request may be
    /// satisfied; later requests wait behind it (the paper's sequential
    /// consumption semantics).
    HeadOfLine,
    /// Any pending request may be satisfied as soon as its pairs are
    /// available (the connectionless baselines' semantics).
    AnyOrder,
}

/// A swapping discipline: the per-event decision maker the simulation
/// substrate delegates to.
///
/// Implementations must be deterministic functions of the context they are
/// handed (plus their own construction parameters) — the reproducibility
/// guarantees of the whole stack rest on that.
pub trait SwapPolicy: fmt::Debug + Send {
    /// The registry identity of this policy.
    fn id(&self) -> PolicyId;

    /// Whether the world should schedule the periodic per-node swap-scan
    /// events that drive [`SwapPolicy::on_swap_scan`]. Planned-path
    /// disciplines return `false`: they swap only on demand.
    fn schedules_swap_scans(&self) -> bool {
        false
    }

    /// How the pending request queue is drained.
    fn queue_discipline(&self) -> QueueDiscipline {
        QueueDiscipline::HeadOfLine
    }

    /// Whether [`SwapPolicy::on_blocked_request`] is inert: it always
    /// returns [`RequestAction::Wait`] and has no side effects. Declaring
    /// inertness lets the world elide the hook call on blocked offers and,
    /// under [`QueueDiscipline::AnyOrder`], drain the pending queue through
    /// a per-pair index instead of re-walking every blocked request — the
    /// observable behaviour is provably unchanged. Policies that repair,
    /// drop, or keep internal tallies must leave this `false` (the
    /// default).
    fn blocked_hook_is_inert(&self) -> bool {
        false
    }

    /// A node's periodic swap scan fired: decide which (if any) swap `node`
    /// performs. The returned candidate is executed and accounted by the
    /// world. Policies consult `ctx.control` for remote counts when present
    /// (a node always knows its own pools exactly via `ctx.inventory`).
    fn on_swap_scan(&mut self, _ctx: &mut PolicyCtx<'_>, _node: NodeId) -> Option<SwapCandidate> {
        None
    }

    /// The request `request` cannot be satisfied directly from the
    /// inventory: decide what to do. Repair swaps performed inside this hook
    /// must be reported back via [`RequestAction::Repaired`] so the world
    /// can account their classical cost.
    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction;

    /// The run ended (horizon reached or every request satisfied); a last
    /// chance for policy-side accounting. The built-in disciplines keep no
    /// hidden tallies, so their implementations are empty.
    fn on_run_end(&mut self, _ctx: &mut PolicyCtx<'_>) {}
}

// ---------------------------------------------------------------------------
// PolicyId — the Copy selector
// ---------------------------------------------------------------------------

/// Which family a policy belongs to, for report pairing: the Fig 4/5 ratio
/// rows divide an oblivious-family overhead by a planned-family overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyFamily {
    /// Path-oblivious balancing (and hybrids seeded by it) — ratio
    /// numerators.
    Oblivious,
    /// Planned-path execution along request paths — ratio denominators.
    Planned,
}

/// An interned, copyable policy selector.
///
/// A `PolicyId` is just the canonical registry name of a policy, so
/// [`crate::experiment::ExperimentConfig`] stays a flat `Copy` value that
/// sweep runners hand to worker threads by value. Obtain one from the
/// associated constants for the built-ins, from [`PolicyId::parse`] for CLI
/// strings, or from [`register`] for external policies.
///
/// Serialization is compatible with the legacy `ProtocolMode` enum: the
/// built-ins serialize to the old variant labels (`"Oblivious"`,
/// `"PlannedConnectionOriented"`, …) and deserialize from either those
/// labels or the registry names, so pre-refactor configs and campaign
/// reports keep byte-identical JSON.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyId {
    name: &'static str,
}

impl PolicyId {
    /// The paper's §4 path-oblivious max-min balancing protocol.
    pub const OBLIVIOUS: PolicyId = PolicyId { name: "oblivious" };
    /// Oblivious balancing plus the §6 consumer-side repair.
    pub const HYBRID: PolicyId = PolicyId { name: "hybrid" };
    /// Planned-path, connection-oriented baseline (nested swapping along
    /// the request path, in request order).
    pub const PLANNED: PolicyId = PolicyId { name: "planned" };
    /// Planned-path, connectionless baseline (no head-of-line blocking).
    pub const CONNECTIONLESS: PolicyId = PolicyId {
        name: "connectionless",
    };
    /// Greedy nested-swap-ordering discipline (à la Mai et al.), added
    /// through the plugin API as its extensibility proof.
    pub const GREEDY: PolicyId = PolicyId { name: "greedy" };
    /// Staleness-aware oblivious balancing: believed beneficiary counts are
    /// discounted by `exp(-age/τ)` before the §4 preferable-swap test.
    pub const GOSSIP_AWARE: PolicyId = PolicyId {
        name: "gossip-aware",
    };

    /// The canonical registry name (the CLI-facing spelling).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The display label used by `Debug`/`Display` and serialization — the
    /// legacy `ProtocolMode` variant label for the four paper disciplines,
    /// a CamelCase form of the registry name otherwise.
    pub fn display_label(&self) -> &'static str {
        with_registry(|r| r.entry(self.name).map(|e| e.display)).unwrap_or(self.name)
    }

    /// The report family of this policy.
    pub fn family(&self) -> PolicyFamily {
        with_registry(|r| r.entry(self.name).map(|e| e.family)).unwrap_or(PolicyFamily::Oblivious)
    }

    /// One-line human description from the registry.
    pub fn summary(&self) -> &'static str {
        with_registry(|r| r.entry(self.name).map(|e| e.summary)).unwrap_or("")
    }

    /// Resolve a name, alias or legacy variant label to a registered
    /// policy. Returns a human-readable error naming the known policies.
    pub fn parse(spec: &str) -> Result<PolicyId, String> {
        with_registry(|r| {
            r.resolve(spec).ok_or_else(|| {
                format!(
                    "unknown policy '{spec}' (known: {})",
                    r.entries
                        .iter()
                        .map(|e| e.name)
                        .collect::<Vec<_>>()
                        .join("|")
                )
            })
        })
    }

    /// Instantiate this policy through the registry with default
    /// parameters.
    pub fn instantiate(&self) -> Box<dyn SwapPolicy> {
        self.instantiate_with(&PolicyParams::default())
    }

    /// Instantiate this policy through the registry with explicit
    /// serialized parameters.
    pub fn instantiate_with(&self, params: &PolicyParams) -> Box<dyn SwapPolicy> {
        with_registry(|r| {
            let entry = r.entry(self.name).unwrap_or_else(|| {
                panic!(
                    "policy '{}' is not in the process-global registry \
                         (register it with qnet_core::policy::register)",
                    self.name
                )
            });
            (entry.constructor)(params)
        })
    }
}

impl fmt::Debug for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_label())
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_label())
    }
}

impl std::str::FromStr for PolicyId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyId::parse(s)
    }
}

impl Serialize for PolicyId {
    fn to_value(&self) -> Value {
        Value::Str(self.display_label().to_string())
    }
}

impl Deserialize for PolicyId {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("policy name", value))?;
        PolicyId::parse(s).map_err(DeError::custom)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Serialized construction parameters handed to a policy constructor.
///
/// The `campaign` CLI and `ExperimentConfig` select policies by *name*; any
/// knobs a policy exposes travel as a [`serde::Value`] tree (`Null` means
/// "defaults"). See [`greedy::GreedyOrderPolicy`] for a constructor that
/// reads one.
#[derive(Debug, Clone)]
pub struct PolicyParams {
    /// The parameter tree (`Value::Null` for defaults).
    pub params: Value,
}

impl Default for PolicyParams {
    fn default() -> Self {
        PolicyParams {
            params: Value::Null,
        }
    }
}

/// A policy constructor: builds a fresh policy instance for one run.
pub type PolicyConstructor = fn(&PolicyParams) -> Box<dyn SwapPolicy>;

/// Everything the registry knows about one policy.
#[derive(Clone)]
pub struct PolicyEntry {
    /// Canonical registry name (CLI-facing, lowercase).
    pub name: &'static str,
    /// Display / serialization label (legacy `ProtocolMode` variant label
    /// for the paper disciplines).
    pub display: &'static str,
    /// Alternate accepted spellings.
    pub aliases: &'static [&'static str],
    /// Report family.
    pub family: PolicyFamily,
    /// One-line human description.
    pub summary: &'static str,
    /// Constructor.
    pub constructor: PolicyConstructor,
}

impl fmt::Debug for PolicyEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyEntry")
            .field("name", &self.name)
            .field("display", &self.display)
            .field("family", &self.family)
            .finish()
    }
}

/// The string-keyed policy registry.
///
/// A process-global instance pre-loaded with the built-ins backs
/// [`PolicyId::parse`] / [`PolicyId::instantiate`]; external code extends it
/// with [`register`].
#[derive(Debug, Clone)]
pub struct PolicyRegistry {
    entries: Vec<PolicyEntry>,
}

impl PolicyRegistry {
    /// A registry containing exactly the built-in disciplines.
    pub fn builtin() -> Self {
        PolicyRegistry {
            entries: vec![
                PolicyEntry {
                    name: "oblivious",
                    display: "Oblivious",
                    aliases: &["path-oblivious"],
                    family: PolicyFamily::Oblivious,
                    summary: "path-oblivious max-min balancing (paper §4)",
                    constructor: |_| Box::new(oblivious::ObliviousPolicy::new()),
                },
                PolicyEntry {
                    name: "hybrid",
                    display: "Hybrid",
                    aliases: &[],
                    family: PolicyFamily::Oblivious,
                    summary: "oblivious balancing + consumer-side repair over seeded pairs (§6)",
                    constructor: |_| Box::new(hybrid::HybridPolicy::new()),
                },
                PolicyEntry {
                    name: "planned",
                    display: "PlannedConnectionOriented",
                    aliases: &["planned-co", "connection-oriented"],
                    family: PolicyFamily::Planned,
                    summary: "connection-oriented nested swapping along each request's path",
                    constructor: |_| Box::new(planned::PlannedConnectionOrientedPolicy::new()),
                },
                PolicyEntry {
                    name: "connectionless",
                    display: "PlannedConnectionless",
                    aliases: &["planned-cl"],
                    family: PolicyFamily::Planned,
                    summary: "connectionless planned swapping, no head-of-line blocking",
                    constructor: |_| Box::new(planned::PlannedConnectionlessPolicy::new()),
                },
                PolicyEntry {
                    name: "greedy",
                    display: "GreedyNested",
                    aliases: &["greedy-nested", "mai"],
                    family: PolicyFamily::Planned,
                    summary: "greedy nested-swap ordering exploiting seeded mid-path pairs \
                              (à la Mai et al.)",
                    constructor: |params| Box::new(greedy::GreedyOrderPolicy::from_params(params)),
                },
                PolicyEntry {
                    name: "gossip-aware",
                    display: "GossipAware",
                    aliases: &["stale-aware"],
                    family: PolicyFamily::Oblivious,
                    summary: "oblivious balancing over age-discounted believed counts \
                              (exp(-age/τ) decay)",
                    constructor: |params| {
                        Box::new(gossip_aware::GossipAwarePolicy::from_params(params))
                    },
                },
            ],
        }
    }

    /// The entry with canonical name `name`, if registered.
    pub fn entry(&self, name: &str) -> Option<&PolicyEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Resolve a name, alias or display label to a [`PolicyId`].
    pub fn resolve(&self, spec: &str) -> Option<PolicyId> {
        self.entries
            .iter()
            .find(|e| e.name == spec || e.display == spec || e.aliases.contains(&spec))
            .map(|e| PolicyId { name: e.name })
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[PolicyEntry] {
        &self.entries
    }

    /// Register a policy with *this* registry instance. Returns an error if
    /// the name (or any alias) collides with an existing entry.
    ///
    /// Note: the [`PolicyId`] convenience methods (`parse`, `instantiate`,
    /// `family`, …) always consult the **process-global** registry. An id
    /// minted by this method on a standalone registry is only meaningful
    /// through this instance's own `entry`/`resolve` lookups; to make a
    /// policy selectable by `ExperimentConfig`, the campaign grid and the
    /// CLI, use the free [`register`] function instead.
    pub fn register(&mut self, entry: PolicyEntry) -> Result<PolicyId, String> {
        let collides = |s: &str| self.resolve(s).is_some();
        if collides(entry.name) || collides(entry.display) {
            return Err(format!(
                "policy name '{}' is already registered",
                entry.name
            ));
        }
        if let Some(a) = entry.aliases.iter().find(|a| collides(a)) {
            return Err(format!("policy alias '{a}' is already registered"));
        }
        let id = PolicyId { name: entry.name };
        self.entries.push(entry);
        Ok(id)
    }
}

fn global_registry() -> &'static RwLock<PolicyRegistry> {
    static REGISTRY: OnceLock<RwLock<PolicyRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(PolicyRegistry::builtin()))
}

fn with_registry<T>(f: impl FnOnce(&PolicyRegistry) -> T) -> T {
    f(&global_registry().read().expect("policy registry poisoned"))
}

/// Register a policy with the process-global registry (the one
/// [`PolicyId::parse`] and every config/CLI lookup consults). Names must be
/// `'static`: plugins typically use literals; dynamically generated names
/// can be interned with `String::leak`.
pub fn register(entry: PolicyEntry) -> Result<PolicyId, String> {
    global_registry()
        .write()
        .expect("policy registry poisoned")
        .register(entry)
}

/// A snapshot of every registered policy, in registration order (built-ins
/// first). Backs `campaign --list-policies`.
pub fn registered_policies() -> Vec<PolicyEntry> {
    with_registry(|r| r.entries.to_vec())
}

// ---------------------------------------------------------------------------
// ProtocolMode — legacy compatibility shim
// ---------------------------------------------------------------------------

/// The pre-plugin-API protocol selector, kept as a compatibility shim.
///
/// New code should use [`PolicyId`] (and the registry) directly; this enum
/// remains so that code and serialized configs written against the original
/// API keep working. It converts losslessly into [`PolicyId`] and shares
/// its serialized representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// The paper's path-oblivious max-min balancing protocol (§4).
    Oblivious,
    /// Oblivious balancing plus the §6 consumer-side repair.
    Hybrid,
    /// Planned-path, connection-oriented baseline.
    PlannedConnectionOriented,
    /// Planned-path, connectionless baseline.
    PlannedConnectionless,
}

impl ProtocolMode {
    /// The canonical registry name of the corresponding policy.
    pub fn policy_name(self) -> &'static str {
        self.id().name()
    }

    /// The corresponding policy selector.
    pub fn id(self) -> PolicyId {
        match self {
            ProtocolMode::Oblivious => PolicyId::OBLIVIOUS,
            ProtocolMode::Hybrid => PolicyId::HYBRID,
            ProtocolMode::PlannedConnectionOriented => PolicyId::PLANNED,
            ProtocolMode::PlannedConnectionless => PolicyId::CONNECTIONLESS,
        }
    }

    /// True for the two planned-path baselines.
    pub fn is_planned(&self) -> bool {
        self.id().family() == PolicyFamily::Planned
    }
}

impl From<ProtocolMode> for PolicyId {
    fn from(mode: ProtocolMode) -> PolicyId {
        mode.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_ids_resolve_and_roundtrip() {
        for id in [
            PolicyId::OBLIVIOUS,
            PolicyId::HYBRID,
            PolicyId::PLANNED,
            PolicyId::CONNECTIONLESS,
            PolicyId::GREEDY,
            PolicyId::GOSSIP_AWARE,
        ] {
            assert_eq!(PolicyId::parse(id.name()).unwrap(), id);
            assert_eq!(PolicyId::parse(id.display_label()).unwrap(), id);
            let v = id.to_value();
            assert_eq!(PolicyId::from_value(&v).unwrap(), id);
        }
        assert!(PolicyId::parse("no-such-policy").is_err());
    }

    #[test]
    fn legacy_labels_serialize_identically_to_the_enum() {
        assert_eq!(
            PolicyId::OBLIVIOUS.to_value(),
            ProtocolMode::Oblivious.to_value()
        );
        assert_eq!(
            PolicyId::PLANNED.to_value(),
            ProtocolMode::PlannedConnectionOriented.to_value()
        );
        assert_eq!(
            PolicyId::CONNECTIONLESS.to_value(),
            ProtocolMode::PlannedConnectionless.to_value()
        );
        assert_eq!(PolicyId::HYBRID.to_value(), ProtocolMode::Hybrid.to_value());
        // And the Debug rendering (used by human summaries and CSVs) too.
        assert_eq!(format!("{:?}", PolicyId::OBLIVIOUS), "Oblivious");
        assert_eq!(
            format!("{:?}", PolicyId::PLANNED),
            "PlannedConnectionOriented"
        );
    }

    #[test]
    fn protocol_mode_shim_converts() {
        assert_eq!(PolicyId::from(ProtocolMode::Hybrid), PolicyId::HYBRID);
        assert_eq!(
            ProtocolMode::PlannedConnectionless.policy_name(),
            "connectionless"
        );
        assert!(ProtocolMode::PlannedConnectionOriented.is_planned());
        assert!(!ProtocolMode::Oblivious.is_planned());
    }

    #[test]
    fn families_partition_the_builtins() {
        assert_eq!(PolicyId::OBLIVIOUS.family(), PolicyFamily::Oblivious);
        assert_eq!(PolicyId::HYBRID.family(), PolicyFamily::Oblivious);
        assert_eq!(PolicyId::PLANNED.family(), PolicyFamily::Planned);
        assert_eq!(PolicyId::CONNECTIONLESS.family(), PolicyFamily::Planned);
        assert_eq!(PolicyId::GREEDY.family(), PolicyFamily::Planned);
        assert_eq!(PolicyId::GOSSIP_AWARE.family(), PolicyFamily::Oblivious);
    }

    #[test]
    fn every_builtin_instantiates() {
        for entry in registered_policies() {
            let policy = (entry.constructor)(&PolicyParams::default());
            assert_eq!(policy.id().name(), entry.name);
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut registry = PolicyRegistry::builtin();
        let dup = PolicyEntry {
            name: "oblivious",
            display: "Duplicate",
            aliases: &[],
            family: PolicyFamily::Oblivious,
            summary: "",
            constructor: |_| Box::new(oblivious::ObliviousPolicy::new()),
        };
        assert!(registry.register(dup).is_err());
        let alias_clash = PolicyEntry {
            name: "fresh",
            display: "Fresh",
            aliases: &["hybrid"],
            family: PolicyFamily::Oblivious,
            summary: "",
            constructor: |_| Box::new(oblivious::ObliviousPolicy::new()),
        };
        assert!(registry.register(alias_clash).is_err());
        let ok = PolicyEntry {
            name: "fresh2",
            display: "Fresh2",
            aliases: &[],
            family: PolicyFamily::Planned,
            summary: "a custom policy",
            constructor: |_| Box::new(planned::PlannedConnectionOrientedPolicy::new()),
        };
        let id = registry.register(ok).unwrap();
        assert_eq!(registry.resolve("fresh2"), Some(id));
    }
}
