//! A greedy nested-swap-*ordering* discipline, à la Mai et al. ("Towards
//! Optimal Orders for Entanglement Swapping in Path Graphs").
//!
//! The balanced nested executor ([`crate::planned`]) always splits a path
//! segment at its midpoint — the order that minimises swap count when every
//! pool starts empty. But mid-path Bell pairs frequently *already exist*
//! (earlier requests and generation leave them behind), and then the swap
//! **order** matters: splitting where stock is deepest reuses those pairs
//! instead of rebuilding both halves from base pairs. This policy chooses
//! each split point greedily by the current inventory — the first discipline
//! added through the [`SwapPolicy`] plugin API rather than the old
//! `ProtocolMode` enum, and the registry's proof of extensibility.

use super::{PolicyCtx, PolicyId, PolicyParams, RequestAction, SwapPolicy};
use crate::balancer::CountView;
use crate::control::ControlPlane;
use crate::inventory::Inventory;
use crate::workload::ConsumptionRequest;
use qnet_topology::{NodeId, NodePair};

/// How count ties between candidate split points are broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Prefer the split closest to the segment midpoint (degrades to the
    /// balanced nested order on an empty inventory).
    #[default]
    Balanced,
    /// Prefer the leftmost split (a sequential, repeater-chain-like order).
    Leftmost,
}

/// Pick the interior split index `j ∈ (from, to)` whose two sub-pools
/// currently hold the most stock, measured by `min(count(from,j),
/// count(j,to))`. The counts come from ground truth under global
/// knowledge, or from the consumer's stale believed view under the
/// partial-knowledge control plane — the *ordering* is then a decision
/// made on possibly-out-of-date information.
fn choose_split(
    counts: &dyn CountView,
    path: &[NodeId],
    from: usize,
    to: usize,
    tie: TieBreak,
) -> usize {
    debug_assert!(to > from + 1);
    let mid2 = from + to; // 2 × the (possibly fractional) midpoint
    let mut best = from + 1;
    let mut best_stock = 0u64;
    for j in from + 1..to {
        let stock = counts
            .count(NodePair::new(path[from], path[j]))
            .min(counts.count(NodePair::new(path[j], path[to])));
        let better = stock > best_stock
            || (stock == best_stock
                && match tie {
                    TieBreak::Balanced => (2 * j).abs_diff(mid2) < (2 * best).abs_diff(mid2),
                    TieBreak::Leftmost => false,
                });
        if better {
            best = j;
            best_stock = stock;
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn build_segment_greedy(
    inventory: &mut Inventory,
    believed: Option<&dyn CountView>,
    path: &[NodeId],
    from: usize,
    to: usize,
    need: u64,
    k: u64,
    tie: TieBreak,
) -> Option<u64> {
    let pool = NodePair::new(path[from], path[to]);
    let have = inventory.count(pool);
    if have >= need {
        return Some(0);
    }
    if to == from + 1 {
        // Base segment: pairs can only come from generation.
        return None;
    }
    let missing = need - have;
    let j = match believed {
        Some(view) => choose_split(view, path, from, to, tie),
        None => choose_split(&*inventory, path, from, to, tie),
    };
    let mut swaps = 0;
    swaps += build_segment_greedy(inventory, believed, path, from, j, k * missing, k, tie)?;
    swaps += build_segment_greedy(inventory, believed, path, j, to, k * missing, k, tie)?;
    for _ in 0..missing {
        inventory
            .apply_swap(path[j], path[from], path[to], k, k)
            .ok()?;
        swaps += 1;
    }
    Some(swaps)
}

/// Produce `count` Bell pairs between the first and last node of `path` by
/// nested swapping whose split points are chosen greedily from the current
/// inventory, atomically: either the pairs are produced and `Some(swaps)`
/// is returned, or the inventory is left untouched.
pub fn execute_greedy_along_path(
    inventory: &mut Inventory,
    path: &[NodeId],
    count: u64,
    k: u64,
    tie: TieBreak,
) -> Option<u64> {
    assert!(path.len() >= 2, "a swap path needs at least two nodes");
    assert!(k >= 1, "the distillation draw factor is at least one");
    if count == 0 {
        return Some(0);
    }
    let mut trial = inventory.clone();
    let swaps = build_segment_greedy(&mut trial, None, path, 0, path.len() - 1, count, k, tie)?;
    *inventory = trial;
    Some(swaps)
}

/// [`execute_greedy_along_path`] with the split *ordering* decided on the
/// consumer's believed counts instead of ground truth: the stale-control-
/// plane variant. Feasibility checks and the swaps themselves still run
/// against truth (atomically, on a trial clone) — only the decision of
/// *where* to split is stale. The believed snapshot is fixed at entry (a
/// consumer plans the whole order from one read of its view, with its own
/// pools exact).
pub fn execute_greedy_along_path_stale(
    inventory: &mut Inventory,
    view: &crate::control::KnowledgeView,
    consumer: NodeId,
    path: &[NodeId],
    count: u64,
    k: u64,
    tie: TieBreak,
) -> Option<u64> {
    assert!(path.len() >= 2, "a swap path needs at least two nodes");
    assert!(k >= 1, "the distillation draw factor is at least one");
    if count == 0 {
        return Some(0);
    }
    let mut trial = inventory.clone();
    let swaps = {
        let believed = view.for_owner(consumer, inventory);
        build_segment_greedy(
            &mut trial,
            Some(&believed),
            path,
            0,
            path.len() - 1,
            count,
            k,
            tie,
        )
    }?;
    *inventory = trial;
    Some(swaps)
}

/// The greedy-ordering planned discipline: connection-oriented queueing,
/// greedy split-point selection per request.
#[derive(Debug, Default)]
pub struct GreedyOrderPolicy {
    tie_break: TieBreak,
    /// Memoized shortest paths (the generation graph is static per run);
    /// `None` marks a disconnected pair.
    paths: std::collections::BTreeMap<NodePair, Option<Vec<NodeId>>>,
}

impl GreedyOrderPolicy {
    /// A fresh instance with the default (balanced) tie-break.
    pub fn new() -> Self {
        GreedyOrderPolicy::default()
    }

    /// Construct from serialized registry parameters. Recognised keys:
    /// `"tie_break": "balanced" | "leftmost"`.
    pub fn from_params(params: &PolicyParams) -> Self {
        let tie_break = match params
            .params
            .get_field("tie_break")
            .and_then(|v| v.as_str())
        {
            Some("leftmost") => TieBreak::Leftmost,
            _ => TieBreak::Balanced,
        };
        GreedyOrderPolicy {
            tie_break,
            ..GreedyOrderPolicy::default()
        }
    }
}

impl SwapPolicy for GreedyOrderPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::GREEDY
    }

    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        let path = self
            .paths
            .entry(request.pair)
            .or_insert_with(|| {
                ctx.oracle
                    .path(ctx.graph, request.pair.lo(), request.pair.hi())
                    .map(|p| p.nodes)
            })
            .as_deref();
        let Some(path) = path else {
            return RequestAction::Drop;
        };
        let k = ctx.pairs_per_distilled();
        if let Some(ControlPlane::Stale(ctl)) = ctx.control {
            // The split ordering is decided on the consumer's believed
            // counts; execution stays truth-checked. A believed ordering
            // that fails where the fresh-knowledge ordering would have
            // succeeded is damage attributable to staleness: a miss.
            let consumer = request.pair.lo();
            let view = ctl.view(consumer);
            let age = {
                let owner_aware = view.for_owner(consumer, ctx.inventory);
                path.windows(2)
                    .map(|w| owner_aware.pair_age_s(NodePair::new(w[0], w[1]), ctx.now))
                    .fold(0.0, f64::max)
            };
            return match execute_greedy_along_path_stale(
                ctx.inventory,
                view,
                consumer,
                path,
                k,
                k,
                self.tie_break,
            ) {
                Some(swaps) => {
                    ctx.telemetry.record_age(age);
                    RequestAction::Repaired(swaps)
                }
                None => {
                    let mut probe = ctx.inventory.clone();
                    if execute_greedy_along_path(&mut probe, path, k, k, self.tie_break).is_some() {
                        ctx.telemetry.record_age(age);
                        ctx.telemetry.record_miss(request.pair);
                    }
                    RequestAction::Wait
                }
            };
        }
        match execute_greedy_along_path(ctx.inventory, path, k, k, self.tie_break) {
            Some(swaps) => RequestAction::Repaired(swaps),
            None => RequestAction::Wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::test_support::{pair, run_world};
    use crate::workload::Workload;
    use qnet_topology::Topology;
    use serde::Value;

    fn path_nodes(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    fn stocked(nodes: usize, per_edge: u64) -> Inventory {
        let mut inv = Inventory::new(nodes);
        for i in 0..nodes - 1 {
            for _ in 0..per_edge {
                inv.add_pair(pair(i as u32, i as u32 + 1)).unwrap();
            }
        }
        inv
    }

    #[test]
    fn empty_inventory_matches_balanced_nested_cost() {
        // With no seeded mid-level pairs the balanced tie-break degrades to
        // exactly the midpoint recursion of the classic executor.
        for hops in 2..7 {
            let mut greedy_inv = stocked(hops + 1, 8);
            let mut nested_inv = greedy_inv.clone();
            let g = execute_greedy_along_path(
                &mut greedy_inv,
                &path_nodes(hops + 1),
                1,
                1,
                TieBreak::Balanced,
            )
            .unwrap();
            let n = crate::planned::execute_nested_along_path(
                &mut nested_inv,
                &path_nodes(hops + 1),
                1,
                1,
            )
            .unwrap();
            assert_eq!(g, n, "{hops} hops");
            assert_eq!(greedy_inv, nested_inv);
        }
    }

    #[test]
    fn seeded_mid_pair_changes_the_order_and_saves_swaps() {
        // Path 0—1—2—3—4 with a pre-seeded (0,3) pair. The balanced order
        // splits at 2 and cannot use it (it rebuilds (0,2) and (2,4)); the
        // greedy order splits at 3, reuses (0,3) and needs only the single
        // joining swap.
        let mut greedy_inv = stocked(5, 1);
        greedy_inv.add_pair(pair(0, 3)).unwrap();
        let mut nested_inv = greedy_inv.clone();

        let g =
            execute_greedy_along_path(&mut greedy_inv, &path_nodes(5), 1, 1, TieBreak::Balanced)
                .unwrap();
        let n = crate::planned::execute_nested_along_path(&mut nested_inv, &path_nodes(5), 1, 1)
            .unwrap();
        assert_eq!(g, 1, "greedy joins the seeded (0,3) pair to (3,4)");
        assert_eq!(n, 3, "balanced ignores the seeded pair");
        assert_eq!(greedy_inv.count(pair(0, 4)), 1);
    }

    #[test]
    fn failure_is_atomic() {
        let mut inv = stocked(5, 1);
        inv.remove_pairs(pair(2, 3), 1).unwrap();
        let before = inv.clone();
        assert!(
            execute_greedy_along_path(&mut inv, &path_nodes(5), 1, 1, TieBreak::Balanced).is_none()
        );
        assert_eq!(inv, before);
    }

    #[test]
    fn params_select_the_tie_break() {
        let defaults = GreedyOrderPolicy::from_params(&PolicyParams::default());
        assert_eq!(defaults.tie_break, TieBreak::Balanced);
        let leftmost = GreedyOrderPolicy::from_params(&PolicyParams {
            params: Value::Map(vec![(
                "tie_break".to_string(),
                Value::Str("leftmost".to_string()),
            )]),
        });
        assert_eq!(leftmost.tie_break, TieBreak::Leftmost);
    }

    #[test]
    fn greedy_runs_end_to_end_and_is_deterministic() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = || Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let a = run_world(config, workload(), PolicyId::GREEDY, 5, 600);
        let b = run_world(config, workload(), PolicyId::GREEDY, 5, 600);
        assert!(a.is_done());
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.metrics().swaps_performed > 0);
    }
}
