//! A staleness-aware variant of the oblivious balancer, registered through
//! the [`SwapPolicy`] plugin API.
//!
//! Under the stale control plane the §4 balancer reads believed beneficiary
//! counts that may be many refresh periods old. A believed count read long
//! ago systematically *overstates* the surviving stock: consumption and
//! balancing keep draining pools between refreshes, while gossip only ever
//! reports the level at read time. The oblivious discipline takes the
//! number at face value and therefore under-serves exactly the pairs whose
//! rows refresh rarely. This policy instead discounts each believed count
//! by `exp(-age / τ)` before the preferable-swap test — an old row decays
//! toward zero, the pair looks as poor as it plausibly is, and the
//! balancer helps it sooner. Under global knowledge (or the legacy
//! synchronous backend) ages are identically zero and the discipline
//! degrades to exactly the oblivious balancer.

use super::{oblivious::ObliviousPolicy, PolicyCtx, PolicyId, PolicyParams};
use super::{RequestAction, SwapPolicy};
use crate::balancer::{BalancerPolicy, CountView, SwapCandidate};
use crate::control::{ControlPlane, KnowledgeView};
use crate::workload::ConsumptionRequest;
use qnet_sim::SimTime;
use qnet_topology::{NodeId, NodePair};

/// Default decay constant τ (seconds). Sized to the gossip refresh periods
/// the §6 sweeps use (0.25–4 s): a row one default-τ old keeps ~37 % of
/// its believed count.
pub const DEFAULT_TAU_S: f64 = 2.0;

/// [`KnowledgeView`] overlay that decays each believed count by the age of
/// the rows it came from: `⌊count · exp(-age/τ)⌋`.
#[derive(Debug, Clone, Copy)]
pub struct AgeDiscountedView<'a> {
    view: &'a KnowledgeView,
    now: SimTime,
    tau_s: f64,
}

impl<'a> AgeDiscountedView<'a> {
    /// Discount `view`'s counts as of `now` with decay constant `tau_s`.
    pub fn new(view: &'a KnowledgeView, now: SimTime, tau_s: f64) -> Self {
        assert!(tau_s > 0.0, "the decay constant must be positive");
        AgeDiscountedView { view, now, tau_s }
    }
}

impl CountView for AgeDiscountedView<'_> {
    fn count(&self, pair: NodePair) -> u64 {
        let believed = self.view.count(pair);
        if believed == 0 {
            return 0;
        }
        let age = self.view.pair_age_s(pair, self.now);
        (believed as f64 * (-age / self.tau_s).exp()).floor() as u64
    }
}

/// The gossip-aware balancing discipline: oblivious max-min balancing over
/// age-discounted believed counts.
#[derive(Debug)]
pub struct GossipAwarePolicy {
    balancer: BalancerPolicy,
    tau_s: f64,
}

impl Default for GossipAwarePolicy {
    fn default() -> Self {
        GossipAwarePolicy {
            balancer: BalancerPolicy,
            tau_s: DEFAULT_TAU_S,
        }
    }
}

impl GossipAwarePolicy {
    /// A fresh instance with the default decay constant.
    pub fn new() -> Self {
        GossipAwarePolicy::default()
    }

    /// Construct from serialized registry parameters. Recognised keys:
    /// `"tau_s": <positive seconds>`.
    pub fn from_params(params: &PolicyParams) -> Self {
        let tau_s = params
            .params
            .get_field("tau_s")
            .and_then(|v| v.as_f64())
            .filter(|t| *t > 0.0)
            .unwrap_or(DEFAULT_TAU_S);
        GossipAwarePolicy {
            balancer: BalancerPolicy,
            tau_s,
        }
    }

    /// The configured decay constant τ, seconds.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }
}

impl SwapPolicy for GossipAwarePolicy {
    fn id(&self) -> PolicyId {
        PolicyId::GOSSIP_AWARE
    }

    fn schedules_swap_scans(&self) -> bool {
        true
    }

    fn on_swap_scan(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) -> Option<SwapCandidate> {
        match ctx.control {
            Some(ControlPlane::Stale(ctl)) => {
                let view = ctl.view(node);
                let d = ctx.config.distillation_overhead();
                let overhead = move |_: NodePair| d;
                let discounted = AgeDiscountedView::new(view, ctx.now, self.tau_s);
                let candidate =
                    self.balancer
                        .find_preferable_swap(ctx.inventory, &discounted, node, &overhead);
                if let Some(c) = &candidate {
                    ctx.telemetry
                        .record_age(view.pair_age_s(c.beneficiary(), ctx.now));
                }
                candidate
            }
            // No ages to discount: identical to the oblivious balancer.
            _ => ObliviousPolicy::scan(&self.balancer, ctx, node),
        }
    }

    fn on_blocked_request(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _request: &ConsumptionRequest,
    ) -> RequestAction {
        RequestAction::Wait
    }

    fn blocked_hook_is_inert(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::Inventory;
    use qnet_topology::NodeId;
    use serde::Value;

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn fresh_rows_pass_through_and_old_rows_decay() {
        let mut view = KnowledgeView::new(4);
        view.install_row(NodeId(2), SimTime::from_secs_f64(10.0), &[6, 0, 0, 0]);
        // Read just now: full believed count survives.
        let now = SimTime::from_secs_f64(10.0);
        let fresh = AgeDiscountedView::new(&view, now, 1.0);
        assert_eq!(fresh.count(pair(0, 2)), 6);
        // Two τ later the count has decayed to ⌊6·e⁻²⌋ = 0.
        let later = SimTime::from_secs_f64(12.0);
        let stale = AgeDiscountedView::new(&view, later, 1.0);
        assert_eq!(stale.count(pair(0, 2)), 0);
        // A larger τ keeps more of it: ⌊6·e^(-2/4)⌋ = 3.
        let patient = AgeDiscountedView::new(&view, later, 4.0);
        assert_eq!(patient.count(pair(0, 2)), 3);
    }

    #[test]
    fn discounting_revives_a_swap_a_stale_row_would_block() {
        // Node 1 has deep pools toward 0 and 2; the view believes (0,2)
        // already holds 5 pairs — but that row is ancient. Taken at face
        // value the swap is not preferable; discounted, it is.
        let mut inv = Inventory::new(3);
        for _ in 0..4 {
            inv.add_pair(pair(0, 1)).unwrap();
            inv.add_pair(pair(1, 2)).unwrap();
        }
        let mut view = KnowledgeView::new(3);
        view.install_row(NodeId(0), SimTime::ZERO, &[0, 0, 5]);
        view.install_row(NodeId(2), SimTime::ZERO, &[5, 0, 0]);
        let now = SimTime::from_secs_f64(20.0);
        let balancer = BalancerPolicy;
        let overhead = |_: NodePair| 1.0;
        assert!(
            balancer
                .find_preferable_swap(&inv, &view, NodeId(1), &overhead)
                .is_none(),
            "taken at face value, the believed count blocks the swap"
        );
        let discounted = AgeDiscountedView::new(&view, now, DEFAULT_TAU_S);
        let c = balancer
            .find_preferable_swap(&inv, &discounted, NodeId(1), &overhead)
            .expect("the decayed count frees the swap");
        assert_eq!(c.beneficiary(), pair(0, 2));
    }

    #[test]
    fn judged_against_oblivious_under_stale_gossip() {
        use crate::classical::KnowledgeModel;
        use crate::config::NetworkConfig;
        use crate::test_support::run_world_with_knowledge;
        use crate::workload::Workload;
        use qnet_topology::Topology;

        let config = NetworkConfig::new(Topology::Cycle { nodes: 9 });
        let knowledge = KnowledgeModel::Gossip {
            peers_per_refresh: 2,
            refresh_period_s: 1.0,
        };
        let workload =
            || Workload::from_pairs(vec![pair(0, 3), pair(2, 6), pair(4, 8), pair(1, 5)]);
        let run = |policy| {
            run_world_with_knowledge(config, workload(), policy, knowledge, 23, 900)
                .metrics()
                .clone()
        };
        let aware = run(PolicyId::GOSSIP_AWARE);
        let oblivious = run(PolicyId::OBLIVIOUS);
        // Both disciplines must make progress under the same stale plane...
        assert!(!aware.satisfied.is_empty());
        assert!(!oblivious.satisfied.is_empty());
        // ...the discount must not cost satisfied requests head-to-head...
        assert!(
            aware.satisfied.len() >= oblivious.satisfied.len(),
            "gossip-aware satisfied {} < oblivious {}",
            aware.satisfied.len(),
            oblivious.satisfied.len()
        );
        // ...and the discount genuinely changes decisions (otherwise the
        // policy is a rename, not a discipline).
        assert_ne!(
            (aware.swaps_performed, aware.pairs_generated),
            (oblivious.swaps_performed, oblivious.pairs_generated),
            "age discounting never altered a single balancing decision"
        );
        // Determinism: same seed, same believed world, same metrics.
        let again = run(PolicyId::GOSSIP_AWARE);
        assert_eq!(aware, again);
    }

    #[test]
    fn params_select_tau() {
        let defaults = GossipAwarePolicy::from_params(&PolicyParams::default());
        assert_eq!(defaults.tau_s(), DEFAULT_TAU_S);
        let custom = GossipAwarePolicy::from_params(&PolicyParams {
            params: Value::Map(vec![("tau_s".to_string(), Value::F64(0.5))]),
        });
        assert_eq!(custom.tau_s(), 0.5);
        // Nonsense values fall back to the default.
        let bogus = GossipAwarePolicy::from_params(&PolicyParams {
            params: Value::Map(vec![("tau_s".to_string(), Value::F64(-3.0))]),
        });
        assert_eq!(bogus.tau_s(), DEFAULT_TAU_S);
    }
}
