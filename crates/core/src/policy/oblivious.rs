//! The path-oblivious balancing discipline (paper §4) as a [`SwapPolicy`].

use super::{PolicyCtx, PolicyId, RequestAction, SwapPolicy};
use crate::balancer::{BalancerPolicy, SwapCandidate};
use crate::control::ControlPlane;
use crate::workload::ConsumptionRequest;
use qnet_topology::{NodeId, NodePair};

/// Pure path-oblivious max-min balancing: every node periodically scans for
/// a *preferable* swap (the §4 criterion) and consumption takes only pairs
/// that already sit between the consuming endpoints.
#[derive(Debug, Default)]
pub struct ObliviousPolicy {
    balancer: BalancerPolicy,
}

impl ObliviousPolicy {
    /// A fresh instance.
    pub fn new() -> Self {
        ObliviousPolicy::default()
    }

    /// The scan decision shared with the hybrid discipline: consult the
    /// control-plane knowledge for remote counts when one exists, ground
    /// truth otherwise. Under the stale plane the beneficiary count comes
    /// from the scanning node's [`crate::control::KnowledgeView`]; the
    /// consulted row's age is recorded for the staleness metrics. Local
    /// margins always come from truth — a node knows its own buffers.
    pub(crate) fn scan(
        balancer: &BalancerPolicy,
        ctx: &mut PolicyCtx<'_>,
        node: NodeId,
    ) -> Option<SwapCandidate> {
        let d = ctx.config.distillation_overhead();
        let overhead = move |_: NodePair| d;
        match ctx.control {
            Some(ControlPlane::Legacy(gossip)) => {
                let view = gossip.view_of(node);
                balancer.find_preferable_swap(ctx.inventory, &view, node, &overhead)
            }
            Some(ControlPlane::Stale(ctl)) => {
                let view = ctl.view(node);
                let candidate = balancer.find_preferable_swap(ctx.inventory, view, node, &overhead);
                if let Some(c) = &candidate {
                    ctx.telemetry
                        .record_age(view.pair_age_s(c.beneficiary(), ctx.now));
                }
                candidate
            }
            None => balancer.find_preferable_swap(ctx.inventory, &*ctx.inventory, node, &overhead),
        }
    }
}

impl SwapPolicy for ObliviousPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::OBLIVIOUS
    }

    fn schedules_swap_scans(&self) -> bool {
        true
    }

    fn on_swap_scan(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) -> Option<SwapCandidate> {
        ObliviousPolicy::scan(&self.balancer, ctx, node)
    }

    fn on_blocked_request(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _request: &ConsumptionRequest,
    ) -> RequestAction {
        // Path-oblivious consumption never plans: it waits for balancing to
        // deliver the pair.
        RequestAction::Wait
    }

    fn blocked_hook_is_inert(&self) -> bool {
        // The hook above is pure `Wait`: the world may skip it entirely on
        // the million-request hot path.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::test_support::{pair, run_world};
    use crate::workload::Workload;
    use qnet_topology::Topology;

    #[test]
    fn satisfies_neighbor_requests_quickly() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 5 });
        let workload = Workload::from_pairs(vec![pair(0, 1), pair(2, 3), pair(3, 4)]);
        let world = run_world(config, workload, PolicyId::OBLIVIOUS, 1, 60);
        assert!(world.is_done(), "neighbor pairs are directly generated");
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 3);
        assert!(m.pairs_generated > 0);
        // Requests were satisfied in sequence order.
        let seqs: Vec<u64> = m.satisfied.iter().map(|s| s.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn serves_distant_pairs_via_swaps() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3)]);
        let world = run_world(config, workload, PolicyId::OBLIVIOUS, 3, 600);
        assert!(
            world.is_done(),
            "balancing must eventually reach pair (0,3)"
        );
        let m = world.metrics();
        assert!(m.swaps_performed > 0, "a 3-hop pair needs swaps");
        assert_eq!(m.satisfied[0].shortest_path_hops, 3);
        assert!(m.swap_overhead().unwrap() >= 1.0);
    }
}
