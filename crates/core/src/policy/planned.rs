//! The planned-path baselines as [`SwapPolicy`] implementations.
//!
//! Both execute balanced nested swapping along a request's shortest
//! generation-graph path ([`crate::planned::execute_nested_along_path`]);
//! they differ in queue discipline: the connection-oriented variant serves
//! requests strictly in sequence order, the connectionless variant lets any
//! pending request execute as soon as its path has the pairs.

use super::{PolicyCtx, PolicyId, QueueDiscipline, RequestAction, SwapPolicy};
use crate::control::ControlPlane;
use crate::planned::{dry_run_nested_along_path, execute_nested_along_path};
use crate::workload::ConsumptionRequest;
use qnet_topology::{NodeId, NodePair};
use std::collections::BTreeMap;

/// Memoized shortest generation-graph paths. The generation graph never
/// changes during a run, but an any-order queue re-offers every blocked
/// request on every inventory change — reconstructing even a cached-oracle
/// path each time would still allocate per offer, so the concrete node
/// vectors are pinned here. Cache misses resolve through the world's
/// [`qnet_topology::PathOracle`] (shared BFS rows, `O(path)` reconstruction)
/// instead of a fresh `O(V + E)` BFS per pair. `None` records a
/// disconnected pair (also worth remembering).
#[derive(Debug, Default)]
struct PathCache {
    paths: BTreeMap<NodePair, Option<Vec<NodeId>>>,
}

impl PathCache {
    fn nodes(&mut self, ctx: &PolicyCtx<'_>, pair: NodePair) -> Option<&[NodeId]> {
        self.paths
            .entry(pair)
            .or_insert_with(|| {
                ctx.oracle
                    .path(ctx.graph, pair.lo(), pair.hi())
                    .map(|p| p.nodes)
            })
            .as_deref()
    }
}

/// Shared repair step: nested swapping along the request's shortest path.
/// `None` means the endpoints are disconnected in the generation graph.
///
/// Under the stale control plane the consumer first dry-runs the build
/// against its *believed* counts: believed-infeasible requests wait without
/// touching truth (exactly what a real partial-knowledge consumer would
/// do), and believed-feasible builds that then fail against drifted ground
/// truth are recorded as missed swaps.
fn nested_repair(
    ctx: &mut PolicyCtx<'_>,
    cache: &mut PathCache,
    request: &ConsumptionRequest,
) -> Option<RequestAction> {
    let k = ctx.pairs_per_distilled();
    let path = cache.nodes(ctx, request.pair)?;
    if let Some(ControlPlane::Stale(ctl)) = ctx.control {
        let consumer = request.pair.lo();
        let feasible = {
            let view = ctl.view(consumer).for_owner(consumer, ctx.inventory);
            dry_run_nested_along_path(ctx.inventory, &view, path, k, k)
        };
        if !feasible {
            return Some(RequestAction::Wait);
        }
        // The consumer commits to the build on believed counts: record the
        // stalest base-pool row the decision rested on.
        let age = {
            let view = ctl.view(consumer).for_owner(consumer, ctx.inventory);
            path.windows(2)
                .map(|w| view.pair_age_s(NodePair::new(w[0], w[1]), ctx.now))
                .fold(0.0, f64::max)
        };
        ctx.telemetry.record_age(age);
        return Some(match execute_nested_along_path(ctx.inventory, path, k, k) {
            Some(swaps) => RequestAction::Repaired(swaps),
            None => {
                ctx.telemetry.record_miss(request.pair);
                RequestAction::Wait
            }
        });
    }
    Some(match execute_nested_along_path(ctx.inventory, path, k, k) {
        Some(swaps) => RequestAction::Repaired(swaps),
        None => RequestAction::Wait,
    })
}

/// Connection-oriented planned baseline: each request executes nested
/// swapping along its shortest path, in request order; unreachable
/// consumers are dropped so the simulation cannot livelock.
#[derive(Debug, Default)]
pub struct PlannedConnectionOrientedPolicy {
    cache: PathCache,
}

impl PlannedConnectionOrientedPolicy {
    /// A fresh instance.
    pub fn new() -> Self {
        PlannedConnectionOrientedPolicy::default()
    }
}

impl SwapPolicy for PlannedConnectionOrientedPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::PLANNED
    }

    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        nested_repair(ctx, &mut self.cache, request).unwrap_or(RequestAction::Drop)
    }
}

/// Connectionless planned baseline: every pending request may execute as
/// soon as its path has the pairs (no head-of-line blocking), competing for
/// pairs at shared links. Unreachable requests simply stay pending.
#[derive(Debug, Default)]
pub struct PlannedConnectionlessPolicy {
    cache: PathCache,
}

impl PlannedConnectionlessPolicy {
    /// A fresh instance.
    pub fn new() -> Self {
        PlannedConnectionlessPolicy::default()
    }
}

impl SwapPolicy for PlannedConnectionlessPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::CONNECTIONLESS
    }

    fn queue_discipline(&self) -> QueueDiscipline {
        QueueDiscipline::AnyOrder
    }

    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        nested_repair(ctx, &mut self.cache, request).unwrap_or(RequestAction::Wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::test_support::{pair, run_world};
    use crate::workload::Workload;
    use qnet_topology::Topology;

    #[test]
    fn connection_oriented_executes_nested_swaps() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 7 });
        let workload = Workload::from_pairs(vec![pair(0, 3), pair(1, 4)]);
        let world = run_world(config, workload, PolicyId::PLANNED, 5, 600);
        assert!(world.is_done());
        let m = world.metrics();
        // Each 3-hop request takes exactly 2 swaps at D = 1 in planned mode.
        assert_eq!(m.swaps_performed, 4);
        assert!(m.satisfied.iter().all(|s| s.repair_swaps == 2));
    }

    #[test]
    fn connectionless_ignores_head_of_line_blocking() {
        // First request is between far-apart nodes; a later neighbor request
        // should still be served promptly in connectionless mode.
        let config = NetworkConfig::new(Topology::Cycle { nodes: 8 });
        let workload = Workload::from_pairs(vec![pair(0, 4), pair(5, 6)]);
        let world = run_world(config, workload, PolicyId::CONNECTIONLESS, 7, 600);
        let m = world.metrics();
        assert!(m.satisfied.iter().any(|s| s.pair == pair(5, 6)));
        // In connectionless mode satisfaction order need not follow sequence
        // order.
        if m.satisfied.len() == 2 {
            assert!(m.satisfied[0].pair == pair(5, 6) || m.satisfied[0].sequence == 0);
        }
    }
}
