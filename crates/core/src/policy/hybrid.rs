//! The §6 hybrid "oblivious + minimal planning" discipline as a
//! [`SwapPolicy`].

use super::{oblivious::ObliviousPolicy, PolicyCtx, PolicyId, RequestAction, SwapPolicy};
use crate::balancer::{BalancerPolicy, SwapCandidate};
use crate::control::ControlPlane;
use crate::hybrid::hybrid_repair;
use crate::planned::execute_nested_along_path;
use crate::workload::ConsumptionRequest;
use qnet_topology::{bfs_path, Graph, NodeId, NodePair};

/// Oblivious balancing plus consumer-side repair: when the head request is
/// not directly satisfiable, search for a shortest path over the *existing*
/// Bell pairs (which balancing has been seeding) and close the gap with the
/// few swaps it needs.
#[derive(Debug, Default)]
pub struct HybridPolicy {
    balancer: BalancerPolicy,
}

impl HybridPolicy {
    /// A fresh instance.
    pub fn new() -> Self {
        HybridPolicy::default()
    }
}

impl SwapPolicy for HybridPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::HYBRID
    }

    fn schedules_swap_scans(&self) -> bool {
        true
    }

    fn on_swap_scan(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) -> Option<SwapCandidate> {
        ObliviousPolicy::scan(&self.balancer, ctx, node)
    }

    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        let k = ctx.pairs_per_distilled();
        if let Some(ControlPlane::Stale(ctl)) = ctx.control {
            // The consumer plans its repair over the entanglement graph *it
            // believes in*: its own pools are exact, every remote-remote
            // pair comes from its stale knowledge view. A believed path
            // whose pairs were consumed while the row aged is a miss.
            let consumer = request.pair.lo();
            let (path, age) = {
                let view = ctl.view(consumer).for_owner(consumer, ctx.inventory);
                let mut believed = Graph::with_nodes(ctx.inventory.node_count());
                for (pair, count) in view.nonzero_pairs() {
                    if count >= k {
                        believed.add_edge(pair.lo(), pair.hi());
                    }
                }
                match bfs_path(&believed, request.pair.lo(), request.pair.hi()) {
                    None => return RequestAction::Wait,
                    Some(p) => {
                        let age = p
                            .nodes
                            .windows(2)
                            .map(|w| view.pair_age_s(NodePair::new(w[0], w[1]), ctx.now))
                            .fold(0.0, f64::max);
                        (p.nodes, age)
                    }
                }
            };
            if path.len() < 2 {
                return RequestAction::Wait;
            }
            ctx.telemetry.record_age(age);
            return match execute_nested_along_path(ctx.inventory, &path, k, k) {
                Some(swaps) => RequestAction::Repaired(swaps),
                None => {
                    ctx.telemetry.record_miss(request.pair);
                    RequestAction::Wait
                }
            };
        }
        match hybrid_repair(ctx.inventory, request.pair, k, k) {
            Some(swaps) => RequestAction::Repaired(swaps),
            None => RequestAction::Wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::test_support::{pair, run_world};
    use crate::workload::Workload;
    use qnet_topology::Topology;

    #[test]
    fn repairs_from_seeded_pairs() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 9 });
        let workload = Workload::from_pairs(vec![pair(0, 4)]);
        let world = run_world(config, workload, PolicyId::HYBRID, 11, 600);
        assert!(world.is_done());
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 1);
    }
}
