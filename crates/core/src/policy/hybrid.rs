//! The §6 hybrid "oblivious + minimal planning" discipline as a
//! [`SwapPolicy`].

use super::{oblivious::ObliviousPolicy, PolicyCtx, PolicyId, RequestAction, SwapPolicy};
use crate::balancer::{BalancerPolicy, SwapCandidate};
use crate::hybrid::hybrid_repair;
use crate::workload::ConsumptionRequest;
use qnet_topology::NodeId;

/// Oblivious balancing plus consumer-side repair: when the head request is
/// not directly satisfiable, search for a shortest path over the *existing*
/// Bell pairs (which balancing has been seeding) and close the gap with the
/// few swaps it needs.
#[derive(Debug, Default)]
pub struct HybridPolicy {
    balancer: BalancerPolicy,
}

impl HybridPolicy {
    /// A fresh instance.
    pub fn new() -> Self {
        HybridPolicy::default()
    }
}

impl SwapPolicy for HybridPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::HYBRID
    }

    fn schedules_swap_scans(&self) -> bool {
        true
    }

    fn on_swap_scan(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) -> Option<SwapCandidate> {
        ObliviousPolicy::scan(&self.balancer, ctx, node)
    }

    fn on_blocked_request(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        request: &ConsumptionRequest,
    ) -> RequestAction {
        let k = ctx.pairs_per_distilled();
        match hybrid_repair(ctx.inventory, request.pair, k, k) {
            Some(swaps) => RequestAction::Repaired(swaps),
            None => RequestAction::Wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::test_support::{pair, run_world};
    use crate::workload::Workload;
    use qnet_topology::Topology;

    #[test]
    fn repairs_from_seeded_pairs() {
        let config = NetworkConfig::new(Topology::Cycle { nodes: 9 });
        let workload = Workload::from_pairs(vec![pair(0, 4)]);
        let world = run_world(config, workload, PolicyId::HYBRID, 11, 600);
        assert!(world.is_done());
        let m = world.metrics();
        assert_eq!(m.satisfied.len(), 1);
    }
}
