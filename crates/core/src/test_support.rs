//! Shared test helpers for the simulation substrate and the per-policy
//! modules (compiled only under `cfg(test)`).

use crate::classical::KnowledgeModel;
use crate::config::NetworkConfig;
use crate::network::QuantumNetworkWorld;
use crate::policy::PolicyId;
use crate::workload::Workload;
use qnet_sim::{Engine, EventQueue, SimTime, StopCondition};
use qnet_topology::{NodeId, NodePair};

/// Shorthand pair constructor.
pub fn pair(a: u32, b: u32) -> NodePair {
    NodePair::new(NodeId(a), NodeId(b))
}

/// Build a world for `policy`, run it to `horizon_s` simulated seconds (or
/// until the workload completes) and return it for inspection.
pub fn run_world(
    config: NetworkConfig,
    workload: Workload,
    policy: PolicyId,
    seed: u64,
    horizon_s: u64,
) -> QuantumNetworkWorld {
    run_world_with_knowledge(
        config,
        workload,
        policy,
        KnowledgeModel::Global,
        seed,
        horizon_s,
    )
}

/// [`run_world`] with an explicit knowledge model.
pub fn run_world_with_knowledge(
    config: NetworkConfig,
    workload: Workload,
    policy: PolicyId,
    knowledge: KnowledgeModel,
    seed: u64,
    horizon_s: u64,
) -> QuantumNetworkWorld {
    let mut engine = {
        let mut queue = EventQueue::new();
        let world = QuantumNetworkWorld::new(
            config,
            workload,
            policy.instantiate(),
            knowledge,
            seed,
            &mut queue,
        );
        let mut engine = Engine::new(world);
        // Move the pre-seeded events into the engine's queue.
        while let Some(ev) = queue.pop() {
            engine.queue_mut().schedule_at(ev.time, ev.event);
        }
        engine
    };
    engine.run(StopCondition::at_horizon(SimTime::from_secs(horizon_s)));
    let mut world = engine.into_world();
    // Mirror the Experiment::run lifecycle: the policy's end-of-run hook
    // fires before metrics are read.
    world.finish();
    world
}
