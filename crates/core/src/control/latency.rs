//! Classical propagation latency, derived from the link fabric.
//!
//! Gossip rows and swap-coordination messages travel over the classical
//! network that parallels the quantum links. Their latency is a *physical*
//! quantity: light in fibre covers ~200 000 km/s, and the deployed-fiber
//! numbers the stack already calibrates against (Craddock et al.) give real
//! per-link lengths via [`qnet_topology::LinkFabric`]. This module folds
//! those lengths into a dense per-pair one-way delay table so the stale
//! control plane can age knowledge by exactly the time the bits spent in
//! flight. Without a fabric every generation-graph hop is assumed to span
//! [`DEFAULT_HOP_KM`] of metro fibre.

use qnet_sim::SimDuration;
use qnet_topology::pairs::all_pairs;
use qnet_topology::{Graph, LinkFabric, NodePair, PairMatrix, PathOracle};

/// Kilometres assumed per generation-graph hop when no link fabric is
/// attached (a metro-scale default, matching the `metro-fiber` preset's
/// mid-range link length).
pub const DEFAULT_HOP_KM: f64 = 10.0;

/// Speed of light in fibre, km/s (refractive index ≈ 1.5).
pub const FIBER_KM_PER_S: f64 = 200_000.0;

/// Fixed per-message classical processing delay in seconds (serialization,
/// routing, and endpoint handling), added on top of propagation.
pub const PROCESSING_DELAY_S: f64 = 1e-3;

/// One-way classical propagation delays between every node pair.
///
/// The classical network is assumed to follow the generation graph: the
/// delay between two nodes is the fibre length of the shortest
/// generation-graph path between them (per-edge lengths from the link
/// fabric when one is attached, [`DEFAULT_HOP_KM`] per hop otherwise)
/// divided by [`FIBER_KM_PER_S`]. Pairs disconnected in the generation
/// graph are still classically reachable and get one default hop.
#[derive(Debug, Clone)]
pub struct PropagationDelays {
    delays_s: PairMatrix<f64>,
    max_delay_s: f64,
}

impl PropagationDelays {
    /// Build the dense delay table over `graph` (eager: the stale control
    /// plane probes it on every exchange and every deferred swap).
    pub fn new(graph: &Graph, fabric: Option<&LinkFabric>, oracle: &PathOracle) -> Self {
        let n = graph.node_count();
        let mut delays_s = PairMatrix::new(n);
        let mut max_delay_s = 0.0f64;
        for pair in all_pairs(n) {
            let km = match oracle.path(graph, pair.lo(), pair.hi()) {
                Some(path) => match fabric {
                    Some(f) => path
                        .nodes
                        .windows(2)
                        .map(|w| {
                            f.profile(NodePair::new(w[0], w[1]))
                                .map(|p| p.length_km)
                                .unwrap_or(DEFAULT_HOP_KM)
                        })
                        .sum(),
                    None => DEFAULT_HOP_KM * path.nodes.len().saturating_sub(1) as f64,
                },
                // Disconnected in the generation graph: the classical
                // network still reaches the peer; assume one default hop.
                None => DEFAULT_HOP_KM,
            };
            let d = km / FIBER_KM_PER_S;
            delays_s.set(pair, d);
            max_delay_s = max_delay_s.max(d);
        }
        PropagationDelays {
            delays_s,
            max_delay_s,
        }
    }

    /// One-way propagation delay between the endpoints of `pair`, seconds.
    pub fn delay_s(&self, pair: NodePair) -> f64 {
        *self.delays_s.get(pair)
    }

    /// [`PropagationDelays::delay_s`] as a [`SimDuration`].
    pub fn duration(&self, pair: NodePair) -> SimDuration {
        SimDuration::from_secs_f64(self.delay_s(pair))
    }

    /// The largest one-way delay in the table (bounds gossip-row age).
    pub fn max_delay_s(&self) -> f64 {
        self.max_delay_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::{NodeId, Topology};

    #[test]
    fn hop_counts_drive_fabricless_delays() {
        let graph = Topology::Cycle { nodes: 6 }.build(0);
        let oracle = PathOracle::new(&graph);
        let delays = PropagationDelays::new(&graph, None, &oracle);
        let one_hop = delays.delay_s(NodePair::new(NodeId(0), NodeId(1)));
        let three_hop = delays.delay_s(NodePair::new(NodeId(0), NodeId(3)));
        assert!((one_hop - DEFAULT_HOP_KM / FIBER_KM_PER_S).abs() < 1e-15);
        assert!((three_hop - 3.0 * one_hop).abs() < 1e-15);
        assert!((delays.max_delay_s() - three_hop).abs() < 1e-15);
    }

    #[test]
    fn fabric_lengths_override_the_default_hop() {
        use qnet_topology::{FabricSpec, HardwarePreset};
        let topology = Topology::DeployedFiber;
        let graph = topology.build(7);
        let oracle = PathOracle::new(&graph);
        let fabric = FabricSpec::new(HardwarePreset::MetroFiber).realize(&topology, &graph, 7);
        let delays = PropagationDelays::new(&graph, Some(&fabric), &oracle);
        // Every fabric edge has its own length; a direct edge's delay must
        // equal its profile length over the fibre speed.
        let (pair, profile) = fabric.iter().next().expect("fabric has edges");
        assert!((delays.delay_s(pair) - profile.length_km / FIBER_KM_PER_S).abs() < 1e-15);
        assert!(delays.max_delay_s() > 0.0);
    }
}
