//! Per-node stale copies of the network-wide buffer-count state.
//!
//! Under [`crate::classical::KnowledgeModel::Global`] every policy decision
//! reads ground-truth [`Inventory`] counts. The stale control plane instead
//! gives each node a [`KnowledgeView`]: its possibly-out-of-date copy of
//! every other node's buffer-count *row*, stamped with the simulation time
//! at which that row was read at its owner. Policies decide on these
//! believed counts while the world keeps mutating the true ones — the gap
//! between the two is exactly the §6 staleness the paper's gossip
//! relaxation trades protocol messages against.

use crate::balancer::CountView;
use crate::inventory::Inventory;
use qnet_sim::SimTime;
use qnet_topology::pairs::all_pairs;
use qnet_topology::{NodeId, NodePair, PairMatrix};

/// One node's stale copy of every node's buffer-count row.
///
/// A *row* is the set of pair counts involving one owner node; gossip
/// refreshes whole rows at a time, so freshness is tracked per row. The
/// count believed for a pair `(a, b)` is fresh as of the *newer* of the
/// two rows that contain it (either endpoint's row carries the pair).
#[derive(Debug, Clone)]
pub struct KnowledgeView {
    counts: PairMatrix<u64>,
    row_refreshed_at: Vec<SimTime>,
    n: usize,
}

impl KnowledgeView {
    /// An all-zero view over `n` nodes; every row starts "never refreshed"
    /// (timestamp zero), so ages grow from the start of the run.
    pub fn new(n: usize) -> Self {
        KnowledgeView {
            counts: PairMatrix::new(n),
            row_refreshed_at: vec![SimTime::ZERO; n],
            n,
        }
    }

    /// Number of nodes this view covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Install `owner`'s full row as read at `read_at`. `row[i]` is the
    /// believed count of the pair `(owner, i)`; `row[owner]` is ignored.
    /// Deliveries can overtake each other on heterogeneous links, so an
    /// install older than the row already held is dropped (latest read
    /// wins).
    pub fn install_row(&mut self, owner: NodeId, read_at: SimTime, row: &[u64]) {
        debug_assert_eq!(row.len(), self.n);
        if read_at < self.row_refreshed_at[owner.index()] {
            return;
        }
        self.row_refreshed_at[owner.index()] = read_at;
        for (other, &count) in row.iter().enumerate() {
            if other == owner.index() {
                continue;
            }
            self.counts
                .set(NodePair::new(owner, NodeId::from(other)), count);
        }
    }

    /// When `owner`'s row was last read at its owner ([`SimTime::ZERO`]
    /// if never refreshed).
    pub fn row_refreshed_at(&self, owner: NodeId) -> SimTime {
        self.row_refreshed_at[owner.index()]
    }

    /// When the believed count for `pair` was last read: the newer of its
    /// two endpoint rows (both carry the pair).
    pub fn pair_refreshed_at(&self, pair: NodePair) -> SimTime {
        self.row_refreshed_at[pair.lo().index()].max(self.row_refreshed_at[pair.hi().index()])
    }

    /// Age in seconds of the believed count for `pair` as of `now`.
    pub fn pair_age_s(&self, pair: NodePair, now: SimTime) -> f64 {
        now.saturating_since(self.pair_refreshed_at(pair))
            .as_secs_f64()
    }

    /// Age in seconds of the stalest row in the view as of `now`.
    pub fn max_row_age_s(&self, now: SimTime) -> f64 {
        self.row_refreshed_at
            .iter()
            .map(|&t| now.saturating_since(t).as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// All pairs with a nonzero *believed* count (the believed analogue of
    /// [`Inventory::nonzero_pairs`], used to build believed entanglement
    /// graphs for path repair).
    pub fn nonzero_pairs(&self) -> Vec<(NodePair, u64)> {
        all_pairs(self.n)
            .filter_map(|p| {
                let c = *self.counts.get(p);
                (c > 0).then_some((p, c))
            })
            .collect()
    }

    /// A view that answers pairs touching `owner` from ground truth: a
    /// node always knows its *own* pools exactly (they live in its local
    /// buffers), and only remote-remote pairs go through gossip.
    pub fn for_owner<'a>(&'a self, owner: NodeId, truth: &'a Inventory) -> OwnerAwareView<'a> {
        OwnerAwareView {
            view: self,
            owner,
            truth,
        }
    }
}

impl CountView for KnowledgeView {
    fn count(&self, pair: NodePair) -> u64 {
        *self.counts.get(pair)
    }
}

/// [`KnowledgeView`] overlay that reads pairs containing the owning node
/// from ground truth (local buffers are always exact) and everything else
/// from the stale view.
#[derive(Debug, Clone, Copy)]
pub struct OwnerAwareView<'a> {
    view: &'a KnowledgeView,
    owner: NodeId,
    truth: &'a Inventory,
}

impl OwnerAwareView<'_> {
    /// Age in seconds of the believed count for `pair` as of `now`
    /// (zero for pairs the owner holds locally).
    pub fn pair_age_s(&self, pair: NodePair, now: SimTime) -> f64 {
        if pair.contains(self.owner) {
            0.0
        } else {
            self.view.pair_age_s(pair, now)
        }
    }

    /// All pairs with a nonzero count under this overlay: ground truth for
    /// pairs touching the owner, believed counts for everything else. Used
    /// to build believed entanglement graphs for path repair.
    pub fn nonzero_pairs(&self) -> Vec<(NodePair, u64)> {
        let mut pairs: Vec<(NodePair, u64)> = self
            .view
            .nonzero_pairs()
            .into_iter()
            .filter(|(p, _)| !p.contains(self.owner))
            .collect();
        for &(peer, count) in self.truth.peer_counts(self.owner) {
            if count > 0 {
                pairs.push((NodePair::new(self.owner, peer), count));
            }
        }
        pairs
    }
}

impl CountView for OwnerAwareView<'_> {
    fn count(&self, pair: NodePair) -> u64 {
        if pair.contains(self.owner) {
            self.truth.count(pair)
        } else {
            self.view.count(pair)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: usize, b: usize) -> NodePair {
        NodePair::new(NodeId::from(a), NodeId::from(b))
    }

    #[test]
    fn rows_start_unrefreshed_and_age_from_zero() {
        let view = KnowledgeView::new(4);
        let now = SimTime::from_secs_f64(3.0);
        assert_eq!(view.count(pair(0, 2)), 0);
        assert!((view.pair_age_s(pair(0, 2), now) - 3.0).abs() < 1e-12);
        assert!((view.max_row_age_s(now) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn install_row_updates_counts_and_freshness() {
        let mut view = KnowledgeView::new(3);
        let read_at = SimTime::from_secs_f64(1.0);
        view.install_row(NodeId(1), read_at, &[5, 0, 7]);
        assert_eq!(view.count(pair(0, 1)), 5);
        assert_eq!(view.count(pair(1, 2)), 7);
        assert_eq!(view.count(pair(0, 2)), 0);
        let now = SimTime::from_secs_f64(1.5);
        assert!((view.pair_age_s(pair(0, 1), now) - 0.5).abs() < 1e-12);
        // Pair (0,2) is in neither refreshed row: still never-refreshed.
        assert!((view.pair_age_s(pair(0, 2), now) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn older_deliveries_lose_the_race() {
        let mut view = KnowledgeView::new(3);
        view.install_row(NodeId(1), SimTime::from_secs_f64(2.0), &[9, 0, 9]);
        view.install_row(NodeId(1), SimTime::from_secs_f64(1.0), &[1, 0, 1]);
        assert_eq!(view.count(pair(0, 1)), 9);
        assert_eq!(
            view.row_refreshed_at(NodeId(1)),
            SimTime::from_secs_f64(2.0)
        );
    }

    #[test]
    fn nonzero_pairs_reports_believed_counts() {
        let mut view = KnowledgeView::new(3);
        view.install_row(NodeId(2), SimTime::from_secs_f64(1.0), &[4, 0, 0]);
        assert_eq!(view.nonzero_pairs(), vec![(pair(0, 2), 4)]);
    }
}
