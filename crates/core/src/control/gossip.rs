//! Latency-aware gossip: rotating row pulls with in-flight deliveries.
//!
//! [`StaleControl`] is the event-driven successor to the synchronous
//! [`crate::gossip::GossipState`]. Each node runs a periodic
//! `GossipExchange`: it pulls the full buffer-count rows of
//! `peers_per_refresh` rotating peers (the same deterministic cursor
//! rotation as the legacy state, so `QNET_KNOWLEDGE=truth` reproduces the
//! old refresh order exactly), but the pulled rows are *snapshots in
//! flight* — they arrive after the classical propagation delay of the
//! node↔peer fibre path plus a fixed processing delay, and are installed
//! into the puller's [`KnowledgeView`] only once matured. Between refreshes
//! of a row, the believed count drifts from truth; that drift is the
//! staleness the §6 curves measure.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qnet_sim::{SimDuration, SimTime};
use qnet_topology::{NodeId, NodePair};

use super::latency::{PropagationDelays, PROCESSING_DELAY_S};
use super::views::KnowledgeView;
use crate::inventory::Inventory;

/// A pulled row travelling the classical network: `owner`'s counts as read
/// at `read_at`, destined for `dest`'s view once `deliver_at` passes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Delivery {
    deliver_at: SimTime,
    /// Issue order, breaking delivery-time ties deterministically.
    seq: u64,
    dest: u32,
    owner: u32,
    read_at: SimTime,
    row: Vec<u64>,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The event-driven stale control plane: one [`KnowledgeView`] per node,
/// refreshed by periodic latency-delayed gossip exchanges.
#[derive(Debug)]
pub struct StaleControl {
    views: Vec<KnowledgeView>,
    cursor: Vec<usize>,
    peers_per_refresh: usize,
    period: SimDuration,
    delays: PropagationDelays,
    in_flight: BinaryHeap<Reverse<Delivery>>,
    seq: u64,
}

impl StaleControl {
    /// Build a control plane over `node_count` nodes where each exchange
    /// pulls `peers_per_refresh` rotating peers' rows and exchanges repeat
    /// every `refresh_period_s` seconds per node.
    ///
    /// # Panics
    /// If `peers_per_refresh` is zero or `refresh_period_s` is not
    /// strictly positive.
    pub fn new(
        node_count: usize,
        peers_per_refresh: usize,
        refresh_period_s: f64,
        delays: PropagationDelays,
    ) -> Self {
        assert!(
            peers_per_refresh >= 1,
            "gossip must refresh at least one peer per exchange"
        );
        assert!(
            refresh_period_s > 0.0,
            "gossip refresh period must be positive"
        );
        StaleControl {
            views: (0..node_count)
                .map(|_| KnowledgeView::new(node_count))
                .collect(),
            cursor: vec![0; node_count],
            peers_per_refresh,
            period: SimDuration::from_secs_f64(refresh_period_s),
            delays,
            in_flight: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.views.len()
    }

    /// Peers pulled per exchange.
    pub fn peers_per_refresh(&self) -> usize {
        self.peers_per_refresh
    }

    /// The per-node exchange period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The classical propagation-delay table the plane was built with
    /// (also used to defer swap execution by coordination round-trips).
    pub fn delays(&self) -> &PropagationDelays {
        &self.delays
    }

    /// `node`'s current (possibly stale) view.
    pub fn view(&self, node: NodeId) -> &KnowledgeView {
        &self.views[node.index()]
    }

    /// Rows still in flight (delivered but not yet matured).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Run one gossip exchange for `node` at `now`: snapshot the rows of
    /// its next `peers_per_refresh` rotating peers from ground truth and
    /// put them in flight towards `node`'s view. Returns the number of
    /// row-transfer messages issued (the classical-overhead unit the
    /// legacy model counts per scan).
    ///
    /// The peer rotation is byte-for-byte the legacy
    /// [`crate::gossip::GossipState::refresh`] rotation — only the
    /// delivery timing differs between the two backends.
    pub fn exchange(&mut self, now: SimTime, node: NodeId, truth: &Inventory) -> u64 {
        let n = self.node_count();
        if n <= 1 {
            return 0;
        }
        let mut issued = 0;
        for _ in 0..self.peers_per_refresh.min(n - 1) {
            let mut peer = self.cursor[node.index()] % n;
            if peer == node.index() {
                peer = (peer + 1) % n;
            }
            self.cursor[node.index()] = (peer + 1) % n;
            let peer_id = NodeId::from(peer);
            let row: Vec<u64> = (0..n)
                .map(|other| {
                    if other == peer {
                        0
                    } else {
                        truth.count(NodePair::new(peer_id, NodeId::from(other)))
                    }
                })
                .collect();
            let deliver_at = now
                + self.delays.duration(NodePair::new(node, peer_id))
                + SimDuration::from_secs_f64(PROCESSING_DELAY_S);
            self.seq += 1;
            self.in_flight.push(Reverse(Delivery {
                deliver_at,
                seq: self.seq,
                dest: node.index() as u32,
                owner: peer as u32,
                read_at: now,
                row,
            }));
            issued += 1;
        }
        issued
    }

    /// Install every in-flight row whose delivery time has passed.
    /// Called by the world before each decision so views are as fresh as
    /// the classical network allows — but never fresher.
    pub fn deliver_matured(&mut self, now: SimTime) {
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(d) = self.in_flight.pop().expect("peeked entry exists");
            self.views[d.dest as usize].install_row(NodeId(d.owner), d.read_at, &d.row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::CountView;
    use crate::inventory::Inventory;
    use qnet_topology::{PathOracle, Topology};

    fn pair(a: usize, b: usize) -> NodePair {
        NodePair::new(NodeId::from(a), NodeId::from(b))
    }

    fn control(n: usize, peers: usize, period_s: f64) -> StaleControl {
        let graph = Topology::Cycle { nodes: n }.build(0);
        let oracle = PathOracle::new(&graph);
        let delays = PropagationDelays::new(&graph, None, &oracle);
        StaleControl::new(n, peers, period_s, delays)
    }

    fn seeded_inventory(n: usize) -> Inventory {
        let mut inv = Inventory::new(n);
        for _ in 0..3 {
            inv.add_pair(pair(0, 1)).unwrap();
        }
        inv.add_pair(pair(1, 2)).unwrap();
        inv
    }

    #[test]
    fn rows_arrive_only_after_the_propagation_delay() {
        let mut ctl = control(5, 1, 0.25);
        let inv = seeded_inventory(5);
        let t0 = SimTime::from_secs_f64(1.0);
        let issued = ctl.exchange(t0, NodeId(2), &inv);
        assert_eq!(issued, 1);
        assert_eq!(ctl.in_flight_len(), 1);
        // Immediately after the exchange nothing has matured.
        ctl.deliver_matured(t0);
        assert_eq!(ctl.in_flight_len(), 1);
        assert_eq!(ctl.view(NodeId(2)).count(pair(0, 1)), 0);
        // Well past the delay the row lands, stamped with its read time.
        let later = SimTime::from_secs_f64(1.1);
        ctl.deliver_matured(later);
        assert_eq!(ctl.in_flight_len(), 0);
        // Node 2's cursor starts at peer 0, whose row holds pair (0,1).
        assert_eq!(ctl.view(NodeId(2)).count(pair(0, 1)), 3);
        assert_eq!(ctl.view(NodeId(2)).row_refreshed_at(NodeId(0)), t0);
    }

    #[test]
    fn rotation_matches_the_legacy_gossip_state() {
        let n = 5;
        let mut ctl = control(n, 2, 0.25);
        let mut legacy = crate::gossip::GossipState::new(n, 2);
        let inv = seeded_inventory(n);
        // Drive both backends through several refresh rounds and compare
        // the matured stale views against the instantly-refreshed legacy
        // views: same rotation, same rows.
        let mut now = SimTime::ZERO;
        for round in 0..4 {
            for i in 0..n {
                let node = NodeId::from(i);
                ctl.exchange(now, node, &inv);
                legacy.refresh(node, &inv);
            }
            now = SimTime::from_secs_f64(0.25 * (round + 1) as f64);
        }
        // Truth never mutates, so once everything matures the stale views
        // must agree with the legacy views row for row.
        ctl.deliver_matured(SimTime::from_secs_f64(10.0));
        for i in 0..n {
            let node = NodeId::from(i);
            let legacy_view = legacy.view_of(node);
            for p in qnet_topology::pairs::all_pairs(n) {
                assert_eq!(
                    ctl.view(node).count(p),
                    legacy_view.count(p),
                    "node {i} pair {p:?}"
                );
            }
        }
    }
}
