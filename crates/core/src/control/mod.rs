//! The simulated classical control plane: stale knowledge, gossip, latency.
//!
//! The paper's §6 relaxes the oblivious discipline's global-knowledge
//! assumption with BitTorrent-like gossip. This module makes that
//! relaxation *simulable* instead of merely counted: under
//! [`crate::classical::KnowledgeModel::Gossip`] every node holds a
//! [`KnowledgeView`] — its possibly-stale copy of the network-wide
//! buffer-count state — refreshed by periodic latency-delayed gossip
//! exchanges ([`StaleControl`]), while the world keeps mutating ground
//! truth. Policies then decide on *believed* counts, and actions proposed
//! on stale rows can miss when truth has drifted — a distinct failure
//! class with its own observer hook, trace record, and run metrics.
//!
//! Backend selection follows the standing runtime-backend pattern
//! (`QNET_EVENT_QUEUE`, `QNET_INVENTORY`, ...): the latency-aware stale
//! plane is the default for gossip knowledge, and `QNET_KNOWLEDGE=truth`
//! reverts to the legacy synchronous [`GossipState`] (per-scan instant
//! refresh against truth, no staleness). [`KnowledgeModel::Global`] never
//! builds a control plane at all and stays byte-identical everywhere.
//!
//! [`KnowledgeModel::Global`]: crate::classical::KnowledgeModel::Global

pub mod gossip;
pub mod latency;
pub mod views;

pub use gossip::StaleControl;
pub use latency::{PropagationDelays, DEFAULT_HOP_KM, FIBER_KM_PER_S, PROCESSING_DELAY_S};
pub use views::{KnowledgeView, OwnerAwareView};

use crate::gossip::GossipState;
use qnet_topology::NodePair;

/// Which control-plane backend a gossip-knowledge world runs.
#[derive(Debug)]
pub enum ControlPlane {
    /// Legacy synchronous gossip (`QNET_KNOWLEDGE=truth`): views refresh
    /// instantly against ground truth at every swap scan and decisions
    /// execute immediately — no staleness, no misses.
    Legacy(GossipState),
    /// The latency-aware stale plane (default): event-driven exchanges,
    /// in-flight rows, believed-count decisions, deferred execution.
    Stale(StaleControl),
}

impl ControlPlane {
    /// The stale backend, if that is what this plane runs.
    pub fn as_stale(&self) -> Option<&StaleControl> {
        match self {
            ControlPlane::Stale(s) => Some(s),
            ControlPlane::Legacy(_) => None,
        }
    }
}

/// `true` when gossip knowledge should run the stale event-driven plane
/// (the default); `QNET_KNOWLEDGE=truth` selects the legacy synchronous
/// backend instead, mirroring `QNET_EVENT_QUEUE` / `QNET_INVENTORY`.
pub fn stale_backend_from_env() -> bool {
    !matches!(std::env::var("QNET_KNOWLEDGE").as_deref(), Ok("truth"))
}

/// Scratch pad the world hands policies (via
/// [`crate::policy::PolicyCtx`]) to report what their stale decisions
/// relied on. The world drains it into [`crate::observer::RunObserver`]
/// hooks after every policy call; under global knowledge it is never
/// written, which is what keeps `Global` runs byte-identical.
#[derive(Debug, Default)]
pub struct DecisionTelemetry {
    row_ages_s: Vec<f64>,
    missed: Vec<NodePair>,
}

impl DecisionTelemetry {
    /// Record the age (seconds) of a believed row a decision consulted.
    pub fn record_age(&mut self, age_s: f64) {
        self.row_ages_s.push(age_s);
    }

    /// Record a missed action: believed-feasible, but ground truth had
    /// drifted and the execution failed.
    pub fn record_miss(&mut self, pair: NodePair) {
        self.missed.push(pair);
    }

    /// `true` when there is nothing to drain.
    pub fn is_empty(&self) -> bool {
        self.row_ages_s.is_empty() && self.missed.is_empty()
    }

    /// Drain the recorded row ages.
    pub fn take_ages(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.row_ages_s)
    }

    /// Drain the recorded misses.
    pub fn take_misses(&mut self) -> Vec<NodePair> {
        std::mem::take(&mut self.missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_topology::NodeId;

    #[test]
    fn telemetry_drains_clean() {
        let mut t = DecisionTelemetry::default();
        assert!(t.is_empty());
        t.record_age(0.5);
        t.record_miss(NodePair::new(NodeId(0), NodeId(1)));
        assert!(!t.is_empty());
        assert_eq!(t.take_ages(), vec![0.5]);
        assert_eq!(t.take_misses().len(), 1);
        assert!(t.is_empty());
    }
}
