//! # qnet — path-oblivious entanglement swapping for the Quantum Internet
//!
//! Facade crate re-exporting the `qnet` workspace, a reproduction of
//! *"Path-Oblivious Entanglement Swapping for the Quantum Internet"*
//! (HotNets 2025). Depend on this crate to get the whole stack under one
//! namespace:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`topology`] — generation-graph topologies, shortest paths, pair keys,
//! * [`quantum`] — state-vector/density-matrix substrate, teleportation,
//!   swapping, distillation, decoherence and QEC models,
//! * [`lp`] — two-phase simplex and max-min fairness helpers,
//! * [`core`] — the paper's contribution: the steady-state LP formulation,
//!   the §4 max-min balancer, planned-path baselines, and the §5 simulation
//!   and metrics,
//! * [`campaign`] — declarative scenario grids executed by a parallel
//!   runner, with deterministic per-cell aggregation and JSONL reports.
//!
//! ```
//! use qnet::core::experiment::{Experiment, ExperimentConfig};
//!
//! let result = Experiment::new(ExperimentConfig::default()).run();
//! assert!(result.satisfied_requests + result.unsatisfied_requests as usize > 0);
//! ```
//!
//! ## Running sweeps
//!
//! Single experiments answer single questions; the paper's figures — and
//! any scaling study — are *sweeps* over topology × protocol × parameter
//! grids. The [`campaign`] crate makes those first-class: declare a
//! [`campaign::ScenarioGrid`], run it across all cores with
//! [`campaign::run_campaign`], and aggregate into per-cell statistics with
//! [`campaign::aggregate`]. Reports are byte-identical regardless of the
//! worker-thread count, so sweep outputs can be diffed and cached.
//!
//! ```
//! use qnet::campaign::{aggregate, run_campaign, RunnerConfig, ScenarioGrid};
//! use qnet::prelude::*;
//!
//! let grid = ScenarioGrid::new(42)
//!     .with_topologies(vec![
//!         Topology::Cycle { nodes: 7 },
//!         Topology::TorusGrid { side: 3 },
//!     ])
//!     .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
//!     // node_count 0 is patched per topology at expansion time.
//!     .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 5)])
//!     .with_replicates(2)
//!     .with_horizon_s(500.0);
//!
//! let result = run_campaign(&grid, &RunnerConfig::default());
//! let report = aggregate(&grid, &result);
//! assert_eq!(report.cell_reports.len(), 4);
//! ```
//!
//! The same engine backs the `campaign` CLI binary (`cargo run --release
//! -p qnet-campaign --bin campaign -- --help`), which emits the JSONL
//! report on stdout and a human summary (with an optional serial-vs-parallel
//! determinism check) on stderr. `campaign --list-policies` prints every
//! swapping discipline in the registry; `campaign --list-workloads` prints
//! the workload-spec grammar (e.g. `--workload open-loop:2@zipf:1.1`);
//! `campaign --list-topologies` prints the topology-spec grammar.
//!
//! ## Running sharded and incremental campaigns
//!
//! Scenario seeds derive from `(master seed, environment, replicate)`, so
//! every outcome is a pure function of its grid cell. Two consequences,
//! both keyed by [`campaign::ScenarioGrid::fingerprint`] (a stable hash of
//! every axis, the master seed and the run parameters):
//!
//! * **Incremental sweeps** — [`campaign::OutcomeCache`] persists outcomes
//!   as append-only JSONL (`<cache-dir>/outcomes-<fingerprint>.jsonl`);
//!   [`campaign::run_campaign_cached`] consults it before simulating and
//!   appends after, so re-running a grid replays cached scenarios without
//!   executing a single `Experiment`, and damaged cache lines are rejected
//!   and recomputed rather than trusted.
//! * **Sharded execution** — [`campaign::ShardSpec`] `I/N` partitions the
//!   scenario ids deterministically (`id % N == I`); each shard writes a
//!   self-describing file ([`campaign::write_shard`]) and
//!   [`campaign::merge_shards`] recombines any complete partition into the
//!   exact single-process result.
//!
//! The contract throughout is **byte-identity**: a cold run, a warm
//! fully-cached run, and any shard partition after merging produce the
//! same JSONL report, byte for byte. On the CLI this is
//! `campaign --cache-dir DIR`, `campaign --shard I/N` and
//! `campaign merge shard-*.jsonl`; the run summary's `simulated=`/
//! `cache_hits=` counters show what actually executed.
//!
//! ```
//! use qnet::campaign::{
//!     aggregate, merge_shards, read_shard, run_campaign_cached, run_scenarios_with_progress,
//!     shard_to_string, to_jsonl_string, OutcomeCache, RunnerConfig, ScenarioGrid, ShardSpec,
//! };
//! use qnet::prelude::*;
//!
//! let grid = ScenarioGrid::new(7)
//!     .with_topologies(vec![Topology::Cycle { nodes: 5 }])
//!     .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
//!     .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
//!     .with_replicates(2)
//!     .with_horizon_s(300.0);
//!
//! // Cold run: simulate everything, filling the cache.
//! let dir = std::env::temp_dir().join(format!("qnet-doc-cache-{}", std::process::id()));
//! let mut cache = OutcomeCache::open(&dir, &grid)?;
//! let cold = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut cache, |_, _| {})?;
//! assert_eq!(cold.simulated, grid.scenario_count());
//!
//! // Warm run: zero simulations, byte-identical report.
//! let mut warm_cache = OutcomeCache::open(&dir, &grid)?;
//! let warm = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut warm_cache, |_, _| {})?;
//! assert_eq!(warm.simulated, 0);
//! assert_eq!(
//!     to_jsonl_string(&aggregate(&grid, &cold)),
//!     to_jsonl_string(&aggregate(&grid, &warm)),
//! );
//!
//! // Shard 2 ways (each shard could run on a different host), merge, and
//! // get the same bytes again.
//! let shards: Vec<_> = (0..2)
//!     .map(|i| {
//!         let spec = ShardSpec::new(i, 2).expect("valid shard");
//!         let run = run_scenarios_with_progress(
//!             &grid,
//!             &RunnerConfig::serial(),
//!             &spec.ids(grid.scenario_count()),
//!             None,
//!             |_, _| {},
//!         )
//!         .expect("no cache I/O");
//!         read_shard(&shard_to_string(&grid, spec, &run.outcomes)).expect("round-trips")
//!     })
//!     .collect();
//! let (merged_grid, merged) = merge_shards(shards).expect("complete partition");
//! assert_eq!(
//!     to_jsonl_string(&aggregate(&merged_grid, &merged)),
//!     to_jsonl_string(&aggregate(&grid, &cold)),
//! );
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Running distributed campaigns
//!
//! The orchestrator ([`campaign::orchestrate`]) combines the cache and the
//! shard partition into a supervised **multi-process** run: it spawns `N`
//! worker subprocesses (`campaign --shard I/N --cache-dir …`) into a shared
//! run directory and drives them to completion — progress-file heartbeats
//! for liveness, dead/straggler workers killed and their shards retried
//! (safe because every finished scenario is already in the shared cache),
//! sealed shards live-merged into a partial report, and a final validated
//! merge that is **byte-identical** to an uninterrupted single-process run.
//! On the CLI:
//!
//! ```text
//! campaign orchestrate --workers 3 --run-dir RUN --topologies cycle:25 …
//! campaign orchestrate --resume RUN        # pick a killed run back up
//! campaign merge RUN                       # a run dir merges directly
//! ```
//!
//! Everything the run leaves behind is machine-readable and wall-clock
//! free: worker progress streams and the supervision log
//! (`RUN/events.jsonl`) carry only dense `seq` ordinals, so two runs of the
//! same campaign are comparable record-for-record. The pure pieces — the
//! run-directory layout and the progress-event streams — are plain library
//! types:
//!
//! ```
//! use qnet::campaign::orchestrator::events::{
//!     parse_progress_line, ProgressBody, ProgressWriter,
//! };
//! use qnet::campaign::{OrchestratorConfig, OutcomeSource, RunDir, ShardSpec};
//!
//! // The supervision knobs: worker count, heartbeat timeout, retry budget.
//! let config = OrchestratorConfig::new(3, "/tmp/qnet-doc-run");
//! assert_eq!(config.workers, 3);
//! assert_eq!(config.max_attempts, 3);
//!
//! // The run-directory layout is a stable, documented contract.
//! let layout = RunDir::new(&config.run_dir);
//! assert!(layout.shard_sealed(1).ends_with("shards/shard-1.jsonl"));
//! assert!(layout
//!     .progress_file(1, 2)
//!     .ends_with("progress/shard-1.attempt-2.jsonl"));
//!
//! // Workers stream seq-numbered progress records; the supervisor tails
//! // them for liveness and re-parses them with `parse_progress_line`.
//! let dir = std::env::temp_dir().join(format!("qnet-doc-orch-{}", std::process::id()));
//! let path = dir.join("progress.jsonl");
//! let mut writer = ProgressWriter::create(&path)?;
//! writer.shard_claimed(ShardSpec::new(1, 3).expect("valid shard"), 4)?;
//! writer.scenario(1, OutcomeSource::Simulated)?;
//! writer.shard_sealed(4)?;
//!
//! let text = std::fs::read_to_string(&path)?;
//! let events: Vec<_> = text.lines().filter_map(parse_progress_line).collect();
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[2].seq, 2, "dense 0-based ordinals, no timestamps");
//! assert_eq!(events[2].body, ProgressBody::ShardSealed { scenarios: 4 });
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The committed `results/` directory at the repository root holds
//! paper-scale reports produced this way; `results/README.md` records the
//! exact regeneration commands.
//!
//! ## Writing a workload
//!
//! A [`core::workload::WorkloadSpec`] is two orthogonal choices over a
//! consumer-pair set:
//!
//! * a [`core::workload::TrafficModel`] — **when** requests arrive. The
//!   paper's closed-loop batch (`ClosedLoopBatch`: every request pending at
//!   `t = 0`, satisfied in sequence order) or open-loop Poisson offered
//!   load (`OpenLoopPoisson { rate_hz, horizon_s }`), where arrivals are
//!   injected into the simulation over time and interleave with generation
//!   and swap scans;
//! * a [`core::workload::PairSelection`] — **which** pair each request
//!   draws: `UniformRandom`, `RoundRobin`, or `ZipfSkew { s }` for skewed
//!   per-pair demand (rank-`r` pair drawn with probability ∝ `1/r^s`).
//!
//! Open-loop runs measure *sojourn latency* (arrival → satisfaction):
//! [`core::metrics::RunMetrics::sojourn_percentile`] and friends report it
//! per run, and campaign reports add `latency_p50_s` / `latency_p95_s`
//! columns for open-loop cells. Sweeping `rate_hz` across cells yields
//! offered-load curves — satisfaction ratio and latency vs arrival rate,
//! per discipline:
//!
//! ```
//! use qnet::core::workload::{PairSelection, TrafficModel};
//! use qnet::prelude::*;
//!
//! // 0.5 requests/s for 300 simulated seconds, Zipf-skewed over 10 pairs.
//! let workload = WorkloadSpec::open_loop(0, 10, 0.5, 300.0)
//!     .with_discipline(PairSelection::ZipfSkew { s: 1.1 });
//! assert!(workload.is_open_loop());
//! assert_eq!(workload.nominal_requests(), 150);
//!
//! let config = ExperimentConfig {
//!     workload,
//!     max_sim_time_s: 400.0, // run a little past the arrival horizon
//!     ..ExperimentConfig::default()
//! };
//! let result = Experiment::new(config).run();
//! assert!(result.metrics.arrived_requests > 0);
//! if let (Some(p50), Some(p95)) = (result.latency_p50_s(), result.latency_p95_s()) {
//!     assert!(p50 <= p95);
//! }
//!
//! // The closed-loop spec is the legacy shape; `TrafficModel` round-trips
//! // through the flat serialized layout older configs used.
//! let legacy = WorkloadSpec::paper_default(9);
//! assert_eq!(legacy.traffic, TrafficModel::ClosedLoopBatch { requests: 35 });
//! ```
//!
//! To stream per-event records (arrivals, satisfactions, drops, swaps) as
//! JSONL while a run executes, attach a [`core::trace::TraceWriter`] via
//! [`core::network::QuantumNetworkWorld::add_observer`].
//!
//! ## Scaling to millions of requests
//!
//! The hot path is engineered so that open-loop runs scale to 10⁶–10⁷
//! requests with **flat memory** — peak RSS is set by the topology, not
//! the request count:
//!
//! * **Timing-wheel event queue** — [`sim::EventQueue`] orders events on a
//!   hierarchical timing wheel (O(1) amortised schedule/pop) instead of a
//!   `BinaryHeap`, preserving the deterministic `(time, seq)` FIFO
//!   tie-break exactly; `QNET_EVENT_QUEUE=heap` selects the legacy heap,
//!   and both backends produce byte-identical reports.
//! * **Lazy arrival streams** — open-loop Poisson arrivals are drawn from a
//!   [`core::workload::ArrivalStream`] in batches of
//!   [`core::network::ARRIVAL_BATCH`] by a self-rescheduling generator
//!   event, so the queue never holds more than one batch of future
//!   arrivals. The stream reproduces `WorkloadSpec::generate`'s draw order
//!   exactly: eager and lazy runs are byte-identical.
//! * **Streaming metrics** — the metrics recorder buffers satisfied
//!   requests exactly up to a threshold (65 536 by default; the
//!   `QNET_EXACT_SAMPLES` environment variable overrides it), then folds
//!   them into a fixed-memory summary: counts, means, the swap-overhead
//!   denominator, and timing stay **exact**, while latency/fidelity
//!   quantiles come from a log-bucketed sketch
//!   ([`sim::stats::LogQuantileSketch`], ≤ ~0.4 % relative value error).
//!   Campaign rows produced this way carry a `sketch_quantiles` flag.
//! * **Indexed pending queues** — policies whose blocked-request hook is
//!   inert (pure oblivious) index pending requests per consumer pair, so
//!   satisfaction scans stop re-walking blocked requests.
//!
//! ```
//! use qnet::prelude::*;
//!
//! // Force the recorder past its exact-sample threshold immediately so a
//! // tiny doctest exercises the streamed mode (production runs cross the
//! // 65 536-sample default on their own).
//! std::env::set_var("QNET_EXACT_SAMPLES", "0");
//! let config = ExperimentConfig {
//!     workload: WorkloadSpec::open_loop(0, 6, 0.5, 300.0),
//!     max_sim_time_s: 1_000.0,
//!     ..ExperimentConfig::default()
//! };
//! let result = Experiment::new(config).run();
//! std::env::remove_var("QNET_EXACT_SAMPLES");
//!
//! assert!(result.metrics.is_streamed());
//! assert!(result.metrics.satisfied_count() > 0);
//! // Exact columns stay exact; quantiles answer from the sketch. The
//! // per-request buffer is gone — that is where the memory went.
//! assert!(result.metrics.sojourn_percentile(0.95).is_some());
//! assert!(result.metrics.sojourn_samples().is_empty());
//! ```
//!
//! The `open_loop_million` benchmark group (`cargo bench -p qnet-bench
//! --bench sim_engine_micro`) drives 10⁵- and 10⁶-request open-loop runs
//! through this path, and the `open_loop_stress` example prints a one-line
//! summary for memory profiling:
//!
//! ```text
//! cargo run --release -p qnet-bench --example open_loop_stress -- \
//!     --topology cycle:25 --requests 1000000 --rate-hz 500 \
//!     --gen-rate 400 --scan-rate 200
//! ```
//!
//! ## Hot-path architecture
//!
//! Once the event stream is flat-memory, what is left is the per-event
//! constant — what one generation, one swap scan, one satisfaction check
//! actually costs. The steady-state loop is built from four flat, densely
//! indexed structures that it walks over and over without allocating:
//!
//! * **Timing wheel** — events come off the [`sim::EventQueue`] wheel in
//!   O(1) amortised (`QNET_EVENT_QUEUE=heap` pins the legacy `BinaryHeap`);
//! * **Edge index** — [`topology::EdgeIndex`] numbers the generation
//!   graph's edges `0..E` with a CSR adjacency layout, so per-edge state
//!   (generation rates, link overrides) lives in plain vectors indexed by
//!   edge id instead of maps keyed by [`topology::NodePair`];
//! * **Flat inventory** — [`core::inventory::Inventory`] stores per-pair
//!   counts and lots in dense edge-slot pools with an O(1) triangular
//!   pair→slot map (`QNET_INVENTORY=btree` pins the legacy `BTreeMap`
//!   store; both backends produce byte-identical reports, and the
//!   balancer's scan loop is monomorphized over the concrete store so the
//!   O(rich²) beneficiary probe pays no virtual dispatch);
//! * **Path oracle** — [`topology::PathOracle`] serves shortest-path
//!   queries from per-source BFS rows (all-pairs eager up to 128 nodes,
//!   lazily memoized per source above), replacing the per-pair memoized
//!   BFS the planners used — same paths, node for node, with O(path)
//!   reconstruction per query.
//!
//! ```
//! use qnet::core::inventory::{Inventory, InventoryBackend};
//! use qnet::topology::{bfs_path, builders, EdgeIndex, NodeId, NodePair, PathOracle};
//!
//! // Dense edge index over an internet-like graph: O(1) pair ↔ edge-id.
//! let graph = builders::scale_free(200, 2, 7);
//! let index = EdgeIndex::new(&graph);
//! assert_eq!(index.edge_count(), graph.edge_count());
//! let (peer, id) = index.incident(NodeId(0))[0];
//! assert_eq!(index.pair(id), NodePair::new(NodeId(0), peer));
//!
//! // The oracle answers exactly what a fresh BFS would, node for node.
//! let oracle = PathOracle::new(&graph);
//! let via_oracle = oracle.path(&graph, NodeId(3), NodeId(90)).unwrap();
//! let via_bfs = bfs_path(&graph, NodeId(3), NodeId(90)).unwrap();
//! assert_eq!(via_oracle.nodes, via_bfs.nodes);
//!
//! // The two inventory backends are logically interchangeable state.
//! let mut flat = Inventory::with_backend(6, InventoryBackend::Flat);
//! let mut btree = Inventory::with_backend(6, InventoryBackend::BTree);
//! for inv in [&mut flat, &mut btree] {
//!     inv.add_pair(NodePair::new(NodeId(0), NodeId(1))).unwrap();
//!     inv.add_pair(NodePair::new(NodeId(1), NodeId(4))).unwrap();
//! }
//! assert_eq!(flat, btree);
//! ```
//!
//! The `path_oracle` and `inventory_hot_scan` benchmark groups in
//! `sim_engine_micro` measure these structures in isolation; the
//! `open_loop_million` group measures them composed.
//!
//! ## Modeling link physics
//!
//! The paper's evaluation treats Bell pairs as interchangeable tokens; the
//! physics subsystem ([`core::physics`]) makes them first-class physical
//! objects. A [`core::physics::PhysicsModel`] travels on
//! [`core::NetworkConfig`]:
//!
//! * `Ideal` (the default) is exactly the paper's semantics — nothing new
//!   is simulated, results stay byte-identical to pre-physics reports;
//! * `Decoherent { .. }` gives every stored pair a creation timestamp and a
//!   birth fidelity. Stored pairs decay under the Werner model
//!   ([`quantum::decoherence::DecoherenceModel`]); a swap ages both inputs
//!   to the swap time and composes them with
//!   [`quantum::swap::swap_werner_fidelity`], restarting the product's
//!   clock; an optional storage cutoff discards expired pairs as timed
//!   events (the [`core::observer::RunObserver::on_pair_expired`] hook);
//!   and an optional end-to-end fidelity floor turns deliveries below
//!   threshold into a distinct failure class
//!   ([`core::metrics::RunMetrics::fidelity_rejected_requests`]).
//!
//! Which stored pair a consumption draws is the
//! [`core::physics::ConsumeOrder`] knob (oldest-first FIFO vs newest-first
//! LIFO). Delivered fidelities surface per run through
//! [`core::metrics::RunMetrics::fidelity_stats`] /
//! [`core::metrics::RunMetrics::fidelity_percentile`] and per campaign
//! through the `fidelity_mean`/`fidelity_p50`/`fidelity_p95` and
//! `expired_pairs_total` report columns (decoherent cells only — ideal
//! cells keep the legacy byte layout). On the CLI this is
//! `campaign --physics ideal,decoherent:T2[:FLOOR]` (see
//! `campaign --list-physics`).
//!
//! Physics sharpens the paper's central comparison: path-oblivious
//! balancing seeds pairs ahead of demand, so its inventory is
//! systematically *older* than a planner's just-in-time pairs — and
//! decoherence punishes exactly that (run
//! `cargo run --example decoherence_knee --release` to see the knee).
//!
//! ```
//! use qnet::core::physics::{ConsumeOrder, PhysicsModel};
//! use qnet::prelude::*;
//!
//! // T2 = 2 s memories, delivered fidelity must reach 0.7; pairs that can
//! // no longer meet the floor on their own are discarded by the derived
//! // storage cutoff.
//! let physics = PhysicsModel::decoherent(2.0)
//!     .with_fidelity_floor(0.7)
//!     .with_consume_order(ConsumeOrder::OldestFirst);
//! assert!(physics.cutoff_s().unwrap() > 0.0);
//!
//! let config = ExperimentConfig {
//!     network: NetworkConfig::new(Topology::Cycle { nodes: 7 }).with_physics(physics),
//!     workload: WorkloadSpec::closed_loop(7, 5, 6),
//!     mode: PolicyId::OBLIVIOUS,
//!     seed: 9,
//!     max_sim_time_s: 1_000.0,
//!     ..ExperimentConfig::default()
//! };
//! let result = Experiment::new(config).run();
//! // Every delivery that survived the floor carries its fidelity…
//! for s in &result.metrics.satisfied {
//!     assert!(s.fidelity.unwrap() >= 0.7);
//! }
//! // …and the physics failure classes are accounted separately.
//! let m = &result.metrics;
//! assert!(m.expired_pairs > 0 || m.fidelity_rejected_requests > 0 || !m.satisfied.is_empty());
//!
//! // Ideal physics is the default and changes nothing:
//! assert!(NetworkConfig::new(Topology::Cycle { nodes: 7 }).physics.is_ideal());
//! ```
//!
//! ## Building heterogeneous networks
//!
//! Everything above runs on *homogeneous* links: one generation rate, one
//! birth fidelity, one memory for every edge. Real deployments are nothing
//! like that — a metro fiber ring mixes 2 km and 25 km spans whose rates
//! and noise differ by integer factors. The link-fabric subsystem
//! ([`topology::fabric`]) closes that gap:
//!
//! * a [`topology::HardwarePreset`] (`lab`, `metro-fiber`) is a calibrated
//!   hardware family: a link-length range, a base generation rate, fiber
//!   attenuation, a zero-length fidelity and a memory coherence time;
//! * [`topology::HardwarePreset::profile_for_length`] derives a per-edge
//!   [`topology::LinkProfile`] — rate falls off as
//!   `base · 10^(−α·L/10)` and fidelity as
//!   `0.5 + (F₀ − 0.5)·e^(−L/ℓ)`, both strictly decreasing in length;
//! * a [`topology::FabricSpec`] on [`core::NetworkConfig`] (via
//!   [`core::NetworkConfig::with_fabric`]) realizes a
//!   [`topology::LinkFabric`] over the built graph: edge lengths are drawn
//!   seed-deterministically from the preset's range (or taken from the
//!   deployed-fiber table for [`topology::Topology::DeployedFiber`]), and
//!   the simulation then generates each edge at *its* rate and stores its
//!   pairs with *its* birth fidelity and memory.
//!
//! Two topology families target the internet-scale regime:
//! [`topology::Topology::ScaleFree`] (Barabási–Albert preferential
//! attachment — heavy-tail degrees like real network maps) and
//! [`topology::Topology::DeployedFiber`] (a 12-node NYC metro template
//! with measured-style heterogeneous spans). Configs without a fabric are
//! untouched — byte-identical serialization and event histories. On the
//! CLI this is `campaign --fabric scale-free:1000@metro-fiber` (see
//! `campaign --list-fabrics`).
//!
//! ```
//! use qnet::prelude::*;
//!
//! // A 200-node internet-like graph on metro-fiber hardware.
//! let spec = FabricSpec::new(HardwarePreset::MetroFiber);
//! let config = NetworkConfig::new(Topology::ScaleFree { nodes: 200, attach: 2 })
//!     .with_topology_seed(7)
//!     .with_fabric(spec);
//!
//! // The realized fabric covers every edge with a length-derived profile.
//! let graph = config.build_graph();
//! let fabric = config.build_fabric(&graph).expect("fabric configured");
//! assert_eq!(fabric.len(), graph.edge_count());
//! let (lo_km, hi_km) = HardwarePreset::MetroFiber.length_range_km();
//! for (_edge, profile) in fabric.iter() {
//!     assert!(profile.length_km >= lo_km && profile.length_km <= hi_km);
//!     assert!(profile.generation_rate_hz > 0.0);
//!     assert!(profile.initial_fidelity > 0.5 && profile.initial_fidelity < 1.0);
//! }
//!
//! // Longer links are slower and noisier — the heterogeneity the
//! // path-oblivious balancer is built to absorb.
//! let short = HardwarePreset::MetroFiber.profile_for_length(2.0);
//! let long = HardwarePreset::MetroFiber.profile_for_length(25.0);
//! assert!(short.generation_rate_hz > long.generation_rate_hz);
//! assert!(short.initial_fidelity > long.initial_fidelity);
//!
//! // Without a fabric nothing changes: the legacy homogeneous substrate.
//! assert!(NetworkConfig::new(Topology::Cycle { nodes: 7 })
//!     .build_fabric(&Topology::Cycle { nodes: 7 }.build(0))
//!     .is_none());
//! ```
//!
//! ## Modeling the classical control plane
//!
//! The paper's §6 concern is classical, not quantum: the oblivious
//! balancer assumes every node knows every buffer count, and the proposed
//! relaxation — BitTorrent-like gossip — was *counted* (messages saved)
//! but never *simulated*. The control-plane subsystem ([`core::control`])
//! simulates it. Under [`core::classical::KnowledgeModel::Gossip`] with a
//! nonzero refresh period, every node holds a
//! [`core::control::KnowledgeView`]: its possibly-stale copy of the
//! network-wide buffer-count rows, refreshed by a rotating-peer gossip
//! schedule ([`core::control::StaleControl`]) whose row transfers arrive
//! only after the classical propagation delay of the node↔peer fiber path
//! ([`core::control::PropagationDelays`]: link lengths from the fabric
//! when one is configured, 200 000 km/s in fiber, plus a fixed processing
//! delay). Policies decide on *believed* counts while the world mutates
//! the true ones, and three things become measurable:
//!
//! * **row age** — how old the believed rows behind real decisions were
//!   ([`core::metrics::RunMetrics::stale_row_age_mean_s`] / `_p95_s`);
//! * **missed swaps** — a distinct failure class
//!   ([`core::metrics::RunMetrics::missed_swaps`], the
//!   [`core::observer::RunObserver::on_swap_missed`] hook): an action
//!   that was believed-feasible but failed its ground-truth probe;
//! * **the trade-off** — messages fall as the refresh period grows, while
//!   age, misses and overhead climb (`cargo run --example gossip_staleness
//!   --release` walks the curve; `results/gossip_staleness.jsonl` is the
//!   campaign-grade sweep).
//!
//! [`core::classical::KnowledgeModel::Global`] never builds a control
//! plane and stays byte-identical to pre-subsystem reports. Gossip
//! knowledge runs the latency-aware stale plane by default;
//! `QNET_KNOWLEDGE=truth` reverts to the legacy synchronous backend
//! (instant refresh against truth — message counts survive, staleness
//! disappears), mirroring the `QNET_EVENT_QUEUE` / `QNET_INVENTORY`
//! backend escapes. On the CLI the knowledge axis is
//! `campaign --knowledge global,gossip:K,gossip:K:PERIOD`, and gossip
//! cells grow `stale_row_age_mean_s` / `stale_row_age_p95_s` /
//! `missed_swaps_total` report columns (global cells keep the legacy
//! layout). The `gossip-aware` built-in discipline shows a policy
//! *using* the view's freshness: it discounts believed counts by row age
//! before the §4 preferable-swap test.
//!
//! ```
//! use qnet::prelude::*;
//!
//! let run = |knowledge| {
//!     Experiment::new(ExperimentConfig {
//!         network: NetworkConfig::new(Topology::Cycle { nodes: 9 }),
//!         workload: WorkloadSpec::closed_loop(9, 10, 10),
//!         mode: PolicyId::HYBRID,
//!         knowledge,
//!         seed: 13,
//!         max_sim_time_s: 6_000.0,
//!     })
//!     .run()
//! };
//!
//! // A 1-second refresh over 2 rotating peers: believed rows age, and
//! // some believed-feasible actions fail their ground-truth probe.
//! let gossip = run(KnowledgeModel::parse("gossip:2:1").unwrap());
//! assert!(gossip.metrics.stale_row_age_mean_s.unwrap() > 0.0);
//! assert!(gossip.metrics.missed_swaps > 0);
//!
//! // The same seed under global knowledge: no ages, no misses — and no
//! // change against pre-control-plane behavior.
//! let global = run(KnowledgeModel::Global);
//! assert_eq!(global.metrics.stale_row_age_mean_s, None);
//! assert_eq!(global.metrics.missed_swaps, 0);
//!
//! // Gossip without a period refreshes at every swap scan (the paper's
//! // original message accounting); the grammar round-trips through the
//! // CLI labels either way.
//! let counted = KnowledgeModel::parse("gossip:4").unwrap();
//! assert_eq!(counted.label(), "gossip:4");
//! assert_eq!(
//!     KnowledgeModel::parse("gossip:2:0.5").unwrap().label(),
//!     "gossip:2:0.5"
//! );
//! assert!(!KnowledgeModel::Global.is_stale());
//! ```
//!
//! ## Writing your own `SwapPolicy`
//!
//! Swapping disciplines are plugins: implement
//! [`core::policy::SwapPolicy`], register a constructor under a string
//! name, and every selection surface — [`core::ExperimentConfig`], the
//! campaign grid's policy axis, the `campaign` CLI — can run it. The
//! simulation world stays a policy-agnostic substrate; your policy makes
//! the decisions:
//!
//! * [`core::policy::SwapPolicy::schedules_swap_scans`] — whether nodes run
//!   periodic balancing scans (`true` for oblivious-style disciplines);
//! * [`core::policy::SwapPolicy::on_swap_scan`] — which swap a scanning
//!   node performs, consulting the stale gossip view in
//!   [`core::policy::PolicyCtx`] when partial knowledge is configured;
//! * [`core::policy::SwapPolicy::on_blocked_request`] — what to do when a
//!   consumption request cannot be served from the inventory: wait, repair
//!   (report the swaps you executed) or drop;
//! * [`core::policy::SwapPolicy::queue_discipline`] — head-of-line or
//!   any-order draining of the request queue.
//!
//! ```
//! use qnet::core::policy::{
//!     self, PolicyCtx, PolicyEntry, PolicyFamily, PolicyId, RequestAction, SwapPolicy,
//! };
//! use qnet::core::workload::ConsumptionRequest;
//! use qnet::core::{Experiment, ExperimentConfig};
//!
//! /// A do-nothing discipline: consume only directly generated pairs.
//! #[derive(Debug, Default)]
//! struct DirectOnly;
//!
//! impl SwapPolicy for DirectOnly {
//!     fn id(&self) -> PolicyId {
//!         PolicyId::parse("direct-only").expect("registered below")
//!     }
//!     fn on_blocked_request(
//!         &mut self,
//!         _ctx: &mut PolicyCtx<'_>,
//!         _request: &ConsumptionRequest,
//!     ) -> RequestAction {
//!         RequestAction::Wait
//!     }
//! }
//!
//! let id = policy::register(PolicyEntry {
//!     name: "direct-only",
//!     display: "DirectOnly",
//!     aliases: &[],
//!     family: PolicyFamily::Planned,
//!     summary: "never swaps; serves neighbor requests only",
//!     constructor: |_params| Box::new(DirectOnly),
//! })
//! .expect("name is free");
//!
//! // The new policy is now selectable everywhere a built-in is.
//! let config = ExperimentConfig {
//!     mode: id,
//!     max_sim_time_s: 50.0,
//!     ..ExperimentConfig::default()
//! };
//! let result = Experiment::new(config).run();
//! assert_eq!(result.mode, PolicyId::parse("direct-only").unwrap());
//! ```
//!
//! The built-in disciplines (`oblivious`, `hybrid`, `planned`,
//! `connectionless`, and the greedy nested-ordering policy `greedy`) are
//! implemented the same way under [`core::policy`] — read them as worked
//! examples. To observe a run beyond the standard metrics, attach a
//! [`core::observer::RunObserver`] with
//! [`core::network::QuantumNetworkWorld::add_observer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parallel scenario-campaign engine for sweep experiments.
pub use qnet_campaign as campaign;
/// The paper's contribution: balancer, LP model, baselines, experiments.
pub use qnet_core as core;
/// Linear-programming substrate.
pub use qnet_lp as lp;
/// Quantum-state substrate.
pub use qnet_quantum as quantum;
/// Discrete-event simulation substrate.
pub use qnet_sim as sim;
/// Graph/topology substrate.
pub use qnet_topology as topology;

/// Commonly used items, for glob import in examples and quick experiments.
pub mod prelude {
    pub use qnet_campaign::{RunnerConfig, ScenarioGrid};
    pub use qnet_core::balancer::{BalancerPolicy, SwapCandidate};
    pub use qnet_core::classical::KnowledgeModel;
    pub use qnet_core::config::{DistillationSpec, NetworkConfig};
    pub use qnet_core::experiment::{Experiment, ExperimentConfig, ExperimentResult, ProtocolMode};
    pub use qnet_core::inventory::Inventory;
    pub use qnet_core::lp_model::{LpObjective, SteadyStateModel};
    pub use qnet_core::nested::nested_swap_cost;
    pub use qnet_core::observer::{MetricsRecorder, RunObserver};
    pub use qnet_core::physics::{ConsumeOrder, PhysicsModel};
    pub use qnet_core::policy::{PolicyCtx, PolicyFamily, PolicyId, RequestAction, SwapPolicy};
    pub use qnet_core::rates::RateMatrices;
    pub use qnet_core::trace::TraceWriter;
    pub use qnet_core::workload::{PairSelection, TrafficModel, Workload, WorkloadSpec};
    pub use qnet_sim::{SimDuration, SimRng, SimTime};
    pub use qnet_topology::{
        FabricSpec, Graph, HardwarePreset, LinkFabric, LinkProfile, NodeId, NodePair, Topology,
    };
}
