//! # qnet — path-oblivious entanglement swapping for the Quantum Internet
//!
//! Facade crate re-exporting the `qnet` workspace, a reproduction of
//! *"Path-Oblivious Entanglement Swapping for the Quantum Internet"*
//! (HotNets 2025). Depend on this crate to get the whole stack under one
//! namespace:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`topology`] — generation-graph topologies, shortest paths, pair keys,
//! * [`quantum`] — state-vector/density-matrix substrate, teleportation,
//!   swapping, distillation, decoherence and QEC models,
//! * [`lp`] — two-phase simplex and max-min fairness helpers,
//! * [`core`] — the paper's contribution: the steady-state LP formulation,
//!   the §4 max-min balancer, planned-path baselines, and the §5 simulation
//!   and metrics.
//!
//! ```
//! use qnet::core::experiment::{Experiment, ExperimentConfig};
//!
//! let result = Experiment::new(ExperimentConfig::default()).run();
//! assert!(result.satisfied_requests + result.unsatisfied_requests as usize > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's contribution: balancer, LP model, baselines, experiments.
pub use qnet_core as core;
/// Linear-programming substrate.
pub use qnet_lp as lp;
/// Quantum-state substrate.
pub use qnet_quantum as quantum;
/// Discrete-event simulation substrate.
pub use qnet_sim as sim;
/// Graph/topology substrate.
pub use qnet_topology as topology;

/// Commonly used items, for glob import in examples and quick experiments.
pub mod prelude {
    pub use qnet_core::balancer::{BalancerPolicy, SwapCandidate};
    pub use qnet_core::classical::KnowledgeModel;
    pub use qnet_core::config::{DistillationSpec, NetworkConfig};
    pub use qnet_core::experiment::{
        Experiment, ExperimentConfig, ExperimentResult, ProtocolMode,
    };
    pub use qnet_core::inventory::Inventory;
    pub use qnet_core::lp_model::{LpObjective, SteadyStateModel};
    pub use qnet_core::nested::nested_swap_cost;
    pub use qnet_core::rates::RateMatrices;
    pub use qnet_core::workload::{Workload, WorkloadSpec};
    pub use qnet_sim::{SimDuration, SimRng, SimTime};
    pub use qnet_topology::{Graph, NodeId, NodePair, Topology};
}
