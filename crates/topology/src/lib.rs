//! # qnet-topology — generation-graph substrate
//!
//! The paper formulates path-oblivious swapping over a *generation graph*
//! `G`: an undirected graph over the repeater nodes with an edge `(x, y)`
//! wherever the pair can generate Bell pairs directly (`g(x, y) > 0`).
//! This crate provides:
//!
//! * a compact undirected [`Graph`] type with stable [`NodeId`]s,
//! * the topology builders used in the paper's evaluation (cycle graph,
//!   wraparound grid, random-connected grid) plus extras used in ablations
//!   (path, star, complete, Erdős–Rényi, random tree),
//! * shortest-path algorithms (BFS and Dijkstra) used both by the
//!   planned-path baselines and by the swap-overhead metric's denominator,
//! * connectivity utilities (union-find, connected components), and
//! * [`NodePair`] / [`PairMatrix`], the canonical unordered-pair key and a
//!   symmetric matrix keyed by it — the natural container for `g(x, y)`,
//!   `c(x, y)` and the inventory counts `C_x(y)`, and
//! * [`fabric`] — heterogeneous per-edge hardware profiles: named presets
//!   ([`HardwarePreset`]) whose generation rate and initial fidelity
//!   attenuate with link length, realized as a per-edge [`LinkProfile`]
//!   map ([`LinkFabric`]) over any built graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod connectivity;
pub mod edge_index;
pub mod fabric;
pub mod graph;
pub mod metrics;
pub mod pairs;
pub mod shortest_path;

pub use builders::Topology;
pub use connectivity::UnionFind;
pub use edge_index::EdgeIndex;
pub use fabric::{FabricSpec, HardwarePreset, LinkFabric, LinkProfile};
pub use graph::{Graph, NodeId};
pub use pairs::{NodePair, PairMatrix};
pub use shortest_path::{bfs_distances, bfs_path, dijkstra, PathOracle, PathResult};
