//! Compact undirected graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (repeater) in a graph.
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node id out of range"))
    }
}

/// An undirected simple graph (no self-loops, no parallel edges) with dense
/// node ids and adjacency lists kept in sorted order for determinism.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add one node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.adjacency.len());
        self.adjacency.push(Vec::new());
        id
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::from)
    }

    /// True if `id` names a node of this graph.
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.adjacency.len()
    }

    /// Add an undirected edge `(a, b)`.
    ///
    /// Returns `true` if the edge was added, `false` if it already existed.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph or if `a == b`
    /// (self-loops carry no meaning for Bell-pair generation).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(
            self.contains(a) && self.contains(b),
            "edge endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        if self.has_edge(a, b) {
            return false;
        }
        let insert_sorted = |list: &mut Vec<NodeId>, v: NodeId| {
            let pos = list.partition_point(|&x| x < v);
            list.insert(pos, v);
        };
        insert_sorted(&mut self.adjacency[a.index()], b);
        insert_sorted(&mut self.adjacency[b.index()], a);
        self.edge_count += 1;
        true
    }

    /// Remove the undirected edge `(a, b)` if present; returns whether it was
    /// removed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.has_edge(a, b) {
            return false;
        }
        self.adjacency[a.index()].retain(|&x| x != b);
        self.adjacency[b.index()].retain(|&x| x != a);
        self.edge_count -= 1;
        true
    }

    /// True if the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if !self.contains(a) || !self.contains(b) {
            return false;
        }
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// The neighbors of `id`, in ascending id order.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.index()]
    }

    /// Degree of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adjacency[id.index()].len()
    }

    /// Iterate over all undirected edges as `(a, b)` with `a < b`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            let a = NodeId::from(i);
            nbrs.iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::with_nodes(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(3);
        let d = g.add_node();
        assert_eq!(d, NodeId(3));
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(g.add_edge(NodeId(1), NodeId(2)));
        assert!(!g.add_edge(NodeId(1), NodeId(0)), "duplicate edge rejected");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn edges_iterator_is_sorted_and_unique() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(0), NodeId(1));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(3)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(g.remove_edge(NodeId(1), NodeId(0)));
        assert!(!g.remove_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = Graph::with_nodes(2);
        assert!(!g.has_edge(NodeId(0), NodeId(9)));
    }

    #[test]
    fn display_and_conversion() {
        assert_eq!(format!("{}", NodeId(7)), "N7");
        assert_eq!(NodeId::from(3usize), NodeId(3));
        assert_eq!(NodeId(4).index(), 4);
    }
}
