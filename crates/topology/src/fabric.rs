//! Heterogeneous link fabrics: per-edge hardware profiles.
//!
//! The paper's evaluation treats every generation edge identically — one
//! global generation rate, one global physics model. Deployed networks are
//! not like that: the NYC deployed-fiber swapping system (Craddock et al.)
//! spans links from sub-kilometre lab jumpers to tens of kilometres of
//! leased metro fiber, and generation rate and initial fidelity both fall
//! with link length. This module makes that heterogeneity first-class:
//!
//! * [`LinkProfile`] — the per-edge record `{ length_km,
//!   generation_rate_hz, initial_fidelity, coherence_time_s }`;
//! * [`HardwarePreset`] — named hardware calibrations (`lab`,
//!   `metro-fiber`) with derivation rules that attenuate rate and initial
//!   fidelity with length;
//! * [`FabricSpec`] — the tiny `Copy` recipe that travels on configs and
//!   campaign axes (it serializes as its preset label, so reports stay
//!   readable);
//! * [`LinkFabric`] — the realized per-edge profile map for a concrete
//!   graph, keyed by [`NodePair`].
//!
//! Link lengths come from the topology when it carries them (the
//! [`Topology::DeployedFiber`] NYC template has a fixed length table) and
//! are otherwise synthesized deterministically per edge from the build
//! seed, inside the preset's plausible length range. The numeric presets
//! are **normalized simulation rates** in the spirit of the cited
//! hardware (the paper's evaluation is unitless); they are chosen so that
//! |N| ≈ 10³ scale-free sweeps stay tractable while preserving the real
//! systems' qualitative spread: short links generate faster and purer
//! pairs than long ones.

use crate::builders::Topology;
use crate::graph::Graph;
use crate::pairs::NodePair;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// The physical profile of one generation edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Physical link length in kilometres.
    pub length_km: f64,
    /// Elementary-pair generation rate on this edge (attempts that
    /// succeed), in Hz.
    pub generation_rate_hz: f64,
    /// Werner fidelity of a freshly generated pair on this edge.
    pub initial_fidelity: f64,
    /// Memory coherence time `T2` governing pairs stored at this edge's
    /// endpoints, in seconds.
    pub coherence_time_s: f64,
}

/// A named hardware calibration: base numbers plus the derivation rules
/// that turn a link length into a [`LinkProfile`].
///
/// Rates attenuate exponentially with length (standard fiber loss,
/// `10^(-α·L/10)` with α in dB/km) and initial fidelity relaxes toward
/// the Werner floor 1/2 on a characteristic length scale — both strictly
/// monotone in length, which the property tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HardwarePreset {
    /// Bench-scale links: metres of fiber, high rates, near-unit fidelity,
    /// long memories.
    Lab,
    /// Metro deployed fiber in the style of the NYC system: kilometres to
    /// tens of kilometres, telecom-fiber loss, shorter memories.
    MetroFiber,
}

impl HardwarePreset {
    /// All presets, in parse/display order.
    pub const ALL: [HardwarePreset; 2] = [HardwarePreset::Lab, HardwarePreset::MetroFiber];

    /// Parse a preset spec. Accepted specs: `lab`, `metro-fiber`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "lab" => Ok(HardwarePreset::Lab),
            "metro-fiber" => Ok(HardwarePreset::MetroFiber),
            other => Err(format!(
                "unknown hardware preset `{other}` (valid presets: lab, metro-fiber)"
            )),
        }
    }

    /// Stable label used in reports, cache keys and CLI specs.
    pub fn label(&self) -> &'static str {
        match self {
            HardwarePreset::Lab => "lab",
            HardwarePreset::MetroFiber => "metro-fiber",
        }
    }

    /// Plausible link-length range `(min_km, max_km)` for synthesized
    /// lengths under this preset.
    pub fn length_range_km(&self) -> (f64, f64) {
        match self {
            HardwarePreset::Lab => (0.005, 0.25),
            HardwarePreset::MetroFiber => (1.0, 30.0),
        }
    }

    /// Generation rate of a zero-length link, in Hz.
    pub fn base_rate_hz(&self) -> f64 {
        match self {
            HardwarePreset::Lab => 20.0,
            HardwarePreset::MetroFiber => 12.0,
        }
    }

    /// Fiber attenuation in dB/km applied to the generation rate.
    pub fn attenuation_db_per_km(&self) -> f64 {
        match self {
            // Bench jumpers and telecom fiber share the ~0.2 dB/km figure;
            // lab links are just too short for it to matter.
            HardwarePreset::Lab => 0.2,
            HardwarePreset::MetroFiber => 0.2,
        }
    }

    /// Werner fidelity of a freshly generated pair on a zero-length link.
    pub fn base_fidelity(&self) -> f64 {
        match self {
            HardwarePreset::Lab => 0.99,
            HardwarePreset::MetroFiber => 0.95,
        }
    }

    /// Characteristic length (km) on which initial fidelity relaxes toward
    /// the Werner floor 1/2.
    pub fn fidelity_length_scale_km(&self) -> f64 {
        match self {
            HardwarePreset::Lab => 200.0,
            HardwarePreset::MetroFiber => 60.0,
        }
    }

    /// Memory coherence time `T2` in seconds.
    pub fn coherence_time_s(&self) -> f64 {
        match self {
            HardwarePreset::Lab => 10.0,
            HardwarePreset::MetroFiber => 1.5,
        }
    }

    /// Per-node swap-scan rate in Hz — the cadence of the §4 balancing
    /// scan under this hardware's *classical* control plane.
    ///
    /// A scan consults network-wide pair counts (`C_y(y')`), so its cadence
    /// is set by classical signaling, not by quantum hardware. Both presets
    /// currently sync at the paper's default 4 Hz; the knob exists so a
    /// calibration can slow the control plane independently of the quantum
    /// links (the paper's §6 flags exactly this classical-overhead pressure
    /// at internet scale).
    pub fn swap_scan_rate_hz(&self) -> f64 {
        match self {
            HardwarePreset::Lab => 4.0,
            HardwarePreset::MetroFiber => 4.0,
        }
    }

    /// Per-node quantum-memory budget: how many stored qubit halves a node
    /// can hold at once (`None` = unlimited, the paper's idealization).
    ///
    /// This is the calibration with teeth at internet scale. Unlimited
    /// memories let pools fatten without bound — after an hour of simulated
    /// metro operation a node is "storing" tens of thousands of halves,
    /// which no deployed system does. A metro node is a rack with a finite
    /// memory bank, so generation back-pressures once the bank is full.
    /// Bounded memory also bounds the simulator's working set, which is
    /// what keeps |N| ≈ 10³ sweeps tractable.
    pub fn memory_qubits_per_node(&self) -> Option<u64> {
        match self {
            // Bench systems are modelled with the paper's idealized
            // limitless buffers (and legacy byte-identity depends on it).
            HardwarePreset::Lab => None,
            HardwarePreset::MetroFiber => Some(512),
        }
    }

    /// Derive the full per-edge profile for a link of the given length.
    ///
    /// Both derived quantities are strictly decreasing in `length_km`:
    /// rate as `base · 10^(-α·L/10)`, fidelity as
    /// `1/2 + (base − 1/2) · e^(−L/ℓ)`.
    pub fn profile_for_length(&self, length_km: f64) -> LinkProfile {
        let length_km = length_km.max(0.0);
        let rate =
            self.base_rate_hz() * 10f64.powf(-self.attenuation_db_per_km() * length_km / 10.0);
        let fidelity = 0.5
            + (self.base_fidelity() - 0.5) * (-length_km / self.fidelity_length_scale_km()).exp();
        LinkProfile {
            length_km,
            generation_rate_hz: rate,
            initial_fidelity: fidelity,
            coherence_time_s: self.coherence_time_s(),
        }
    }
}

impl std::fmt::Display for HardwarePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The compact, copyable fabric recipe that travels on
/// `NetworkConfig` and campaign grid axes.
///
/// Serializes as the preset label (`"lab"`, `"metro-fiber"`) so configs,
/// cache keys and report cells stay human-readable, and so the grammar of
/// the serialized form matches the CLI's `--fabric` grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FabricSpec {
    /// The hardware calibration applied to every edge.
    pub preset: HardwarePreset,
}

impl FabricSpec {
    /// A fabric using the given preset.
    pub fn new(preset: HardwarePreset) -> Self {
        FabricSpec { preset }
    }

    /// Parse a fabric spec; the grammar is the preset grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        HardwarePreset::parse(spec).map(FabricSpec::new)
    }

    /// Stable label used in reports and cache keys.
    pub fn label(&self) -> &'static str {
        self.preset.label()
    }

    /// Realize the per-edge profile map for a concrete built graph.
    ///
    /// Lengths come from the topology's own table when it has one
    /// ([`Topology::DeployedFiber`]); otherwise each edge's length is
    /// synthesized deterministically from `(seed, edge)` within the
    /// preset's length range, so the same `(topology, seed, preset)`
    /// always yields the same fabric.
    pub fn realize(&self, topology: &Topology, graph: &Graph, seed: u64) -> LinkFabric {
        let table: Option<BTreeMap<NodePair, f64>> = match topology {
            Topology::DeployedFiber => Some(
                nyc_fiber_links()
                    .iter()
                    .map(|&(a, b, km)| (NodePair::new(a.into(), b.into()), km))
                    .collect(),
            ),
            _ => None,
        };
        let (lo_km, hi_km) = self.preset.length_range_km();
        let profiles = graph
            .edges()
            .map(|(a, b)| {
                let pair = NodePair::new(a, b);
                let length_km = table
                    .as_ref()
                    .and_then(|t| t.get(&pair).copied())
                    .unwrap_or_else(|| lo_km + edge_unit(seed, pair) * (hi_km - lo_km));
                (pair, self.preset.profile_for_length(length_km))
            })
            .collect();
        LinkFabric { profiles }
    }
}

impl std::fmt::Display for FabricSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for FabricSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for FabricSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let label = value
            .as_str()
            .ok_or_else(|| DeError::expected("fabric preset label", value))?;
        FabricSpec::parse(label).map_err(DeError::custom)
    }
}

/// Deterministic per-edge unit draw in `[0, 1)` from `(seed, pair)`, used
/// to synthesize link lengths. SplitMix64 finalizer over the packed edge —
/// independent of graph build order and of how many edges exist.
fn edge_unit(seed: u64, pair: NodePair) -> f64 {
    let packed = ((pair.lo().0 as u64) << 32) | pair.hi().0 as u64;
    let mut z = seed ^ packed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The realized fabric of one built graph: a per-edge [`LinkProfile`] map.
///
/// Keyed by the canonical [`NodePair`]; iteration is in lexicographic pair
/// order (the same order as [`Graph::edges`]), so anything that walks the
/// fabric is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkFabric {
    profiles: BTreeMap<NodePair, LinkProfile>,
}

impl LinkFabric {
    /// The profile of one generation edge, if the fabric covers it.
    pub fn profile(&self, pair: NodePair) -> Option<&LinkProfile> {
        self.profiles.get(&pair)
    }

    /// Number of profiled edges.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no edges are profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterate `(pair, profile)` in lexicographic pair order.
    pub fn iter(&self) -> impl Iterator<Item = (NodePair, &LinkProfile)> + '_ {
        self.profiles.iter().map(|(&p, prof)| (p, prof))
    }
}

/// The stylized NYC deployed-fiber template (after Craddock et al.):
/// `(a, b, length_km)` triples over 12 metro nodes. Lengths are
/// heterogeneous — from a few kilometres of borough fiber to >20 km
/// inter-borough spans — which is the whole point of the template.
pub fn nyc_fiber_links() -> &'static [(u32, u32, f64)] {
    &[
        (0, 1, 5.5),   // downtown — midtown
        (0, 3, 3.2),   // downtown — DUMBO
        (0, 8, 16.0),  // downtown — Staten Island
        (0, 9, 4.8),   // downtown — Jersey City
        (1, 2, 7.0),   // midtown — Harlem
        (1, 3, 6.5),   // midtown — DUMBO
        (1, 5, 4.0),   // midtown — Long Island City
        (2, 7, 9.5),   // Harlem — Bronx
        (2, 11, 13.0), // Harlem — Yonkers
        (3, 4, 8.5),   // DUMBO — Flatbush
        (4, 5, 9.0),   // Flatbush — Long Island City
        (4, 6, 12.0),  // Flatbush — Jamaica
        (5, 6, 14.5),  // Long Island City — Jamaica
        (6, 10, 21.0), // Jamaica — Hempstead
        (7, 11, 10.0), // Bronx — Yonkers
        (8, 9, 12.5),  // Staten Island — Jersey City
    ]
}

/// Node count of the NYC deployed-fiber template.
pub fn nyc_fiber_node_count() -> usize {
    1 + nyc_fiber_links()
        .iter()
        .map(|&(a, b, _)| a.max(b))
        .max()
        .unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn preset_parse_and_label_round_trip() {
        for preset in HardwarePreset::ALL {
            assert_eq!(HardwarePreset::parse(preset.label()), Ok(preset));
            assert_eq!(format!("{preset}"), preset.label());
        }
        let err = HardwarePreset::parse("cryo-farm").unwrap_err();
        assert!(err.contains("lab"), "{err}");
        assert!(err.contains("metro-fiber"), "{err}");
    }

    #[test]
    fn fabric_spec_serializes_as_its_label() {
        let spec = FabricSpec::new(HardwarePreset::MetroFiber);
        let v = spec.to_value();
        assert_eq!(v.as_str(), Some("metro-fiber"));
        let back = FabricSpec::from_value(&v).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn derived_profiles_attenuate_with_length() {
        for preset in HardwarePreset::ALL {
            let short = preset.profile_for_length(0.5);
            let long = preset.profile_for_length(25.0);
            assert!(short.generation_rate_hz > long.generation_rate_hz);
            assert!(short.initial_fidelity > long.initial_fidelity);
            assert!(long.initial_fidelity > 0.5, "never below the Werner floor");
            assert!(long.generation_rate_hz > 0.0);
            assert_eq!(short.coherence_time_s, preset.coherence_time_s());
        }
    }

    #[test]
    fn control_plane_and_memory_calibrations() {
        // Both presets sync at the paper's 4 Hz cadence today; only the
        // deployed preset has a finite memory bank (bench systems keep the
        // paper's idealized limitless buffers).
        assert_eq!(HardwarePreset::Lab.swap_scan_rate_hz(), 4.0);
        assert_eq!(HardwarePreset::MetroFiber.swap_scan_rate_hz(), 4.0);
        assert_eq!(HardwarePreset::Lab.memory_qubits_per_node(), None);
        assert_eq!(
            HardwarePreset::MetroFiber.memory_qubits_per_node(),
            Some(512)
        );
    }

    #[test]
    fn realized_fabric_covers_every_edge_and_is_seed_deterministic() {
        let topology = Topology::Cycle { nodes: 9 };
        let graph = topology.build(7);
        let spec = FabricSpec::new(HardwarePreset::MetroFiber);
        let fabric = spec.realize(&topology, &graph, 7);
        assert_eq!(fabric.len(), graph.edge_count());
        let (lo, hi) = HardwarePreset::MetroFiber.length_range_km();
        for (pair, profile) in fabric.iter() {
            assert!(graph.has_edge(pair.lo(), pair.hi()));
            assert!(profile.length_km >= lo && profile.length_km < hi);
        }
        // Same seed, same fabric; different seed, different lengths.
        assert_eq!(fabric, spec.realize(&topology, &graph, 7));
        assert_ne!(fabric, spec.realize(&topology, &graph, 8));
    }

    #[test]
    fn nyc_template_is_a_connected_heterogeneous_fabric() {
        let topology = Topology::DeployedFiber;
        let graph = topology.build(0);
        assert_eq!(graph.node_count(), nyc_fiber_node_count());
        assert!(is_connected(&graph));
        let fabric = FabricSpec::new(HardwarePreset::MetroFiber).realize(&topology, &graph, 99);
        assert_eq!(fabric.len(), nyc_fiber_links().len());
        // Lengths come from the fixed table, not the seed.
        let again = FabricSpec::new(HardwarePreset::MetroFiber).realize(&topology, &graph, 1);
        assert_eq!(fabric, again);
        let lengths: Vec<f64> = fabric.iter().map(|(_, p)| p.length_km).collect();
        let min = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lengths.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 5.0, "template is genuinely heterogeneous");
    }
}
