//! Structural graph metrics.
//!
//! Used by experiment reports to characterise the generation graphs the
//! protocols run over (diameter, mean path length, degree statistics), and by
//! tests as independent cross-checks of the builders.

use crate::graph::Graph;
use crate::shortest_path::all_pairs_distances;

/// Summary statistics of a graph's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Graph diameter (longest shortest path); `None` if disconnected or
    /// trivial.
    pub diameter: Option<u32>,
    /// Mean shortest-path length over connected ordered pairs; `None` if
    /// there are no such pairs.
    pub mean_path_length: Option<f64>,
    /// True if the graph is connected.
    pub connected: bool,
}

/// Compute [`GraphMetrics`] (O(V·E) due to all-pairs BFS; intended for the
/// experiment-scale graphs in this workspace, not for huge graphs).
pub fn graph_metrics(graph: &Graph) -> GraphMetrics {
    let nodes = graph.node_count();
    let edges = graph.edge_count();
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let mean_degree = if nodes == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / nodes as f64
    };

    let d = all_pairs_distances(graph);
    let mut diameter = 0u32;
    let mut sum = 0u64;
    let mut count = 0u64;
    let mut all_reachable = true;
    for (i, row) in d.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            match cell {
                Some(h) => {
                    diameter = diameter.max(*h);
                    sum += *h as u64;
                    count += 1;
                }
                None => all_reachable = false,
            }
        }
    }
    let connected = nodes <= 1 || all_reachable;
    GraphMetrics {
        nodes,
        edges,
        min_degree,
        max_degree,
        mean_degree,
        diameter: if connected && nodes > 1 {
            Some(diameter)
        } else {
            None
        },
        mean_path_length: if count > 0 {
            Some(sum as f64 / count as f64)
        } else {
            None
        },
        connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, planar_grid, star, torus_grid};
    use crate::graph::NodeId;

    #[test]
    fn cycle_metrics() {
        let m = graph_metrics(&cycle(10));
        assert_eq!(m.nodes, 10);
        assert_eq!(m.edges, 10);
        assert_eq!(m.min_degree, 2);
        assert_eq!(m.max_degree, 2);
        assert!((m.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(m.diameter, Some(5));
        assert!(m.connected);
    }

    #[test]
    fn star_metrics() {
        let m = graph_metrics(&star(9));
        assert_eq!(m.diameter, Some(2));
        assert_eq!(m.max_degree, 8);
        assert_eq!(m.min_degree, 1);
    }

    #[test]
    fn torus_diameter() {
        // 5x5 torus: max hop distance is floor(5/2)+floor(5/2) = 4.
        let m = graph_metrics(&torus_grid(5));
        assert_eq!(m.diameter, Some(4));
        // Planar 5x5 grid: corner to corner is 8.
        let p = graph_metrics(&planar_grid(5));
        assert_eq!(p.diameter, Some(8));
        assert!(p.mean_path_length.unwrap() > m.mean_path_length.unwrap());
    }

    #[test]
    fn disconnected_graph_metrics() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        let m = graph_metrics(&g);
        assert!(!m.connected);
        assert_eq!(m.diameter, None);
        // The connected pair still contributes to mean path length.
        assert_eq!(m.mean_path_length, Some(1.0));
    }

    #[test]
    fn trivial_graphs() {
        let m = graph_metrics(&Graph::with_nodes(0));
        assert_eq!(m.nodes, 0);
        assert!(m.connected);
        assert_eq!(m.mean_path_length, None);
        let m1 = graph_metrics(&Graph::with_nodes(1));
        assert!(m1.connected);
        assert_eq!(m1.diameter, None);
    }
}
