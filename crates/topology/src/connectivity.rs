//! Connectivity: union-find and connected components.
//!
//! The paper's grid topology is built by "adding generation edges uniformly
//! at random on the grid **until the underlying generation graph connects all
//! nodes**" (§5); union-find is the natural tool for that construction and
//! for validating that a generation graph can serve all consumer pairs
//! (pairs in distinct components can never share a Bell pair, §3).

use crate::graph::{Graph, NodeId};

/// Disjoint-set (union-find) structure over dense node ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create a structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: NodeId) -> NodeId {
        let mut root = x.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        NodeId(root)
    }

    /// Merge the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra.index()] >= self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }
}

/// True if the graph is connected (the empty graph and single-node graph are
/// considered connected).
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph).len() <= 1
}

/// The connected components of a graph, each as a sorted list of nodes;
/// components are ordered by their smallest node.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    for (a, b) in graph.edges() {
        uf.union(a, b);
    }
    let mut by_root: Vec<Vec<NodeId>> = Vec::new();
    let mut root_index: Vec<Option<usize>> = vec![None; n];
    for node in graph.nodes() {
        let root = uf.find(node);
        let idx = match root_index[root.index()] {
            Some(i) => i,
            None => {
                by_root.push(Vec::new());
                root_index[root.index()] = Some(by_root.len() - 1);
                by_root.len() - 1
            }
        };
        by_root[idx].push(node);
    }
    by_root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::Topology;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(NodeId(0), NodeId(1)));
        assert!(uf.union(NodeId(1), NodeId(2)));
        assert!(!uf.union(NodeId(0), NodeId(2)), "already merged");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(NodeId(0), NodeId(2)));
        assert!(!uf.connected(NodeId(0), NodeId(4)));
    }

    #[test]
    fn union_find_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn cycle_is_connected() {
        let g = Topology::Cycle { nodes: 8 }.build_deterministic();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        assert!(is_connected(&Graph::with_nodes(0)));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(!is_connected(&Graph::with_nodes(2)));
    }
}
