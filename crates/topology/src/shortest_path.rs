//! Shortest paths on generation graphs.
//!
//! Two users in this workspace:
//!
//! * the **planned-path baselines** select the shortest path between the
//!   consumer endpoints and swap along it, and
//! * the **swap-overhead metric** (§5) divides the number of swaps performed
//!   by `Σ_c s(ℓ(c))` where `ℓ(c)` is the shortest-path hop count between the
//!   consumption pair's endpoints in the generation graph.
//!
//! Generation graphs are unweighted, so BFS is the workhorse; a Dijkstra
//! variant over `f64` edge weights is provided for fidelity- or
//! latency-weighted extensions (§6).

use crate::graph::{Graph, NodeId};
use std::collections::{BinaryHeap, VecDeque};

/// Result of a point-to-point path query.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// The nodes along the path, starting at the source and ending at the
    /// target (inclusive).
    pub nodes: Vec<NodeId>,
    /// Total cost: hop count for BFS, summed weights for Dijkstra.
    pub cost: f64,
}

impl PathResult {
    /// Number of hops (edges) along the path.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Single-source BFS hop distances. Unreachable nodes get `None`.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    if source.index() >= n {
        return dist;
    }
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        for &v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest (fewest-hops) path between two nodes, or `None` if unreachable.
/// Ties are broken deterministically by preferring smaller-id predecessors.
pub fn bfs_path(graph: &Graph, source: NodeId, target: NodeId) -> Option<PathResult> {
    let n = graph.node_count();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    if source == target {
        return Some(PathResult {
            nodes: vec![source],
            cost: 0.0,
        });
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[source.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                prev[v.index()] = Some(u);
                if v == target {
                    return Some(reconstruct(&prev, source, target));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// All-pairs hop distances (BFS from every node). `dist[i][j]` is `None` when
/// `j` is unreachable from `i`.
pub fn all_pairs_distances(graph: &Graph) -> Vec<Vec<Option<u32>>> {
    graph.nodes().map(|s| bfs_distances(graph, s)).collect()
}

fn reconstruct(prev: &[Option<NodeId>], source: NodeId, target: NodeId) -> PathResult {
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur.index()].expect("path reconstruction hit a gap");
        nodes.push(cur);
    }
    nodes.reverse();
    let cost = (nodes.len() - 1) as f64;
    PathResult { nodes, cost }
}

/// Dijkstra over non-negative edge weights supplied by `weight(a, b)`.
/// Returns the minimum-total-weight path, or `None` if unreachable.
///
/// # Panics
/// Panics (in debug builds) if a negative weight is supplied.
pub fn dijkstra(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    mut weight: impl FnMut(NodeId, NodeId) -> f64,
) -> Option<PathResult> {
    use std::cmp::Ordering;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on (cost, node id) — the node id tie-break keeps the
            // search deterministic.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }

    let n = graph.node_count();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry {
        cost: 0.0,
        node: source,
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == target {
            let mut nodes = vec![target];
            let mut cur = target;
            while cur != source {
                cur = prev[cur.index()].expect("path reconstruction hit a gap");
                nodes.push(cur);
            }
            nodes.reverse();
            return Some(PathResult { nodes, cost });
        }
        for &v in graph.neighbors(node) {
            if done[v.index()] {
                continue;
            }
            let w = weight(node, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                prev[v.index()] = Some(node);
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, path, planar_grid, torus_grid};

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_unreachable() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bfs_path_on_cycle_takes_short_way_round() {
        let g = cycle(10);
        let p = bfs_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let q = bfs_path(&g, NodeId(0), NodeId(7)).unwrap();
        assert_eq!(q.hops(), 3, "wraps around the other way");
        assert_eq!(q.nodes, vec![NodeId(0), NodeId(9), NodeId(8), NodeId(7)]);
    }

    #[test]
    fn bfs_path_same_node_is_trivial() {
        let g = cycle(4);
        let p = bfs_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn bfs_path_none_when_disconnected_or_out_of_range() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(bfs_path(&g, NodeId(0), NodeId(3)).is_none());
        assert!(bfs_path(&g, NodeId(0), NodeId(9)).is_none());
    }

    #[test]
    fn bfs_on_torus_uses_wraparound() {
        let g = torus_grid(5);
        // (0,0) to (0,4) is one hop across the wrap, not four.
        let p = bfs_path(&g, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.hops(), 1);
        // Opposite corner (2,2) is 2+2 = 4 hops.
        let q = bfs_path(&g, NodeId(0), NodeId(12)).unwrap();
        assert_eq!(q.hops(), 4);
    }

    #[test]
    fn planar_grid_has_no_wraparound_shortcut() {
        let g = planar_grid(5);
        let p = bfs_path(&g, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = torus_grid(4);
        let d = all_pairs_distances(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, d[j][i]);
            }
            assert_eq!(row[i], Some(0));
        }
    }

    #[test]
    fn path_result_endpoints_are_correct() {
        let g = planar_grid(4);
        for s in 0..16u32 {
            for t in 0..16u32 {
                let p = bfs_path(&g, NodeId(s), NodeId(t)).unwrap();
                assert_eq!(p.nodes[0], NodeId(s));
                assert_eq!(*p.nodes.last().unwrap(), NodeId(t));
                // Consecutive nodes must be adjacent.
                for w in p.nodes.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs() {
        let g = torus_grid(5);
        for s in 0..25u32 {
            for t in 0..25u32 {
                let b = bfs_path(&g, NodeId(s), NodeId(t)).unwrap();
                let d = dijkstra(&g, NodeId(s), NodeId(t), |_, _| 1.0).unwrap();
                assert_eq!(b.hops() as f64, d.cost, "{s}->{t}");
            }
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // Triangle where the direct edge is expensive.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        let w = |a: NodeId, b: NodeId| {
            if (a.0, b.0) == (0, 2) || (a.0, b.0) == (2, 0) {
                10.0
            } else {
                1.0
            }
        };
        let p = dijkstra(&g, NodeId(0), NodeId(2), w).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.cost, 2.0);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(dijkstra(&g, NodeId(0), NodeId(2), |_, _| 1.0).is_none());
    }
}
