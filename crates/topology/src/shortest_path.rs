//! Shortest paths on generation graphs.
//!
//! Two users in this workspace:
//!
//! * the **planned-path baselines** select the shortest path between the
//!   consumer endpoints and swap along it, and
//! * the **swap-overhead metric** (§5) divides the number of swaps performed
//!   by `Σ_c s(ℓ(c))` where `ℓ(c)` is the shortest-path hop count between the
//!   consumption pair's endpoints in the generation graph.
//!
//! Generation graphs are unweighted, so BFS is the workhorse; a Dijkstra
//! variant over `f64` edge weights is provided for fidelity- or
//! latency-weighted extensions (§6).

use crate::graph::{Graph, NodeId};
use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};

/// Result of a point-to-point path query.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// The nodes along the path, starting at the source and ending at the
    /// target (inclusive).
    pub nodes: Vec<NodeId>,
    /// Total cost: hop count for BFS, summed weights for Dijkstra.
    pub cost: f64,
}

impl PathResult {
    /// Number of hops (edges) along the path.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Single-source BFS hop distances. Unreachable nodes get `None`.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    if source.index() >= n {
        return dist;
    }
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        for &v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest (fewest-hops) path between two nodes, or `None` if unreachable.
/// Ties are broken deterministically by preferring smaller-id predecessors.
pub fn bfs_path(graph: &Graph, source: NodeId, target: NodeId) -> Option<PathResult> {
    let n = graph.node_count();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    if source == target {
        return Some(PathResult {
            nodes: vec![source],
            cost: 0.0,
        });
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[source.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                prev[v.index()] = Some(u);
                if v == target {
                    return Some(reconstruct(&prev, source, target));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// All-pairs hop distances (BFS from every node). `dist[i][j]` is `None` when
/// `j` is unreachable from `i`.
pub fn all_pairs_distances(graph: &Graph) -> Vec<Vec<Option<u32>>> {
    graph.nodes().map(|s| bfs_distances(graph, s)).collect()
}

fn reconstruct(prev: &[Option<NodeId>], source: NodeId, target: NodeId) -> PathResult {
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur.index()].expect("path reconstruction hit a gap");
        nodes.push(cur);
    }
    nodes.reverse();
    let cost = (nodes.len() - 1) as f64;
    PathResult { nodes, cost }
}

/// One memoized BFS tree: hop distances and discovery predecessors from a
/// single source. `u32::MAX` is the "unreachable / no predecessor" sentinel.
#[derive(Debug, Clone)]
struct OracleRow {
    dist: Vec<u32>,
    prev: Vec<u32>,
}

impl OracleRow {
    const NONE: u32 = u32::MAX;

    /// Full BFS from `source`, visiting neighbors in ascending id order —
    /// the same discovery order (and therefore the same predecessor
    /// assignments) as [`bfs_path`]'s early-exit search, so paths
    /// reconstructed from this row are node-for-node identical to what
    /// `bfs_path` returns for any target.
    fn bfs(graph: &Graph, source: NodeId) -> Self {
        let n = graph.node_count();
        let mut dist = vec![Self::NONE; n];
        let mut prev = vec![Self::NONE; n];
        dist[source.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in graph.neighbors(u) {
                if dist[v.index()] == Self::NONE {
                    dist[v.index()] = du + 1;
                    prev[v.index()] = u.0;
                    queue.push_back(v);
                }
            }
        }
        OracleRow { dist, prev }
    }
}

/// Memoized shortest-path oracle over a frozen graph.
///
/// Replaces per-pair BFS memoization (`BTreeMap<NodePair, usize>` hop caches,
/// per-request `bfs_path` calls) with per-**source** BFS rows: one full BFS
/// answers hop and path queries to *every* target from that source. For
/// graphs up to [`PathOracle::ALL_PAIRS_THRESHOLD`] nodes all rows are
/// computed eagerly at construction (all-pairs BFS, `O(N·(N + E))` — cheap at
/// paper scale); above it rows fill lazily on first query from each source,
/// so internet-scale graphs pay only for the sources a workload actually
/// touches.
///
/// Queries take the graph by reference so the oracle can live alongside the
/// graph in one owning struct. Answers are memoized behind a `RefCell`, so
/// `&self` queries suffice; the type is deliberately not `Sync` (per-run
/// worlds are single-threaded; shard parallelism is process-level).
#[derive(Debug, Clone)]
pub struct PathOracle {
    rows: RefCell<Vec<Option<Box<OracleRow>>>>,
}

impl PathOracle {
    /// Node count up to which construction precomputes every BFS row.
    pub const ALL_PAIRS_THRESHOLD: usize = 128;

    /// Build an oracle for `graph`, precomputing all-pairs rows when the
    /// graph has at most [`Self::ALL_PAIRS_THRESHOLD`] nodes.
    pub fn new(graph: &Graph) -> Self {
        Self::with_threshold(graph, Self::ALL_PAIRS_THRESHOLD)
    }

    /// Build an oracle precomputing all rows iff `node_count <= threshold`
    /// (exposed so tests and benches can force either regime).
    pub fn with_threshold(graph: &Graph, threshold: usize) -> Self {
        let n = graph.node_count();
        let rows = if n <= threshold {
            graph
                .nodes()
                .map(|s| Some(Box::new(OracleRow::bfs(graph, s))))
                .collect()
        } else {
            vec![None; n]
        };
        PathOracle {
            rows: RefCell::new(rows),
        }
    }

    /// Number of BFS rows currently materialized (all of them in the eager
    /// regime; the touched sources in the lazy one).
    pub fn memoized_rows(&self) -> usize {
        self.rows.borrow().iter().filter(|r| r.is_some()).count()
    }

    /// Run `f` against `source`'s BFS row, computing it on first use.
    fn with_row<R>(&self, graph: &Graph, source: NodeId, f: impl FnOnce(&OracleRow) -> R) -> R {
        let mut rows = self.rows.borrow_mut();
        let slot = &mut rows[source.index()];
        if slot.is_none() {
            *slot = Some(Box::new(OracleRow::bfs(graph, source)));
        }
        f(slot.as_deref().expect("row just filled"))
    }

    /// Hop count of the shortest path `source → target`, `None` when
    /// unreachable or either id is out of range. Matches
    /// `bfs_path(graph, source, target).map(|p| p.hops())` exactly.
    pub fn hops(&self, graph: &Graph, source: NodeId, target: NodeId) -> Option<usize> {
        let n = graph.node_count();
        if source.index() >= n || target.index() >= n {
            return None;
        }
        self.with_row(graph, source, |row| match row.dist[target.index()] {
            OracleRow::NONE => None,
            d => Some(d as usize),
        })
    }

    /// The shortest path `source → target`, `None` when unreachable or out
    /// of range. Node-for-node identical to [`bfs_path`] (same ascending-id
    /// tie-breaking).
    pub fn path(&self, graph: &Graph, source: NodeId, target: NodeId) -> Option<PathResult> {
        let n = graph.node_count();
        if source.index() >= n || target.index() >= n {
            return None;
        }
        if source == target {
            return Some(PathResult {
                nodes: vec![source],
                cost: 0.0,
            });
        }
        self.with_row(graph, source, |row| {
            if row.dist[target.index()] == OracleRow::NONE {
                return None;
            }
            let mut nodes = vec![target];
            let mut cur = target;
            while cur != source {
                cur = NodeId(row.prev[cur.index()]);
                nodes.push(cur);
            }
            nodes.reverse();
            let cost = (nodes.len() - 1) as f64;
            Some(PathResult { nodes, cost })
        })
    }
}

/// Dijkstra over non-negative edge weights supplied by `weight(a, b)`.
/// Returns the minimum-total-weight path, or `None` if unreachable.
///
/// # Panics
/// Panics (in debug builds) if a negative weight is supplied.
pub fn dijkstra(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    mut weight: impl FnMut(NodeId, NodeId) -> f64,
) -> Option<PathResult> {
    use std::cmp::Ordering;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on (cost, node id) — the node id tie-break keeps the
            // search deterministic.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }

    let n = graph.node_count();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry {
        cost: 0.0,
        node: source,
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == target {
            let mut nodes = vec![target];
            let mut cur = target;
            while cur != source {
                cur = prev[cur.index()].expect("path reconstruction hit a gap");
                nodes.push(cur);
            }
            nodes.reverse();
            return Some(PathResult { nodes, cost });
        }
        for &v in graph.neighbors(node) {
            if done[v.index()] {
                continue;
            }
            let w = weight(node, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                prev[v.index()] = Some(node);
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, path, planar_grid, torus_grid};

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_unreachable() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bfs_path_on_cycle_takes_short_way_round() {
        let g = cycle(10);
        let p = bfs_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let q = bfs_path(&g, NodeId(0), NodeId(7)).unwrap();
        assert_eq!(q.hops(), 3, "wraps around the other way");
        assert_eq!(q.nodes, vec![NodeId(0), NodeId(9), NodeId(8), NodeId(7)]);
    }

    #[test]
    fn bfs_path_same_node_is_trivial() {
        let g = cycle(4);
        let p = bfs_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn bfs_path_none_when_disconnected_or_out_of_range() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(bfs_path(&g, NodeId(0), NodeId(3)).is_none());
        assert!(bfs_path(&g, NodeId(0), NodeId(9)).is_none());
    }

    #[test]
    fn bfs_on_torus_uses_wraparound() {
        let g = torus_grid(5);
        // (0,0) to (0,4) is one hop across the wrap, not four.
        let p = bfs_path(&g, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.hops(), 1);
        // Opposite corner (2,2) is 2+2 = 4 hops.
        let q = bfs_path(&g, NodeId(0), NodeId(12)).unwrap();
        assert_eq!(q.hops(), 4);
    }

    #[test]
    fn planar_grid_has_no_wraparound_shortcut() {
        let g = planar_grid(5);
        let p = bfs_path(&g, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = torus_grid(4);
        let d = all_pairs_distances(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, d[j][i]);
            }
            assert_eq!(row[i], Some(0));
        }
    }

    #[test]
    fn path_result_endpoints_are_correct() {
        let g = planar_grid(4);
        for s in 0..16u32 {
            for t in 0..16u32 {
                let p = bfs_path(&g, NodeId(s), NodeId(t)).unwrap();
                assert_eq!(p.nodes[0], NodeId(s));
                assert_eq!(*p.nodes.last().unwrap(), NodeId(t));
                // Consecutive nodes must be adjacent.
                for w in p.nodes.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs() {
        let g = torus_grid(5);
        for s in 0..25u32 {
            for t in 0..25u32 {
                let b = bfs_path(&g, NodeId(s), NodeId(t)).unwrap();
                let d = dijkstra(&g, NodeId(s), NodeId(t), |_, _| 1.0).unwrap();
                assert_eq!(b.hops() as f64, d.cost, "{s}->{t}");
            }
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // Triangle where the direct edge is expensive.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        let w = |a: NodeId, b: NodeId| {
            if (a.0, b.0) == (0, 2) || (a.0, b.0) == (2, 0) {
                10.0
            } else {
                1.0
            }
        };
        let p = dijkstra(&g, NodeId(0), NodeId(2), w).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.cost, 2.0);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(dijkstra(&g, NodeId(0), NodeId(2), |_, _| 1.0).is_none());
    }

    /// Oracle answers must be indistinguishable from fresh BFS on every
    /// pair, in both the eager (all-pairs) and lazy regimes.
    fn assert_oracle_matches_bfs(g: &Graph) {
        for oracle in [
            PathOracle::with_threshold(g, usize::MAX),
            PathOracle::with_threshold(g, 0),
        ] {
            for s in g.nodes() {
                for t in g.nodes() {
                    let fresh = bfs_path(g, s, t);
                    assert_eq!(
                        oracle.hops(g, s, t),
                        fresh.as_ref().map(|p| p.hops()),
                        "hops {s}->{t}"
                    );
                    assert_eq!(oracle.path(g, s, t), fresh, "path {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn oracle_matches_bfs_on_cycle_torus_and_scale_free() {
        assert_oracle_matches_bfs(&cycle(11));
        assert_oracle_matches_bfs(&torus_grid(4));
        assert_oracle_matches_bfs(&crate::builders::scale_free(40, 2, 13));
    }

    #[test]
    fn oracle_matches_bfs_on_disconnected_graph() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert_oracle_matches_bfs(&g);
        let oracle = PathOracle::new(&g);
        assert_eq!(oracle.hops(&g, NodeId(0), NodeId(3)), None);
        assert_eq!(oracle.path(&g, NodeId(0), NodeId(3)), None);
        // Out-of-range ids answer None rather than panicking, like bfs_path.
        assert_eq!(oracle.hops(&g, NodeId(0), NodeId(9)), None);
        assert_eq!(oracle.path(&g, NodeId(9), NodeId(0)), None);
    }

    #[test]
    fn oracle_rows_fill_lazily_above_threshold() {
        let g = cycle(10);
        let eager = PathOracle::with_threshold(&g, 10);
        assert_eq!(eager.memoized_rows(), 10);
        let lazy = PathOracle::with_threshold(&g, 9);
        assert_eq!(lazy.memoized_rows(), 0);
        assert_eq!(lazy.hops(&g, NodeId(3), NodeId(7)), Some(4));
        assert_eq!(lazy.memoized_rows(), 1, "one row per queried source");
        // A second query from the same source reuses the row.
        assert_eq!(lazy.hops(&g, NodeId(3), NodeId(4)), Some(1));
        assert_eq!(lazy.memoized_rows(), 1);
    }
}
