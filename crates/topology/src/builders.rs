//! Topology builders.
//!
//! The paper's evaluation (§5) uses two generation-graph topologies:
//!
//! * a **cycle graph** over `|N|` nodes numbered `0 .. |N|-1` with
//!   `g(x, y) > 0 ⇔ y = x ± 1 (mod |N|)`, and
//! * an embedding on a **wraparound `√N × √N` grid** where generation edges
//!   are drawn uniformly at random from the torus edges *until the generation
//!   graph connects all nodes*.
//!
//! Both are provided here, along with the full torus, and a handful of other
//! standard topologies used by the workspace's ablation experiments.

use crate::connectivity::UnionFind;
use crate::graph::{Graph, NodeId};
use qnet_sim_shim::SimRng;
use serde::{Deserialize, Serialize};

// qnet-topology deliberately does not depend on qnet-sim (it sits below it in
// the layering); it only needs a deterministic RNG. To avoid a dependency
// cycle we re-implement the tiny seeding shim here on top of rand_chacha.
mod qnet_sim_shim {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    /// Minimal deterministic RNG used by the random topology builders.
    #[derive(Debug, Clone)]
    pub struct SimRng(ChaCha12Rng);

    impl SimRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            SimRng(ChaCha12Rng::seed_from_u64(seed))
        }
        /// Uniform index in `0..n`.
        pub fn index(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n)
        }
        /// Bernoulli(p).
        pub fn chance(&mut self, p: f64) -> bool {
            if p <= 0.0 {
                false
            } else if p >= 1.0 {
                true
            } else {
                self.0.gen::<f64>() < p
            }
        }
        /// Fisher–Yates shuffle.
        pub fn shuffle<T>(&mut self, xs: &mut [T]) {
            if xs.len() < 2 {
                return;
            }
            for i in (1..xs.len()).rev() {
                let j = self.0.gen_range(0..=i);
                xs.swap(i, j);
            }
        }
    }
}

/// A named topology recipe. `build` turns a recipe plus a seed into a
/// concrete [`Graph`]; deterministic recipes ignore the seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Cycle over `nodes` nodes: `i — i+1 (mod nodes)`.
    Cycle {
        /// Number of nodes.
        nodes: usize,
    },
    /// Simple path `0 — 1 — … — nodes-1`.
    Path {
        /// Number of nodes.
        nodes: usize,
    },
    /// Star: node 0 joined to every other node.
    Star {
        /// Number of nodes.
        nodes: usize,
    },
    /// Complete graph on `nodes` nodes.
    Complete {
        /// Number of nodes.
        nodes: usize,
    },
    /// Full wraparound (torus) grid of `side × side` nodes.
    TorusGrid {
        /// Side length; the node count is `side * side`.
        side: usize,
    },
    /// Non-wrapping (planar) grid of `side × side` nodes.
    PlanarGrid {
        /// Side length; the node count is `side * side`.
        side: usize,
    },
    /// The paper's grid construction: torus edges added uniformly at random
    /// until the graph is connected.
    RandomConnectedGrid {
        /// Side length; the node count is `side * side`.
        side: usize,
    },
    /// Erdős–Rényi `G(n, p)`, re-sampled with extra random edges until
    /// connected (so the result is always usable as a generation graph).
    ErdosRenyiConnected {
        /// Number of nodes.
        nodes: usize,
        /// Independent edge probability, clamped to [0, 1].
        edge_probability: f64,
    },
    /// A uniformly random spanning tree (random connected graph with the
    /// minimum number of edges).
    RandomTree {
        /// Number of nodes.
        nodes: usize,
    },
    /// Watts–Strogatz small world: a ring lattice where each node connects
    /// to its `neighbors` nearest ring neighbours, with every lattice edge
    /// rewired to a uniformly random endpoint with probability
    /// `rewire_probability`, then patched back to connectivity. `p = 0`
    /// gives the regular lattice, `p = 1` approaches a random graph;
    /// intermediate values give the short-path/high-clustering regime
    /// quantum-internet backbones are often modelled with.
    WattsStrogatz {
        /// Number of nodes.
        nodes: usize,
        /// Ring-lattice degree (rounded down to an even count, minimum 2).
        neighbors: usize,
        /// Per-edge rewiring probability, clamped to [0, 1].
        rewire_probability: f64,
    },
    /// Barabási–Albert preferential attachment: growth from a small seed
    /// clique with each new node attaching to `attach` distinct existing
    /// nodes chosen proportionally to degree. Produces the heavy-tailed
    /// degree distribution of internet-scale backbones — the regime where
    /// the paper argues path-oblivious swapping should shine.
    ScaleFree {
        /// Number of nodes.
        nodes: usize,
        /// Edges added per arriving node (clamped to `1..nodes`).
        attach: usize,
    },
    /// The stylized NYC deployed-fiber template (Craddock et al.): a fixed
    /// 12-node metro graph whose heterogeneous link lengths live in
    /// [`crate::fabric::nyc_fiber_links`] and drive per-edge
    /// [`crate::fabric::LinkProfile`]s when a fabric is attached.
    DeployedFiber,
}

impl Topology {
    /// Human-readable label used in experiment reports.
    pub fn label(&self) -> String {
        match self {
            Topology::Cycle { nodes } => format!("cycle-{nodes}"),
            Topology::Path { nodes } => format!("path-{nodes}"),
            Topology::Star { nodes } => format!("star-{nodes}"),
            Topology::Complete { nodes } => format!("complete-{nodes}"),
            Topology::TorusGrid { side } => format!("torus-{side}x{side}"),
            Topology::PlanarGrid { side } => format!("grid-{side}x{side}"),
            Topology::RandomConnectedGrid { side } => format!("rand-grid-{side}x{side}"),
            Topology::ErdosRenyiConnected {
                nodes,
                edge_probability,
            } => format!("er-{nodes}-p{edge_probability}"),
            Topology::RandomTree { nodes } => format!("tree-{nodes}"),
            Topology::WattsStrogatz {
                nodes,
                neighbors,
                rewire_probability,
            } => format!("ws-{nodes}-k{neighbors}-p{rewire_probability}"),
            Topology::ScaleFree { nodes, attach } => format!("scale-free-{nodes}-m{attach}"),
            Topology::DeployedFiber => "nyc-fiber".to_string(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Cycle { nodes }
            | Topology::Path { nodes }
            | Topology::Star { nodes }
            | Topology::Complete { nodes }
            | Topology::ErdosRenyiConnected { nodes, .. }
            | Topology::RandomTree { nodes }
            | Topology::WattsStrogatz { nodes, .. }
            | Topology::ScaleFree { nodes, .. } => nodes,
            Topology::TorusGrid { side }
            | Topology::PlanarGrid { side }
            | Topology::RandomConnectedGrid { side } => side * side,
            Topology::DeployedFiber => crate::fabric::nyc_fiber_node_count(),
        }
    }

    /// True if the recipe uses randomness (i.e. the seed matters).
    pub fn is_random(&self) -> bool {
        matches!(
            self,
            Topology::RandomConnectedGrid { .. }
                | Topology::ErdosRenyiConnected { .. }
                | Topology::RandomTree { .. }
                | Topology::WattsStrogatz { .. }
                | Topology::ScaleFree { .. }
        )
    }

    /// Build the graph with the given seed.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            Topology::Cycle { nodes } => cycle(nodes),
            Topology::Path { nodes } => path(nodes),
            Topology::Star { nodes } => star(nodes),
            Topology::Complete { nodes } => complete(nodes),
            Topology::TorusGrid { side } => torus_grid(side),
            Topology::PlanarGrid { side } => planar_grid(side),
            Topology::RandomConnectedGrid { side } => random_connected_grid(side, seed),
            Topology::ErdosRenyiConnected {
                nodes,
                edge_probability,
            } => erdos_renyi_connected(nodes, edge_probability, seed),
            Topology::RandomTree { nodes } => random_tree(nodes, seed),
            Topology::WattsStrogatz {
                nodes,
                neighbors,
                rewire_probability,
            } => watts_strogatz(nodes, neighbors, rewire_probability, seed),
            Topology::ScaleFree { nodes, attach } => scale_free(nodes, attach, seed),
            Topology::DeployedFiber => deployed_fiber(),
        }
    }

    /// Build a deterministic recipe (seed 0 is used for the random ones).
    pub fn build_deterministic(&self) -> Graph {
        self.build(0)
    }
}

/// Cycle graph on `n` nodes (`n ≥ 3` gives a true cycle; `n = 2` degenerates
/// to a single edge, `n ≤ 1` has no edges).
pub fn cycle(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n < 2 {
        return g;
    }
    for i in 0..n {
        let j = (i + 1) % n;
        if i != j {
            g.add_edge(NodeId::from(i), NodeId::from(j));
        }
    }
    g
}

/// Path graph on `n` nodes.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::from(i - 1), NodeId::from(i));
    }
    g
}

/// Star graph: node 0 is the hub.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::from(0usize), NodeId::from(i));
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::from(i), NodeId::from(j));
        }
    }
    g
}

/// Node id of grid coordinate `(row, col)` on a `side × side` grid.
pub fn grid_node(side: usize, row: usize, col: usize) -> NodeId {
    NodeId::from(row * side + col)
}

/// Grid coordinate of a node id on a `side × side` grid.
pub fn grid_coords(side: usize, node: NodeId) -> (usize, usize) {
    (node.index() / side, node.index() % side)
}

/// All edges of the wraparound (torus) `side × side` grid, each listed once.
pub fn torus_edges(side: usize) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    if side == 0 {
        return edges;
    }
    for r in 0..side {
        for c in 0..side {
            let here = grid_node(side, r, c);
            let right = grid_node(side, r, (c + 1) % side);
            let down = grid_node(side, (r + 1) % side, c);
            if here != right {
                edges.push(order(here, right));
            }
            if here != down {
                edges.push(order(here, down));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn order(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Full wraparound grid (torus) of `side × side` nodes.
pub fn torus_grid(side: usize) -> Graph {
    let mut g = Graph::with_nodes(side * side);
    for (a, b) in torus_edges(side) {
        g.add_edge(a, b);
    }
    g
}

/// Non-wrapping planar grid of `side × side` nodes.
pub fn planar_grid(side: usize) -> Graph {
    let mut g = Graph::with_nodes(side * side);
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                g.add_edge(grid_node(side, r, c), grid_node(side, r, c + 1));
            }
            if r + 1 < side {
                g.add_edge(grid_node(side, r, c), grid_node(side, r + 1, c));
            }
        }
    }
    g
}

/// The paper's grid construction (§5): starting from the empty graph on the
/// `side × side` torus, add torus edges uniformly at random (without
/// replacement) until the graph is connected.
pub fn random_connected_grid(side: usize, seed: u64) -> Graph {
    let mut g = Graph::with_nodes(side * side);
    if side * side <= 1 {
        return g;
    }
    let mut rng = SimRng::new(seed);
    let mut edges = torus_edges(side);
    rng.shuffle(&mut edges);
    let mut uf = UnionFind::new(side * side);
    for (a, b) in edges {
        g.add_edge(a, b);
        uf.union(a, b);
        if uf.component_count() == 1 {
            break;
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`, then patched to connectivity by joining random
/// representatives of distinct components until one component remains.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n <= 1 {
        return g;
    }
    let mut rng = SimRng::new(seed);
    let p = p.clamp(0.0, 1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(p) {
                g.add_edge(NodeId::from(i), NodeId::from(j));
            }
        }
    }
    // Patch to connectivity.
    let mut uf = UnionFind::new(n);
    for (a, b) in g.edges().collect::<Vec<_>>() {
        uf.union(a, b);
    }
    while uf.component_count() > 1 {
        let a = NodeId::from(rng.index(n));
        let b = NodeId::from(rng.index(n));
        if a != b && !uf.connected(a, b) {
            g.add_edge(a, b);
            uf.union(a, b);
        }
    }
    g
}

/// Watts–Strogatz small-world graph over `n` nodes: a ring lattice of
/// degree `k` (each node joined to its `k/2` nearest neighbours on each
/// side), with each lattice edge independently rewired with probability `p`
/// to a uniformly random non-adjacent endpoint, then patched back to
/// connectivity by joining random representatives of distinct components
/// (the same patching used by [`erdos_renyi_connected`], so the result is
/// always usable as a generation graph).
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n <= 1 {
        return g;
    }
    let half = (k.max(2) / 2).min(n.saturating_sub(1) / 2).max(1);
    let p = p.clamp(0.0, 1.0);
    let mut rng = SimRng::new(seed);

    // Ring lattice: i — i+j (mod n) for j = 1..=half.
    for i in 0..n {
        for j in 1..=half {
            let t = (i + j) % n;
            if i != t {
                g.add_edge(NodeId::from(i), NodeId::from(t));
            }
        }
    }

    // Rewire pass in deterministic lattice order.
    for i in 0..n {
        for j in 1..=half {
            let old = (i + j) % n;
            if i == old || !rng.chance(p) {
                continue;
            }
            // Draw a replacement endpoint that is neither `i` nor already a
            // neighbour; bail after a few attempts on dense graphs.
            for _ in 0..8 {
                let t = NodeId::from(rng.index(n));
                let a = NodeId::from(i);
                if t != a && !g.has_edge(a, t) {
                    g.remove_edge(a, NodeId::from(old));
                    g.add_edge(a, t);
                    break;
                }
            }
        }
    }

    // Patch to connectivity (rewiring can strand components).
    let mut uf = UnionFind::new(n);
    for (a, b) in g.edges().collect::<Vec<_>>() {
        uf.union(a, b);
    }
    while uf.component_count() > 1 {
        let a = NodeId::from(rng.index(n));
        let b = NodeId::from(rng.index(n));
        if a != b && !uf.connected(a, b) {
            g.add_edge(a, b);
            uf.union(a, b);
        }
    }
    g
}

/// Barabási–Albert scale-free graph over `n` nodes: start from a complete
/// seed of `m + 1` nodes, then attach each arriving node to `m` distinct
/// existing nodes chosen proportionally to their current degree
/// (implemented with the classic repeated-endpoint urn). Always connected
/// by construction; the degree distribution is heavy-tailed, so a few hub
/// repeaters see most of the traffic — the irregular, internet-like regime
/// the paper targets.
pub fn scale_free(n: usize, m: usize, seed: u64) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n <= 1 {
        return g;
    }
    let m = m.clamp(1, n - 1);
    let mut rng = SimRng::new(seed);
    // Urn of edge endpoints: each node appears once per unit of degree, so
    // sampling a uniform urn slot is degree-proportional sampling.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let core = (m + 1).min(n);
    for i in 0..core {
        for j in (i + 1)..core {
            g.add_edge(NodeId::from(i), NodeId::from(j));
            urn.push(NodeId::from(i));
            urn.push(NodeId::from(j));
        }
    }
    for i in core..n {
        let newcomer = NodeId::from(i);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let target = urn[rng.index(urn.len())];
            if target != newcomer && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for target in chosen {
            g.add_edge(newcomer, target);
            urn.push(newcomer);
            urn.push(target);
        }
    }
    g
}

/// The stylized NYC deployed-fiber template: a fixed 12-node metro graph
/// built from [`crate::fabric::nyc_fiber_links`]. Deterministic (no seed);
/// the heterogeneous link lengths become per-edge profiles when a
/// [`crate::fabric::FabricSpec`] is realized over it.
pub fn deployed_fiber() -> Graph {
    let links = crate::fabric::nyc_fiber_links();
    let mut g = Graph::with_nodes(crate::fabric::nyc_fiber_node_count());
    for &(a, b, _km) in links {
        g.add_edge(NodeId::from(a), NodeId::from(b));
    }
    g
}

/// A random spanning tree over `n` nodes: each node `i ≥ 1` attaches to a
/// uniformly random earlier node (a random recursive tree).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut rng = SimRng::new(seed);
    for i in 1..n {
        let parent = rng.index(i);
        g.add_edge(NodeId::from(parent), NodeId::from(i));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn cycle_shape() {
        let g = cycle(25);
        assert_eq!(g.node_count(), 25);
        assert_eq!(g.edge_count(), 25);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(g.has_edge(NodeId(0), NodeId(24)), "wraparound edge present");
        assert!(is_connected(&g));
    }

    #[test]
    fn tiny_cycles() {
        assert_eq!(cycle(0).edge_count(), 0);
        assert_eq!(cycle(1).edge_count(), 0);
        let two = cycle(2);
        assert_eq!(two.edge_count(), 1);
    }

    #[test]
    fn path_star_complete_shapes() {
        let p = path(6);
        assert_eq!(p.edge_count(), 5);
        assert_eq!(p.degree(NodeId(0)), 1);
        assert_eq!(p.degree(NodeId(3)), 2);

        let s = star(6);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.degree(NodeId(0)), 5);
        assert!(s.nodes().skip(1).all(|v| s.degree(v) == 1));

        let k = complete(6);
        assert_eq!(k.edge_count(), 15);
        assert!(k.nodes().all(|v| k.degree(v) == 5));
    }

    #[test]
    fn torus_grid_shape() {
        // 5x5 wraparound grid: every node has degree 4, 2*N edges.
        let g = torus_grid(5);
        assert_eq!(g.node_count(), 25);
        assert_eq!(g.edge_count(), 50);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
        // Wraparound edges exist.
        assert!(g.has_edge(grid_node(5, 0, 0), grid_node(5, 0, 4)));
        assert!(g.has_edge(grid_node(5, 0, 0), grid_node(5, 4, 0)));
    }

    #[test]
    fn torus_grid_small_sides() {
        // side=2 torus collapses parallel edges; still connected.
        let g = torus_grid(2);
        assert_eq!(g.node_count(), 4);
        assert!(is_connected(&g));
        assert_eq!(torus_grid(1).edge_count(), 0);
        assert_eq!(torus_grid(0).node_count(), 0);
    }

    #[test]
    fn planar_grid_shape() {
        let g = planar_grid(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 24);
        assert!(is_connected(&g));
        assert_eq!(g.degree(grid_node(4, 0, 0)), 2);
        assert_eq!(g.degree(grid_node(4, 1, 1)), 4);
        assert!(!g.has_edge(grid_node(4, 0, 0), grid_node(4, 0, 3)));
    }

    #[test]
    fn grid_coordinate_round_trip() {
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(grid_coords(5, grid_node(5, r, c)), (r, c));
            }
        }
    }

    #[test]
    fn random_connected_grid_is_connected_subgraph_of_torus() {
        for seed in 0..10 {
            let g = random_connected_grid(5, seed);
            assert!(is_connected(&g), "seed {seed}");
            let torus = torus_grid(5);
            for (a, b) in g.edges() {
                assert!(torus.has_edge(a, b), "non-torus edge {a}-{b}");
            }
            // Connectivity needs at least a spanning tree.
            assert!(g.edge_count() >= 24);
            assert!(g.edge_count() <= 50);
        }
    }

    #[test]
    fn random_connected_grid_is_deterministic_per_seed() {
        let a = random_connected_grid(6, 42);
        let b = random_connected_grid(6, 42);
        let c = random_connected_grid(6, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_connected_always_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(30, 0.05, seed);
            assert_eq!(g.node_count(), 30);
            assert!(is_connected(&g), "seed {seed}");
        }
        // Even p = 0 must come out connected via patching.
        let g = erdos_renyi_connected(10, 0.0, 7);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 9);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert_eq!(g.edge_count(), 39);
            assert!(is_connected(&g));
        }
        assert_eq!(random_tree(1, 0).edge_count(), 0);
        assert_eq!(random_tree(0, 0).node_count(), 0);
    }

    #[test]
    fn watts_strogatz_shapes() {
        // p = 0: the pure ring lattice of degree 4.
        let lattice = watts_strogatz(12, 4, 0.0, 1);
        assert_eq!(lattice.node_count(), 12);
        assert_eq!(lattice.edge_count(), 24);
        assert!(lattice.nodes().all(|v| lattice.degree(v) == 4));
        assert!(is_connected(&lattice));

        // Intermediate p: still connected, same node count, edge count close
        // to the lattice (rewiring moves edges; patching may add a few).
        for seed in 0..10 {
            let g = watts_strogatz(20, 4, 0.3, seed);
            assert_eq!(g.node_count(), 20);
            assert!(is_connected(&g), "seed {seed}");
            assert!(g.edge_count() >= 19, "at least spanning, seed {seed}");
            // No self-loops.
            for (a, b) in g.edges() {
                assert_ne!(a, b);
            }
        }

        // p = 1: heavy rewiring still yields a connected graph.
        let scrambled = watts_strogatz(16, 4, 1.0, 3);
        assert!(is_connected(&scrambled));

        // Determinism per seed.
        assert_eq!(watts_strogatz(15, 4, 0.5, 9), watts_strogatz(15, 4, 0.5, 9));
    }

    #[test]
    fn watts_strogatz_tiny_and_degenerate() {
        assert_eq!(watts_strogatz(0, 4, 0.5, 1).node_count(), 0);
        assert_eq!(watts_strogatz(1, 4, 0.5, 1).edge_count(), 0);
        let two = watts_strogatz(2, 4, 0.5, 1);
        assert!(is_connected(&two));
        // k larger than n is clamped.
        let clamped = watts_strogatz(5, 10, 0.0, 1);
        assert!(is_connected(&clamped));
    }

    #[test]
    fn scale_free_shape() {
        // n=50, m=2: seed clique K3 (3 edges) + 47 arrivals × 2 edges.
        let g = scale_free(50, 2, 11);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 3 + 47 * 2);
        assert!(is_connected(&g));
        for (a, b) in g.edges() {
            assert_ne!(a, b);
        }
        // Preferential attachment concentrates degree: some hub clearly
        // exceeds the attachment parameter.
        let max_degree = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(max_degree >= 6, "hub degree {max_degree}");

        // Determinism per seed.
        assert_eq!(scale_free(50, 2, 11), scale_free(50, 2, 11));
        assert_ne!(scale_free(50, 2, 11), scale_free(50, 2, 12));

        // Degenerate sizes.
        assert_eq!(scale_free(0, 2, 1).node_count(), 0);
        assert_eq!(scale_free(1, 2, 1).edge_count(), 0);
        assert!(is_connected(&scale_free(2, 5, 1)));
    }

    #[test]
    fn deployed_fiber_shape() {
        let g = deployed_fiber();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 16);
        assert!(is_connected(&g));
        // Deterministic: the seed is ignored.
        assert_eq!(
            Topology::DeployedFiber.build(1),
            Topology::DeployedFiber.build(99)
        );
        assert!(!Topology::DeployedFiber.is_random());
    }

    #[test]
    fn topology_enum_roundtrip() {
        let topos = [
            Topology::Cycle { nodes: 25 },
            Topology::Path { nodes: 10 },
            Topology::Star { nodes: 10 },
            Topology::Complete { nodes: 8 },
            Topology::TorusGrid { side: 5 },
            Topology::PlanarGrid { side: 5 },
            Topology::RandomConnectedGrid { side: 5 },
            Topology::ErdosRenyiConnected {
                nodes: 20,
                edge_probability: 0.2,
            },
            Topology::RandomTree { nodes: 20 },
            Topology::WattsStrogatz {
                nodes: 20,
                neighbors: 4,
                rewire_probability: 0.25,
            },
            Topology::ScaleFree {
                nodes: 30,
                attach: 2,
            },
            Topology::DeployedFiber,
        ];
        for t in topos {
            let g = t.build(123);
            assert_eq!(g.node_count(), t.node_count(), "{}", t.label());
            assert!(is_connected(&g), "{}", t.label());
            assert!(!t.label().is_empty());
        }
        assert!(Topology::ScaleFree {
            nodes: 30,
            attach: 2
        }
        .is_random());
        assert!(Topology::RandomTree { nodes: 3 }.is_random());
        assert!(Topology::WattsStrogatz {
            nodes: 8,
            neighbors: 4,
            rewire_probability: 0.1
        }
        .is_random());
        assert!(!Topology::Cycle { nodes: 3 }.is_random());
    }
}
