//! Dense edge indexing over a frozen generation graph.
//!
//! Once a run's topology is built it never changes, so every per-edge lookup
//! the hot path performs — generation rates, link-fabric overrides, per-edge
//! state of any kind — can trade its `BTreeMap<NodePair, _>` for a flat `Vec`
//! addressed by a dense **edge id**. [`EdgeIndex`] assigns those ids once:
//! edge `k` is the `k`-th edge of [`Graph::edges`], i.e. ids follow the
//! lexicographic [`NodePair`] order, so iterating `0..edge_count()` visits
//! edges in exactly the order every `BTreeMap<NodePair, _>` walk did. A
//! CSR-style per-node offset table maps a node to its incident `(peer,
//! edge_id)` slice for O(degree) scans and O(log degree) id resolution.

use crate::graph::{Graph, NodeId};
use crate::pairs::NodePair;

/// Immutable dense index over the edges of a frozen graph.
///
/// Edge ids are `0..edge_count()`, assigned in lexicographic `NodePair`
/// order (identical to [`Graph::edges`]). Build once per run; `O(E log E)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeIndex {
    /// `pairs[id]` is the endpoint pair of edge `id`; sorted ascending, so
    /// it doubles as the binary-search table for [`EdgeIndex::edge_id`].
    pairs: Vec<NodePair>,
    /// CSR offsets: node `i`'s incident slice is
    /// `entries[offsets[i] as usize..offsets[i + 1] as usize]`.
    offsets: Vec<u32>,
    /// Concatenated per-node `(peer, edge_id)` rows, peers ascending within
    /// each row.
    entries: Vec<(NodeId, u32)>,
}

impl EdgeIndex {
    /// Index every edge of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let pairs: Vec<NodePair> = graph.edges().map(|(a, b)| NodePair::new(a, b)).collect();
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "edges() is sorted");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(2 * pairs.len());
        offsets.push(0);
        for u in graph.nodes() {
            for &v in graph.neighbors(u) {
                let id = pairs
                    .binary_search(&NodePair::new(u, v))
                    .expect("neighbor edge is indexed");
                entries.push((v, id as u32));
            }
            offsets.push(entries.len() as u32);
        }
        EdgeIndex {
            pairs,
            offsets,
            entries,
        }
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of indexed edges.
    pub fn edge_count(&self) -> usize {
        self.pairs.len()
    }

    /// The endpoint pair of edge `id`.
    ///
    /// # Panics
    /// Panics if `id >= edge_count()`.
    pub fn pair(&self, id: u32) -> NodePair {
        self.pairs[id as usize]
    }

    /// The dense id of the edge joining `pair`'s endpoints, or `None` if the
    /// graph has no such edge. `O(log E)`.
    pub fn edge_id(&self, pair: NodePair) -> Option<u32> {
        self.pairs.binary_search(&pair).ok().map(|id| id as u32)
    }

    /// `(peer, edge_id)` for every edge incident to `node`, peers ascending.
    /// Empty (rather than panicking) for out-of-range ids.
    pub fn incident(&self, node: NodeId) -> &[(NodeId, u32)] {
        if node.index() + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Iterate `(id, pair)` over every edge in id (≡ lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, NodePair)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(id, &pair)| (id as u32, pair))
    }

    /// Build a dense per-edge table: `table[id] = f(pair(id))`.
    pub fn table<T>(&self, mut f: impl FnMut(NodePair) -> T) -> Vec<T> {
        self.pairs.iter().map(|&pair| f(pair)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, scale_free};

    #[test]
    fn ids_follow_lexicographic_edge_order() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(0), NodeId(1));
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.edge_count(), 3);
        assert_eq!(idx.node_count(), 4);
        let order: Vec<NodePair> = idx.iter().map(|(_, p)| p).collect();
        let expect: Vec<NodePair> = g.edges().map(|(a, b)| NodePair::new(a, b)).collect();
        assert_eq!(order, expect, "id order ≡ Graph::edges order");
        for (id, pair) in idx.iter() {
            assert_eq!(idx.pair(id), pair);
            assert_eq!(idx.edge_id(pair), Some(id));
        }
        assert_eq!(idx.edge_id(NodePair::new(NodeId(1), NodeId(2))), None);
    }

    #[test]
    fn incident_rows_cover_both_directions() {
        let g = cycle(5);
        let idx = EdgeIndex::new(&g);
        for u in g.nodes() {
            let row = idx.incident(u);
            assert_eq!(row.len(), g.degree(u));
            // Peers ascending, ids consistent with the pair table.
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
            for &(peer, id) in row {
                assert_eq!(idx.pair(id), NodePair::new(u, peer));
            }
        }
        assert!(idx.incident(NodeId(99)).is_empty());
    }

    #[test]
    fn dense_table_is_addressed_by_id() {
        let g = scale_free(50, 2, 9);
        let idx = EdgeIndex::new(&g);
        let table = idx.table(|pair| pair.lo().0 as u64 + pair.hi().0 as u64);
        assert_eq!(table.len(), idx.edge_count());
        for (id, pair) in idx.iter() {
            assert_eq!(table[id as usize], pair.lo().0 as u64 + pair.hi().0 as u64);
        }
    }
}
