//! Unordered node pairs and symmetric pair-indexed matrices.
//!
//! Bell pairs are *interchangeable* (paper §1): any pair whose qubits reside
//! at nodes `x` and `y` is "a `[x, y]`", regardless of which endpoint is
//! listed first. [`NodePair`] canonicalises the ordering so `[x, y] == [y, x]`
//! by construction, and [`PairMatrix`] stores one value per unordered pair —
//! exactly the shape of the paper's `g(x, y)`, `c(x, y)` and `C_x(y)`.

use crate::graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unordered pair of distinct nodes, stored as `(min, max)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodePair {
    lo: NodeId,
    hi: NodeId,
}

impl NodePair {
    /// Create the canonical pair for `{a, b}`.
    ///
    /// # Panics
    /// Panics if `a == b`: a Bell pair entangled "between" a single node
    /// carries no networking meaning (the paper sets `g(x,x) = c(x,x) = 0`).
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "a NodePair must join two distinct nodes");
        if a < b {
            NodePair { lo: a, hi: b }
        } else {
            NodePair { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    pub fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    pub fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints as `(lo, hi)`.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// True if `node` is one of the endpoints.
    pub fn contains(self, node: NodeId) -> bool {
        self.lo == node || self.hi == node
    }

    /// Given one endpoint, return the other; `None` if `node` is not an
    /// endpoint.
    pub fn other(self, node: NodeId) -> Option<NodeId> {
        if node == self.lo {
            Some(self.hi)
        } else if node == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for NodePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Enumerate every unordered pair of distinct nodes among `n` nodes, in
/// lexicographic order.
pub fn all_pairs(n: usize) -> impl Iterator<Item = NodePair> {
    (0..n).flat_map(move |i| {
        ((i + 1)..n).map(move |j| NodePair::new(NodeId::from(i), NodeId::from(j)))
    })
}

/// A symmetric matrix over unordered node pairs, with the diagonal excluded.
///
/// Storage is a flat upper-triangular vector of length `n(n-1)/2`, so lookups
/// are O(1) and the structure never distinguishes `(x, y)` from `(y, x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> PairMatrix<T> {
    /// Create a matrix for `n` nodes with all entries set to `T::default()`.
    pub fn new(n: usize) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        PairMatrix {
            n,
            data: vec![T::default(); len],
        }
    }
}

impl<T> PairMatrix<T> {
    /// Number of nodes this matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of unordered pairs (entries).
    pub fn pair_count(&self) -> usize {
        self.data.len()
    }

    fn offset(&self, pair: NodePair) -> usize {
        let i = pair.lo().index();
        let j = pair.hi().index();
        assert!(j < self.n, "pair {pair} out of range for {} nodes", self.n);
        // Row-major upper triangle: entries for row i start at
        // i*n - i(i+1)/2, columns i+1..n.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Immutable access to the entry for `pair`.
    pub fn get(&self, pair: NodePair) -> &T {
        &self.data[self.offset(pair)]
    }

    /// Mutable access to the entry for `pair`.
    pub fn get_mut(&mut self, pair: NodePair) -> &mut T {
        let off = self.offset(pair);
        &mut self.data[off]
    }

    /// Set the entry for `pair`.
    pub fn set(&mut self, pair: NodePair, value: T) {
        let off = self.offset(pair);
        self.data[off] = value;
    }

    /// Iterate over `(pair, &value)` in lexicographic pair order.
    pub fn iter(&self) -> impl Iterator<Item = (NodePair, &T)> + '_ {
        all_pairs(self.n).map(move |p| {
            let off = self.offset(p);
            (p, &self.data[off])
        })
    }
}

impl PairMatrix<f64> {
    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Pairs with a strictly positive entry.
    pub fn positive_pairs(&self) -> Vec<NodePair> {
        self.iter()
            .filter(|(_, &v)| v > 0.0)
            .map(|(p, _)| p)
            .collect()
    }
}

impl PairMatrix<u64> {
    /// Sum of all entries.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_canonical() {
        let p = NodePair::new(NodeId(5), NodeId(2));
        let q = NodePair::new(NodeId(2), NodeId(5));
        assert_eq!(p, q);
        assert_eq!(p.lo(), NodeId(2));
        assert_eq!(p.hi(), NodeId(5));
        assert_eq!(p.endpoints(), (NodeId(2), NodeId(5)));
        assert_eq!(format!("{p}"), "[N2, N5]");
    }

    #[test]
    #[should_panic]
    fn degenerate_pair_panics() {
        let _ = NodePair::new(NodeId(3), NodeId(3));
    }

    #[test]
    fn contains_and_other() {
        let p = NodePair::new(NodeId(1), NodeId(4));
        assert!(p.contains(NodeId(1)));
        assert!(p.contains(NodeId(4)));
        assert!(!p.contains(NodeId(2)));
        assert_eq!(p.other(NodeId(1)), Some(NodeId(4)));
        assert_eq!(p.other(NodeId(4)), Some(NodeId(1)));
        assert_eq!(p.other(NodeId(9)), None);
    }

    #[test]
    fn all_pairs_count_and_order() {
        let pairs: Vec<_> = all_pairs(4).collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], NodePair::new(NodeId(0), NodeId(1)));
        assert_eq!(pairs[5], NodePair::new(NodeId(2), NodeId(3)));
        assert_eq!(all_pairs(0).count(), 0);
        assert_eq!(all_pairs(1).count(), 0);
    }

    #[test]
    fn pair_matrix_set_get_symmetric() {
        let mut m: PairMatrix<u64> = PairMatrix::new(5);
        assert_eq!(m.pair_count(), 10);
        m.set(NodePair::new(NodeId(1), NodeId(3)), 7);
        assert_eq!(*m.get(NodePair::new(NodeId(3), NodeId(1))), 7);
        *m.get_mut(NodePair::new(NodeId(1), NodeId(3))) += 1;
        assert_eq!(*m.get(NodePair::new(NodeId(1), NodeId(3))), 8);
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn pair_matrix_every_offset_is_unique() {
        let n = 9;
        let mut m: PairMatrix<u64> = PairMatrix::new(n);
        for (k, p) in all_pairs(n).enumerate() {
            m.set(p, k as u64 + 1);
        }
        // If offsets collided, some value would have been overwritten and the
        // sum would fall short.
        let expected: u64 = (1..=m.pair_count() as u64).sum();
        assert_eq!(m.total(), expected);
    }

    #[test]
    fn pair_matrix_iter_matches_all_pairs() {
        let mut m: PairMatrix<f64> = PairMatrix::new(4);
        m.set(NodePair::new(NodeId(0), NodeId(2)), 2.5);
        let entries: Vec<_> = m.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[1], (NodePair::new(NodeId(0), NodeId(2)), 2.5));
        assert_eq!(
            m.positive_pairs(),
            vec![NodePair::new(NodeId(0), NodeId(2))]
        );
        assert!((m.total() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn pair_matrix_out_of_range_panics() {
        let m: PairMatrix<u64> = PairMatrix::new(3);
        let _ = m.get(NodePair::new(NodeId(0), NodeId(7)));
    }

    #[test]
    fn tiny_matrices() {
        let m0: PairMatrix<u64> = PairMatrix::new(0);
        assert_eq!(m0.pair_count(), 0);
        let m1: PairMatrix<u64> = PairMatrix::new(1);
        assert_eq!(m1.pair_count(), 0);
        let m2: PairMatrix<u64> = PairMatrix::new(2);
        assert_eq!(m2.pair_count(), 1);
    }
}
