//! Property-based tests of the topology substrate: builder invariants,
//! shortest-path metric properties and pair-matrix indexing.

use proptest::prelude::*;
use qnet_topology::builders;
use qnet_topology::connectivity::{connected_components, is_connected};
use qnet_topology::fabric::HardwarePreset;
use qnet_topology::pairs::{all_pairs, NodePair, PairMatrix};
use qnet_topology::shortest_path::{all_pairs_distances, bfs_path, dijkstra};
use qnet_topology::{NodeId, Topology};

proptest! {
    /// Every builder produces a connected graph of the advertised size, with
    /// no self-loops and a consistent edge count.
    #[test]
    fn builders_produce_connected_graphs(nodes in 2usize..40, seed in any::<u64>()) {
        let side = ((nodes as f64).sqrt().ceil() as usize).max(2);
        let topologies = [
            Topology::Cycle { nodes },
            Topology::Path { nodes },
            Topology::Star { nodes },
            Topology::TorusGrid { side },
            Topology::RandomConnectedGrid { side },
            Topology::ErdosRenyiConnected { nodes, edge_probability: 0.1 },
            Topology::RandomTree { nodes },
            Topology::ScaleFree { nodes, attach: 2 },
        ];
        for t in topologies {
            let g = t.build(seed);
            prop_assert_eq!(g.node_count(), t.node_count(), "{}", t.label());
            prop_assert!(is_connected(&g), "{} not connected", t.label());
            let mut counted = 0;
            for (a, b) in g.edges() {
                prop_assert!(a != b);
                prop_assert!(g.has_edge(a, b) && g.has_edge(b, a));
                counted += 1;
            }
            prop_assert_eq!(counted, g.edge_count());
            // Handshake lemma.
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
        }
    }

    /// The random-connected grid is always a subgraph of the torus and stops
    /// adding edges once connected (so it never exceeds the torus edge count).
    #[test]
    fn random_grid_is_torus_subgraph(side in 2usize..8, seed in any::<u64>()) {
        let g = builders::random_connected_grid(side, seed);
        let torus = builders::torus_grid(side);
        for (a, b) in g.edges() {
            prop_assert!(torus.has_edge(a, b));
        }
        prop_assert!(g.edge_count() >= side * side - 1);
        prop_assert!(g.edge_count() <= torus.edge_count());
        prop_assert!(is_connected(&g));
    }

    /// BFS distances form a metric on connected graphs: symmetric, zero on
    /// the diagonal, positive off it, and satisfying the triangle inequality.
    #[test]
    fn bfs_distances_form_a_metric(side in 2usize..6, seed in any::<u64>()) {
        let g = builders::random_connected_grid(side, seed);
        let n = g.node_count();
        let d = all_pairs_distances(&g);
        for i in 0..n {
            prop_assert_eq!(d[i][i], Some(0));
            for j in 0..n {
                prop_assert_eq!(d[i][j], d[j][i]);
                if i != j {
                    prop_assert!(d[i][j].unwrap() >= 1);
                }
                for k in 0..n {
                    let (dij, dik, dkj) = (d[i][j].unwrap(), d[i][k].unwrap(), d[k][j].unwrap());
                    prop_assert!(dij <= dik + dkj, "triangle inequality violated");
                }
            }
        }
    }

    /// A BFS path's hop count equals the BFS distance, its endpoints match
    /// the query, and consecutive nodes are adjacent.
    #[test]
    fn bfs_paths_are_consistent_with_distances(nodes in 3usize..30, seed in any::<u64>(), a in 0usize..30, b in 0usize..30) {
        let g = builders::erdos_renyi_connected(nodes, 0.15, seed);
        let a = NodeId::from(a % nodes);
        let b = NodeId::from(b % nodes);
        let path = bfs_path(&g, a, b).expect("connected graph");
        let dist = qnet_topology::bfs_distances(&g, a)[b.index()].unwrap();
        prop_assert_eq!(path.hops() as u32, dist);
        prop_assert_eq!(path.nodes[0], a);
        prop_assert_eq!(*path.nodes.last().unwrap(), b);
        for w in path.nodes.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    /// Dijkstra with unit weights agrees with BFS on every pair.
    #[test]
    fn dijkstra_matches_bfs_for_unit_weights(nodes in 3usize..20, seed in any::<u64>()) {
        let g = builders::erdos_renyi_connected(nodes, 0.2, seed);
        for a in 0..nodes {
            for b in 0..nodes {
                let a = NodeId::from(a);
                let b = NodeId::from(b);
                let bfs = bfs_path(&g, a, b).unwrap();
                let dij = dijkstra(&g, a, b, |_, _| 1.0).unwrap();
                prop_assert!((bfs.hops() as f64 - dij.cost).abs() < 1e-9);
            }
        }
    }

    /// Removing edges only ever splits components (monotonicity of
    /// connectivity under edge deletion).
    #[test]
    fn edge_removal_never_merges_components(side in 2usize..5, removals in proptest::collection::vec((0usize..100, 0usize..100), 0..10)) {
        let mut g = builders::torus_grid(side);
        let mut previous = connected_components(&g).len();
        for (a, b) in removals {
            let n = g.node_count();
            let a = NodeId::from(a % n);
            let b = NodeId::from(b % n);
            if a != b {
                g.remove_edge(a, b);
            }
            let now = connected_components(&g).len();
            prop_assert!(now >= previous);
            previous = now;
        }
    }

    /// PairMatrix indexing is a bijection: writing distinct values to every
    /// pair and reading them back loses nothing.
    #[test]
    fn pair_matrix_indexing_is_bijective(n in 2usize..30) {
        let mut m: PairMatrix<u64> = PairMatrix::new(n);
        for (k, p) in all_pairs(n).enumerate() {
            m.set(p, k as u64 + 1);
        }
        for (k, p) in all_pairs(n).enumerate() {
            prop_assert_eq!(*m.get(p), k as u64 + 1);
        }
        prop_assert_eq!(m.pair_count(), n * (n - 1) / 2);
    }

    /// Derived link profiles are monotone in length for every preset:
    /// longer links never generate faster or purer pairs, and the derived
    /// quantities stay inside their physical ranges.
    #[test]
    fn link_profiles_are_monotone_in_length(a in 0.0f64..200.0, b in 0.0f64..200.0) {
        let (short_km, long_km) = if a <= b { (a, b) } else { (b, a) };
        for preset in HardwarePreset::ALL {
            let short = preset.profile_for_length(short_km);
            let long = preset.profile_for_length(long_km);
            prop_assert!(short.generation_rate_hz >= long.generation_rate_hz);
            prop_assert!(short.initial_fidelity >= long.initial_fidelity);
            if long_km > short_km {
                prop_assert!(short.generation_rate_hz > long.generation_rate_hz);
                prop_assert!(short.initial_fidelity > long.initial_fidelity);
            }
            prop_assert!(long.generation_rate_hz > 0.0);
            prop_assert!(long.initial_fidelity > 0.5 && long.initial_fidelity < 1.0);
            prop_assert!(long.coherence_time_s > 0.0);
        }
    }

    /// NodePair canonicalisation: construction is order-insensitive and
    /// `other` inverts `contains`.
    #[test]
    fn node_pair_canonical(a in 0u32..1000, b in 0u32..1000) {
        prop_assume!(a != b);
        let p = NodePair::new(NodeId(a), NodeId(b));
        let q = NodePair::new(NodeId(b), NodeId(a));
        prop_assert_eq!(p, q);
        prop_assert!(p.lo() < p.hi());
        prop_assert_eq!(p.other(NodeId(a)), Some(NodeId(b)));
        prop_assert_eq!(p.other(NodeId(b)), Some(NodeId(a)));
    }
}
