//! Property-based tests of the LP solver: optimal solutions are feasible,
//! dominate random feasible points, and respond monotonically to relaxations.

use proptest::prelude::*;
use qnet_lp::{max_min_allocation, LinearProgram, Objective, SolveStatus, VarId};

/// A random "packing" LP: maximise Σ cᵢxᵢ subject to row constraints
/// Σ aᵢⱼxⱼ ≤ bᵢ with non-negative data — always feasible (x = 0) and bounded
/// whenever every variable appears in at least one row with a positive
/// coefficient, which the generator guarantees by adding a final box row.
fn packing_lp(costs: &[f64], rows: &[(Vec<f64>, f64)]) -> (LinearProgram, Vec<VarId>) {
    let mut lp = LinearProgram::new();
    let vars: Vec<VarId> = (0..costs.len())
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (r, (coeffs, rhs)) in rows.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .zip(coeffs.iter())
            .map(|(&v, &a)| (v, a))
            .collect();
        lp.add_le(format!("row{r}"), terms, *rhs);
    }
    // Box row keeps the problem bounded.
    lp.add_le("box", vars.iter().map(|&v| (v, 1.0)).collect(), 100.0);
    lp.set_objective(Objective::Maximize(
        vars.iter()
            .zip(costs.iter())
            .map(|(&v, &c)| (v, c))
            .collect(),
    ));
    (lp, vars)
}

fn lp_inputs() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<f64>, f64)>)> {
    (2usize..6).prop_flat_map(|nvars| {
        let costs = proptest::collection::vec(0.1f64..5.0, nvars);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..3.0, nvars), 1.0f64..20.0),
            1..5,
        );
        (costs, rows)
    })
}

proptest! {
    /// The solver's optimum is feasible and at least as good as the origin
    /// and as a family of scaled feasible points.
    #[test]
    fn optimum_is_feasible_and_dominates((costs, rows) in lp_inputs()) {
        let (lp, _vars) = packing_lp(&costs, &rows);
        let sol = qnet_lp::simplex::solve(&lp);
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        // The origin is feasible with objective 0 for packing problems.
        prop_assert!(sol.objective >= -1e-9);
        // Shrinking the optimal point stays feasible and never beats it.
        for &shrink in &[0.25, 0.5, 0.75] {
            let scaled: Vec<f64> = sol.values.iter().map(|v| v * shrink).collect();
            prop_assert!(lp.is_feasible(&scaled, 1e-6));
            prop_assert!(lp.objective_value(&scaled) <= sol.objective + 1e-6);
        }
        // Optimal value is consistent with the reported assignment.
        prop_assert!((lp.objective_value(&sol.values) - sol.objective).abs() < 1e-6);
    }

    /// Relaxing every right-hand side can only improve a maximisation
    /// objective (monotonicity / LP duality sanity check).
    #[test]
    fn relaxing_constraints_never_hurts((costs, rows) in lp_inputs(), slack in 0.1f64..10.0) {
        let (tight, _) = packing_lp(&costs, &rows);
        let relaxed_rows: Vec<(Vec<f64>, f64)> =
            rows.iter().map(|(a, b)| (a.clone(), b + slack)).collect();
        let (loose, _) = packing_lp(&costs, &relaxed_rows);
        let t = qnet_lp::simplex::solve(&tight);
        let l = qnet_lp::simplex::solve(&loose);
        prop_assert_eq!(t.status, SolveStatus::Optimal);
        prop_assert_eq!(l.status, SolveStatus::Optimal);
        prop_assert!(l.objective + 1e-6 >= t.objective);
    }

    /// Scaling the objective scales the optimum (homogeneity).
    #[test]
    fn objective_scaling_is_homogeneous((costs, rows) in lp_inputs(), k in 0.5f64..4.0) {
        let (lp, _) = packing_lp(&costs, &rows);
        let scaled_costs: Vec<f64> = costs.iter().map(|c| c * k).collect();
        let (lp_scaled, _) = packing_lp(&scaled_costs, &rows);
        let a = qnet_lp::simplex::solve(&lp);
        let b = qnet_lp::simplex::solve(&lp_scaled);
        prop_assert!((b.objective - k * a.objective).abs() < 1e-4 * (1.0 + a.objective.abs()));
    }

    /// Equality-constrained transportation problems balance supply exactly.
    #[test]
    fn transportation_balances_supply(supply in 1.0f64..20.0, split in 0.1f64..0.9) {
        let mut lp = LinearProgram::new();
        let x1 = lp.add_variable("x1");
        let x2 = lp.add_variable("x2");
        let d1 = supply * split;
        let d2 = supply - d1;
        lp.add_eq("d1", vec![(x1, 1.0)], d1);
        lp.add_eq("d2", vec![(x2, 1.0)], d2);
        lp.set_objective(Objective::Minimize(vec![(x1, 1.0), (x2, 2.0)]));
        let sol = qnet_lp::simplex::solve(&lp);
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!((sol.values[0] + sol.values[1] - supply).abs() < 1e-6);
        prop_assert!((sol.objective - (d1 + 2.0 * d2)).abs() < 1e-6);
    }

    /// Max-min over symmetric sharers of a single bottleneck gives equal
    /// shares summing to the capacity.
    #[test]
    fn max_min_shares_a_link_equally(flows in 2usize..6, capacity in 1.0f64..50.0) {
        let mut lp = LinearProgram::new();
        let vars: Vec<VarId> = (0..flows).map(|i| lp.add_variable(format!("f{i}"))).collect();
        lp.add_le("link", vars.iter().map(|&v| (v, 1.0)).collect(), capacity);
        let result = max_min_allocation(&lp, &vars).unwrap();
        let expected = capacity / flows as f64;
        for &v in &result.target_values {
            prop_assert!((v - expected).abs() < 1e-4, "{v} vs {expected}");
        }
    }

    /// Max-min never allocates anyone less than an equal split of their
    /// tightest shared bottleneck, and the allocation is feasible.
    #[test]
    fn max_min_is_feasible_and_fair(caps in proptest::collection::vec(1.0f64..20.0, 2..5)) {
        // Chain of links: flow i uses links i and i+1 (cyclically), so each
        // link is shared by exactly two flows.
        let n = caps.len();
        let mut lp = LinearProgram::new();
        let vars: Vec<VarId> = (0..n).map(|i| lp.add_variable(format!("f{i}"))).collect();
        for (l, &cap) in caps.iter().enumerate() {
            let a = vars[l];
            let b = vars[(l + 1) % n];
            lp.add_le(format!("link{l}"), vec![(a, 1.0), (b, 1.0)], cap);
        }
        let result = max_min_allocation(&lp, &vars).unwrap();
        prop_assert!(lp.is_feasible(&result.assignment[..n], 1e-4));
        let min_cap = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        for &v in &result.target_values {
            prop_assert!(v + 1e-6 >= min_cap / 2.0 - 1e-6);
        }
    }
}
