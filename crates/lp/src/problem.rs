//! LP modelling API.
//!
//! A [`LinearProgram`] is a set of non-negative variables (optionally with an
//! upper bound), a list of linear constraints, and an objective. The model is
//! kept in "natural" form; conversion to the standard form the simplex
//! tableau needs happens inside [`crate::simplex`].

use serde::{Deserialize, Serialize};

/// Identifier of a variable within one [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl VarId {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    LessEq,
    /// `Σ aᵢxᵢ = b`
    Equal,
    /// `Σ aᵢxᵢ ≥ b`
    GreaterEq,
}

/// One linear constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// The relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional label (used in error messages and debugging output).
    pub label: String,
}

/// Objective sense plus coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximise `Σ cᵢxᵢ`.
    Maximize(Vec<(VarId, f64)>),
    /// Minimise `Σ cᵢxᵢ`.
    Minimize(Vec<(VarId, f64)>),
}

/// A variable's metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name.
    pub name: String,
    /// Optional upper bound (all variables are implicitly ≥ 0).
    pub upper_bound: Option<f64>,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Objective,
}

impl Default for LinearProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearProgram {
    /// An empty program with a zero (maximise-nothing) objective.
    pub fn new() -> Self {
        LinearProgram {
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Objective::Maximize(Vec::new()),
        }
    }

    /// Add a non-negative variable and return its id.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VarId {
        self.variables.push(Variable {
            name: name.into(),
            upper_bound: None,
        });
        VarId(self.variables.len() - 1)
    }

    /// Add a variable bounded to `[0, upper]`.
    pub fn add_bounded_variable(&mut self, name: impl Into<String>, upper: f64) -> VarId {
        assert!(upper >= 0.0, "upper bound must be non-negative");
        self.variables.push(Variable {
            name: name.into(),
            upper_bound: Some(upper),
        });
        VarId(self.variables.len() - 1)
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints (not counting variable bounds).
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The variable metadata for `id`.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// All variables, in id order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Set the objective.
    pub fn set_objective(&mut self, objective: Objective) {
        self.validate_terms(match &objective {
            Objective::Maximize(t) | Objective::Minimize(t) => t,
        });
        self.objective = objective;
    }

    /// Add a constraint (terms with out-of-range variables panic).
    pub fn add_constraint(
        &mut self,
        label: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        self.validate_terms(&terms);
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
            label: label.into(),
        });
    }

    /// Convenience: `lhs ≤ rhs`.
    pub fn add_le(&mut self, label: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(label, terms, Relation::LessEq, rhs);
    }

    /// Convenience: `lhs = rhs`.
    pub fn add_eq(&mut self, label: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(label, terms, Relation::Equal, rhs);
    }

    /// Convenience: `lhs ≥ rhs`.
    pub fn add_ge(&mut self, label: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(label, terms, Relation::GreaterEq, rhs);
    }

    fn validate_terms(&self, terms: &[(VarId, f64)]) {
        for (v, c) in terms {
            assert!(
                v.index() < self.variables.len(),
                "variable {v:?} not in program"
            );
            assert!(c.is_finite(), "non-finite coefficient for {v:?}");
        }
    }

    /// Evaluate the objective for a candidate assignment (used by tests and
    /// by the max-min driver).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        let terms = match &self.objective {
            Objective::Maximize(t) | Objective::Minimize(t) => t,
        };
        terms.iter().map(|(v, c)| c * values[v.index()]).sum()
    }

    /// Check whether an assignment satisfies every constraint and bound to
    /// within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (i, var) in self.variables.iter().enumerate() {
            if values[i] < -tol {
                return false;
            }
            if let Some(ub) = var.upper_bound {
                if values[i] > ub + tol {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, a)| a * values[v.index()]).sum();
            let ok = match c.relation {
                Relation::LessEq => lhs <= c.rhs + tol,
                Relation::Equal => (lhs - c.rhs).abs() <= tol,
                Relation::GreaterEq => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_program() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_bounded_variable("y", 5.0);
        lp.add_le("cap", vec![(x, 1.0), (y, 2.0)], 10.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0), (y, 1.0)]));
        assert_eq!(lp.variable_count(), 2);
        assert_eq!(lp.constraint_count(), 1);
        assert_eq!(lp.variable(x).name, "x");
        assert_eq!(lp.variable(y).upper_bound, Some(5.0));
        assert_eq!(lp.objective_value(&[2.0, 3.0]), 5.0);
    }

    #[test]
    fn feasibility_checks() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_bounded_variable("y", 4.0);
        lp.add_le("sum", vec![(x, 1.0), (y, 1.0)], 6.0);
        lp.add_ge("min-x", vec![(x, 1.0)], 1.0);
        lp.add_eq("tie", vec![(x, 1.0), (y, -1.0)], 0.0);
        assert!(lp.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 0.5], 1e-9), "violates min-x");
        assert!(!lp.is_feasible(&[5.0, 5.0], 1e-9), "violates bound and cap");
        assert!(!lp.is_feasible(&[2.0, 3.0], 1e-9), "violates equality");
        assert!(!lp.is_feasible(&[-1.0, -1.0], 1e-9), "negative");
        assert!(!lp.is_feasible(&[1.0], 1e-9), "wrong arity");
    }

    #[test]
    #[should_panic]
    fn unknown_variable_in_constraint_panics() {
        let mut lp = LinearProgram::new();
        let _x = lp.add_variable("x");
        lp.add_le("bad", vec![(VarId(7), 1.0)], 1.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_coefficient_panics() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        lp.add_le("bad", vec![(x, f64::NAN)], 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_upper_bound_panics() {
        let mut lp = LinearProgram::new();
        let _ = lp.add_bounded_variable("x", -1.0);
    }
}
