//! # qnet-lp — a small linear-programming solver
//!
//! The paper (§3) formulates path-oblivious swapping as a linear program over
//! the swap rates `σ_i(x, y)`, with objectives ranging from "minimise total
//! generation" to "maximise the minimum consumption" (§3.3). None of the
//! crates on this workspace's allowed dependency list solve LPs, so this
//! crate implements the classic dense **two-phase primal simplex** method
//! with Bland's anti-cycling rule, plus:
//!
//! * a small modelling API ([`problem::LinearProgram`]) with named variables,
//!   optional upper bounds, and ≤ / = / ≥ constraints,
//! * auxiliary-variable helpers for *minimise-the-maximum* and
//!   *maximise-the-minimum* objectives, and
//! * a progressive-filling routine ([`maxmin::max_min_allocation`]) that
//!   computes the lexicographic max-min fair allocation the paper's §4
//!   balancing protocol aims for.
//!
//! The solver is dense and unoptimised by design (clarity over speed); the
//! LPs in this workspace's experiments have at most a few thousand variables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maxmin;
pub mod problem;
pub mod simplex;
pub mod solution;

pub use maxmin::max_min_allocation;
pub use problem::{Constraint, LinearProgram, Objective, Relation, VarId};
pub use solution::{Solution, SolveStatus};
