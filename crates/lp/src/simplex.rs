//! Dense two-phase primal simplex.
//!
//! The implementation keeps a dense tableau (rows = constraints, columns =
//! structural + slack + surplus + artificial variables, plus the right-hand
//! side) and pivots in place. Entering variables are chosen by the Dantzig
//! rule (most negative reduced cost) for speed, with an automatic switch to
//! Bland's rule after a run of non-improving (degenerate) pivots so that the
//! solver cannot cycle.
//!
//! The solver is exact enough for the experiment-scale problems in this
//! workspace; it is not intended to compete with industrial LP codes.

use crate::problem::{LinearProgram, Objective, Relation};
use crate::solution::{Solution, SolveStatus};

const EPS: f64 = 1e-9;
/// Consecutive non-improving pivots before switching to Bland's rule.
const DEGENERATE_SWITCH: usize = 32;

/// Solve a linear program.
pub fn solve(lp: &LinearProgram) -> Solution {
    Tableau::build(lp).solve(lp)
}

struct Row {
    coeffs: Vec<f64>,
    rhs: f64,
    relation: Relation,
}

struct Tableau {
    /// Dense matrix, one row per constraint; `cols` columns followed by rhs.
    rows: Vec<Vec<f64>>,
    /// Total number of variable columns (structural + slack + artificial).
    cols: usize,
    /// Number of structural (user) variables.
    structural: usize,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    /// Column indices that are artificial variables.
    artificial_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.variable_count();

        // Gather rows: user constraints plus upper-bound rows.
        let mut raw_rows: Vec<Row> = Vec::new();
        for c in lp.constraints() {
            let mut coeffs = vec![0.0; n];
            for (v, a) in &c.terms {
                coeffs[v.index()] += a;
            }
            raw_rows.push(Row {
                coeffs,
                rhs: c.rhs,
                relation: c.relation,
            });
        }
        for (i, var) in lp.variables().iter().enumerate() {
            if let Some(ub) = var.upper_bound {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                raw_rows.push(Row {
                    coeffs,
                    rhs: ub,
                    relation: Relation::LessEq,
                });
            }
        }

        // Normalise to non-negative rhs.
        for row in &mut raw_rows {
            if row.rhs < 0.0 {
                row.rhs = -row.rhs;
                for a in &mut row.coeffs {
                    *a = -*a;
                }
                row.relation = match row.relation {
                    Relation::LessEq => Relation::GreaterEq,
                    Relation::Equal => Relation::Equal,
                    Relation::GreaterEq => Relation::LessEq,
                };
            }
        }

        // Count auxiliary columns.
        let m = raw_rows.len();
        let mut slack_count = 0usize;
        let mut artificial_count = 0usize;
        for row in &raw_rows {
            match row.relation {
                Relation::LessEq => slack_count += 1,
                Relation::GreaterEq => {
                    slack_count += 1; // surplus
                    artificial_count += 1;
                }
                Relation::Equal => artificial_count += 1,
            }
        }
        let artificial_start = n + slack_count;
        let cols = artificial_start + artificial_count;

        let mut rows = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_artificial = artificial_start;
        for (i, raw) in raw_rows.iter().enumerate() {
            let mut row = vec![0.0; cols + 1];
            row[..n].copy_from_slice(&raw.coeffs);
            row[cols] = raw.rhs;
            match raw.relation {
                Relation::LessEq => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::GreaterEq => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
                Relation::Equal => {
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
            }
            rows.push(row);
        }

        Tableau {
            rows,
            cols,
            structural: n,
            basis,
            artificial_start,
        }
    }

    /// Reduced-cost row for minimising `cost` (length `cols`): `r = c − c_B·T`.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut r = cost.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb == 0.0 {
                continue;
            }
            for (rj, &aij) in r.iter_mut().zip(self.rows[i].iter()) {
                *rj -= cb * aij;
            }
        }
        r
    }

    fn current_objective(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .map(|(i, &b)| cost[b] * self.rows[i][self.cols])
            .sum()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.rows[row][col];
        debug_assert!(pivot_value.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / pivot_value;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() <= EPS {
                // Still clear tiny residue for numerical hygiene.
                if factor != 0.0 {
                    for (v, &p) in r.iter_mut().zip(pivot_row.iter()) {
                        *v -= factor * p;
                    }
                }
                continue;
            }
            for (v, &p) in r.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Minimise `Σ cost_j x_j`, with `banned` columns excluded from entering
    /// the basis. Returns the status.
    fn run_phase(&mut self, cost: &[f64], banned_from: usize) -> SolveStatus {
        let m = self.rows.len();
        let max_iters = 200 * (m + self.cols) + 1_000;
        let mut degenerate_run = 0usize;
        let mut last_obj = self.current_objective(cost);

        for _ in 0..max_iters {
            let reduced = self.reduced_costs(cost);
            let use_bland = degenerate_run >= DEGENERATE_SWITCH;

            // Entering column.
            let mut entering: Option<usize> = None;
            if use_bland {
                for (j, &rj) in reduced.iter().enumerate().take(banned_from) {
                    if rj < -EPS {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for (j, &rj) in reduced.iter().enumerate().take(banned_from) {
                    if rj < best {
                        best = rj;
                        entering = Some(j);
                    }
                }
            }
            let Some(col) = entering else {
                return SolveStatus::Optimal;
            };

            // Leaving row by minimum ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.rows[i][col];
                if a > EPS {
                    let ratio = self.rows[i][self.cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leaving.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if leaving.is_none() || better {
                        if ratio < best_ratio {
                            best_ratio = ratio;
                        }
                        leaving = Some(i);
                    }
                }
            }
            let Some(row) = leaving else {
                return SolveStatus::Unbounded;
            };

            self.pivot(row, col);

            let obj = self.current_objective(cost);
            if obj < last_obj - EPS {
                degenerate_run = 0;
            } else {
                degenerate_run += 1;
            }
            last_obj = obj;
        }
        SolveStatus::IterationLimit
    }

    /// Try to pivot artificial variables out of the basis after phase 1; rows
    /// where that is impossible are redundant and are dropped.
    fn purge_artificials(&mut self) {
        let mut i = 0;
        while i < self.rows.len() {
            if self.basis[i] >= self.artificial_start {
                // Find any non-artificial column with a usable pivot element.
                let col = (0..self.artificial_start).find(|&j| self.rows[i][j].abs() > 1e-7);
                match col {
                    Some(j) => {
                        self.pivot(i, j);
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it.
                        self.rows.remove(i);
                        self.basis.remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    fn solve(mut self, lp: &LinearProgram) -> Solution {
        let n = self.structural;
        let infeasible = |status| Solution {
            status,
            objective: 0.0,
            values: vec![0.0; n],
        };

        // Phase 1: minimise the sum of artificial variables.
        if self.artificial_start < self.cols {
            let mut cost = vec![0.0; self.cols];
            for c in cost.iter_mut().skip(self.artificial_start) {
                *c = 1.0;
            }
            match self.run_phase(&cost, self.cols) {
                SolveStatus::Optimal => {}
                SolveStatus::Unbounded => return infeasible(SolveStatus::Infeasible),
                s => return infeasible(s),
            }
            if self.current_objective(&cost) > 1e-6 {
                return infeasible(SolveStatus::Infeasible);
            }
            self.purge_artificials();
        }

        // Phase 2: the user's objective, as a minimisation, with artificial
        // columns banned from entering.
        let mut cost = vec![0.0; self.cols];
        let (terms, maximize) = match lp.objective() {
            Objective::Maximize(t) => (t, true),
            Objective::Minimize(t) => (t, false),
        };
        for (v, c) in terms {
            cost[v.index()] += if maximize { -c } else { *c };
        }
        let status = self.run_phase(&cost, self.artificial_start);
        if status != SolveStatus::Optimal {
            return infeasible(status);
        }

        // Extract structural variable values.
        let mut values = vec![0.0; n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < n {
                values[b] = self.rows[i][self.cols].max(0.0);
            }
        }
        let objective = lp.objective_value(&values);
        Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, Objective};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → x=2, y=6, obj=36.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_le("c1", vec![(x, 1.0)], 4.0);
        lp.add_le("c2", vec![(y, 2.0)], 12.0);
        lp.add_le("c3", vec![(x, 3.0), (y, 2.0)], 18.0);
        lp.set_objective(Objective::Maximize(vec![(x, 3.0), (y, 5.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimisation_with_ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7, y=3, obj=23.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_ge("sum", vec![(x, 1.0), (y, 1.0)], 10.0);
        lp.add_ge("xmin", vec![(x, 1.0)], 2.0);
        lp.add_ge("ymin", vec![(y, 1.0)], 3.0);
        lp.set_objective(Objective::Minimize(vec![(x, 2.0), (y, 3.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 5, x - y ≤ 1 → x=3, y=2? obj = 7;
        // actually pushing y up: y ≤ 5, x = 5 - y, x - y = 5 - 2y ≤ 1 → y ≥ 2.
        // obj = x + 2y = 5 + y, maximised at y = 5, x = 0 → obj 10, check
        // x - y = -5 ≤ 1 ok.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_eq("sum", vec![(x, 1.0), (y, 1.0)], 5.0);
        lp.add_le("diff", vec![(x, 1.0), (y, -1.0)], 1.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0), (y, 2.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 10.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 5.0);
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_bounded_variable("x", 3.0);
        let y = lp.add_bounded_variable("y", 2.0);
        lp.add_le("cap", vec![(x, 1.0), (y, 1.0)], 10.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0), (y, 1.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 5.0);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasible_program_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        lp.add_le("hi", vec![(x, 1.0)], 1.0);
        lp.add_ge("lo", vec![(x, 1.0)], 2.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0)]));
        let sol = solve(&lp);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_program_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_ge("floor", vec![(x, 1.0), (y, 1.0)], 1.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0), (y, 1.0)]));
        let sol = solve(&lp);
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x - y ≥ -3  ⇔  y - x ≤ 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_ge("neg", vec![(x, 1.0), (y, -1.0)], -3.0);
        lp.add_le("capx", vec![(x, 1.0)], 1.0);
        lp.set_objective(Objective::Maximize(vec![(y, 1.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate corner: several constraints meet at the same
        // vertex. The solver must not cycle.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        let z = lp.add_variable("z");
        lp.add_le("a", vec![(x, 1.0), (y, 1.0), (z, 1.0)], 1.0);
        lp.add_le("b", vec![(x, 1.0)], 1.0);
        lp.add_le("c", vec![(y, 1.0)], 1.0);
        lp.add_le("d", vec![(x, 1.0), (y, 1.0)], 1.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0), (y, 1.0), (z, 1.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // The same equality twice: phase 1 leaves a redundant artificial row.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_eq("e1", vec![(x, 1.0), (y, 1.0)], 4.0);
        lp.add_eq("e2", vec![(x, 2.0), (y, 2.0)], 8.0);
        lp.set_objective(Objective::Maximize(vec![(x, 1.0)]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        lp.add_ge("lo", vec![(x, 1.0)], 2.0);
        lp.add_le("hi", vec![(x, 1.0)], 5.0);
        // Default objective is "maximise nothing".
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn transportation_style_problem() {
        // Two sources (capacity 20, 30), two sinks (demand 25 each); cost
        // matrix [[1, 3], [2, 1]]. Optimal cost = 20·1 + 5·2 + 25·1 = 55.
        let mut lp = LinearProgram::new();
        let x11 = lp.add_variable("x11");
        let x12 = lp.add_variable("x12");
        let x21 = lp.add_variable("x21");
        let x22 = lp.add_variable("x22");
        lp.add_le("s1", vec![(x11, 1.0), (x12, 1.0)], 20.0);
        lp.add_le("s2", vec![(x21, 1.0), (x22, 1.0)], 30.0);
        lp.add_eq("d1", vec![(x11, 1.0), (x21, 1.0)], 25.0);
        lp.add_eq("d2", vec![(x12, 1.0), (x22, 1.0)], 25.0);
        lp.set_objective(Objective::Minimize(vec![
            (x11, 1.0),
            (x12, 3.0),
            (x21, 2.0),
            (x22, 1.0),
        ]));
        let sol = solve(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective, 55.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }
}
