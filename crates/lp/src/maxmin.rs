//! Max-min fair allocation by progressive filling.
//!
//! The paper's §4 balancing protocol aims for a *max-min fair* allocation of
//! Bell pairs: "no buffer count can be increased without reducing another
//! that was already smaller" (citing Jaffe's bottleneck flow control). The
//! centralised counterpart of that statement is the lexicographic max-min
//! allocation over an LP's feasible region, which this module computes by the
//! classic progressive-filling algorithm:
//!
//! 1. maximise a common floor `t` with every unfixed target `xᵢ ≥ t`;
//! 2. targets that cannot rise above `t` (their bottleneck is tight) are
//!    fixed at `t`;
//! 3. repeat with the remaining targets until all are fixed.

use crate::problem::{LinearProgram, Objective, VarId};
use crate::simplex::solve;
use crate::solution::{Solution, SolveStatus};

/// The result of a max-min computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMinResult {
    /// The fair value assigned to each target, in the same order as the
    /// `targets` argument.
    pub target_values: Vec<f64>,
    /// A full variable assignment achieving those target values.
    pub assignment: Vec<f64>,
    /// Number of progressive-filling rounds performed.
    pub rounds: usize,
}

/// Compute the lexicographic max-min fair values of `targets` over the
/// feasible region of `base` (whose objective is ignored).
///
/// Returns `Err` with the solver status if the base program is infeasible or
/// unbounded in a way that prevents the computation.
pub fn max_min_allocation(
    base: &LinearProgram,
    targets: &[VarId],
) -> Result<MaxMinResult, SolveStatus> {
    assert!(!targets.is_empty(), "max-min over an empty target set");

    let mut fixed: Vec<Option<f64>> = vec![None; targets.len()];
    let mut rounds = 0usize;

    while fixed.iter().any(|f| f.is_none()) {
        rounds += 1;

        // Step 1: maximise the common floor over the active targets.
        let (mut lp, t) = floor_program(base, targets, &fixed);
        lp.set_objective(Objective::Maximize(vec![(t, 1.0)]));
        let sol = solve(&lp);
        if !sol.is_optimal() {
            return Err(sol.status);
        }
        let floor = sol.value(t);

        // Step 2: find the active targets that are stuck at the floor.
        let mut newly_fixed = 0usize;
        for (k, target) in targets.iter().enumerate() {
            if fixed[k].is_some() {
                continue;
            }
            let (mut probe, t2) = floor_program(base, targets, &fixed);
            // Keep every active target at least at the computed floor while
            // probing how far this one can rise.
            probe.add_ge("floor-hold", vec![(t2, 1.0)], floor);
            probe.set_objective(Objective::Maximize(vec![(*target, 1.0)]));
            let probe_sol = solve(&probe);
            if !probe_sol.is_optimal() {
                return Err(probe_sol.status);
            }
            if probe_sol.value(*target) <= floor + 1e-6 {
                fixed[k] = Some(floor);
                newly_fixed += 1;
            }
        }

        // Safety: progressive filling always fixes at least one target per
        // round in exact arithmetic; guard against numerical stalemates.
        if newly_fixed == 0 {
            for f in fixed.iter_mut() {
                if f.is_none() {
                    *f = Some(floor);
                }
            }
        }
    }

    // Final pass: find a full assignment consistent with the fixed values.
    let target_values: Vec<f64> = fixed.iter().map(|f| f.unwrap()).collect();
    let mut final_lp = base.clone();
    for (k, target) in targets.iter().enumerate() {
        final_lp.add_ge("maxmin-fix", vec![(*target, 1.0)], target_values[k]);
    }
    final_lp.set_objective(Objective::Minimize(Vec::new()));
    let final_sol: Solution = solve(&final_lp);
    if !final_sol.is_optimal() {
        return Err(final_sol.status);
    }

    Ok(MaxMinResult {
        target_values,
        assignment: final_sol.values,
        rounds,
    })
}

/// Build a copy of `base` with an extra floor variable `t`, constraints
/// `xᵢ ≥ t` for every active target, and `xᵢ ≥ fixed_value` for fixed ones
/// (the fixed value is a floor rather than an equality so that flows may
/// exceed it if that helps others — max-min fixes the *guarantee*, not the
/// exact amount).
fn floor_program(
    base: &LinearProgram,
    targets: &[VarId],
    fixed: &[Option<f64>],
) -> (LinearProgram, VarId) {
    let mut lp = base.clone();
    let t = lp.add_variable("maxmin-floor");
    for (k, target) in targets.iter().enumerate() {
        match fixed[k] {
            Some(v) => lp.add_ge("fixed-floor", vec![(*target, 1.0)], v),
            None => lp.add_ge("active-floor", vec![(*target, 1.0), (t, -1.0)], 0.0),
        }
    }
    (lp, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn single_bottleneck_shared_equally() {
        // Two flows share a capacity-10 link: both get 5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_le("link", vec![(x, 1.0), (y, 1.0)], 10.0);
        let r = max_min_allocation(&lp, &[x, y]).unwrap();
        assert_close(r.target_values[0], 5.0);
        assert_close(r.target_values[1], 5.0);
    }

    #[test]
    fn classic_three_flow_example() {
        // Flows A and B share link 1 (cap 10); flows B and C share link 2
        // (cap 4). Max-min: B is bottlenecked at 2 on link 2 (shared with C),
        // C gets 2, and A takes the rest of link 1: 8.
        let mut lp = LinearProgram::new();
        let a = lp.add_variable("a");
        let b = lp.add_variable("b");
        let c = lp.add_variable("c");
        lp.add_le("link1", vec![(a, 1.0), (b, 1.0)], 10.0);
        lp.add_le("link2", vec![(b, 1.0), (c, 1.0)], 4.0);
        let r = max_min_allocation(&lp, &[a, b, c]).unwrap();
        assert_close(r.target_values[1], 2.0);
        assert_close(r.target_values[2], 2.0);
        assert_close(r.target_values[0], 8.0);
        assert!(r.rounds >= 2);
    }

    #[test]
    fn demand_caps_are_respected() {
        // Two flows share cap 10, but the first only wants 2; the other gets 8.
        let mut lp = LinearProgram::new();
        let x = lp.add_bounded_variable("x", 2.0);
        let y = lp.add_variable("y");
        lp.add_le("link", vec![(x, 1.0), (y, 1.0)], 10.0);
        let r = max_min_allocation(&lp, &[x, y]).unwrap();
        assert_close(r.target_values[0], 2.0);
        assert_close(r.target_values[1], 8.0);
    }

    #[test]
    fn assignment_is_feasible_for_base() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        let z = lp.add_variable("z");
        lp.add_le("l1", vec![(x, 1.0), (y, 1.0)], 6.0);
        lp.add_le("l2", vec![(y, 1.0), (z, 1.0)], 3.0);
        let r = max_min_allocation(&lp, &[x, y, z]).unwrap();
        assert!(lp.is_feasible(&r.assignment[..3], 1e-5));
        // Fair shares: y and z split link 2 (1.5 each), x fills link 1 (4.5).
        assert_close(r.target_values[1], 1.5);
        assert_close(r.target_values[2], 1.5);
        assert_close(r.target_values[0], 4.5);
    }

    #[test]
    fn infeasible_base_is_reported() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable("x");
        lp.add_le("hi", vec![(x, 1.0)], 1.0);
        lp.add_ge("lo", vec![(x, 1.0)], 2.0);
        assert_eq!(
            max_min_allocation(&lp, &[x]).unwrap_err(),
            SolveStatus::Infeasible
        );
    }

    #[test]
    fn unbounded_target_is_reported() {
        let lp_and_x = {
            let mut lp = LinearProgram::new();
            let x = lp.add_variable("x");
            (lp, x)
        };
        let (lp, x) = lp_and_x;
        assert_eq!(
            max_min_allocation(&lp, &[x]).unwrap_err(),
            SolveStatus::Unbounded
        );
    }

    #[test]
    #[should_panic]
    fn empty_targets_panic() {
        let lp = LinearProgram::new();
        let _ = max_min_allocation(&lp, &[]);
    }
}
