//! Solver results.

use crate::problem::VarId;
use serde::{Deserialize, Serialize};

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence (should not happen with
    /// Bland's rule on well-posed problems; reported rather than hidden).
    IterationLimit,
}

/// The outcome of solving a [`crate::LinearProgram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value in the *original* sense (maximisation objectives
    /// report the maximum). Meaningful only when `status == Optimal`.
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// True if an optimal solution was found.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution {
            status: SolveStatus::Optimal,
            objective: 3.5,
            values: vec![1.0, 2.5],
        };
        assert!(s.is_optimal());
        assert_eq!(s.value(VarId(1)), 2.5);
        let bad = Solution {
            status: SolveStatus::Infeasible,
            objective: 0.0,
            values: vec![],
        };
        assert!(!bad.is_optimal());
    }
}
