//! # qnet-quantum — quantum-state substrate
//!
//! The paper's protocol layer treats Bell pairs as opaque, countable
//! resources characterised by a fidelity, a distillation overhead `D`, a loss
//! rate `L` and a QEC overhead `R`. This crate provides the quantum-mechanical
//! machinery *underneath* those abstractions, so that the abstractions used
//! by `qnet-core` are validated against real state evolution rather than
//! assumed:
//!
//! * [`complex`], [`state`], [`gates`], [`density`] — a small, exact
//!   state-vector and density-matrix simulator for the handful of qubits
//!   involved in teleportation and swapping (Figures 1–3 of the paper),
//! * [`bell`] — Bell states and Werner states (the standard noise model for
//!   imperfect Bell pairs),
//! * [`fidelity`] — Jozsa fidelity between states,
//! * [`teleport`] — the teleportation protocol of Fig. 1, including the
//!   2-classical-bit correction step,
//! * [`swap`] — the entanglement-swapping operation of Fig. 2 and the
//!   resulting fidelity when Werner pairs are swapped,
//! * [`distill`] — BBPSSW/DEJMPS purification recurrences and the expected
//!   distillation overhead `D` used throughout §3–§5,
//! * [`decoherence`] — exponential fidelity decay in quantum memories and
//!   cutoff policies,
//! * [`qec`] — a simple quantum-error-correction overhead model (`R` physical
//!   qubits per logical qubit, §3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bell;
pub mod complex;
pub mod decoherence;
pub mod density;
pub mod distill;
pub mod fidelity;
pub mod gates;
pub mod qec;
pub mod state;
pub mod swap;
pub mod teleport;

pub use bell::{werner_state, BellState};
pub use complex::Complex;
pub use density::DensityMatrix;
pub use distill::{DistillationProtocol, DistillationStep};
pub use state::StateVector;
