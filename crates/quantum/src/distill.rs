//! Entanglement distillation (purification).
//!
//! Distillation consumes low-fidelity Bell pairs to produce fewer,
//! higher-fidelity pairs (paper §2, "Fidelity"). The paper's protocol layer
//! abstracts the whole process into a single per-pair overhead `D_{x,y}`:
//! the expected number of *raw* operations needed per usable pair. This
//! module supplies both the underlying physics (the BBPSSW recurrence for
//! Werner pairs) and the mapping from a fidelity target to the overhead
//! factor the rest of the workspace consumes.
//!
//! The BBPSSW recurrence for two Werner pairs of fidelity `F`:
//!
//! * success probability
//!   `p = F² + 2·F·(1−F)/3 + 5·((1−F)/3)²`
//! * output fidelity (on success)
//!   `F' = (F² + ((1−F)/3)²) / p`
//!
//! The recurrence has a fixed point at `F = 1` and only improves fidelity
//! for `F > 1/2`, which is why [`crate::fidelity::FidelityBand::Unusable`]
//! starts at 0.5.

use serde::{Deserialize, Serialize};

/// Which distillation model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistillationProtocol {
    /// The BBPSSW recurrence (probabilistic success, Werner inputs).
    Bbpssw,
    /// An idealised protocol that always succeeds and reaches the BBPSSW
    /// output fidelity; useful for LP ballparking where only the pair
    /// *count* overhead matters.
    Ideal,
}

/// The result of one distillation round on two equal-fidelity pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistillationStep {
    /// Fidelity of the surviving pair, conditioned on success.
    pub output_fidelity: f64,
    /// Probability that the round succeeds (both pairs are lost otherwise).
    pub success_probability: f64,
}

/// One round of the chosen protocol on two Werner pairs of fidelity `f`.
pub fn distill_step(protocol: DistillationProtocol, f: f64) -> DistillationStep {
    let f = f.clamp(0.25, 1.0);
    let q = (1.0 - f) / 3.0;
    let p_success = f * f + 2.0 * f * q + 5.0 * q * q;
    let f_out = (f * f + q * q) / p_success;
    match protocol {
        DistillationProtocol::Bbpssw => DistillationStep {
            output_fidelity: f_out,
            success_probability: p_success,
        },
        DistillationProtocol::Ideal => DistillationStep {
            output_fidelity: f_out,
            success_probability: 1.0,
        },
    }
}

/// Result of pumping the recurrence until a fidelity target is reached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistillationPlan {
    /// Number of recurrence rounds required.
    pub rounds: u32,
    /// Fidelity actually achieved after those rounds.
    pub achieved_fidelity: f64,
    /// Expected number of raw input pairs consumed per produced pair
    /// (accounting for failures); this is the paper's `D`.
    pub expected_raw_pairs: f64,
}

/// Error cases for [`plan_distillation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistillationError {
    /// The input fidelity is at or below the 1/2 distillability threshold.
    NotDistillable,
    /// The target cannot be reached within the round budget.
    TargetUnreachable,
}

/// Compute how many nested recurrence rounds are needed to raise pairs of
/// fidelity `f_in` to at least `f_target`, and the expected raw-pair cost.
///
/// The cost model assumes *entanglement pumping on identical inputs*: a round
/// at level `k` consumes two level-`k` pairs and succeeds with probability
/// `p_k`, so the expected raw cost satisfies `cost_{k+1} = 2·cost_k / p_k`.
pub fn plan_distillation(
    protocol: DistillationProtocol,
    f_in: f64,
    f_target: f64,
    max_rounds: u32,
) -> Result<DistillationPlan, DistillationError> {
    let f_in = f_in.clamp(0.25, 1.0);
    let f_target = f_target.clamp(0.25, 1.0);
    if f_in >= f_target {
        return Ok(DistillationPlan {
            rounds: 0,
            achieved_fidelity: f_in,
            expected_raw_pairs: 1.0,
        });
    }
    if f_in <= 0.5 {
        return Err(DistillationError::NotDistillable);
    }
    let mut f = f_in;
    let mut cost = 1.0f64;
    for round in 1..=max_rounds {
        let step = distill_step(protocol, f);
        // Guard against a recurrence that stops improving (numerically stuck
        // just below the target).
        if step.output_fidelity <= f + 1e-15 {
            return Err(DistillationError::TargetUnreachable);
        }
        cost = 2.0 * cost / step.success_probability;
        f = step.output_fidelity;
        if f >= f_target {
            return Ok(DistillationPlan {
                rounds: round,
                achieved_fidelity: f,
                expected_raw_pairs: cost,
            });
        }
    }
    Err(DistillationError::TargetUnreachable)
}

/// The paper's per-pair distillation overhead `D` for raising `f_in` to
/// `f_target`: the expected number of raw pairs consumed per produced pair,
/// or `None` when the target is unreachable.
pub fn overhead_factor(protocol: DistillationProtocol, f_in: f64, f_target: f64) -> Option<f64> {
    plan_distillation(protocol, f_in, f_target, 64)
        .ok()
        .map(|p| p.expected_raw_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_improves_fidelity_above_half() {
        for &f in &[0.55, 0.7, 0.85, 0.95] {
            let step = distill_step(DistillationProtocol::Bbpssw, f);
            assert!(step.output_fidelity > f, "F={f}");
            assert!(step.success_probability > 0.0 && step.success_probability <= 1.0);
        }
    }

    #[test]
    fn recurrence_fixed_points() {
        let at_one = distill_step(DistillationProtocol::Bbpssw, 1.0);
        assert!((at_one.output_fidelity - 1.0).abs() < 1e-12);
        assert!((at_one.success_probability - 1.0).abs() < 1e-12);
        // F = 1/4 (maximally mixed) is also a fixed point.
        let mixed = distill_step(DistillationProtocol::Bbpssw, 0.25);
        assert!((mixed.output_fidelity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn below_threshold_does_not_improve() {
        let step = distill_step(DistillationProtocol::Bbpssw, 0.45);
        assert!(step.output_fidelity <= 0.45 + 1e-12);
    }

    #[test]
    fn known_value_at_three_quarters() {
        // F = 0.75: q = 1/12; p = 9/16 + 2·(3/4)(1/12) + 5/144
        //         = 0.5625 + 0.125 + 0.034722… = 0.722222…
        // F' = (0.5625 + 0.006944…)/0.722222… = 0.788461…
        let step = distill_step(DistillationProtocol::Bbpssw, 0.75);
        assert!((step.success_probability - 0.7222222222).abs() < 1e-9);
        assert!((step.output_fidelity - 0.7884615385).abs() < 1e-9);
    }

    #[test]
    fn ideal_protocol_same_fidelity_certain_success() {
        let b = distill_step(DistillationProtocol::Bbpssw, 0.8);
        let i = distill_step(DistillationProtocol::Ideal, 0.8);
        assert_eq!(b.output_fidelity, i.output_fidelity);
        assert_eq!(i.success_probability, 1.0);
    }

    #[test]
    fn plan_reaches_target() {
        let plan =
            plan_distillation(DistillationProtocol::Bbpssw, 0.8, 0.95, 32).expect("reachable");
        assert!(plan.rounds >= 1);
        assert!(plan.achieved_fidelity >= 0.95);
        assert!(
            plan.expected_raw_pairs > 2.0,
            "at least one round costs > 2"
        );
        // The ideal protocol costs exactly 2^rounds.
        let ideal =
            plan_distillation(DistillationProtocol::Ideal, 0.8, 0.95, 32).expect("reachable");
        assert!((ideal.expected_raw_pairs - 2f64.powi(ideal.rounds as i32)).abs() < 1e-9);
        assert!(plan.expected_raw_pairs >= ideal.expected_raw_pairs);
    }

    #[test]
    fn plan_trivial_when_already_good_enough() {
        let plan = plan_distillation(DistillationProtocol::Bbpssw, 0.97, 0.9, 32).expect("trivial");
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.expected_raw_pairs, 1.0);
    }

    #[test]
    fn plan_rejects_undistillable_input() {
        assert_eq!(
            plan_distillation(DistillationProtocol::Bbpssw, 0.5, 0.9, 32),
            Err(DistillationError::NotDistillable)
        );
        assert_eq!(
            plan_distillation(DistillationProtocol::Bbpssw, 0.3, 0.9, 32),
            Err(DistillationError::NotDistillable)
        );
    }

    #[test]
    fn plan_rejects_unreachable_target() {
        // BBPSSW cannot reach 1.0 exactly from below in finite rounds.
        assert_eq!(
            plan_distillation(DistillationProtocol::Bbpssw, 0.8, 1.0, 8),
            Err(DistillationError::TargetUnreachable)
        );
    }

    #[test]
    fn overhead_factor_monotone_in_target() {
        let d1 = overhead_factor(DistillationProtocol::Bbpssw, 0.8, 0.85).unwrap();
        let d2 = overhead_factor(DistillationProtocol::Bbpssw, 0.8, 0.95).unwrap();
        let d3 = overhead_factor(DistillationProtocol::Bbpssw, 0.8, 0.99).unwrap();
        assert!(d1 <= d2 && d2 <= d3, "{d1} {d2} {d3}");
        assert!(overhead_factor(DistillationProtocol::Bbpssw, 0.4, 0.9).is_none());
    }
}
