//! A small complex-number type.
//!
//! The workspace's dependency policy allows only a short list of crates, so
//! rather than pulling in `num-complex` we provide the ~dozen operations the
//! state-vector and density-matrix simulators need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct a purely real value.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Construct from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True if both components are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Complex::new(4.0, 1.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::new(0.0, 2.0), 1e-12));
        assert!(Complex::from_polar(1.0, 0.0).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
        let from: Complex = 2.5f64.into();
        assert_eq!(from, Complex::new(2.5, 0.0));
        assert_eq!(Complex::ONE.scale(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, 1.0)), "1.0000+1.0000i");
        assert_eq!(format!("{}", Complex::new(1.0, -1.0)), "1.0000-1.0000i");
    }
}
