//! Decoherence of stored Bell pairs.
//!
//! Bell pairs sitting in quantum memories decohere (paper §2): the Werner
//! parameter decays exponentially with a characteristic memory coherence
//! time, dragging the fidelity towards the maximally mixed value of 1/4.
//! The paper's LP extension (§3.2) models this as a constant loss rate
//! `L_{x,y}`; this module provides both the physical decay curve and the
//! cutoff policy ("reject aged Bell pairs", §6) that a transport layer can
//! use to decide when a stored pair should be discarded.

use serde::{Deserialize, Serialize};

/// An exponential-decay memory model with a single coherence time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoherenceModel {
    /// Memory coherence time in seconds (the 1/e time of the Werner
    /// parameter). `f64::INFINITY` models the paper's idealised long-lived
    /// memories.
    pub coherence_time_s: f64,
}

impl DecoherenceModel {
    /// A model with effectively infinite coherence (no decay).
    pub fn ideal() -> Self {
        DecoherenceModel {
            coherence_time_s: f64::INFINITY,
        }
    }

    /// A model with the given coherence time in seconds.
    pub fn with_coherence_time(seconds: f64) -> Self {
        assert!(seconds > 0.0, "coherence time must be positive");
        DecoherenceModel {
            coherence_time_s: seconds,
        }
    }

    /// Fidelity of a pair that started at `f0` after being stored for
    /// `age_s` seconds: the Werner parameter decays as `W(t) = W₀·e^{-t/T}`,
    /// i.e. `F(t) = 1/4 + (F₀ − 1/4)·e^{-t/T}`.
    pub fn fidelity_after(&self, f0: f64, age_s: f64) -> f64 {
        let f0 = f0.clamp(0.25, 1.0);
        if self.coherence_time_s.is_infinite() || age_s <= 0.0 {
            return f0;
        }
        0.25 + (f0 - 0.25) * (-age_s / self.coherence_time_s).exp()
    }

    /// The age at which a pair starting at `f0` drops below `f_min`, or
    /// `None` if it never does (ideal memory, or `f0 ≤ f_min` already at age
    /// 0 returns `Some(0)`).
    pub fn age_at_fidelity(&self, f0: f64, f_min: f64) -> Option<f64> {
        let f0 = f0.clamp(0.25, 1.0);
        let f_min = f_min.clamp(0.25, 1.0);
        if f0 <= f_min {
            return Some(0.0);
        }
        if self.coherence_time_s.is_infinite() || f_min <= 0.25 {
            return None;
        }
        // Solve 1/4 + (f0 - 1/4) e^{-t/T} = f_min.
        let ratio = (f_min - 0.25) / (f0 - 0.25);
        Some(-self.coherence_time_s * ratio.ln())
    }

    /// Survival probability over `age_s` when decoherence is modelled as an
    /// exponential *loss* process (the LP's `L` factor interpretation): the
    /// probability that the pair is still usable.
    pub fn survival_probability(&self, age_s: f64) -> f64 {
        if self.coherence_time_s.is_infinite() || age_s <= 0.0 {
            return 1.0;
        }
        (-age_s / self.coherence_time_s).exp()
    }
}

/// A transport-layer cutoff policy: discard pairs older than `max_age_s`
/// (paper §6 suggests "rejection of aged Bell pairs" as transport-layer
/// functionality).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutoffPolicy {
    /// Maximum allowed storage age in seconds (`f64::INFINITY` disables the
    /// cutoff).
    pub max_age_s: f64,
}

impl CutoffPolicy {
    /// No cutoff: pairs are kept forever.
    pub fn none() -> Self {
        CutoffPolicy {
            max_age_s: f64::INFINITY,
        }
    }

    /// Cutoff tuned so that pairs are discarded once their fidelity (starting
    /// from `f0`) would fall below `f_min` under `model`.
    pub fn from_fidelity_floor(model: &DecoherenceModel, f0: f64, f_min: f64) -> Self {
        match model.age_at_fidelity(f0, f_min) {
            Some(age) => CutoffPolicy { max_age_s: age },
            None => CutoffPolicy::none(),
        }
    }

    /// Should a pair of the given age be discarded?
    pub fn should_discard(&self, age_s: f64) -> bool {
        age_s > self.max_age_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_memory_never_decays() {
        let m = DecoherenceModel::ideal();
        assert_eq!(m.fidelity_after(0.9, 1e9), 0.9);
        assert_eq!(m.survival_probability(1e9), 1.0);
        assert_eq!(m.age_at_fidelity(0.9, 0.6), None);
    }

    #[test]
    fn fidelity_decays_towards_quarter() {
        let m = DecoherenceModel::with_coherence_time(1.0);
        let f0 = 1.0;
        assert!((m.fidelity_after(f0, 0.0) - 1.0).abs() < 1e-12);
        let f1 = m.fidelity_after(f0, 1.0);
        let f2 = m.fidelity_after(f0, 2.0);
        assert!(f1 > f2 && f2 > 0.25);
        // After one coherence time, F = 1/4 + 3/4·e^{-1}.
        assert!((f1 - (0.25 + 0.75 * (-1.0f64).exp())).abs() < 1e-12);
        // In the long-time limit the state is maximally mixed.
        assert!((m.fidelity_after(f0, 100.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn age_at_fidelity_inverts_decay() {
        let m = DecoherenceModel::with_coherence_time(2.0);
        let age = m.age_at_fidelity(0.95, 0.7).unwrap();
        assert!(age > 0.0);
        let f = m.fidelity_after(0.95, age);
        assert!((f - 0.7).abs() < 1e-9);
        // Already below the floor.
        assert_eq!(m.age_at_fidelity(0.6, 0.7), Some(0.0));
    }

    #[test]
    fn survival_probability_decays() {
        let m = DecoherenceModel::with_coherence_time(10.0);
        assert!((m.survival_probability(0.0) - 1.0).abs() < 1e-12);
        assert!((m.survival_probability(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.survival_probability(5.0) > m.survival_probability(20.0));
    }

    #[test]
    fn cutoff_policy() {
        let m = DecoherenceModel::with_coherence_time(1.0);
        let p = CutoffPolicy::from_fidelity_floor(&m, 0.95, 0.8);
        assert!(p.max_age_s > 0.0 && p.max_age_s.is_finite());
        assert!(!p.should_discard(p.max_age_s * 0.5));
        assert!(p.should_discard(p.max_age_s * 1.5));
        let none = CutoffPolicy::none();
        assert!(!none.should_discard(1e12));
        let ideal = CutoffPolicy::from_fidelity_floor(&DecoherenceModel::ideal(), 0.95, 0.8);
        assert!(!ideal.should_discard(1e12));
    }

    #[test]
    #[should_panic]
    fn non_positive_coherence_time_panics() {
        let _ = DecoherenceModel::with_coherence_time(0.0);
    }
}
