//! Quantum teleportation (Figure 1 of the paper).
//!
//! The origin holds a message qubit `|ψ⟩ = α|0⟩ + β|1⟩` and one half of a
//! Bell pair whose other half sits at the destination. The origin applies a
//! CNOT (message → its Bell half) and a Hadamard on the message, measures
//! both qubits, and transmits the two classical bits. The destination applies
//! `X^{b₂} Z^{b₁}` and recovers `|ψ⟩` exactly — *if* the shared pair really
//! was `|Φ⁺⟩`. With a noisy (Werner) pair the recovered state's fidelity
//! degrades; [`teleport_over_werner`] measures by how much.

use crate::bell::{werner_state, BellState};
use crate::complex::Complex;
use crate::gates::Gate;
use crate::state::StateVector;
use rand::Rng;

/// The outcome of a single teleportation run.
#[derive(Debug, Clone)]
pub struct TeleportOutcome {
    /// The two classical bits sent from origin to destination
    /// (measurement of the message qubit, measurement of the origin's Bell
    /// half).
    pub classical_bits: (u8, u8),
    /// Fidelity of the destination qubit's state with the original message
    /// state after corrections.
    pub fidelity: f64,
}

/// Teleport the single-qubit state `α|0⟩ + β|1⟩` over an ideal `|Φ⁺⟩` pair.
pub fn teleport_ideal(alpha: Complex, beta: Complex, rng: &mut impl Rng) -> TeleportOutcome {
    teleport_over_bell_state(alpha, beta, BellState::PhiPlus, rng)
}

/// Teleport over a specific (pure) Bell state. The destination *always*
/// applies the `|Φ⁺⟩` corrections, so teleporting over a different Bell state
/// models an un-heralded Pauli error on the channel.
pub fn teleport_over_bell_state(
    alpha: Complex,
    beta: Complex,
    channel: BellState,
    rng: &mut impl Rng,
) -> TeleportOutcome {
    let message = StateVector::qubit(alpha, beta);
    // Qubit layout: 0 = message (origin), 1 = origin's Bell half,
    // 2 = destination's Bell half.
    let mut system = message.tensor(&channel.state_vector());

    // Origin local operations (Fig. 1b): CNOT message→half, H on message.
    system.apply_cnot(0, 1);
    system.apply_gate(&Gate::h(), 0);

    // Origin measurement (Fig. 1c).
    let b1 = system.measure(0, rng);
    let b2 = system.measure(1, rng);

    // Destination repair (Fig. 1d): X^{b2} then Z^{b1} on qubit 2.
    if b2 == 1 {
        system.apply_gate(&Gate::x(), 2);
    }
    if b1 == 1 {
        system.apply_gate(&Gate::z(), 2);
    }

    // Compare the destination qubit with the original message state.
    let rho = system.reduced_single_qubit(2);
    let target = StateVector::qubit(alpha, beta);
    let f = (target.amplitude(0).conj()
        * (rho[0][0] * target.amplitude(0) + rho[0][1] * target.amplitude(1))
        + target.amplitude(1).conj()
            * (rho[1][0] * target.amplitude(0) + rho[1][1] * target.amplitude(1)))
    .re;

    TeleportOutcome {
        classical_bits: (b1, b2),
        fidelity: f,
    }
}

/// Teleport over a Werner channel of the given fidelity, by Monte-Carlo
/// unravelling: a Werner state of fidelity `F` is the mixture that is `|Φ⁺⟩`
/// with probability `F` and each other Bell state with probability
/// `(1-F)/3`, so a run samples which Bell state the channel "really" was.
pub fn teleport_over_werner(
    alpha: Complex,
    beta: Complex,
    channel_fidelity: f64,
    rng: &mut impl Rng,
) -> TeleportOutcome {
    let f = channel_fidelity.clamp(0.25, 1.0);
    let u: f64 = rng.gen();
    let channel = if u < f {
        BellState::PhiPlus
    } else {
        let others = [BellState::PhiMinus, BellState::PsiPlus, BellState::PsiMinus];
        let rest = (u - f) / ((1.0 - f) / 3.0);
        others[(rest as usize).min(2)]
    };
    teleport_over_bell_state(alpha, beta, channel, rng)
}

/// The analytical average fidelity of teleporting a uniformly random pure
/// qubit over a Werner channel of fidelity `F`:
/// `F_avg = (2F + 1) / 3` (the standard channel-fidelity ↔ entanglement-
/// fidelity relation for a depolarising-type channel).
pub fn average_teleport_fidelity(channel_fidelity: f64) -> f64 {
    let f = channel_fidelity.clamp(0.25, 1.0);
    (2.0 * f + 1.0) / 3.0
}

/// Verify that the Werner density matrix used for sampling is consistent
/// with the channel fidelity (used in tests and the quantum examples).
pub fn werner_channel_fidelity(channel_fidelity: f64) -> f64 {
    werner_state(channel_fidelity).fidelity_with_pure(&BellState::PhiPlus.state_vector())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(11)
    }

    #[test]
    fn ideal_teleportation_is_perfect() {
        let mut r = rng();
        // A handful of message states, including non-trivial phases.
        let cases = [
            (Complex::ONE, Complex::ZERO),
            (Complex::ZERO, Complex::ONE),
            (Complex::real(0.6), Complex::real(0.8)),
            (Complex::real(0.6), Complex::new(0.0, 0.8)),
            (Complex::new(0.5, 0.5), Complex::new(0.5, -0.5)),
        ];
        for (a, b) in cases {
            for _ in 0..8 {
                let out = teleport_ideal(a, b, &mut r);
                assert!(
                    (out.fidelity - 1.0).abs() < 1e-9,
                    "fidelity {} for ({a}, {b})",
                    out.fidelity
                );
            }
        }
    }

    #[test]
    fn classical_bits_are_uniformly_distributed() {
        let mut r = rng();
        let mut counts = [0u32; 4];
        for _ in 0..2000 {
            let out = teleport_ideal(Complex::real(0.6), Complex::real(0.8), &mut r);
            counts[(out.classical_bits.0 * 2 + out.classical_bits.1) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 2000.0;
            assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
        }
    }

    #[test]
    fn wrong_bell_state_breaks_some_messages() {
        let mut r = rng();
        // Teleporting |0⟩ over Ψ+ without heralding flips the output to |1⟩.
        let out = teleport_over_bell_state(Complex::ONE, Complex::ZERO, BellState::PsiPlus, &mut r);
        assert!(out.fidelity < 0.01);
        // But |+⟩ = (|0⟩+|1⟩)/√2 survives an X error.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let out2 = teleport_over_bell_state(
            Complex::real(s),
            Complex::real(s),
            BellState::PsiPlus,
            &mut r,
        );
        assert!((out2.fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn werner_channel_average_fidelity_matches_formula() {
        let mut r = rng();
        let channel_f = 0.85;
        // Average over Monte-Carlo runs of a fixed "typical" message state.
        // The analytical (2F+1)/3 formula is for Haar-average messages; a
        // fixed equatorial state has the same average under Pauli noise.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| {
                teleport_over_werner(Complex::real(s), Complex::new(0.0, s), channel_f, &mut r)
                    .fidelity
            })
            .sum::<f64>()
            / n as f64;
        let expected = average_teleport_fidelity(channel_f);
        assert!(
            (mean - expected).abs() < 0.03,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn perfect_werner_channel_is_ideal() {
        let mut r = rng();
        for _ in 0..16 {
            let out = teleport_over_werner(Complex::real(0.6), Complex::real(0.8), 1.0, &mut r);
            assert!((out.fidelity - 1.0).abs() < 1e-9);
        }
        assert!((average_teleport_fidelity(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn werner_channel_consistency_helper() {
        assert!((werner_channel_fidelity(0.75) - 0.75).abs() < 1e-12);
    }
}
