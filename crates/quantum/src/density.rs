//! Density matrices for small numbers of qubits.
//!
//! Mixed states are needed wherever noise enters: Werner states (imperfect
//! Bell pairs), depolarised memories, and the outputs of teleportation over
//! noisy channels. Matrices are dense and row-major; with at most four
//! qubits in play (16×16) this is perfectly adequate.

use crate::complex::Complex;
use crate::state::StateVector;

/// A density matrix over `n` qubits (a `2^n × 2^n` Hermitian, unit-trace,
/// positive-semidefinite matrix).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    qubits: usize,
    dim: usize,
    /// Row-major entries.
    entries: Vec<Complex>,
}

impl DensityMatrix {
    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(qubits: usize) -> Self {
        assert!(qubits > 0 && qubits <= 10, "unsupported qubit count");
        let dim = 1usize << qubits;
        let mut dm = DensityMatrix {
            qubits,
            dim,
            entries: vec![Complex::ZERO; dim * dim],
        };
        for i in 0..dim {
            dm.set(i, i, Complex::real(1.0 / dim as f64));
        }
        dm
    }

    /// The pure-state density matrix `|ψ⟩⟨ψ|`.
    pub fn from_pure(state: &StateVector) -> Self {
        let dim = state.amplitudes().len();
        let mut entries = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                entries[i * dim + j] = state.amplitude(i) * state.amplitude(j).conj();
            }
        }
        DensityMatrix {
            qubits: state.qubit_count(),
            dim,
            entries,
        }
    }

    /// A convex mixture `Σ wᵢ ρᵢ`. Weights are normalised to sum to one.
    ///
    /// # Panics
    /// Panics if the list is empty, dimensions differ, or all weights are
    /// zero/negative.
    pub fn mixture(parts: &[(f64, DensityMatrix)]) -> Self {
        assert!(!parts.is_empty(), "mixture of nothing");
        let dim = parts[0].1.dim;
        let qubits = parts[0].1.qubits;
        let total: f64 = parts.iter().map(|(w, _)| w.max(0.0)).sum();
        assert!(total > 0.0, "mixture weights must be positive");
        let mut entries = vec![Complex::ZERO; dim * dim];
        for (w, dm) in parts {
            assert_eq!(dm.dim, dim, "mixture dimension mismatch");
            let w = w.max(0.0) / total;
            for (e, &x) in entries.iter_mut().zip(dm.entries.iter()) {
                *e += x.scale(w);
            }
        }
        DensityMatrix {
            qubits,
            dim,
            entries,
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// Matrix dimension (`2^n`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Complex {
        self.entries[row * self.dim + col]
    }

    /// Set entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        self.entries[row * self.dim + col] = value;
    }

    /// Trace of the matrix.
    pub fn trace(&self) -> Complex {
        (0..self.dim).fold(Complex::ZERO, |acc, i| acc + self.get(i, i))
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for the maximally mixed
    /// state.
    pub fn purity(&self) -> f64 {
        let mut acc = Complex::ZERO;
        for i in 0..self.dim {
            for k in 0..self.dim {
                acc += self.get(i, k) * self.get(k, i);
            }
        }
        acc.re
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure state (this is the Jozsa fidelity when
    /// one argument is pure).
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.amplitudes().len(), self.dim, "dimension mismatch");
        let mut acc = Complex::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += psi.amplitude(i).conj() * self.get(i, j) * psi.amplitude(j);
            }
        }
        acc.re
    }

    /// Apply the depolarising channel with error probability `p` to the whole
    /// register: `ρ → (1-p)ρ + p·I/2^n`.
    pub fn depolarize(&self, p: f64) -> DensityMatrix {
        let p = p.clamp(0.0, 1.0);
        DensityMatrix::mixture(&[
            (1.0 - p, self.clone()),
            (p, DensityMatrix::maximally_mixed(self.qubits)),
        ])
    }

    /// True if the matrix is Hermitian to within `eps`.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        for i in 0..self.dim {
            for j in 0..self.dim {
                if !self.get(i, j).approx_eq(self.get(j, i).conj(), eps) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::Gate;

    fn bell_phi_plus() -> StateVector {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::h(), 0);
        s.apply_cnot(0, 1);
        s
    }

    #[test]
    fn pure_state_density_matrix_properties() {
        let dm = DensityMatrix::from_pure(&bell_phi_plus());
        assert_eq!(dm.dim(), 4);
        assert!((dm.trace().re - 1.0).abs() < 1e-12);
        assert!(dm.trace().im.abs() < 1e-12);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        assert!(dm.is_hermitian(1e-12));
        assert!((dm.fidelity_with_pure(&bell_phi_plus()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_properties() {
        let dm = DensityMatrix::maximally_mixed(2);
        assert!((dm.trace().re - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 0.25).abs() < 1e-12);
        // Fidelity of the maximally mixed 2-qubit state with any pure state
        // is 1/4.
        assert!((dm.fidelity_with_pure(&bell_phi_plus()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixture_weights_normalise() {
        let pure = DensityMatrix::from_pure(&bell_phi_plus());
        let mixed = DensityMatrix::maximally_mixed(2);
        let m = DensityMatrix::mixture(&[(3.0, pure.clone()), (1.0, mixed)]);
        assert!((m.trace().re - 1.0).abs() < 1e-12);
        // Fidelity with Φ+ should be 0.75·1 + 0.25·0.25 = 0.8125.
        assert!((m.fidelity_with_pure(&bell_phi_plus()) - 0.8125).abs() < 1e-12);
        assert!(m.purity() < 1.0);
        assert!(m.is_hermitian(1e-12));
    }

    #[test]
    fn depolarize_limits() {
        let pure = DensityMatrix::from_pure(&bell_phi_plus());
        let unchanged = pure.depolarize(0.0);
        assert!((unchanged.purity() - 1.0).abs() < 1e-12);
        let fully = pure.depolarize(1.0);
        assert!((fully.purity() - 0.25).abs() < 1e-12);
        let half = pure.depolarize(0.5);
        let f = half.fidelity_with_pure(&bell_phi_plus());
        assert!((f - (0.5 + 0.5 * 0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_mixture_panics() {
        let _ = DensityMatrix::mixture(&[]);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = DensityMatrix::maximally_mixed(1);
        let b = DensityMatrix::maximally_mixed(2);
        let _ = DensityMatrix::mixture(&[(1.0, a), (1.0, b)]);
    }
}
