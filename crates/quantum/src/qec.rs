//! Quantum error correction overhead model.
//!
//! The paper's §3.2 observes that QEC can be folded into the LP simply by
//! *thinning* the generation rate: if the code uses `R` physical qubits per
//! logical qubit, the effective logical generation rate is `g(x, y) / R`.
//! This module supplies a small parametric model of `R` and of the logical
//! error rate, so the experiments can sweep realistic overheads rather than
//! guessing a constant.
//!
//! The model is the standard surface-code scaling: a distance-`d` (rotated)
//! surface code uses `d²` data qubits plus `d² − 1` ancillas (≈ `2d²`
//! physical qubits per logical qubit), and suppresses the logical error rate
//! as `p_L ≈ A·(p/p_th)^{⌈d/2⌉}`.

use serde::{Deserialize, Serialize};

/// A QEC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QecCode {
    /// Code distance (odd, ≥ 1; distance 1 means "no encoding").
    pub distance: u32,
    /// Physical error probability per operation.
    pub physical_error_rate: f64,
    /// Threshold error rate of the code family.
    pub threshold: f64,
}

impl QecCode {
    /// The trivial "no QEC" configuration (`R = 1`).
    pub fn unencoded(physical_error_rate: f64) -> Self {
        QecCode {
            distance: 1,
            physical_error_rate,
            threshold: 0.01,
        }
    }

    /// A surface-code-like configuration at the given distance.
    ///
    /// # Panics
    /// Panics if the distance is even or zero.
    pub fn surface(distance: u32, physical_error_rate: f64) -> Self {
        assert!(
            distance >= 1 && distance % 2 == 1,
            "distance must be odd and ≥ 1"
        );
        QecCode {
            distance,
            physical_error_rate,
            threshold: 0.01,
        }
    }

    /// Physical qubits per logical qubit — the paper's `R`.
    pub fn overhead_factor(&self) -> f64 {
        if self.distance <= 1 {
            1.0
        } else {
            2.0 * (self.distance as f64).powi(2)
        }
    }

    /// Approximate logical error rate per logical operation.
    pub fn logical_error_rate(&self) -> f64 {
        if self.distance <= 1 {
            return self.physical_error_rate.clamp(0.0, 1.0);
        }
        let ratio = self.physical_error_rate / self.threshold;
        let exponent = self.distance.div_ceil(2);
        (0.1 * ratio.powi(exponent as i32)).clamp(0.0, 1.0)
    }

    /// The paper's §3.2 rate thinning: the logical generation rate available
    /// when raw pairs are generated at `raw_rate`.
    pub fn thinned_rate(&self, raw_rate: f64) -> f64 {
        raw_rate / self.overhead_factor()
    }

    /// The smallest odd distance whose logical error rate is at or below
    /// `target`, up to `max_distance`; `None` if even `max_distance` cannot
    /// reach it (e.g. operating above threshold).
    pub fn distance_for_target(
        physical_error_rate: f64,
        target: f64,
        max_distance: u32,
    ) -> Option<u32> {
        let mut d = 1;
        while d <= max_distance {
            let code = QecCode::surface(d, physical_error_rate);
            if code.logical_error_rate() <= target {
                return Some(d);
            }
            d += 2;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unencoded_has_unit_overhead() {
        let c = QecCode::unencoded(1e-3);
        assert_eq!(c.overhead_factor(), 1.0);
        assert_eq!(c.logical_error_rate(), 1e-3);
        assert_eq!(c.thinned_rate(10.0), 10.0);
    }

    #[test]
    fn overhead_grows_quadratically() {
        let d3 = QecCode::surface(3, 1e-3);
        let d5 = QecCode::surface(5, 1e-3);
        let d7 = QecCode::surface(7, 1e-3);
        assert_eq!(d3.overhead_factor(), 18.0);
        assert_eq!(d5.overhead_factor(), 50.0);
        assert_eq!(d7.overhead_factor(), 98.0);
        assert!(d7.thinned_rate(98.0) - 1.0 < 1e-12);
    }

    #[test]
    fn below_threshold_logical_error_falls_with_distance() {
        let rates: Vec<f64> = [3u32, 5, 7, 9]
            .iter()
            .map(|&d| QecCode::surface(d, 1e-3).logical_error_rate())
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] < w[0], "{rates:?}");
        }
    }

    #[test]
    fn above_threshold_distance_does_not_help() {
        let d3 = QecCode::surface(3, 0.02).logical_error_rate();
        let d9 = QecCode::surface(9, 0.02).logical_error_rate();
        assert!(d9 >= d3);
        assert_eq!(QecCode::distance_for_target(0.02, 1e-9, 31), None);
    }

    #[test]
    fn distance_for_target_finds_minimal_distance() {
        let d = QecCode::distance_for_target(1e-3, 1e-6, 31).unwrap();
        assert!(d % 2 == 1);
        let code = QecCode::surface(d, 1e-3);
        assert!(code.logical_error_rate() <= 1e-6);
        if d > 1 {
            let smaller = QecCode::surface(d - 2, 1e-3);
            assert!(smaller.logical_error_rate() > 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn even_distance_panics() {
        let _ = QecCode::surface(4, 1e-3);
    }
}
