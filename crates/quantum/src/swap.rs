//! Entanglement swapping (Figure 2 of the paper).
//!
//! Node C holds one half of a Bell pair shared with A and one half of a Bell
//! pair shared with B. C performs a Bell-state measurement (BSM) on its two
//! halves and sends the 2-bit result to B (or A), which applies a Pauli
//! correction. The result: A and B share a Bell pair even though they never
//! interacted — and C's qubits are measured out, exactly as the paper
//! describes ("the repeater extracts itself from the chain").
//!
//! [`swap_ideal`] runs the full state-vector protocol; [`swap_werner_fidelity`]
//! gives the closed-form fidelity of the output pair when the two input pairs
//! are Werner states, which is the form `qnet-core` uses at scale.

use crate::bell::BellState;
use crate::gates::Gate;
use crate::state::StateVector;
use rand::Rng;

/// Outcome of a state-level entanglement swap.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// The 2-bit BSM result announced by the repeater.
    pub classical_bits: (u8, u8),
    /// Fidelity of the resulting A–B pair with `|Φ⁺⟩`.
    pub fidelity: f64,
}

/// Perform an ideal swap: A–C and C–B both hold the given Bell states;
/// returns the resulting A–B pair fidelity (1.0 when both inputs are `|Φ⁺⟩`
/// and corrections are applied).
///
/// Qubit layout: 0 = A, 1 = C (half shared with A), 2 = C (half shared with
/// B), 3 = B.
pub fn swap_with_inputs(left: BellState, right: BellState, rng: &mut impl Rng) -> SwapOutcome {
    // Build |left⟩_{0,1} ⊗ |right⟩_{2,3}.
    let mut system = left.state_vector().tensor(&right.state_vector());

    // Bell-state measurement at C on qubits 1 and 2.
    system.apply_cnot(1, 2);
    system.apply_gate(&Gate::h(), 1);
    let b1 = system.measure(1, rng);
    let b2 = system.measure(2, rng);

    // Correction at B (qubit 3), assuming both inputs were |Φ⁺⟩.
    if b2 == 1 {
        system.apply_gate(&Gate::x(), 3);
    }
    if b1 == 1 {
        system.apply_gate(&Gate::z(), 3);
    }

    // The post-measurement state on qubits {0, 3} should be |Φ⁺⟩; qubits 1, 2
    // are in the definite states (b1, b2). Compare against the corresponding
    // full 4-qubit product state.
    let mut expected = BellState::PhiPlus.state_vector(); // will become qubits {0,3}
                                                          // Build expected 4-qubit state: qubit0 = A-half, qubit1 = b1, qubit2 = b2,
                                                          // qubit3 = B-half. Start from the 2-qubit Φ⁺ on (A,B) and interleave the
                                                          // measured qubits by tensoring in order: (A) ⊗ (b1) ⊗ (b2) ⊗ (B) would
                                                          // reorder the pair, so instead construct amplitudes directly.
    let mut amps = vec![crate::complex::Complex::ZERO; 16];
    for a_bit in 0..2usize {
        for b_bit in 0..2usize {
            let amp = expected.amplitude(a_bit | (b_bit << 1));
            let idx = a_bit | ((b1 as usize) << 1) | ((b2 as usize) << 2) | (b_bit << 3);
            amps[idx] = amp;
        }
    }
    expected = StateVector::from_amplitudes(amps);
    let fidelity = system.fidelity(&expected);

    SwapOutcome {
        classical_bits: (b1, b2),
        fidelity,
    }
}

/// Ideal swap with both input pairs in `|Φ⁺⟩`.
pub fn swap_ideal(rng: &mut impl Rng) -> SwapOutcome {
    swap_with_inputs(BellState::PhiPlus, BellState::PhiPlus, rng)
}

/// Closed-form fidelity of the pair produced by swapping two Werner pairs of
/// fidelities `f1` and `f2` (both with respect to `|Φ⁺⟩`):
///
/// `F_out = f1·f2 + (1 − f1)(1 − f2)/3`.
///
/// Swapping two perfect pairs gives a perfect pair; swapping anything with a
/// maximally mixed pair (F = 1/4) gives a maximally mixed pair.
pub fn swap_werner_fidelity(f1: f64, f2: f64) -> f64 {
    let f1 = f1.clamp(0.25, 1.0);
    let f2 = f2.clamp(0.25, 1.0);
    f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0
}

/// Fidelity after swapping a chain of `n` Werner pairs of equal fidelity `f`
/// (n ≥ 1): repeated application of [`swap_werner_fidelity`].
pub fn chain_swap_fidelity(f: f64, n: usize) -> f64 {
    assert!(n >= 1, "a chain needs at least one pair");
    let mut acc = f.clamp(0.25, 1.0);
    for _ in 1..n {
        acc = swap_werner_fidelity(acc, f);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(23)
    }

    #[test]
    fn ideal_swap_yields_perfect_pair() {
        let mut r = rng();
        for _ in 0..32 {
            let out = swap_ideal(&mut r);
            assert!(
                (out.fidelity - 1.0).abs() < 1e-9,
                "fidelity {} bits {:?}",
                out.fidelity,
                out.classical_bits
            );
        }
    }

    #[test]
    fn swap_bsm_outcomes_are_uniform() {
        let mut r = rng();
        let mut counts = [0u32; 4];
        for _ in 0..2000 {
            let out = swap_ideal(&mut r);
            counts[(out.classical_bits.0 * 2 + out.classical_bits.1) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 2000.0 - 0.25).abs() < 0.05);
        }
    }

    #[test]
    fn swapping_non_phi_plus_inputs_degrades_without_heralding() {
        let mut r = rng();
        // With a Ψ⁺ on one side and the standard corrections, the output is a
        // definite *other* Bell state, so fidelity with Φ⁺ is 0.
        let out = swap_with_inputs(BellState::PsiPlus, BellState::PhiPlus, &mut r);
        assert!(out.fidelity < 1e-9);
        // Two identical "wrong" states: the errors compose; either they cancel
        // (fidelity 1) or they don't (fidelity 0), never anything in between.
        let out2 = swap_with_inputs(BellState::PhiMinus, BellState::PhiMinus, &mut r);
        assert!(out2.fidelity > 1.0 - 1e-9 || out2.fidelity < 1e-9);
    }

    #[test]
    fn werner_swap_formula_limits() {
        assert!((swap_werner_fidelity(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Swapping with a maximally mixed pair gives a maximally mixed pair.
        assert!((swap_werner_fidelity(1.0, 0.25) - 0.25).abs() < 1e-12);
        assert!((swap_werner_fidelity(0.25, 0.25) - 0.25).abs() < 1e-12);
        // Output fidelity can never exceed either input.
        for &(a, b) in &[(0.9, 0.8), (0.95, 0.6), (0.7, 0.7)] {
            let out = swap_werner_fidelity(a, b);
            assert!(out <= a.min(b) + 1e-12);
            assert!(out >= 0.25 - 1e-12);
        }
    }

    #[test]
    fn werner_swap_matches_monte_carlo_unravelling() {
        // The Werner mixture can be unravelled over the four Bell states;
        // swapping Bell states produces a deterministic Bell state, and the
        // probability the output is Φ⁺ (after heralded corrections for Φ⁺
        // inputs) equals the closed-form fidelity. Check by exhaustive
        // enumeration of the 16 input combinations and their Werner weights.
        let f1: f64 = 0.9;
        let f2: f64 = 0.8;
        let w1 = |b: BellState| {
            if b == BellState::PhiPlus {
                f1
            } else {
                (1.0 - f1) / 3.0
            }
        };
        let w2 = |b: BellState| {
            if b == BellState::PhiPlus {
                f2
            } else {
                (1.0 - f2) / 3.0
            }
        };
        let mut rtot = 0.0;
        let mut r = rng();
        for left in BellState::ALL {
            for right in BellState::ALL {
                // Average over BSM randomness by repeating a few times; the
                // fidelity of the output is deterministic (0 or 1) per
                // outcome for pure Bell inputs with ideal corrections, and is
                // the same for every BSM outcome.
                let out = swap_with_inputs(left, right, &mut r);
                rtot += w1(left) * w2(right) * out.fidelity;
            }
        }
        let expected = swap_werner_fidelity(f1, f2);
        assert!(
            (rtot - expected).abs() < 1e-9,
            "mc {rtot} formula {expected}"
        );
    }

    #[test]
    fn chain_swap_fidelity_decreases_monotonically() {
        let f = 0.95;
        let mut prev = 1.0;
        for n in 1..10 {
            let cur = chain_swap_fidelity(f, n);
            assert!(cur <= prev + 1e-12, "n={n}");
            assert!(cur >= 0.25);
            prev = cur;
        }
        assert!((chain_swap_fidelity(f, 1) - f).abs() < 1e-12);
        // Perfect pairs never degrade.
        assert!((chain_swap_fidelity(1.0, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn chain_of_zero_pairs_panics() {
        let _ = chain_swap_fidelity(0.9, 0);
    }
}
