//! Bell states and Werner states.
//!
//! A *Bell pair* in the paper is ideally the maximally entangled state
//! `|Φ⁺⟩ = (|00⟩ + |11⟩)/√2`. Real pairs are noisy; the standard
//! single-parameter noise model is the **Werner state**
//! `ρ_W(F) = F·|Φ⁺⟩⟨Φ⁺| + (1-F)/3 · (|Φ⁻⟩⟨Φ⁻| + |Ψ⁺⟩⟨Ψ⁺| + |Ψ⁻⟩⟨Ψ⁻|)`,
//! whose fidelity with `|Φ⁺⟩` is exactly `F`. Werner states are closed under
//! entanglement swapping and are the canonical input to the BBPSSW
//! distillation recurrence used for the paper's `D` overheads.

use crate::complex::Complex;
use crate::density::DensityMatrix;
use crate::state::StateVector;

/// The four Bell states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BellState {
    /// `(|00⟩ + |11⟩)/√2`
    PhiPlus,
    /// `(|00⟩ - |11⟩)/√2`
    PhiMinus,
    /// `(|01⟩ + |10⟩)/√2`
    PsiPlus,
    /// `(|01⟩ - |10⟩)/√2`
    PsiMinus,
}

impl BellState {
    /// All four Bell states.
    pub const ALL: [BellState; 4] = [
        BellState::PhiPlus,
        BellState::PhiMinus,
        BellState::PsiPlus,
        BellState::PsiMinus,
    ];

    /// The two-qubit state vector of this Bell state (qubit 0 and qubit 1).
    pub fn state_vector(self) -> StateVector {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let amp = |v: f64| Complex::real(v * s);
        let amplitudes = match self {
            BellState::PhiPlus => vec![amp(1.0), Complex::ZERO, Complex::ZERO, amp(1.0)],
            BellState::PhiMinus => vec![amp(1.0), Complex::ZERO, Complex::ZERO, amp(-1.0)],
            BellState::PsiPlus => vec![Complex::ZERO, amp(1.0), amp(1.0), Complex::ZERO],
            BellState::PsiMinus => vec![Complex::ZERO, amp(1.0), amp(-1.0), Complex::ZERO],
        };
        StateVector::from_amplitudes(amplitudes)
    }

    /// The Pauli correction (x, z) that maps this Bell state back to `|Φ⁺⟩`
    /// when applied to the second qubit: apply X if `x`, Z if `z`.
    pub fn correction_to_phi_plus(self) -> (bool, bool) {
        match self {
            BellState::PhiPlus => (false, false),
            BellState::PhiMinus => (false, true),
            BellState::PsiPlus => (true, false),
            BellState::PsiMinus => (true, true),
        }
    }
}

/// The Werner state with fidelity `F` to `|Φ⁺⟩` (clamped to `[1/4, 1]`;
/// below 1/4 the parametrisation stops describing a physical mixture of this
/// form).
pub fn werner_state(fidelity: f64) -> DensityMatrix {
    let f = fidelity.clamp(0.25, 1.0);
    let rest = (1.0 - f) / 3.0;
    let parts: Vec<(f64, DensityMatrix)> = BellState::ALL
        .iter()
        .map(|&b| {
            let w = if b == BellState::PhiPlus { f } else { rest };
            (w, DensityMatrix::from_pure(&b.state_vector()))
        })
        .collect();
    DensityMatrix::mixture(&parts)
}

/// Convert a Werner fidelity `F` to the Werner parameter
/// `W = (4F - 1) / 3` (the weight of the pure Bell state in the
/// `ρ = W|Φ⁺⟩⟨Φ⁺| + (1-W)·I/4` parametrisation).
pub fn fidelity_to_werner_parameter(fidelity: f64) -> f64 {
    (4.0 * fidelity - 1.0) / 3.0
}

/// Convert a Werner parameter back to a fidelity: `F = (3W + 1) / 4`.
pub fn werner_parameter_to_fidelity(w: f64) -> f64 {
    (3.0 * w + 1.0) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_states_are_normalised_and_orthogonal() {
        for (i, a) in BellState::ALL.iter().enumerate() {
            let sa = a.state_vector();
            assert!((sa.total_probability() - 1.0).abs() < 1e-12);
            for (j, b) in BellState::ALL.iter().enumerate() {
                let f = sa.fidelity(&b.state_vector());
                if i == j {
                    assert!((f - 1.0).abs() < 1e-12);
                } else {
                    assert!(f < 1e-12, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn corrections_map_back_to_phi_plus() {
        use crate::gates::Gate;
        for b in BellState::ALL {
            let mut s = b.state_vector();
            let (x, z) = b.correction_to_phi_plus();
            if x {
                s.apply_gate(&Gate::x(), 1);
            }
            if z {
                s.apply_gate(&Gate::z(), 1);
            }
            let f = s.fidelity(&BellState::PhiPlus.state_vector());
            assert!((f - 1.0).abs() < 1e-9, "{b:?} fidelity {f}");
        }
    }

    #[test]
    fn werner_state_fidelity_matches_parameter() {
        for &f in &[0.25, 0.5, 0.75, 0.9, 1.0] {
            let w = werner_state(f);
            let measured = w.fidelity_with_pure(&BellState::PhiPlus.state_vector());
            assert!((measured - f).abs() < 1e-12, "F={f} measured {measured}");
            assert!((w.trace().re - 1.0).abs() < 1e-12);
            assert!(w.is_hermitian(1e-12));
        }
    }

    #[test]
    fn werner_state_clamps_fidelity() {
        let w = werner_state(0.0);
        let measured = w.fidelity_with_pure(&BellState::PhiPlus.state_vector());
        assert!((measured - 0.25).abs() < 1e-12);
        let w1 = werner_state(1.5);
        let m1 = w1.fidelity_with_pure(&BellState::PhiPlus.state_vector());
        assert!((m1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn werner_parameter_round_trip() {
        for &f in &[0.25, 0.5, 0.8, 1.0] {
            let w = fidelity_to_werner_parameter(f);
            assert!((werner_parameter_to_fidelity(w) - f).abs() < 1e-12);
        }
        assert!((fidelity_to_werner_parameter(1.0) - 1.0).abs() < 1e-12);
        assert!(fidelity_to_werner_parameter(0.25).abs() < 1e-12);
    }
}
