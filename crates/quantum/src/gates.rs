//! Single-qubit gate matrices.
//!
//! A single-qubit gate is a 2×2 unitary. Teleportation and swapping need
//! only the Hadamard, the Paulis and (as two-qubit operations applied by
//! [`crate::state::StateVector::apply_cnot`]) the CNOT.

use crate::complex::Complex;

/// A 2×2 complex matrix, row-major: `[[a, b], [c, d]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate {
    /// Matrix entries `[row][col]`.
    pub m: [[Complex; 2]; 2],
}

impl Gate {
    /// Construct from rows.
    pub const fn new(m: [[Complex; 2]; 2]) -> Self {
        Gate { m }
    }

    /// Identity.
    pub fn identity() -> Self {
        Gate::new([[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]])
    }

    /// Pauli-X (bit flip).
    pub fn x() -> Self {
        Gate::new([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]])
    }

    /// Pauli-Y.
    pub fn y() -> Self {
        Gate::new([
            [Complex::ZERO, Complex::new(0.0, -1.0)],
            [Complex::new(0.0, 1.0), Complex::ZERO],
        ])
    }

    /// Pauli-Z (phase flip).
    pub fn z() -> Self {
        Gate::new([
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::real(-1.0)],
        ])
    }

    /// Hadamard.
    pub fn h() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Gate::new([
            [Complex::real(s), Complex::real(s)],
            [Complex::real(s), Complex::real(-s)],
        ])
    }

    /// Phase gate S = diag(1, i).
    pub fn s() -> Self {
        Gate::new([[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]])
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Gate) -> Gate {
        let mut out = [[Complex::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..2 {
                    *cell += self.m[i][k] * other.m[k][j];
                }
            }
        }
        Gate::new(out)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Gate {
        Gate::new([
            [self.m[0][0].conj(), self.m[1][0].conj()],
            [self.m[0][1].conj(), self.m[1][1].conj()],
        ])
    }

    /// True if this matrix is unitary to within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let p = self.matmul(&self.dagger());
        let id = Gate::identity();
        (0..2).all(|i| (0..2).all(|j| p.m[i][j].approx_eq(id.m[i][j], eps)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gates_are_unitary() {
        for g in [
            Gate::identity(),
            Gate::x(),
            Gate::y(),
            Gate::z(),
            Gate::h(),
            Gate::s(),
        ] {
            assert!(g.is_unitary(1e-12));
        }
    }

    #[test]
    fn pauli_algebra() {
        // X² = Y² = Z² = I, and XZ = -iY.
        let id = Gate::identity();
        assert_eq!(Gate::x().matmul(&Gate::x()), id);
        assert_eq!(Gate::z().matmul(&Gate::z()), id);
        let xz = Gate::x().matmul(&Gate::z());
        let minus_i_y = Gate::new([
            [
                Gate::y().m[0][0] * Complex::new(0.0, -1.0),
                Gate::y().m[0][1] * Complex::new(0.0, -1.0),
            ],
            [
                Gate::y().m[1][0] * Complex::new(0.0, -1.0),
                Gate::y().m[1][1] * Complex::new(0.0, -1.0),
            ],
        ]);
        for i in 0..2 {
            for j in 0..2 {
                assert!(xz.m[i][j].approx_eq(minus_i_y.m[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn hadamard_is_involutive() {
        let hh = Gate::h().matmul(&Gate::h());
        let id = Gate::identity();
        for i in 0..2 {
            for j in 0..2 {
                assert!(hh.m[i][j].approx_eq(id.m[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn s_squared_is_z() {
        let ss = Gate::s().matmul(&Gate::s());
        let z = Gate::z();
        for i in 0..2 {
            for j in 0..2 {
                assert!(ss.m[i][j].approx_eq(z.m[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn dagger_of_s_is_inverse() {
        let p = Gate::s().matmul(&Gate::s().dagger());
        assert!(p.is_unitary(1e-12));
        let id = Gate::identity();
        for i in 0..2 {
            for j in 0..2 {
                assert!(p.m[i][j].approx_eq(id.m[i][j], 1e-12));
            }
        }
    }
}
