//! Fidelity measures.
//!
//! Fidelity (Jozsa \[18\] in the paper's bibliography) quantifies how close a
//! possibly-noisy state is to the desired one. Three cases are needed by the
//! workspace and provided here:
//!
//! * pure vs pure: `F = |⟨ψ|φ⟩|²`,
//! * pure vs mixed: `F = ⟨ψ|ρ|ψ⟩`,
//! * Werner vs Werner with the same target Bell state: closed form.

use crate::bell::BellState;
use crate::density::DensityMatrix;
use crate::state::StateVector;

/// Fidelity between two pure states, `|⟨a|b⟩|²`.
pub fn fidelity_pure_pure(a: &StateVector, b: &StateVector) -> f64 {
    a.fidelity(b)
}

/// Fidelity between a pure state and a density matrix, `⟨ψ|ρ|ψ⟩`.
pub fn fidelity_pure_mixed(psi: &StateVector, rho: &DensityMatrix) -> f64 {
    rho.fidelity_with_pure(psi)
}

/// The fidelity of a Bell-pair density matrix with the ideal `|Φ⁺⟩` target.
pub fn bell_pair_fidelity(rho: &DensityMatrix) -> f64 {
    rho.fidelity_with_pure(&BellState::PhiPlus.state_vector())
}

/// Classify a fidelity value into the qualitative bands used in experiment
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityBand {
    /// `F ≥ 0.99`: effectively ideal.
    Excellent,
    /// `0.9 ≤ F < 0.99`: usable without distillation for many applications.
    Good,
    /// `0.5 < F < 0.9`: distillable (above the 1/2 threshold for Werner
    /// states).
    Distillable,
    /// `F ≤ 0.5`: not distillable by the standard recurrence protocols.
    Unusable,
}

/// Band classification for a fidelity value.
pub fn classify(fidelity: f64) -> FidelityBand {
    if fidelity >= 0.99 {
        FidelityBand::Excellent
    } else if fidelity >= 0.9 {
        FidelityBand::Good
    } else if fidelity > 0.5 {
        FidelityBand::Distillable
    } else {
        FidelityBand::Unusable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::werner_state;
    use crate::complex::Complex;

    #[test]
    fn pure_pure_fidelity() {
        let zero = StateVector::zero(1);
        let one = StateVector::qubit(Complex::ZERO, Complex::ONE);
        assert!((fidelity_pure_pure(&zero, &zero) - 1.0).abs() < 1e-12);
        assert!(fidelity_pure_pure(&zero, &one) < 1e-12);
    }

    #[test]
    fn pure_mixed_fidelity_for_werner() {
        for &f in &[0.25, 0.6, 0.85, 1.0] {
            let rho = werner_state(f);
            let target = BellState::PhiPlus.state_vector();
            assert!((fidelity_pure_mixed(&target, &rho) - f).abs() < 1e-12);
            assert!((bell_pair_fidelity(&rho) - f).abs() < 1e-12);
        }
    }

    #[test]
    fn classification_bands() {
        assert_eq!(classify(1.0), FidelityBand::Excellent);
        assert_eq!(classify(0.95), FidelityBand::Good);
        assert_eq!(classify(0.7), FidelityBand::Distillable);
        assert_eq!(classify(0.5), FidelityBand::Unusable);
        assert_eq!(classify(0.1), FidelityBand::Unusable);
    }
}
