//! Pure-state (state-vector) simulation of a few qubits.
//!
//! The amplitudes of an `n`-qubit state are stored as a dense vector of
//! length `2^n`. Qubit `k` corresponds to bit `k` of the basis-state index
//! (bit 0 is the least-significant bit), so basis state `|q_{n-1} … q_1 q_0⟩`
//! has index `Σ q_k · 2^k`.
//!
//! This simulator is intentionally small: teleportation needs 3 qubits and
//! entanglement swapping needs 4, so clarity is preferred over the
//! bit-twiddling optimisations a general-purpose simulator would use.

use crate::complex::Complex;
use crate::gates::Gate;
use rand::Rng;

/// A pure quantum state over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩` on `qubits` qubits.
    ///
    /// # Panics
    /// Panics if `qubits` is 0 or large enough to overflow the vector
    /// (more than 20 qubits is refused as a guard against accidents).
    pub fn zero(qubits: usize) -> Self {
        assert!(qubits > 0, "a state needs at least one qubit");
        assert!(qubits <= 20, "refusing to allocate > 2^20 amplitudes");
        let mut amplitudes = vec![Complex::ZERO; 1 << qubits];
        amplitudes[0] = Complex::ONE;
        StateVector { qubits, amplitudes }
    }

    /// A single-qubit state `α|0⟩ + β|1⟩` (normalised on construction).
    ///
    /// # Panics
    /// Panics if both amplitudes are (numerically) zero.
    pub fn qubit(alpha: Complex, beta: Complex) -> Self {
        let norm = (alpha.norm_sqr() + beta.norm_sqr()).sqrt();
        assert!(norm > 1e-12, "cannot normalise the zero vector");
        StateVector {
            qubits: 1,
            amplitudes: vec![alpha.scale(1.0 / norm), beta.scale(1.0 / norm)],
        }
    }

    /// Construct from raw amplitudes (length must be a power of two ≥ 2);
    /// the state is normalised.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let len = amplitudes.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "length must be a power of two ≥ 2"
        );
        let qubits = len.trailing_zeros() as usize;
        let mut sv = StateVector { qubits, amplitudes };
        sv.normalize();
        sv
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amplitudes[index]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// The probability of observing basis state `index` if all qubits were
    /// measured.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Sum of all probabilities (1 for a normalised state).
    pub fn total_probability(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Normalise in place.
    pub fn normalize(&mut self) {
        let total = self.total_probability();
        assert!(total > 1e-300, "cannot normalise the zero vector");
        let k = 1.0 / total.sqrt();
        for a in &mut self.amplitudes {
            *a = a.scale(k);
        }
    }

    /// Tensor product `self ⊗ other`.
    ///
    /// The qubits of `self` keep their indices `0..self.n`; the qubits of
    /// `other` are shifted up to `self.n..self.n + other.n`.
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let qubits = self.qubits + other.qubits;
        assert!(qubits <= 20, "tensor product would exceed 20 qubits");
        let mut amplitudes = vec![Complex::ZERO; 1 << qubits];
        for (j, &b) in other.amplitudes.iter().enumerate() {
            for (i, &a) in self.amplitudes.iter().enumerate() {
                amplitudes[(j << self.qubits) | i] = a * b;
            }
        }
        StateVector { qubits, amplitudes }
    }

    /// Apply a single-qubit gate to qubit `target`.
    pub fn apply_gate(&mut self, gate: &Gate, target: usize) {
        assert!(target < self.qubits, "gate target out of range");
        let bit = 1usize << target;
        for base in 0..self.amplitudes.len() {
            if base & bit != 0 {
                continue;
            }
            let i0 = base;
            let i1 = base | bit;
            let a0 = self.amplitudes[i0];
            let a1 = self.amplitudes[i1];
            self.amplitudes[i0] = gate.m[0][0] * a0 + gate.m[0][1] * a1;
            self.amplitudes[i1] = gate.m[1][0] * a0 + gate.m[1][1] * a1;
        }
    }

    /// Apply a CNOT with the given control and target qubits.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(
            control < self.qubits && target < self.qubits,
            "CNOT qubit out of range"
        );
        assert_ne!(control, target, "CNOT control and target must differ");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..self.amplitudes.len() {
            // Swap amplitudes of |…c=1…t=0…⟩ and |…c=1…t=1…⟩ exactly once.
            if i & cbit != 0 && i & tbit == 0 {
                self.amplitudes.swap(i, i | tbit);
            }
        }
    }

    /// Apply a controlled-Z between two qubits (symmetric in its arguments).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.qubits && b < self.qubits, "CZ qubit out of range");
        assert_ne!(a, b, "CZ qubits must differ");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amplitudes.len() {
            if i & abit != 0 && i & bbit != 0 {
                self.amplitudes[i] = -self.amplitudes[i];
            }
        }
    }

    /// The probability that measuring qubit `target` yields 1.
    pub fn probability_of_one(&self, target: usize) -> f64 {
        assert!(target < self.qubits);
        let bit = 1usize << target;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measure qubit `target` in the computational basis, collapsing the
    /// state. Returns the observed bit.
    pub fn measure(&mut self, target: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.probability_of_one(target);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(target, outcome);
        outcome
    }

    /// Project qubit `target` onto the given outcome and renormalise.
    ///
    /// # Panics
    /// Panics if the outcome has zero probability (the projection would be
    /// the zero vector).
    pub fn collapse(&mut self, target: usize, outcome: u8) {
        assert!(target < self.qubits);
        let bit = 1usize << target;
        for (i, a) in self.amplitudes.iter_mut().enumerate() {
            let this_bit = if i & bit != 0 { 1 } else { 0 };
            if this_bit != outcome {
                *a = Complex::ZERO;
            }
        }
        self.normalize();
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.qubits, other.qubits, "dimension mismatch");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amplitudes.iter().zip(other.amplitudes.iter()) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²` with another pure state.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// The reduced single-qubit state of `target`, as the 2×2 density matrix
    /// entries `[[ρ00, ρ01], [ρ10, ρ11]]`, obtained by tracing out all other
    /// qubits.
    pub fn reduced_single_qubit(&self, target: usize) -> [[Complex; 2]; 2] {
        assert!(target < self.qubits);
        let bit = 1usize << target;
        let mut rho = [[Complex::ZERO; 2]; 2];
        for (i, &a) in self.amplitudes.iter().enumerate() {
            for (j, &b) in self.amplitudes.iter().enumerate() {
                // Keep only index pairs identical outside the target qubit.
                if (i & !bit) != (j & !bit) {
                    continue;
                }
                let qi = usize::from(i & bit != 0);
                let qj = usize::from(j & bit != 0);
                rho[qi][qj] += a * b.conj();
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    #[test]
    fn zero_state_shape() {
        let s = StateVector::zero(3);
        assert_eq!(s.qubit_count(), 3);
        assert_eq!(s.amplitudes().len(), 8);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qubit_constructor_normalises() {
        let s = StateVector::qubit(Complex::real(3.0), Complex::real(4.0));
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        assert!((s.probability(1) - 0.64).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_amplitudes_panic() {
        let _ = StateVector::qubit(Complex::ZERO, Complex::ZERO);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero(1);
        s.apply_gate(&Gate::h(), 0);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_flips_target_only() {
        let mut s = StateVector::zero(3);
        s.apply_gate(&Gate::x(), 1);
        assert!((s.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_entangles() {
        // H on qubit 0, then CNOT 0→1 gives the Bell state (|00⟩+|11⟩)/√2.
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::h(), 0);
        s.apply_cnot(0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
        assert!(s.probability(0b10) < 1e-12);
    }

    #[test]
    fn cz_adds_phase_only_on_11() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::h(), 0);
        s.apply_gate(&Gate::h(), 1);
        s.apply_cz(0, 1);
        assert!(s.amplitude(0b11).approx_eq(Complex::real(-0.5), 1e-12));
        assert!(s.amplitude(0b00).approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn tensor_product_indices() {
        // |1⟩ ⊗ |0⟩: qubit 0 comes from the left factor.
        let one = StateVector::qubit(Complex::ZERO, Complex::ONE);
        let zero = StateVector::zero(1);
        let t = one.tensor(&zero);
        assert_eq!(t.qubit_count(), 2);
        assert!((t.probability(0b01) - 1.0).abs() < 1e-12);
        let t2 = zero.tensor(&one);
        assert!((t2.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut counts = [0u32; 2];
        let mut r = rng();
        for _ in 0..4000 {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::h(), 0);
            let m = s.measure(0, &mut r);
            counts[m as usize] += 1;
        }
        let frac1 = counts[1] as f64 / 4000.0;
        assert!((frac1 - 0.5).abs() < 0.05, "frac1 {frac1}");
    }

    #[test]
    fn measurement_collapses_entangled_partner() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = StateVector::zero(2);
            s.apply_gate(&Gate::h(), 0);
            s.apply_cnot(0, 1);
            let m0 = s.measure(0, &mut r);
            // After measuring qubit 0, qubit 1 must be perfectly correlated.
            let p1 = s.probability_of_one(1);
            if m0 == 1 {
                assert!((p1 - 1.0).abs() < 1e-9);
            } else {
                assert!(p1 < 1e-9);
            }
        }
    }

    #[test]
    fn collapse_zero_probability_panics() {
        let s = StateVector::zero(1);
        let result = std::panic::catch_unwind(move || {
            let mut s = s;
            s.collapse(0, 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn inner_product_and_fidelity() {
        let zero = StateVector::zero(1);
        let one = StateVector::qubit(Complex::ZERO, Complex::ONE);
        assert!(zero.fidelity(&one) < 1e-12);
        assert!((zero.fidelity(&zero) - 1.0).abs() < 1e-12);
        let mut plus = StateVector::zero(1);
        plus.apply_gate(&Gate::h(), 0);
        assert!((zero.fidelity(&plus) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reduced_state_of_bell_pair_is_maximally_mixed() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::h(), 0);
        s.apply_cnot(0, 1);
        let rho = s.reduced_single_qubit(0);
        assert!(rho[0][0].approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho[1][1].approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho[0][1].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn reduced_state_of_product_state_is_pure() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::h(), 1);
        let rho = s.reduced_single_qubit(1);
        assert!(rho[0][1].approx_eq(Complex::real(0.5), 1e-12));
        let purity = (rho[0][0] * rho[0][0]
            + rho[0][1] * rho[1][0]
            + rho[1][0] * rho[0][1]
            + rho[1][1] * rho[1][1])
            .re;
        assert!((purity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_amplitudes_normalises() {
        let s = StateVector::from_amplitudes(vec![
            Complex::real(1.0),
            Complex::real(1.0),
            Complex::real(1.0),
            Complex::real(1.0),
        ]);
        assert_eq!(s.qubit_count(), 2);
        assert!((s.probability(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_amplitudes_rejects_non_power_of_two() {
        let _ = StateVector::from_amplitudes(vec![Complex::ONE; 3]);
    }
}
