//! Property-based tests of the quantum substrate: unitarity/normalisation
//! invariants, protocol correctness for arbitrary message states, and
//! monotonicity of the noise/distillation models.

use proptest::prelude::*;
use qnet_quantum::bell::{werner_state, BellState};
use qnet_quantum::complex::Complex;
use qnet_quantum::decoherence::DecoherenceModel;
use qnet_quantum::density::DensityMatrix;
use qnet_quantum::distill::{distill_step, overhead_factor, DistillationProtocol};
use qnet_quantum::gates::Gate;
use qnet_quantum::state::StateVector;
use qnet_quantum::swap::{chain_swap_fidelity, swap_werner_fidelity};
use qnet_quantum::teleport::{teleport_ideal, teleport_over_werner};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Strategy for a normalisable single-qubit state (α, β not both ~zero).
fn qubit_amplitudes() -> impl Strategy<Value = (Complex, Complex)> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_filter_map(
        "degenerate amplitudes",
        |(ar, ai, br, bi)| {
            let alpha = Complex::new(ar, ai);
            let beta = Complex::new(br, bi);
            if alpha.norm_sqr() + beta.norm_sqr() > 1e-3 {
                Some((alpha, beta))
            } else {
                None
            }
        },
    )
}

proptest! {
    /// Applying any sequence of standard gates preserves normalisation.
    #[test]
    fn gates_preserve_normalisation(ops in proptest::collection::vec((0usize..5, 0usize..3), 0..40)) {
        let mut s = StateVector::zero(3);
        s.apply_gate(&Gate::h(), 0);
        s.apply_cnot(0, 1);
        for (which, target) in ops {
            match which {
                0 => s.apply_gate(&Gate::h(), target),
                1 => s.apply_gate(&Gate::x(), target),
                2 => s.apply_gate(&Gate::z(), target),
                3 => s.apply_cnot(target, (target + 1) % 3),
                _ => s.apply_cz(target, (target + 1) % 3),
            }
        }
        prop_assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    /// Teleportation over an ideal Bell pair is perfect for *every* message
    /// state and every measurement outcome.
    #[test]
    fn ideal_teleportation_is_always_perfect((alpha, beta) in qubit_amplitudes(), seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let out = teleport_ideal(alpha, beta, &mut rng);
        prop_assert!((out.fidelity - 1.0).abs() < 1e-9, "fidelity {}", out.fidelity);
        prop_assert!(out.classical_bits.0 <= 1 && out.classical_bits.1 <= 1);
    }

    /// Teleportation fidelity over a Werner channel is always a valid
    /// probability and perfect channels never degrade the message.
    #[test]
    fn werner_teleportation_fidelity_in_range((alpha, beta) in qubit_amplitudes(), f in 0.25f64..1.0, seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let out = teleport_over_werner(alpha, beta, f, &mut rng);
        prop_assert!(out.fidelity >= -1e-9 && out.fidelity <= 1.0 + 1e-9);
        let perfect = teleport_over_werner(alpha, beta, 1.0, &mut rng);
        prop_assert!((perfect.fidelity - 1.0).abs() < 1e-9);
    }

    /// The Werner swap formula stays within physical bounds, never exceeds
    /// either input fidelity, and is symmetric.
    #[test]
    fn swap_fidelity_bounds(f1 in 0.25f64..1.0, f2 in 0.25f64..1.0) {
        let out = swap_werner_fidelity(f1, f2);
        prop_assert!((0.25 - 1e-12..=1.0 + 1e-12).contains(&out));
        prop_assert!(out <= f1.min(f2) + 1e-12);
        prop_assert!((out - swap_werner_fidelity(f2, f1)).abs() < 1e-12);
    }

    /// Chain fidelity is monotonically non-increasing in the chain length.
    #[test]
    fn chain_fidelity_monotone(f in 0.25f64..1.0, n in 1usize..12) {
        prop_assert!(chain_swap_fidelity(f, n + 1) <= chain_swap_fidelity(f, n) + 1e-12);
        prop_assert!(chain_swap_fidelity(f, n) >= 0.25 - 1e-12);
    }

    /// Swap output fidelity is monotone non-decreasing in each input: a
    /// better input pair can never yield a worse swapped pair. (The live
    /// lot store leans on this: consuming the *best* aged lot maximises the
    /// composed fidelity.)
    #[test]
    fn swap_fidelity_monotone_in_inputs(
        f1 in 0.25f64..1.0,
        f2 in 0.25f64..1.0,
        bump in 0.0f64..0.5,
    ) {
        let better = (f1 + bump).min(1.0);
        prop_assert!(
            swap_werner_fidelity(better, f2) >= swap_werner_fidelity(f1, f2) - 1e-12
        );
        // And chain fidelity inherits the monotonicity in the link quality.
        let g = (f2 + bump).min(1.0);
        prop_assert!(chain_swap_fidelity(g, 5) >= chain_swap_fidelity(f2, 5) - 1e-12);
    }

    /// `age_at_fidelity` is the exact inverse of `fidelity_after`: decaying
    /// for the reported age lands on the floor, earlier stays above it,
    /// later falls below it (the contract the cutoff derivation relies on).
    #[test]
    fn age_at_fidelity_round_trips_fidelity_after(
        f0 in 0.35f64..1.0,
        drop in 0.01f64..0.9,
        coherence in 0.05f64..50.0,
    ) {
        let m = DecoherenceModel::with_coherence_time(coherence);
        // Pick a reachable floor strictly between 1/4 and f0.
        let f_min = 0.25 + (f0 - 0.25) * (1.0 - drop);
        let age = m.age_at_fidelity(f0, f_min).expect("finite coherence, floor above 1/4");
        prop_assert!(age >= 0.0);
        let back = m.fidelity_after(f0, age);
        prop_assert!((back - f_min).abs() < 1e-9, "age {age}: {back} vs {f_min}");
        prop_assert!(m.fidelity_after(f0, age * 0.5) >= f_min - 1e-9);
        prop_assert!(m.fidelity_after(f0, age + coherence * 0.1) <= f_min + 1e-9);
        // The composed round-trip holds in the other direction too: the
        // fidelity after any age inverts back to that age.
        let t = age * 0.7;
        let f_t = m.fidelity_after(f0, t);
        if f_t > 0.2500001 && f_t < f0 {
            let t_back = m.age_at_fidelity(f0, f_t).expect("reachable");
            prop_assert!((t_back - t).abs() < 1e-6 * (1.0 + t), "{t_back} vs {t}");
        }
    }

    /// One BBPSSW round improves any distillable fidelity (F > 0.5) and its
    /// success probability is a valid probability.
    #[test]
    fn distillation_improves_distillable_pairs(f in 0.501f64..0.999) {
        let step = distill_step(DistillationProtocol::Bbpssw, f);
        prop_assert!(step.output_fidelity > f);
        prop_assert!(step.output_fidelity <= 1.0 + 1e-12);
        prop_assert!(step.success_probability > 0.0 && step.success_probability <= 1.0);
    }

    /// The distillation overhead D is ≥ 1, and is monotone in the target
    /// fidelity whenever both targets are reachable.
    #[test]
    fn distillation_overhead_monotone(f_in in 0.6f64..0.95, t1 in 0.7f64..0.99, t2 in 0.7f64..0.99) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        if let (Some(dlo), Some(dhi)) = (
            overhead_factor(DistillationProtocol::Bbpssw, f_in, lo),
            overhead_factor(DistillationProtocol::Bbpssw, f_in, hi),
        ) {
            prop_assert!(dlo >= 1.0 && dhi >= 1.0);
            prop_assert!(dhi + 1e-9 >= dlo);
        }
    }

    /// Werner states are valid density matrices whose Φ⁺ fidelity equals the
    /// parameter, and mixing them preserves trace and Hermiticity.
    #[test]
    fn werner_states_are_physical(f in 0.25f64..1.0, g in 0.25f64..1.0, w in 0.01f64..0.99) {
        let a = werner_state(f);
        let b = werner_state(g);
        prop_assert!((a.trace().re - 1.0).abs() < 1e-9);
        prop_assert!(a.is_hermitian(1e-9));
        let target = BellState::PhiPlus.state_vector();
        prop_assert!((a.fidelity_with_pure(&target) - f).abs() < 1e-9);
        let mixed = DensityMatrix::mixture(&[(w, a), (1.0 - w, b)]);
        prop_assert!((mixed.trace().re - 1.0).abs() < 1e-9);
        prop_assert!(mixed.is_hermitian(1e-9));
        let expect = w * f + (1.0 - w) * g;
        prop_assert!((mixed.fidelity_with_pure(&target) - expect).abs() < 1e-9);
        prop_assert!(mixed.purity() <= 1.0 + 1e-9 && mixed.purity() >= 0.25 - 1e-9);
    }

    /// Decoherence never raises fidelity, never drops it below 1/4, and the
    /// inverse (age-at-fidelity) is consistent with the forward decay.
    #[test]
    fn decoherence_decay_bounds(f0 in 0.3f64..1.0, t in 0.0f64..100.0, coherence in 0.1f64..50.0) {
        let m = DecoherenceModel::with_coherence_time(coherence);
        let f = m.fidelity_after(f0, t);
        prop_assert!(f <= f0 + 1e-12);
        prop_assert!(f >= 0.25 - 1e-12);
        if let Some(age) = m.age_at_fidelity(f0, 0.5) {
            if age > 0.0 {
                prop_assert!((m.fidelity_after(f0, age) - 0.5).abs() < 1e-6);
            }
        }
        prop_assert!(m.survival_probability(t) <= 1.0 && m.survival_probability(t) >= 0.0);
    }

    /// The reduced single-qubit state of any evolved pure state has unit
    /// trace and purity in [1/2, 1].
    #[test]
    fn reduced_states_are_physical(ops in proptest::collection::vec((0usize..4, 0usize..2), 0..20)) {
        let mut s = StateVector::zero(2);
        for (which, target) in ops {
            match which {
                0 => s.apply_gate(&Gate::h(), target),
                1 => s.apply_gate(&Gate::x(), target),
                2 => s.apply_gate(&Gate::s(), target),
                _ => s.apply_cnot(target, 1 - target),
            }
        }
        let rho = s.reduced_single_qubit(0);
        let trace = (rho[0][0] + rho[1][1]).re;
        prop_assert!((trace - 1.0).abs() < 1e-9);
        let purity = (rho[0][0] * rho[0][0]
            + rho[0][1] * rho[1][0]
            + rho[1][0] * rho[0][1]
            + rho[1][1] * rho[1][1])
            .re;
        prop_assert!((0.5 - 1e-9..=1.0 + 1e-9).contains(&purity));
    }
}
