//! # qnet-campaign — parallel scenario campaigns for sweep experiments
//!
//! The paper's headline results (Figures 4 and 5: swap overhead vs.
//! distillation rounds and vs. network size) are parameter sweeps over
//! topology × workload × protocol mode. This crate turns such sweeps from
//! ad-hoc loops into declarative, parallel, reproducible **campaigns**:
//!
//! 1. **Declare** a [`ScenarioGrid`]: the cartesian product of topology
//!    families, swap policies (by registry name — see
//!    [`qnet_core::policy`]), distillation overheads, knowledge models,
//!    coherence times, link-physics models (see [`qnet_core::physics`])
//!    and workload specs, × a replicate count. The grid
//!    expands into dense, deterministic [`Scenario`]s whose RNG seeds
//!    derive from `(master seed, cell, replicate)`.
//! 2. **Execute** with [`run_campaign`]: a chunked `std::thread` pool claims
//!    scenario ids through an atomic cursor and runs each
//!    [`qnet_core::Experiment`] independently — thousands of runs saturate
//!    all cores with zero external dependencies.
//! 3. **Aggregate** with [`aggregate`]: per-cell Welford mean/variance,
//!    exact percentiles, 95% confidence intervals, satisfaction and
//!    classical-message totals, plus matched oblivious-vs-planned
//!    [`OverheadRatioRow`]s reproducing the Fig 4/5 comparisons.
//! 4. **Report** with [`write_jsonl`]: self-describing JSON-lines output
//!    that is byte-identical no matter how many worker threads ran the
//!    campaign (see the determinism tests).
//!
//! The `campaign` CLI binary wraps all four steps; `qnet-bench` adds micro
//! benchmarks and a sweep binary on top of the same API.
//!
//! ## Incremental and distributed campaigns
//!
//! Outcomes are pure functions of `(grid fingerprint, scenario id)` —
//! [`ScenarioGrid::fingerprint`] hashes every axis, the master seed and the
//! run parameters — which buys two more execution modes on top of the
//! in-process pool:
//!
//! * **Caching** ([`OutcomeCache`], [`run_campaign_cached`]): outcomes
//!   persist as append-only JSONL under a cache directory; re-running a
//!   grid replays cached scenarios without simulating (a fully warm run
//!   executes **zero** experiments), and overlapping sweeps only pay for
//!   what they add. Reports from cached and fresh outcomes are
//!   byte-identical.
//! * **Sharding** ([`ShardSpec`], [`write_shard`], [`merge_shards`]): the
//!   scenario id space partitions deterministically across processes or
//!   hosts (`campaign --shard I/N`); each shard writes a self-describing
//!   outcome file, and `campaign merge` recombines them into the exact
//!   single-process report — byte-identical for any partition.
//! * **Orchestration** ([`orchestrate`], [`resume_orchestrated`]): a
//!   supervisor spawns N worker subprocesses over a shared run directory
//!   and drives them to completion — heartbeat liveness, crash retry from
//!   the shared cache, live partial reports, and a final merge
//!   byte-identical to an uninterrupted run (`campaign orchestrate`).
//!
//! See the `qnet` facade docs ("Running sharded and incremental campaigns"
//! and "Running distributed campaigns") for worked examples.
//!
//! ## Example
//!
//! ```
//! use qnet_campaign::{aggregate, run_campaign, RunnerConfig, ScenarioGrid};
//! use qnet_core::policy::PolicyId;
//! use qnet_core::workload::WorkloadSpec;
//! use qnet_topology::Topology;
//!
//! let grid = ScenarioGrid::new(7)
//!     .with_topologies(vec![Topology::Cycle { nodes: 5 }])
//!     .with_modes(vec![PolicyId::OBLIVIOUS])
//!     // node_count 0 is patched per topology at expansion time.
//!     .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
//!     .with_replicates(2)
//!     .with_horizon_s(500.0);
//!
//! let result = run_campaign(&grid, &RunnerConfig::default());
//! let report = aggregate(&grid, &result);
//! assert_eq!(report.cell_reports.len(), 1);
//! assert_eq!(report.scenarios, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod grid;
pub mod orchestrator;
pub mod report;
pub mod runner;
pub mod shard;

use qnet_core::policy::{registered_policies, PolicyFamily};

/// The `campaign --list-policies` text: one line per policy in the
/// process-global registry (built-ins plus anything registered through
/// [`qnet_core::policy::register`]), in registration order.
pub fn policy_listing() -> String {
    let mut out = String::new();
    for entry in registered_policies() {
        let family = match entry.family {
            PolicyFamily::Oblivious => "oblivious",
            PolicyFamily::Planned => "planned",
        };
        let aliases = if entry.aliases.is_empty() {
            String::new()
        } else {
            format!("  [aliases: {}]", entry.aliases.join(", "))
        };
        out.push_str(&format!(
            "{:<16} {:<10} {}{}\n",
            entry.name, family, entry.summary, aliases
        ));
    }
    out
}

pub use cache::OutcomeCache;
pub use grid::{derive_seed, CellKey, GridFingerprint, Scenario, ScenarioGrid};
pub use orchestrator::{
    load_run_dir, orchestrate, resume as resume_orchestrated, InjectAbort, OrchestrateReport,
    OrchestratorConfig, RunDir,
};
pub use report::{
    aggregate, aggregate_covered, overhead_ratios, to_jsonl_string, write_jsonl, CampaignReport,
    CellReport, OverheadRatioRow,
};
pub use runner::{
    run_campaign, run_campaign_cached, run_campaign_with_progress, run_scenarios_streaming,
    run_scenarios_with_progress, CampaignResult, OutcomeSource, RunnerConfig, ScenarioEvent,
    ScenarioOutcome,
};
pub use shard::{merge_shards, read_shard, shard_to_string, write_shard, ShardFile, ShardSpec};
