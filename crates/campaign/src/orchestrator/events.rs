//! Seq-numbered, wall-clock-free progress events for orchestrated runs.
//!
//! Two JSONL streams share this module:
//!
//! * **Worker progress files** (`progress/shard-I.attempt-K.jsonl`): each
//!   worker appends `{"kind":"progress","seq":…,"event":…}` records —
//!   `shard-claimed` when it starts, one `scenario` record per outcome
//!   (tagged `simulated` or `cache-hit`), and `shard-sealed` once its shard
//!   file is durably written. The supervisor tails these files both for
//!   **liveness** (the file growing is the heartbeat) and to forward the
//!   records into the run-level event log.
//! * **The orchestrator event log** (`events.jsonl`): the supervisor's
//!   machine-readable record of the run — spawns, retries, seals, merges.
//!
//! Both streams are deliberately **timestamp-free**. The only ordering
//! datum any record carries is `seq`, a dense per-stream ordinal, so the
//! logs of two runs of the same campaign are comparable and replayable,
//! and nothing wall-clock-dependent can leak from the progress path into
//! deterministic outputs. Human-facing ETA lines live on stderr only.

use crate::runner::OutcomeSource;
use crate::shard::ShardSpec;
use qnet_core::trace::JsonlSink;
use serde_json::Value;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::Path;

/// The body of one worker progress record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressBody {
    /// The worker started on its shard.
    ShardClaimed {
        /// The shard the worker owns.
        shard: ShardSpec,
        /// Scenarios the shard holds.
        scenarios: usize,
    },
    /// One scenario's outcome was obtained.
    Scenario {
        /// The scenario id.
        id: usize,
        /// Simulated or replayed from the cache.
        source: OutcomeSource,
    },
    /// The worker durably wrote its shard file.
    ShardSealed {
        /// Scenarios the shard file holds.
        scenarios: usize,
    },
}

/// One parsed worker progress record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Dense per-attempt ordinal (0-based) — the only ordering datum.
    pub seq: u64,
    /// What happened.
    pub body: ProgressBody,
}

fn source_label(source: OutcomeSource) -> &'static str {
    match source {
        OutcomeSource::Simulated => "simulated",
        OutcomeSource::CacheHit => "cache-hit",
    }
}

fn parse_source(label: &str) -> Option<OutcomeSource> {
    match label {
        "simulated" => Some(OutcomeSource::Simulated),
        "cache-hit" => Some(OutcomeSource::CacheHit),
        _ => None,
    }
}

/// Parse one worker progress line. Returns `None` for anything that is not
/// a complete, well-formed progress record (torn tail lines of a crashed
/// worker parse as `None` and are simply ignored by the supervisor).
pub fn parse_progress_line(line: &str) -> Option<ProgressEvent> {
    let value: Value = serde_json::from_str(line).ok()?;
    if value.get_field("kind").and_then(|k| k.as_str()) != Some("progress") {
        return None;
    }
    let seq = value.get_field("seq")?.as_u64()?;
    let body = match value.get_field("event")?.as_str()? {
        "shard-claimed" => ProgressBody::ShardClaimed {
            shard: ShardSpec::parse(value.get_field("shard")?.as_str()?).ok()?,
            scenarios: value.get_field("scenarios")?.as_u64()? as usize,
        },
        "scenario" => ProgressBody::Scenario {
            id: value.get_field("id")?.as_u64()? as usize,
            source: parse_source(value.get_field("source")?.as_str()?)?,
        },
        "shard-sealed" => ProgressBody::ShardSealed {
            scenarios: value.get_field("scenarios")?.as_u64()? as usize,
        },
        _ => return None,
    };
    Some(ProgressEvent { seq, body })
}

fn progress_value(seq: u64, event: &str, fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("kind".to_string(), Value::Str("progress".into())),
        ("seq".to_string(), Value::U64(seq)),
        ("event".to_string(), Value::Str(event.into())),
    ];
    entries.extend(fields);
    Value::Map(entries)
}

/// A worker's end of a progress stream: appends seq-numbered records and
/// flushes after every one, so the file's growth doubles as the worker's
/// heartbeat.
#[derive(Debug)]
pub struct ProgressWriter {
    sink: JsonlSink<File>,
    seq: u64,
}

impl ProgressWriter {
    /// Create (truncating) the progress file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: &Path) -> io::Result<ProgressWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(ProgressWriter {
            sink: JsonlSink::new(file),
            seq: 0,
        })
    }

    fn emit(&mut self, event: &str, fields: Vec<(String, Value)>) -> io::Result<()> {
        let value = progress_value(self.seq, event, fields);
        self.sink.write_value(&value);
        self.seq += 1;
        self.sink.flush()
    }

    /// Record that the worker claimed its shard.
    pub fn shard_claimed(&mut self, shard: ShardSpec, scenarios: usize) -> io::Result<()> {
        self.emit(
            "shard-claimed",
            vec![
                ("shard".to_string(), Value::Str(shard.to_string())),
                ("scenarios".to_string(), Value::U64(scenarios as u64)),
            ],
        )
    }

    /// Record one scenario outcome (simulated or cache hit).
    pub fn scenario(&mut self, id: usize, source: OutcomeSource) -> io::Result<()> {
        self.emit(
            "scenario",
            vec![
                ("id".to_string(), Value::U64(id as u64)),
                (
                    "source".to_string(),
                    Value::Str(source_label(source).into()),
                ),
            ],
        )
    }

    /// Record that the shard file was durably written.
    pub fn shard_sealed(&mut self, scenarios: usize) -> io::Result<()> {
        self.emit(
            "shard-sealed",
            vec![("scenarios".to_string(), Value::U64(scenarios as u64))],
        )
    }
}

/// The orchestrator's machine-readable event log (`events.jsonl`): one
/// seq-numbered `{"kind":"orchestrate",…}` record per supervision event.
/// A resumed run appends to the existing file, continuing the sequence.
#[derive(Debug)]
pub struct EventLog {
    sink: JsonlSink<File>,
    seq: u64,
}

impl EventLog {
    /// Create a fresh event log at `path` (truncating any existing file).
    pub fn create(path: &Path) -> io::Result<EventLog> {
        Ok(EventLog {
            sink: JsonlSink::new(File::create(path)?),
            seq: 0,
        })
    }

    /// Open `path` for appending, continuing the sequence after the
    /// records already present (a missing file starts at 0).
    pub fn append(path: &Path) -> io::Result<EventLog> {
        let existing = match fs::read_to_string(path) {
            Ok(text) => text.lines().filter(|l| !l.is_empty()).count() as u64,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog {
            sink: JsonlSink::new(file),
            seq: existing,
        })
    }

    /// Append one event record and flush it to disk.
    pub fn emit(&mut self, event: &str, fields: Vec<(String, Value)>) -> io::Result<()> {
        let mut entries = vec![
            ("kind".to_string(), Value::Str("orchestrate".into())),
            ("seq".to_string(), Value::U64(self.seq)),
            ("event".to_string(), Value::Str(event.into())),
        ];
        entries.extend(fields);
        self.sink.write_value(&Value::Map(entries));
        self.seq += 1;
        self.sink.flush()
    }

    /// Sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("qnet-orch-events-{tag}-{}", std::process::id()))
    }

    #[test]
    fn progress_records_round_trip() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let spec = ShardSpec::new(1, 3).unwrap();
        let mut w = ProgressWriter::create(&path).unwrap();
        w.shard_claimed(spec, 36).unwrap();
        w.scenario(4, OutcomeSource::CacheHit).unwrap();
        w.scenario(7, OutcomeSource::Simulated).unwrap();
        w.shard_sealed(36).unwrap();
        drop(w);

        let text = fs::read_to_string(&path).unwrap();
        let events: Vec<ProgressEvent> = text
            .lines()
            .map(|l| parse_progress_line(l).unwrap())
            .collect();
        assert_eq!(events.len(), 4);
        for (pos, e) in events.iter().enumerate() {
            assert_eq!(e.seq, pos as u64, "dense 0-based sequence");
        }
        assert_eq!(
            events[0].body,
            ProgressBody::ShardClaimed {
                shard: spec,
                scenarios: 36
            }
        );
        assert_eq!(
            events[1].body,
            ProgressBody::Scenario {
                id: 4,
                source: OutcomeSource::CacheHit
            }
        );
        assert_eq!(
            events[2].body,
            ProgressBody::Scenario {
                id: 7,
                source: OutcomeSource::Simulated
            }
        );
        assert_eq!(events[3].body, ProgressBody::ShardSealed { scenarios: 36 });
        // No timestamps anywhere in the stream.
        assert!(!text.contains("time"), "{text}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_and_foreign_lines_parse_as_none() {
        assert!(parse_progress_line("").is_none());
        assert!(parse_progress_line("{\"kind\":\"progress\",\"seq\":1,\"ev").is_none());
        assert!(parse_progress_line("{\"kind\":\"outcome\",\"seq\":1}").is_none());
        assert!(
            parse_progress_line("{\"kind\":\"progress\",\"seq\":0,\"event\":\"scenario\",\"id\":1,\"source\":\"psychic\"}")
                .is_none()
        );
    }

    #[test]
    fn event_log_append_continues_the_sequence() {
        let path = temp_path("log");
        let _ = fs::remove_file(&path);
        let mut log = EventLog::create(&path).unwrap();
        log.emit("run-started", vec![("workers".into(), Value::U64(3))])
            .unwrap();
        log.emit("shard-spawned", vec![]).unwrap();
        assert_eq!(log.next_seq(), 2);
        drop(log);

        let mut resumed = EventLog::append(&path).unwrap();
        assert_eq!(
            resumed.next_seq(),
            2,
            "append continues after existing records"
        );
        resumed.emit("run-resumed", vec![]).unwrap();
        drop(resumed);

        let text = fs::read_to_string(&path).unwrap();
        let seqs: Vec<u64> = text
            .lines()
            .map(|l| {
                let v: Value = serde_json::from_str(l).unwrap();
                assert_eq!(v.get_field("kind").unwrap().as_str(), Some("orchestrate"));
                v.get_field("seq").unwrap().as_u64().unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let _ = fs::remove_file(&path);
    }
}
