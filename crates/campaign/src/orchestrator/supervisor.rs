//! The supervision loop behind [`super::orchestrate`] / [`super::resume`].
//!
//! One single-threaded poll loop owns every worker: spawn pending shards,
//! tail progress files (growth = heartbeat, records = observability), reap
//! exits, validate-and-seal shard files, kill and respawn the dead or
//! stalled, and live-merge sealed shards into the partial report. All
//! decisions are taken from on-disk state, which is what makes a killed
//! *orchestrator* resumable too: the run directory is the only memory.

use super::events::{parse_progress_line, EventLog, ProgressBody, ProgressEvent};
use super::{InjectAbort, OrchestrateReport, OrchestratorConfig, RunDir};
use crate::grid::ScenarioGrid;
use crate::report::{aggregate, aggregate_covered, to_jsonl_string};
use crate::runner::OutcomeSource;
use crate::shard::{merge_shards, read_shard, ShardFile, ShardSpec};
use serde_json::Value;
use std::fs;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// One running worker subprocess and its heartbeat state.
struct Worker {
    child: Child,
    attempt: u32,
    progress_path: PathBuf,
    /// Bytes of the progress file already parsed (complete lines only).
    parsed: usize,
    /// Progress-file size at the last poll (growth = heartbeat).
    last_size: usize,
    /// When the progress file last grew (or the worker spawned).
    last_activity: Instant,
}

impl Worker {
    /// Parse the complete lines appended since the last poll. Returns the
    /// new events and whether the file grew (the liveness signal). A torn
    /// final line is left unconsumed for the next poll.
    fn drain(&mut self) -> (Vec<ProgressEvent>, bool) {
        let text = match fs::read_to_string(&self.progress_path) {
            Ok(text) => text,
            Err(_) => return (Vec::new(), false),
        };
        let grew = text.len() > self.last_size;
        self.last_size = text.len();
        if grew {
            self.last_activity = Instant::now();
        }
        if text.len() <= self.parsed {
            return (Vec::new(), grew);
        }
        let fresh = &text[self.parsed..];
        let mut events = Vec::new();
        if let Some(last_newline) = fresh.rfind('\n') {
            for line in fresh[..last_newline].split('\n') {
                if let Some(event) = parse_progress_line(line) {
                    events.push(event);
                }
            }
            self.parsed += last_newline + 1;
        }
        (events, grew)
    }
}

enum State {
    Pending,
    Running(Worker),
    Sealed,
    Failed(String),
}

/// Per-shard supervision state.
struct Slot {
    spec: ShardSpec,
    /// Scenarios this shard owns.
    scenarios: usize,
    state: State,
    /// Spawns consumed this run (bounded by `max_attempts`).
    attempts: u32,
    /// Scenario events observed in the current attempt.
    simulated: usize,
    cache_hits: usize,
}

impl Slot {
    fn done(&self) -> usize {
        match self.state {
            State::Sealed => self.scenarios,
            _ => self.simulated + self.cache_hits,
        }
    }
}

fn u64_field(name: &str, value: u64) -> (String, Value) {
    (name.to_string(), Value::U64(value))
}

fn str_field(name: &str, value: &str) -> (String, Value) {
    (name.to_string(), Value::Str(value.to_string()))
}

/// Highest attempt number that already has a progress file for `index`
/// (0 if none) — resumed runs continue the numbering instead of
/// overwriting a dead run's evidence.
fn last_attempt_on_disk(layout: &RunDir, index: usize) -> u32 {
    let prefix = format!("shard-{index}.attempt-");
    let mut max = 0;
    if let Ok(entries) = fs::read_dir(layout.progress_dir()) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(k) = rest
                    .strip_suffix(".jsonl")
                    .and_then(|k| k.parse::<u32>().ok())
                {
                    max = max.max(k);
                }
            }
        }
    }
    max
}

/// Validate a shard file's text against the run's grid and shard spec.
fn validate_shard(text: &str, grid: &ScenarioGrid, spec: ShardSpec) -> Result<ShardFile, String> {
    let shard = read_shard(text)?;
    if shard.spec != spec {
        return Err(format!(
            "file holds shard {} but shard {spec} was expected",
            shard.spec
        ));
    }
    if shard.fingerprint != grid.fingerprint() {
        return Err(format!(
            "shard ran grid {} but this run is grid {}",
            shard.fingerprint,
            grid.fingerprint()
        ));
    }
    Ok(shard)
}

/// Validate the worker's `.partial` file and rename it to the sealed name.
/// Rename-after-validate keeps the invariant that a sealed shard file is
/// always complete and well-formed.
fn seal_partial(
    layout: &RunDir,
    grid: &ScenarioGrid,
    spec: ShardSpec,
) -> Result<ShardFile, String> {
    let partial = layout.shard_partial(spec.index);
    let text = fs::read_to_string(&partial)
        .map_err(|e| format!("shard {} left no readable shard file: {e}", spec.index))?;
    let shard = validate_shard(&text, grid, spec)?;
    fs::rename(&partial, layout.shard_sealed(spec.index))
        .map_err(|e| format!("cannot seal shard {}: {e}", spec.index))?;
    Ok(shard)
}

/// Spawn one worker subprocess for `slot`'s shard.
fn spawn_worker(
    binary: &PathBuf,
    grid_threads: usize,
    layout: &RunDir,
    slot: &Slot,
    attempt: u32,
    inject: Option<InjectAbort>,
) -> Result<Worker, String> {
    let progress_path = layout.progress_file(slot.spec.index, attempt);
    let partial = layout.shard_partial(slot.spec.index);
    // A fresh attempt starts from a clean slate; finished work lives in
    // the cache, not in the half-written files of a dead predecessor.
    let _ = fs::remove_file(&partial);
    let _ = fs::remove_file(&progress_path);
    let mut cmd = Command::new(binary);
    cmd.arg("--grid-file")
        .arg(layout.grid_path())
        .arg("--shard")
        .arg(slot.spec.to_string())
        .arg("--cache-dir")
        .arg(layout.cache_dir())
        .arg("--threads")
        .arg(grid_threads.to_string())
        .arg("--progress")
        .arg(&progress_path)
        .arg("--out")
        .arg(&partial)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(inject) = inject {
        if inject.shard == slot.spec.index && attempt == 1 {
            cmd.arg("--worker-abort-after")
                .arg(inject.abort_after.to_string());
        }
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn worker for shard {}: {e}", slot.spec))?;
    Ok(Worker {
        child,
        attempt,
        progress_path,
        parsed: 0,
        last_size: 0,
        last_activity: Instant::now(),
    })
}

/// Rewrite `partial.jsonl` from the sealed shards so far.
fn write_partial_report(
    layout: &RunDir,
    grid: &ScenarioGrid,
    sealed: &[Option<ShardFile>],
) -> Result<(), String> {
    let outcomes: Vec<_> = sealed
        .iter()
        .flatten()
        .flat_map(|shard| shard.outcomes.iter().cloned())
        .collect();
    let report = aggregate_covered(grid, &outcomes);
    fs::write(layout.partial_report_path(), to_jsonl_string(&report))
        .map_err(|e| format!("cannot write partial report: {e}"))
}

/// The supervision loop. See the module docs for the state machine.
pub(super) fn run(
    grid: &ScenarioGrid,
    config: &OrchestratorConfig,
    layout: &RunDir,
    resuming: bool,
) -> Result<OrchestrateReport, String> {
    let scenario_count = grid.scenario_count();
    let binary = match &config.worker_binary {
        Some(path) => path.clone(),
        None => {
            std::env::current_exe().map_err(|e| format!("cannot locate the worker binary: {e}"))?
        }
    };
    let mut log = if resuming {
        EventLog::append(&layout.events_path())
    } else {
        EventLog::create(&layout.events_path())
    }
    .map_err(|e| format!("cannot open events.jsonl: {e}"))?;
    let emit_err = |e: std::io::Error| format!("cannot write events.jsonl: {e}");

    let mut slots: Vec<Slot> = (0..config.workers)
        .map(|index| {
            let spec = ShardSpec::new(index, config.workers).expect("index < workers");
            Slot {
                spec,
                scenarios: spec.ids(scenario_count).len(),
                state: State::Pending,
                attempts: 0,
                simulated: 0,
                cache_hits: 0,
            }
        })
        .collect();
    let mut sealed_files: Vec<Option<ShardFile>> = (0..config.workers).map(|_| None).collect();
    let mut retries = 0u32;
    let mut total_simulated = 0usize;
    let mut total_cache_hits = 0usize;

    log.emit(
        if resuming {
            "run-resumed"
        } else {
            "run-started"
        },
        vec![
            u64_field("workers", config.workers as u64),
            u64_field("scenarios", scenario_count as u64),
            str_field("fingerprint", &grid.fingerprint().to_hex()),
        ],
    )
    .map_err(emit_err)?;

    // Resume scan: keep valid sealed shards, seal valid leftovers, respawn
    // the rest. Anything invalid is deleted and recomputed from the cache.
    if resuming {
        for slot in &mut slots {
            let index = slot.spec.index;
            let sealed_path = layout.shard_sealed(index);
            if let Ok(text) = fs::read_to_string(&sealed_path) {
                match validate_shard(&text, grid, slot.spec) {
                    Ok(shard) => {
                        sealed_files[index] = Some(shard);
                        slot.state = State::Sealed;
                        log.emit(
                            "shard-recovered",
                            vec![
                                u64_field("shard", index as u64),
                                str_field("from", "sealed"),
                            ],
                        )
                        .map_err(emit_err)?;
                        continue;
                    }
                    Err(reason) => {
                        let _ = fs::remove_file(&sealed_path);
                        log.emit(
                            "shard-invalid",
                            vec![
                                u64_field("shard", index as u64),
                                str_field("reason", &reason),
                            ],
                        )
                        .map_err(emit_err)?;
                    }
                }
            }
            if layout.shard_partial(index).exists() {
                match seal_partial(layout, grid, slot.spec) {
                    Ok(shard) => {
                        sealed_files[index] = Some(shard);
                        slot.state = State::Sealed;
                        log.emit(
                            "shard-recovered",
                            vec![
                                u64_field("shard", index as u64),
                                str_field("from", "partial"),
                            ],
                        )
                        .map_err(emit_err)?;
                    }
                    Err(reason) => {
                        let _ = fs::remove_file(layout.shard_partial(index));
                        log.emit(
                            "shard-invalid",
                            vec![
                                u64_field("shard", index as u64),
                                str_field("reason", &reason),
                            ],
                        )
                        .map_err(emit_err)?;
                    }
                }
            }
        }
        write_partial_report(layout, grid, &sealed_files)?;
    }

    let started = Instant::now();
    let mut last_line = String::new();
    loop {
        // Spawn every pending shard that still has attempts left.
        for slot in &mut slots {
            if !matches!(slot.state, State::Pending) {
                continue;
            }
            if slot.attempts >= config.max_attempts {
                let reason = format!(
                    "shard {} exhausted its {} attempt(s)",
                    slot.spec, config.max_attempts
                );
                log.emit(
                    "shard-failed",
                    vec![
                        u64_field("shard", slot.spec.index as u64),
                        str_field("reason", &reason),
                    ],
                )
                .map_err(emit_err)?;
                slot.state = State::Failed(reason);
                continue;
            }
            let attempt = last_attempt_on_disk(layout, slot.spec.index) + 1;
            slot.attempts += 1;
            if slot.attempts > 1 {
                retries += 1;
            }
            slot.simulated = 0;
            slot.cache_hits = 0;
            match spawn_worker(
                &binary,
                config.worker_threads.max(1),
                layout,
                slot,
                attempt,
                config.inject_abort,
            ) {
                Ok(worker) => {
                    log.emit(
                        "worker-spawned",
                        vec![
                            u64_field("shard", slot.spec.index as u64),
                            u64_field("attempt", attempt as u64),
                            u64_field("scenarios", slot.scenarios as u64),
                        ],
                    )
                    .map_err(emit_err)?;
                    slot.state = State::Running(worker);
                }
                Err(reason) => {
                    log.emit(
                        "worker-spawn-failed",
                        vec![
                            u64_field("shard", slot.spec.index as u64),
                            str_field("reason", &reason),
                        ],
                    )
                    .map_err(emit_err)?;
                    // Stays Pending; the attempt was consumed, so this
                    // terminates in shard-failed once attempts run out.
                }
            }
        }

        // Poll every running worker: forward progress, reap exits, enforce
        // the heartbeat.
        let mut newly_sealed = false;
        for slot in &mut slots {
            let State::Running(worker) = &mut slot.state else {
                continue;
            };
            let index = slot.spec.index;
            let attempt = worker.attempt;
            let (events, _) = worker.drain();
            for event in &events {
                match &event.body {
                    ProgressBody::ShardClaimed { .. } => {
                        log.emit(
                            "shard-claimed",
                            vec![
                                u64_field("shard", index as u64),
                                u64_field("attempt", attempt as u64),
                            ],
                        )
                        .map_err(emit_err)?;
                    }
                    ProgressBody::Scenario { id, source } => {
                        match source {
                            OutcomeSource::Simulated => slot.simulated += 1,
                            OutcomeSource::CacheHit => slot.cache_hits += 1,
                        }
                        log.emit(
                            "scenario",
                            vec![
                                u64_field("shard", index as u64),
                                u64_field("id", *id as u64),
                                str_field(
                                    "source",
                                    match source {
                                        OutcomeSource::Simulated => "simulated",
                                        OutcomeSource::CacheHit => "cache-hit",
                                    },
                                ),
                                u64_field("worker_seq", event.seq),
                            ],
                        )
                        .map_err(emit_err)?;
                    }
                    ProgressBody::ShardSealed { .. } => {
                        // The authoritative seal is the supervisor's
                        // validate+rename below.
                    }
                }
            }

            let failure: Option<String> = match worker.child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    match seal_partial(layout, grid, slot.spec) {
                        Ok(shard) => {
                            total_simulated += slot.simulated;
                            total_cache_hits += slot.cache_hits;
                            sealed_files[index] = Some(shard);
                            log.emit(
                                "shard-sealed",
                                vec![
                                    u64_field("shard", index as u64),
                                    u64_field("attempt", attempt as u64),
                                    u64_field("simulated", slot.simulated as u64),
                                    u64_field("cache_hits", slot.cache_hits as u64),
                                ],
                            )
                            .map_err(emit_err)?;
                            // Counters moved into the run totals above.
                            slot.simulated = 0;
                            slot.cache_hits = 0;
                            slot.state = State::Sealed;
                            newly_sealed = true;
                            continue;
                        }
                        Err(reason) => Some(format!("worker exited cleanly but {reason}")),
                    }
                }
                Ok(Some(status)) => Some(match status.code() {
                    Some(code) => format!("worker exited with code {code}"),
                    None => "worker was killed by a signal".to_string(),
                }),
                Ok(None) => {
                    if worker.last_activity.elapsed() > config.heartbeat_timeout {
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                        Some(format!(
                            "no heartbeat for {:.0?}: worker presumed dead",
                            config.heartbeat_timeout
                        ))
                    } else {
                        None
                    }
                }
                Err(e) => Some(format!("cannot poll worker: {e}")),
            };

            if let Some(reason) = failure {
                log.emit(
                    "worker-lost",
                    vec![
                        u64_field("shard", index as u64),
                        u64_field("attempt", attempt as u64),
                        str_field("reason", &reason),
                    ],
                )
                .map_err(emit_err)?;
                // Back to Pending: the next loop iteration respawns (or
                // declares the shard failed once attempts are exhausted).
                slot.state = State::Pending;
            }
        }

        if newly_sealed {
            write_partial_report(layout, grid, &sealed_files)?;
        }

        // Human progress (stderr only — ETA and wall-clock never enter the
        // deterministic files).
        if !config.quiet {
            let done: usize = slots.iter().map(Slot::done).sum();
            let hits: usize = total_cache_hits + slots.iter().map(|s| s.cache_hits).sum::<usize>();
            let sealed = slots
                .iter()
                .filter(|s| matches!(s.state, State::Sealed))
                .count();
            let states: Vec<String> = slots
                .iter()
                .map(|s| match &s.state {
                    State::Pending => format!("{}:wait", s.spec.index),
                    State::Running(w) => format!(
                        "{}:run#{} {}/{}",
                        s.spec.index,
                        w.attempt,
                        s.done(),
                        s.scenarios
                    ),
                    State::Sealed => format!("{}:sealed", s.spec.index),
                    State::Failed(_) => format!("{}:FAILED", s.spec.index),
                })
                .collect();
            let elapsed = started.elapsed().as_secs_f64();
            let eta = if done > 0 && done < scenario_count {
                let rate = done as f64 / elapsed.max(1e-9);
                format!(" · ETA {:.0}s", (scenario_count - done) as f64 / rate)
            } else {
                String::new()
            };
            let line = format!(
                "orchestrate: {done}/{scenario_count} scenarios ({hits} cache hits) · \
                 sealed {sealed}/{} shards · [{}]{eta}",
                config.workers,
                states.join(" | "),
            );
            if line != last_line {
                eprintln!("{line}");
                last_line = line;
            }
        }

        let all_sealed = slots.iter().all(|s| matches!(s.state, State::Sealed));
        if all_sealed {
            break;
        }
        let any_live = slots
            .iter()
            .any(|s| matches!(s.state, State::Pending | State::Running(_)));
        if !any_live {
            // Only Sealed and Failed remain: the run is over and lost.
            let reasons: Vec<String> = slots
                .iter()
                .filter_map(|s| match &s.state {
                    State::Failed(reason) => Some(reason.clone()),
                    _ => None,
                })
                .collect();
            log.emit("run-failed", vec![str_field("reason", &reasons.join("; "))])
                .map_err(emit_err)?;
            return Err(format!(
                "{} (the run directory is resumable with --resume)",
                reasons.join("; ")
            ));
        }
        std::thread::sleep(config.poll_interval);
    }

    // Every shard sealed: the full-partition merge is the final (and
    // authoritative) validation pass.
    let shards: Vec<ShardFile> = sealed_files.into_iter().flatten().collect();
    let (merged_grid, result) = merge_shards(shards)?;
    if merged_grid.fingerprint() != grid.fingerprint() {
        return Err("merged grid does not match the run's grid".to_string());
    }
    let report = aggregate(&merged_grid, &result);
    let merged_jsonl = to_jsonl_string(&report);
    fs::write(layout.merged_path(), &merged_jsonl)
        .map_err(|e| format!("cannot write merged.jsonl: {e}"))?;
    // At full coverage the partial report equals the final one.
    fs::write(layout.partial_report_path(), &merged_jsonl)
        .map_err(|e| format!("cannot write partial report: {e}"))?;
    log.emit(
        "run-complete",
        vec![
            u64_field("scenarios", scenario_count as u64),
            u64_field("simulated", total_simulated as u64),
            u64_field("cache_hits", total_cache_hits as u64),
            u64_field("retries", retries as u64),
        ],
    )
    .map_err(emit_err)?;

    Ok(OrchestrateReport {
        merged_jsonl,
        scenarios: scenario_count,
        simulated: total_simulated,
        cache_hits: total_cache_hits,
        retries,
        sealed_shards: config.workers,
    })
}
