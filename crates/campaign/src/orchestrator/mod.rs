//! Multi-process campaign orchestration: shard dispatch, supervision,
//! crash recovery and live merging.
//!
//! The orchestrator turns the crate's distribution primitives — the
//! content-addressed [`crate::cache::OutcomeCache`], deterministic
//! [`crate::shard::ShardSpec`] partitions and [`crate::shard::merge_shards`]
//! — into a supervised multi-process run. Given a [`ScenarioGrid`] and a
//! worker count `N`, it spawns `N` worker subprocesses (`campaign
//! --shard I/N --cache-dir …`) into a shared **run directory** and drives
//! them to completion:
//!
//! * **Liveness** is tracked through each worker's progress file (see
//!   [`events`]): workers append one flushed JSONL record per scenario, so
//!   the file growing *is* the heartbeat — no clocks in any file, no
//!   signal plumbing.
//! * **Crash recovery** is free by construction: every finished scenario is
//!   appended to the shared cache *as it completes*, so a worker that dies
//!   (or stalls past the heartbeat timeout and is killed) is simply
//!   respawned and replays its shard from the cache, recomputing only what
//!   is missing. A shard exhausting its attempts fails the run but leaves
//!   the run directory resumable.
//! * **Sealing**: workers write their shard file to
//!   `shards/shard-I.jsonl.partial`; the supervisor validates it with the
//!   same parser `campaign merge` uses ([`crate::shard::read_shard`]) and
//!   renames it to `shards/shard-I.jsonl`. Rename-after-validate means a
//!   sealed shard file is always complete and well-formed.
//! * **Live merging**: as shards seal, the supervisor rewrites
//!   `partial.jsonl` with [`crate::report::aggregate_covered`] (complete
//!   cells only) and, once every shard is sealed, runs the full
//!   [`crate::shard::merge_shards`] validation to produce `merged.jsonl` —
//!   **byte-identical** to an uninterrupted single-process run.
//!
//! ## Run directory layout
//!
//! ```text
//! RUN_DIR/
//!   manifest.json     worker count + grid fingerprint (resume validation)
//!   grid.json         the full grid descriptor workers run (--grid-file)
//!   cache/            shared outcome cache (crash-recovery ledger)
//!   progress/         shard-I.attempt-K.jsonl worker event streams
//!   shards/           shard-I.jsonl.partial → (validate+rename) shard-I.jsonl
//!   events.jsonl      seq-numbered machine-readable supervision record
//!   partial.jsonl     live partial report (complete cells so far)
//!   merged.jsonl      the final report, byte-identical to single-process
//! ```
//!
//! [`resume`] picks a run directory back up: sealed shards are kept,
//! valid leftover partials are sealed in place, and everything else is
//! respawned against the warm cache. The resumed `merged.jsonl` is
//! byte-identical to an uninterrupted run — the property the
//! `integration_orchestrator` test and the CI smoke job pin down.

pub mod events;
mod supervisor;

use crate::grid::ScenarioGrid;
use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Kill-switch injected into one worker attempt, for crash-recovery tests:
/// the selected shard's **first** attempt runs with
/// `--worker-abort-after N`, making the worker exit mid-shard after `N`
/// simulated scenarios. Retries (and resumed runs) get no injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectAbort {
    /// Shard index whose first attempt aborts.
    pub shard: usize,
    /// Simulated scenarios after which the worker exits.
    pub abort_after: usize,
}

impl InjectAbort {
    /// Parse the CLI form `SHARD:AFTER` (e.g. `1:5`).
    pub fn parse(spec: &str) -> Result<InjectAbort, String> {
        let (shard, after) = spec
            .split_once(':')
            .ok_or_else(|| format!("inject-abort spec '{spec}' is not of the form SHARD:AFTER"))?;
        Ok(InjectAbort {
            shard: shard
                .trim()
                .parse()
                .map_err(|_| format!("inject-abort spec '{spec}': bad shard index"))?,
            abort_after: after
                .trim()
                .parse()
                .map_err(|_| format!("inject-abort spec '{spec}': bad scenario count"))?,
        })
    }
}

/// How an orchestrated run is supervised.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker subprocesses to spawn — also the shard count `N` of the
    /// deterministic `I/N` partition.
    pub workers: usize,
    /// The shared run directory (created if missing; must not hold a
    /// different run).
    pub run_dir: PathBuf,
    /// The worker binary. `None` uses the current executable — the
    /// `campaign` binary orchestrating *is* the worker binary.
    pub worker_binary: Option<PathBuf>,
    /// `--threads` passed to each worker (default 1: the parallelism is
    /// across processes).
    pub worker_threads: usize,
    /// A worker whose progress file does not grow for this long is
    /// declared dead, killed and retried.
    pub heartbeat_timeout: Duration,
    /// Supervisor poll cadence.
    pub poll_interval: Duration,
    /// Spawn attempts per shard before the run fails (≥ 1).
    pub max_attempts: u32,
    /// Fault injection for crash-recovery tests.
    pub inject_abort: Option<InjectAbort>,
    /// Suppress the human progress line on stderr.
    pub quiet: bool,
}

impl OrchestratorConfig {
    /// A config with the defaults: 1 thread per worker, 60 s heartbeat
    /// timeout, 50 ms polls, 3 attempts per shard.
    pub fn new(workers: usize, run_dir: impl Into<PathBuf>) -> OrchestratorConfig {
        OrchestratorConfig {
            workers,
            run_dir: run_dir.into(),
            worker_binary: None,
            worker_threads: 1,
            heartbeat_timeout: Duration::from_secs(60),
            poll_interval: Duration::from_millis(50),
            max_attempts: 3,
            inject_abort: None,
            quiet: false,
        }
    }
}

/// What a finished orchestrated run produced.
#[derive(Debug, Clone)]
pub struct OrchestrateReport {
    /// The merged JSONL report — byte-identical to a single-process run.
    pub merged_jsonl: String,
    /// Scenarios in the grid.
    pub scenarios: usize,
    /// Scenario events observed from the attempts that sealed (simulated).
    pub simulated: usize,
    /// Scenario events observed from the attempts that sealed (cache hits).
    pub cache_hits: usize,
    /// Worker respawns (retries after a death, stall or bad shard file).
    pub retries: u32,
    /// Shards sealed (always the full partition on success).
    pub sealed_shards: usize,
}

/// Path helpers for the run-directory layout (see the module docs).
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Wrap a run-directory root.
    pub fn new(root: impl Into<PathBuf>) -> RunDir {
        RunDir { root: root.into() }
    }

    /// The run-directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `manifest.json`: worker count + grid fingerprint.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// `grid.json`: the grid descriptor workers load via `--grid-file`.
    pub fn grid_path(&self) -> PathBuf {
        self.root.join("grid.json")
    }

    /// `cache/`: the shared outcome cache.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// `events.jsonl`: the supervisor's machine-readable event log.
    pub fn events_path(&self) -> PathBuf {
        self.root.join("events.jsonl")
    }

    /// `partial.jsonl`: the live partial report.
    pub fn partial_report_path(&self) -> PathBuf {
        self.root.join("partial.jsonl")
    }

    /// `merged.jsonl`: the final merged report.
    pub fn merged_path(&self) -> PathBuf {
        self.root.join("merged.jsonl")
    }

    /// `shards/`: sealed shard files (and in-flight partials).
    pub fn shards_dir(&self) -> PathBuf {
        self.root.join("shards")
    }

    /// `progress/`: worker progress streams.
    pub fn progress_dir(&self) -> PathBuf {
        self.root.join("progress")
    }

    /// The in-flight shard file worker `index` writes.
    pub fn shard_partial(&self, index: usize) -> PathBuf {
        self.shards_dir()
            .join(format!("shard-{index}.jsonl.partial"))
    }

    /// The sealed (validated, renamed) shard file for `index`.
    pub fn shard_sealed(&self, index: usize) -> PathBuf {
        self.shards_dir().join(format!("shard-{index}.jsonl"))
    }

    /// The progress stream of shard `index`'s attempt number `attempt`.
    pub fn progress_file(&self, index: usize, attempt: u32) -> PathBuf {
        self.progress_dir()
            .join(format!("shard-{index}.attempt-{attempt}.jsonl"))
    }
}

fn manifest_value(grid: &ScenarioGrid, workers: usize) -> Value {
    Value::Map(vec![
        (
            "kind".to_string(),
            Value::Str("orchestrate-manifest".into()),
        ),
        (
            "fingerprint".to_string(),
            Value::Str(grid.fingerprint().to_hex()),
        ),
        ("workers".to_string(), Value::U64(workers as u64)),
        (
            "scenarios".to_string(),
            Value::U64(grid.scenario_count() as u64),
        ),
    ])
}

/// Load the grid and worker count a run directory was created with.
/// Validates that `grid.json` matches the fingerprint recorded in
/// `manifest.json`, so a hand-edited descriptor cannot silently change
/// what `--resume` runs.
pub fn load_run_dir(dir: &Path) -> Result<(ScenarioGrid, usize), String> {
    let layout = RunDir::new(dir);
    let grid_text = fs::read_to_string(layout.grid_path()).map_err(|e| {
        format!(
            "cannot read {}: {e} (not a run directory?)",
            layout.grid_path().display()
        )
    })?;
    let grid: ScenarioGrid = serde_json::from_str(&grid_text)
        .map_err(|e| format!("{}: {e}", layout.grid_path().display()))?;
    let manifest_text = fs::read_to_string(layout.manifest_path())
        .map_err(|e| format!("cannot read {}: {e}", layout.manifest_path().display()))?;
    let manifest: Value = serde_json::from_str(&manifest_text)
        .map_err(|e| format!("{}: {e}", layout.manifest_path().display()))?;
    if manifest.get_field("kind").and_then(|k| k.as_str()) != Some("orchestrate-manifest") {
        return Err(format!(
            "{} is not an orchestrate manifest",
            layout.manifest_path().display()
        ));
    }
    let fingerprint = manifest
        .get_field("fingerprint")
        .and_then(|f| f.as_str())
        .ok_or("manifest lacks a fingerprint")?;
    if fingerprint != grid.fingerprint().to_hex() {
        return Err(format!(
            "manifest fingerprint {fingerprint} does not match grid.json ({}): \
             the run directory was tampered with",
            grid.fingerprint()
        ));
    }
    let workers = manifest
        .get_field("workers")
        .and_then(|w| w.as_u64())
        .ok_or("manifest lacks a worker count")? as usize;
    if workers == 0 {
        return Err("manifest records zero workers".to_string());
    }
    Ok((grid, workers))
}

/// Orchestrate a fresh run of `grid` under `config.run_dir`.
///
/// The run directory must be new (or empty): an existing run must be
/// picked up with [`resume`] instead, so a mistyped `--run-dir` cannot
/// clobber finished work. On success the merged report has been written to
/// `merged.jsonl` and is returned; on failure the run directory is left
/// resumable.
pub fn orchestrate(
    grid: &ScenarioGrid,
    config: &OrchestratorConfig,
) -> Result<OrchestrateReport, String> {
    if config.workers == 0 {
        return Err("orchestrate needs at least 1 worker".to_string());
    }
    if config.max_attempts == 0 {
        return Err("max attempts must be at least 1".to_string());
    }
    let layout = RunDir::new(&config.run_dir);
    if layout.manifest_path().exists() {
        return Err(format!(
            "{} already holds a run (use --resume to pick it up)",
            layout.root().display()
        ));
    }
    fs::create_dir_all(layout.root()).map_err(|e| format!("cannot create run dir: {e}"))?;
    fs::create_dir_all(layout.shards_dir())
        .map_err(|e| format!("cannot create shards dir: {e}"))?;
    fs::create_dir_all(layout.progress_dir())
        .map_err(|e| format!("cannot create progress dir: {e}"))?;
    let grid_json = serde_json::to_string(&serde_json::to_value(grid).expect("grid to_value"))
        .expect("grid to_string");
    fs::write(layout.grid_path(), grid_json + "\n")
        .map_err(|e| format!("cannot write grid.json: {e}"))?;
    let manifest =
        serde_json::to_string(&manifest_value(grid, config.workers)).expect("manifest to_string");
    fs::write(layout.manifest_path(), manifest + "\n")
        .map_err(|e| format!("cannot write manifest.json: {e}"))?;
    supervisor::run(grid, config, &layout, false)
}

/// Resume a killed or failed run from its run directory.
///
/// The grid and worker count come from the directory's own
/// `manifest.json`/`grid.json` (validated against each other). Sealed
/// shards are kept as-is, a complete leftover `.partial` is sealed in
/// place, and the remaining shards are respawned against the warm cache —
/// so the resumed `merged.jsonl` is byte-identical to an uninterrupted
/// run. Fault injection is ignored on resume.
pub fn resume(config: &OrchestratorConfig) -> Result<OrchestrateReport, String> {
    let (grid, workers) = load_run_dir(&config.run_dir)?;
    let mut config = config.clone();
    config.workers = workers;
    config.inject_abort = None;
    let layout = RunDir::new(&config.run_dir);
    fs::create_dir_all(layout.shards_dir())
        .map_err(|e| format!("cannot create shards dir: {e}"))?;
    fs::create_dir_all(layout.progress_dir())
        .map_err(|e| format!("cannot create progress dir: {e}"))?;
    supervisor::run(&grid, &config, &layout, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_core::policy::PolicyId;
    use qnet_core::workload::WorkloadSpec;
    use qnet_topology::Topology;

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid::new(3)
            .with_topologies(vec![Topology::Cycle { nodes: 5 }])
            .with_modes(vec![PolicyId::OBLIVIOUS])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
            .with_replicates(2)
            .with_horizon_s(300.0)
    }

    #[test]
    fn inject_abort_parses_and_rejects_nonsense() {
        assert_eq!(
            InjectAbort::parse("1:5").unwrap(),
            InjectAbort {
                shard: 1,
                abort_after: 5
            }
        );
        assert!(InjectAbort::parse("5").is_err());
        assert!(InjectAbort::parse("a:5").is_err());
        assert!(InjectAbort::parse("1:b").is_err());
    }

    #[test]
    fn run_dir_layout_is_stable() {
        let layout = RunDir::new("/tmp/run");
        assert_eq!(layout.grid_path(), Path::new("/tmp/run/grid.json"));
        assert_eq!(
            layout.shard_partial(2),
            Path::new("/tmp/run/shards/shard-2.jsonl.partial")
        );
        assert_eq!(
            layout.shard_sealed(2),
            Path::new("/tmp/run/shards/shard-2.jsonl")
        );
        assert_eq!(
            layout.progress_file(0, 3),
            Path::new("/tmp/run/progress/shard-0.attempt-3.jsonl")
        );
    }

    #[test]
    fn manifest_and_grid_round_trip_through_load_run_dir() {
        let dir = std::env::temp_dir().join(format!("qnet-orch-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let layout = RunDir::new(&dir);
        fs::create_dir_all(layout.root()).unwrap();
        let grid_json = serde_json::to_string(&serde_json::to_value(&grid).unwrap()).unwrap();
        fs::write(layout.grid_path(), grid_json).unwrap();
        fs::write(
            layout.manifest_path(),
            serde_json::to_string(&manifest_value(&grid, 3)).unwrap(),
        )
        .unwrap();

        let (loaded, workers) = load_run_dir(&dir).unwrap();
        assert_eq!(loaded, grid);
        assert_eq!(workers, 3);

        // A tampered grid descriptor is rejected by the fingerprint check.
        let mut other = tiny_grid();
        other.master_seed += 1;
        let other_json = serde_json::to_string(&serde_json::to_value(&other).unwrap()).unwrap();
        fs::write(layout.grid_path(), other_json).unwrap();
        let err = load_run_dir(&dir).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_orchestrate_refuses_an_existing_run() {
        let dir = std::env::temp_dir().join(format!("qnet-orch-refuse-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        fs::create_dir_all(&dir).unwrap();
        fs::write(RunDir::new(&dir).manifest_path(), "{}").unwrap();
        let err = orchestrate(&grid, &OrchestratorConfig::new(2, &dir)).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
