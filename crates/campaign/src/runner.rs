//! The parallel campaign runner: work-chunked threads over a scenario grid.
//!
//! Scenarios are embarrassingly parallel (each `Experiment` is a
//! self-contained, seeded, single-threaded simulation), so the runner is a
//! classic chunked work-stealing pool built from `std::thread` and an
//! atomic cursor — no external dependencies:
//!
//! * the scenario id space `0..n` is claimed in contiguous chunks via a
//!   shared [`AtomicUsize`], which keeps cache-friendly locality and makes
//!   the claim operation a single `fetch_add`,
//! * workers re-materialise each [`crate::grid::Scenario`] from the grid by
//!   id (the grid
//!   is `Sync`; materialisation is cheap relative to a simulation run), run
//!   it, and send `(id, outcome)` back over an [`mpsc`] channel,
//! * the collector stores outcomes into a dense `Vec` slot per id.
//!
//! **Determinism:** outcomes carry no wall-clock data, every scenario's seed
//! comes from the grid (not from execution order), and downstream
//! aggregation consumes outcomes strictly in id order. Running with 1 or N
//! threads therefore produces byte-identical reports — the property the
//! `campaign_determinism` tests pin down.

use crate::cache::OutcomeCache;
use crate::grid::ScenarioGrid;
use qnet_core::experiment::{Experiment, ExperimentResult};
use serde::{DeError, Deserialize, Serialize, Value};
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// How the runner schedules work.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunnerConfig {
    /// Worker threads. `0` means "use available parallelism".
    pub threads: usize,
    /// Scenario ids claimed per cursor fetch. `0` picks a chunk size that
    /// gives each thread ~8 claims, clamped to `[1, 64]`.
    pub chunk_size: usize,
}

impl RunnerConfig {
    /// A serial runner (one worker, useful as the determinism baseline).
    pub fn serial() -> Self {
        RunnerConfig {
            threads: 1,
            chunk_size: 0,
        }
    }

    /// A runner with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        RunnerConfig {
            threads,
            chunk_size: 0,
        }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    fn resolved_chunk(&self, scenarios: usize, threads: usize) -> usize {
        if self.chunk_size > 0 {
            self.chunk_size
        } else {
            (scenarios / (threads * 8).max(1)).clamp(1, 64)
        }
    }
}

/// The outcome of one scenario: the replicate coordinates plus the scalar
/// measurements aggregation consumes. Deliberately wall-clock-free so
/// reports are deterministic.
///
/// Serialization (manual impls below): the physics columns — `fidelity_*`,
/// `expired_pairs`, `fidelity_rejected` — are emitted only when populated,
/// so ideal-physics outcomes keep the exact legacy byte layout in cache and
/// shard files, and legacy lines load with the physics columns empty.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario id.
    pub id: usize,
    /// Cell the scenario belongs to.
    pub cell: usize,
    /// Replicate index within the cell.
    pub replicate: u32,
    /// The derived seed the run used.
    pub seed: u64,
    /// The paper's swap-overhead metric (`None` if the denominator was 0).
    pub swap_overhead: Option<f64>,
    /// Satisfied requests.
    pub satisfied_requests: usize,
    /// Requests injected into the system before the run ended.
    pub arrived_requests: u64,
    /// Requests still pending at the end.
    pub unsatisfied_requests: u64,
    /// Total swaps performed.
    pub swaps_performed: u64,
    /// Bell pairs generated.
    pub pairs_generated: u64,
    /// Simulated seconds the run covered.
    pub simulated_seconds: f64,
    /// Classical count-update messages (knowledge-model cost).
    pub count_update_messages: u64,
    /// Mean sojourn latency (arrival → satisfaction) in simulated seconds;
    /// populated for open-loop scenarios with at least one satisfaction.
    pub latency_mean_s: Option<f64>,
    /// Median sojourn latency (open-loop scenarios only).
    pub latency_p50_s: Option<f64>,
    /// 95th-percentile sojourn latency (open-loop scenarios only).
    pub latency_p95_s: Option<f64>,
    /// Mean delivered end-to-end fidelity (decoherent-physics scenarios
    /// with at least one satisfaction only).
    pub fidelity_mean: Option<f64>,
    /// Median delivered fidelity (decoherent-physics scenarios only).
    pub fidelity_p50: Option<f64>,
    /// 95th-percentile delivered fidelity (decoherent-physics scenarios
    /// only).
    pub fidelity_p95: Option<f64>,
    /// Stored pairs discarded by the physics cutoff (0 under ideal physics).
    pub expired_pairs: u64,
    /// Deliveries rejected for falling below the fidelity floor (0 under
    /// ideal physics).
    pub fidelity_rejected: u64,
    /// Believed-feasible actions that failed against drifted ground truth
    /// (0 outside stale-control-plane scenarios).
    pub missed_swaps: u64,
    /// Mean age (seconds) of the believed rows stale decisions consulted
    /// (stale-control-plane scenarios with at least one decision only).
    pub stale_row_age_mean_s: Option<f64>,
    /// 95th-percentile believed-row age at decision time (stale scenarios
    /// only).
    pub stale_row_age_p95_s: Option<f64>,
    /// True when the run crossed the metrics recorder's exact-sample
    /// threshold: its latency/fidelity quantiles come from the fixed-memory
    /// log-bucketed sketch (~0.4 % relative value error) instead of exact
    /// nearest-rank. Emitted only when true, so small-run outcomes keep the
    /// legacy byte layout.
    pub sketch_quantiles: bool,
}

impl Serialize for ScenarioOutcome {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("id".to_string(), self.id.to_value()),
            ("cell".to_string(), self.cell.to_value()),
            ("replicate".to_string(), self.replicate.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("swap_overhead".to_string(), self.swap_overhead.to_value()),
            (
                "satisfied_requests".to_string(),
                self.satisfied_requests.to_value(),
            ),
            (
                "arrived_requests".to_string(),
                self.arrived_requests.to_value(),
            ),
            (
                "unsatisfied_requests".to_string(),
                self.unsatisfied_requests.to_value(),
            ),
            (
                "swaps_performed".to_string(),
                self.swaps_performed.to_value(),
            ),
            (
                "pairs_generated".to_string(),
                self.pairs_generated.to_value(),
            ),
            (
                "simulated_seconds".to_string(),
                self.simulated_seconds.to_value(),
            ),
            (
                "count_update_messages".to_string(),
                self.count_update_messages.to_value(),
            ),
            ("latency_mean_s".to_string(), self.latency_mean_s.to_value()),
            ("latency_p50_s".to_string(), self.latency_p50_s.to_value()),
            ("latency_p95_s".to_string(), self.latency_p95_s.to_value()),
        ];
        // Physics columns join only when populated: ideal outcomes keep the
        // legacy cache/shard byte layout.
        for (name, value) in [
            ("fidelity_mean", self.fidelity_mean),
            ("fidelity_p50", self.fidelity_p50),
            ("fidelity_p95", self.fidelity_p95),
        ] {
            if let Some(v) = value {
                entries.push((name.to_string(), v.to_value()));
            }
        }
        if self.expired_pairs > 0 {
            entries.push(("expired_pairs".to_string(), self.expired_pairs.to_value()));
        }
        if self.fidelity_rejected > 0 {
            entries.push((
                "fidelity_rejected".to_string(),
                self.fidelity_rejected.to_value(),
            ));
        }
        // Staleness columns join only for stale-control-plane scenarios:
        // global-knowledge outcomes keep the legacy byte layout.
        if self.missed_swaps > 0 {
            entries.push(("missed_swaps".to_string(), self.missed_swaps.to_value()));
        }
        if let Some(v) = self.stale_row_age_mean_s {
            entries.push(("stale_row_age_mean_s".to_string(), v.to_value()));
        }
        if let Some(v) = self.stale_row_age_p95_s {
            entries.push(("stale_row_age_p95_s".to_string(), v.to_value()));
        }
        if self.sketch_quantiles {
            entries.push((
                "sketch_quantiles".to_string(),
                self.sketch_quantiles.to_value(),
            ));
        }
        Value::Map(entries)
    }
}

impl Deserialize for ScenarioOutcome {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("ScenarioOutcome object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let counter = |name: &str| -> Result<u64, DeError> {
            match field(name) {
                Value::Null => Ok(0),
                v => Deserialize::from_value(v),
            }
        };
        Ok(ScenarioOutcome {
            id: Deserialize::from_value(field("id"))?,
            cell: Deserialize::from_value(field("cell"))?,
            replicate: Deserialize::from_value(field("replicate"))?,
            seed: Deserialize::from_value(field("seed"))?,
            swap_overhead: Deserialize::from_value(field("swap_overhead"))?,
            satisfied_requests: Deserialize::from_value(field("satisfied_requests"))?,
            arrived_requests: Deserialize::from_value(field("arrived_requests"))?,
            unsatisfied_requests: Deserialize::from_value(field("unsatisfied_requests"))?,
            swaps_performed: Deserialize::from_value(field("swaps_performed"))?,
            pairs_generated: Deserialize::from_value(field("pairs_generated"))?,
            simulated_seconds: Deserialize::from_value(field("simulated_seconds"))?,
            count_update_messages: Deserialize::from_value(field("count_update_messages"))?,
            latency_mean_s: Deserialize::from_value(field("latency_mean_s"))?,
            latency_p50_s: Deserialize::from_value(field("latency_p50_s"))?,
            latency_p95_s: Deserialize::from_value(field("latency_p95_s"))?,
            fidelity_mean: Deserialize::from_value(field("fidelity_mean"))?,
            fidelity_p50: Deserialize::from_value(field("fidelity_p50"))?,
            fidelity_p95: Deserialize::from_value(field("fidelity_p95"))?,
            expired_pairs: counter("expired_pairs")?,
            fidelity_rejected: counter("fidelity_rejected")?,
            missed_swaps: counter("missed_swaps")?,
            stale_row_age_mean_s: Deserialize::from_value(field("stale_row_age_mean_s"))?,
            stale_row_age_p95_s: Deserialize::from_value(field("stale_row_age_p95_s"))?,
            sketch_quantiles: match field("sketch_quantiles") {
                Value::Null => false,
                v => Deserialize::from_value(v)?,
            },
        })
    }
}

impl ScenarioOutcome {
    fn from_result(
        id: usize,
        cell: usize,
        replicate: u32,
        seed: u64,
        open_loop: bool,
        result: &ExperimentResult,
    ) -> Self {
        // Sojourn-latency columns are reported for open-loop traffic only:
        // closed-loop sojourns are measured from t = 0 and would just repeat
        // the satisfaction times (and emitting them would perturb the
        // byte-stable legacy report layout). One pass + one sort serves the
        // mean and both percentiles.
        let sojourn_stats = open_loop.then(|| result.metrics.sojourn_stats());
        ScenarioOutcome {
            id,
            cell,
            replicate,
            seed,
            swap_overhead: result.swap_overhead(),
            satisfied_requests: result.satisfied_requests,
            arrived_requests: result.metrics.arrived_requests,
            unsatisfied_requests: result.unsatisfied_requests,
            swaps_performed: result.swaps_performed,
            pairs_generated: result.metrics.pairs_generated,
            simulated_seconds: result.simulated_seconds,
            count_update_messages: result.metrics.classical.count_update_messages,
            latency_mean_s: sojourn_stats
                .as_ref()
                .filter(|stats| stats.count() > 0)
                .map(|stats| stats.mean()),
            latency_p50_s: if open_loop {
                result.metrics.sojourn_percentile(0.50)
            } else {
                None
            },
            latency_p95_s: if open_loop {
                result.metrics.sojourn_percentile(0.95)
            } else {
                None
            },
            // Delivered-fidelity columns: non-empty exactly when the
            // scenario ran decoherent physics and satisfied something (ideal
            // deliveries carry no fidelity), so ideal rows stay legacy.
            fidelity_mean: {
                let stats = result.metrics.fidelity_stats();
                (stats.count() > 0).then(|| stats.mean())
            },
            fidelity_p50: result.metrics.fidelity_percentile(0.50),
            fidelity_p95: result.metrics.fidelity_percentile(0.95),
            expired_pairs: result.metrics.expired_pairs,
            fidelity_rejected: result.metrics.fidelity_rejected_requests,
            missed_swaps: result.metrics.missed_swaps,
            stale_row_age_mean_s: result.metrics.stale_row_age_mean_s,
            stale_row_age_p95_s: result.metrics.stale_row_age_p95_s,
            sketch_quantiles: result.metrics.is_streamed(),
        }
    }

    /// Fraction of requests satisfied (fidelity-rejected deliveries count
    /// against the ratio, matching
    /// [`qnet_core::metrics::RunMetrics::satisfaction_ratio`]).
    pub fn satisfaction_ratio(&self) -> f64 {
        let total =
            self.satisfied_requests as u64 + self.unsatisfied_requests + self.fidelity_rejected;
        if total == 0 {
            1.0
        } else {
            self.satisfied_requests as f64 / total as f64
        }
    }
}

/// How one requested scenario's outcome was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeSource {
    /// The scenario's `Experiment` executed this run.
    Simulated,
    /// The outcome was served from the content-addressed cache.
    CacheHit,
}

/// One per-scenario progress event from a streaming run.
///
/// Events are deliberately **wall-clock-free**: the only ordering datum is
/// `seq`, a dense 0-based ordinal assigned as events are delivered. Any
/// consumer that persists or merges progress streams must order by sequence
/// number, never by timestamps — that is what keeps progress logging fully
/// outside the deterministic result path (reports stay byte-identical
/// whether or not anyone listens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioEvent<'a> {
    /// Dense per-run event ordinal (`0..ids.len()`), the merge-order key.
    pub seq: u64,
    /// The scenario the event is about.
    pub id: usize,
    /// Whether the outcome was simulated or replayed from the cache.
    pub source: OutcomeSource,
    /// The outcome itself.
    pub outcome: &'a ScenarioOutcome,
}

/// Everything a campaign run produced: the outcome vector (id order) plus
/// execution metadata that is *not* part of the deterministic report.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One outcome per executed scenario, in scenario-id order. A full run
    /// is dense over `0..grid.scenario_count()`; a shard run covers only
    /// the shard's ids.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Worker threads actually used (`0` when every outcome came from the
    /// cache or a merge and nothing simulated).
    pub threads_used: usize,
    /// Wall-clock seconds the run took (informational only; never written
    /// into deterministic reports).
    pub wall_seconds: f64,
    /// Scenarios whose `Experiment` actually executed this run.
    pub simulated: usize,
    /// Scenarios served from the outcome cache without simulating.
    pub cache_hits: usize,
}

/// Execute the scenarios named by `ids` (sorted, deduplicated) in parallel
/// and return their outcomes in the same order. `on_outcome(pos, outcome)`
/// fires from the collector as each outcome lands (completion order).
fn execute_ids(
    grid: &ScenarioGrid,
    config: &RunnerConfig,
    ids: &[usize],
    mut on_outcome: impl FnMut(usize, &ScenarioOutcome),
) -> Vec<ScenarioOutcome> {
    let total = ids.len();
    let threads = config.resolved_threads().min(total.max(1));
    let chunk = config.resolved_chunk(total, threads);

    let mut slots: Vec<Option<ScenarioOutcome>> = Vec::new();
    slots.resize_with(total, || None);

    if total > 0 {
        // The cursor claims positions in `ids`, not raw scenario ids, so
        // chunks stay contiguous (and cache-friendly) even for strided
        // shard id sets.
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioOutcome)>();

        thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        return;
                    }
                    let end = (start + chunk).min(total);
                    for (pos, &id) in ids.iter().enumerate().take(end).skip(start) {
                        let scenario = grid.scenario(id);
                        let result = Experiment::new(scenario.config).run();
                        let outcome = ScenarioOutcome::from_result(
                            scenario.id,
                            scenario.cell,
                            scenario.replicate,
                            scenario.seed,
                            scenario.config.workload.is_open_loop(),
                            &result,
                        );
                        if tx.send((pos, outcome)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);

            while let Ok((pos, outcome)) = rx.recv() {
                debug_assert!(
                    slots[pos].is_none(),
                    "duplicate outcome for scenario {}",
                    outcome.id
                );
                on_outcome(pos, &outcome);
                slots[pos] = Some(outcome);
            }
        });
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(pos, slot)| {
            slot.unwrap_or_else(|| panic!("scenario {} produced no outcome", ids[pos]))
        })
        .collect()
}

/// Run the scenarios named by `ids` (must be strictly increasing and in
/// range), consulting `cache` before simulating and appending each fresh
/// outcome to it **as it completes**. The returned outcomes follow the
/// order of `ids`; cache hits skip the `Experiment` entirely.
///
/// `on_event` fires once per requested scenario with a dense, wall-clock-
/// free sequence number: cache hits first (in id order), then simulated
/// outcomes in completion order. Incremental cache appends mean a run
/// killed mid-way loses at most the scenarios still in flight — everything
/// already reported is replayable from the cache, which is what makes
/// orchestrated shard retries cheap.
pub fn run_scenarios_streaming(
    grid: &ScenarioGrid,
    config: &RunnerConfig,
    ids: &[usize],
    mut cache: Option<&mut OutcomeCache>,
    mut on_event: impl FnMut(ScenarioEvent<'_>),
) -> io::Result<CampaignResult> {
    let scenario_count = grid.scenario_count();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "scenario ids must be strictly increasing"
    );
    assert!(
        ids.last().is_none_or(|&last| last < scenario_count),
        "scenario id out of range"
    );
    let started = std::time::Instant::now();
    let total = ids.len();

    let mut slots: Vec<Option<ScenarioOutcome>> = Vec::new();
    slots.resize_with(total, || None);
    let mut misses: Vec<usize> = Vec::new();
    let mut miss_positions: Vec<usize> = Vec::new();
    if let Some(cache) = cache.as_deref() {
        for (pos, &id) in ids.iter().enumerate() {
            match cache.get(id) {
                Some(outcome) => slots[pos] = Some(outcome.clone()),
                None => {
                    misses.push(id);
                    miss_positions.push(pos);
                }
            }
        }
    } else {
        misses.extend_from_slice(ids);
        miss_positions.extend(0..total);
    }
    let cache_hits = total - misses.len();

    let mut seq: u64 = 0;
    for (pos, &id) in ids.iter().enumerate() {
        if let Some(outcome) = slots[pos].as_ref() {
            on_event(ScenarioEvent {
                seq,
                id,
                source: OutcomeSource::CacheHit,
                outcome,
            });
            seq += 1;
        }
    }

    // The append error is latched (not returned mid-run) so the already-
    // claimed simulations still drain; a broken cache then fails the run
    // after the workers join instead of deadlocking the channel.
    let mut append_error: Option<io::Error> = None;
    let fresh = execute_ids(grid, config, &misses, |_, outcome| {
        if append_error.is_none() {
            if let Some(cache) = cache.as_deref_mut() {
                if let Err(e) = cache.append(std::slice::from_ref(outcome)) {
                    append_error = Some(e);
                }
            }
        }
        on_event(ScenarioEvent {
            seq,
            id: outcome.id,
            source: OutcomeSource::Simulated,
            outcome,
        });
        seq += 1;
    });
    if let Some(e) = append_error {
        return Err(e);
    }
    let simulated = fresh.len();
    for (pos, outcome) in miss_positions.into_iter().zip(fresh) {
        slots[pos] = Some(outcome);
    }

    let outcomes: Vec<ScenarioOutcome> = slots
        .into_iter()
        .map(|slot| slot.expect("every requested scenario has an outcome"))
        .collect();

    // Worker threads actually spawned: execute_ids caps at one per miss,
    // and a fully-cached run spawns none.
    let threads_used = if simulated == 0 {
        0
    } else {
        config.resolved_threads().min(simulated)
    };
    Ok(CampaignResult {
        outcomes,
        threads_used,
        wall_seconds: started.elapsed().as_secs_f64(),
        simulated,
        cache_hits,
    })
}

/// [`run_scenarios_streaming`] with a counting callback: `on_progress(done,
/// total)` fires once per requested scenario, cache hits included.
pub fn run_scenarios_with_progress(
    grid: &ScenarioGrid,
    config: &RunnerConfig,
    ids: &[usize],
    cache: Option<&mut OutcomeCache>,
    mut on_progress: impl FnMut(usize, usize),
) -> io::Result<CampaignResult> {
    let total = ids.len();
    let mut done = 0usize;
    run_scenarios_streaming(grid, config, ids, cache, |_| {
        done += 1;
        on_progress(done, total);
    })
}

/// Execute every scenario of `grid` and return outcomes in id order.
///
/// Progress callback: `on_progress(done, total)` is invoked from the
/// collector as outcomes arrive (pass `|_, _| {}` to ignore).
pub fn run_campaign_with_progress(
    grid: &ScenarioGrid,
    config: &RunnerConfig,
    on_progress: impl FnMut(usize, usize),
) -> CampaignResult {
    let ids: Vec<usize> = (0..grid.scenario_count()).collect();
    run_scenarios_with_progress(grid, config, &ids, None, on_progress)
        .expect("cacheless runs perform no I/O")
}

/// [`run_campaign_with_progress`] without a progress callback.
pub fn run_campaign(grid: &ScenarioGrid, config: &RunnerConfig) -> CampaignResult {
    run_campaign_with_progress(grid, config, |_, _| {})
}

/// Run the full grid through an outcome cache: scenarios already cached are
/// served without simulating, fresh outcomes are appended to the cache, and
/// the aggregate report is byte-identical to an uncached run. A fully warm
/// cache makes this a zero-simulation replay (`simulated == 0`).
pub fn run_campaign_cached(
    grid: &ScenarioGrid,
    config: &RunnerConfig,
    cache: &mut OutcomeCache,
    on_progress: impl FnMut(usize, usize),
) -> io::Result<CampaignResult> {
    let ids: Vec<usize> = (0..grid.scenario_count()).collect();
    run_scenarios_with_progress(grid, config, &ids, Some(cache), on_progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_core::policy::PolicyId;
    use qnet_core::workload::WorkloadSpec;
    use qnet_topology::Topology;

    fn tiny_grid(replicates: u32) -> ScenarioGrid {
        ScenarioGrid::new(11)
            .with_topologies(vec![Topology::Cycle { nodes: 5 }])
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
            .with_replicates(replicates)
            .with_horizon_s(500.0)
    }

    #[test]
    fn runs_every_scenario_exactly_once() {
        let grid = tiny_grid(3);
        let result = run_campaign(&grid, &RunnerConfig::with_threads(4));
        assert_eq!(result.outcomes.len(), grid.scenario_count());
        for (i, o) in result.outcomes.iter().enumerate() {
            assert_eq!(o.id, i);
            assert_eq!(o.cell, i / 3);
        }
        assert!(result.wall_seconds >= 0.0);
        assert!(result.threads_used >= 1);
    }

    #[test]
    fn serial_and_parallel_outcomes_are_identical() {
        let grid = tiny_grid(2);
        let serial = run_campaign(&grid, &RunnerConfig::serial());
        let parallel = run_campaign(&grid, &RunnerConfig::with_threads(4));
        assert_eq!(serial.outcomes, parallel.outcomes);
    }

    #[test]
    fn progress_reaches_total() {
        let grid = tiny_grid(1);
        let mut last = 0;
        let result =
            run_campaign_with_progress(&grid, &RunnerConfig::with_threads(2), |done, total| {
                assert!(done <= total);
                last = done;
            });
        assert_eq!(last, grid.scenario_count());
        assert_eq!(result.outcomes.len(), grid.scenario_count());
    }

    #[test]
    fn outcome_satisfaction_ratio() {
        let grid = tiny_grid(1);
        let result = run_campaign(&grid, &RunnerConfig::serial());
        for o in &result.outcomes {
            let r = o.satisfaction_ratio();
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn open_loop_scenarios_carry_latency_closed_loop_do_not() {
        let grid = tiny_grid(1).with_workloads(vec![
            WorkloadSpec::closed_loop(0, 4, 4),
            WorkloadSpec::open_loop(0, 4, 0.05, 400.0),
        ]);
        let result = run_campaign(&grid, &RunnerConfig::serial());
        let keys: Vec<_> = (0..grid.cell_count()).map(|c| grid.cell_key(c)).collect();
        let mut open_with_latency = 0;
        for o in &result.outcomes {
            let open = keys[o.cell].traffic.is_some();
            if !open {
                assert_eq!(o.latency_mean_s, None);
                assert_eq!(o.latency_p50_s, None);
                assert_eq!(o.latency_p95_s, None);
            } else if o.satisfied_requests > 0 {
                let (mean, p50, p95) = (
                    o.latency_mean_s.unwrap(),
                    o.latency_p50_s.unwrap(),
                    o.latency_p95_s.unwrap(),
                );
                assert!(p50 <= p95 && mean >= 0.0);
                open_with_latency += 1;
            }
            assert!(o.arrived_requests >= o.satisfied_requests as u64);
        }
        assert!(
            open_with_latency > 0,
            "open-loop cells must satisfy requests"
        );
    }

    #[test]
    fn subset_runs_return_outcomes_in_id_order() {
        let grid = tiny_grid(3);
        let full = run_campaign(&grid, &RunnerConfig::serial());
        assert_eq!(full.simulated, grid.scenario_count());
        assert_eq!(full.cache_hits, 0);
        let ids = [1usize, 2, 5];
        let subset =
            run_scenarios_with_progress(&grid, &RunnerConfig::serial(), &ids, None, |_, _| {})
                .unwrap();
        assert_eq!(subset.outcomes.len(), 3);
        for (pos, &id) in ids.iter().enumerate() {
            assert_eq!(subset.outcomes[pos], full.outcomes[id]);
        }
    }

    #[test]
    #[should_panic]
    fn unsorted_id_sets_are_rejected() {
        let grid = tiny_grid(1);
        let _ =
            run_scenarios_with_progress(&grid, &RunnerConfig::serial(), &[2, 1], None, |_, _| {});
    }

    #[test]
    fn warm_cache_runs_simulate_nothing_and_match_cold_runs() {
        let dir =
            std::env::temp_dir().join(format!("qnet-runner-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid(2);
        let uncached = run_campaign(&grid, &RunnerConfig::serial());

        let mut cache = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        let cold =
            run_campaign_cached(&grid, &RunnerConfig::serial(), &mut cache, |_, _| {}).unwrap();
        assert_eq!(cold.simulated, grid.scenario_count());
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.outcomes, uncached.outcomes);

        // A fresh cache handle replays the run from disk: zero simulations,
        // identical outcomes.
        let mut warm_cache = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        let mut progress = Vec::new();
        let warm = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut warm_cache, |d, t| {
            progress.push((d, t))
        })
        .unwrap();
        assert_eq!(warm.simulated, 0, "warm runs must not simulate");
        assert_eq!(warm.cache_hits, grid.scenario_count());
        assert_eq!(warm.outcomes, uncached.outcomes);
        let total = grid.scenario_count();
        assert_eq!(
            progress,
            (1..=total).map(|d| (d, total)).collect::<Vec<_>>(),
            "warm runs report every cache hit as a progress step"
        );

        // A cached subset run is served entirely from the warm cache.
        let mut partial = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        let half: Vec<usize> = (0..grid.scenario_count())
            .filter(|id| id % 2 == 0)
            .collect();
        let half_run = run_scenarios_with_progress(
            &grid,
            &RunnerConfig::serial(),
            &half,
            Some(&mut partial),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(half_run.simulated, 0);
        assert_eq!(half_run.cache_hits, half.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_events_carry_dense_sequence_numbers() {
        let dir =
            std::env::temp_dir().join(format!("qnet-runner-stream-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid(2);
        let ids: Vec<usize> = (0..grid.scenario_count()).collect();

        // Prime the cache with the even-id half of the grid.
        let even: Vec<usize> = ids.iter().copied().filter(|id| id % 2 == 0).collect();
        let mut cache = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        run_scenarios_streaming(
            &grid,
            &RunnerConfig::serial(),
            &even,
            Some(&mut cache),
            |_| {},
        )
        .unwrap();

        // The mixed run replays the evens and simulates the odds; events
        // are wall-clock-free and densely sequenced, cache hits first in
        // id order.
        let mut cache = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        let mut events: Vec<(u64, usize, OutcomeSource)> = Vec::new();
        let result = run_scenarios_streaming(
            &grid,
            &RunnerConfig::serial(),
            &ids,
            Some(&mut cache),
            |e| {
                assert_eq!(e.outcome.id, e.id);
                events.push((e.seq, e.id, e.source));
            },
        )
        .unwrap();
        assert_eq!(result.cache_hits, even.len());
        assert_eq!(result.simulated, ids.len() - even.len());
        assert_eq!(events.len(), ids.len());
        for (pos, (seq, _, _)) in events.iter().enumerate() {
            assert_eq!(*seq, pos as u64, "sequence numbers are dense from 0");
        }
        let hits: Vec<usize> = events
            .iter()
            .filter(|(_, _, s)| *s == OutcomeSource::CacheHit)
            .map(|(_, id, _)| *id)
            .collect();
        assert_eq!(hits, even, "cache hits stream first, in id order");

        // Incremental appends: the simulated odds are replayable from the
        // cache by a fresh handle.
        let warm = crate::cache::OutcomeCache::open(&dir, &grid).unwrap();
        assert_eq!(warm.len(), ids.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_resolution_bounds() {
        let c = RunnerConfig::default();
        assert!(c.resolved_chunk(1000, 8) >= 1);
        assert!(c.resolved_chunk(0, 1) >= 1);
        assert_eq!(
            RunnerConfig {
                threads: 2,
                chunk_size: 5
            }
            .resolved_chunk(1000, 2),
            5
        );
    }
}
