//! Deterministic grid sharding and resumable shard merging.
//!
//! A [`ShardSpec`] `I/N` partitions the scenario id space by striding:
//! shard `I` owns every id with `id % N == I`. Striding (rather than
//! contiguous ranges) balances load across shards even when later cells are
//! systematically heavier (e.g. larger topologies sort last in the
//! expansion order), and the partition depends only on `(I, N)` — any
//! process, on any host, computes the same split.
//!
//! Each shard run writes a **self-describing shard file**: a JSONL header
//! carrying the grid descriptor, its fingerprint and the shard coordinates,
//! followed by one outcome line per scenario (the same record format the
//! outcome cache uses):
//!
//! ```text
//! {"kind":"shard","fingerprint":"…","shard":0,"shards":3,"scenarios":108,"grid":{…}}
//! {"kind":"outcome","fingerprint":"…","outcome":{…}}
//! …
//! ```
//!
//! [`merge_shards`] recombines shard files into the exact single-process
//! result: it re-derives each embedded grid, verifies that every header
//! fingerprint matches its own grid (and that all shards ran the *same*
//! grid), checks that the shard outcomes cover the id space exactly once,
//! and rebuilds the dense outcome vector. Aggregating that vector flows
//! through the same `RunningStats` / `ci95_half_width` machinery as a
//! single-process run, so the merged JSONL report is **byte-identical** to
//! it — the property the shard-merge integration tests and the CI smoke
//! job pin down.

use crate::cache::{decode_outcome_line, encode_outcome_line};
use crate::grid::{GridFingerprint, ScenarioGrid};
use crate::runner::{CampaignResult, ScenarioOutcome};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One shard of an `N`-way deterministic partition of the scenario ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index (`0 <= index < count`).
    pub index: usize,
    /// Total number of shards in the partition.
    pub count: usize,
}

impl ShardSpec {
    /// Build a shard spec, validating `index < count`.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards (valid: 0..{count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parse the CLI form `I/N` (e.g. `0/3`).
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let (index, count) = spec
            .split_once('/')
            .ok_or_else(|| format!("shard spec '{spec}' is not of the form I/N"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("shard spec '{spec}': bad shard index"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("shard spec '{spec}': bad shard count"))?;
        ShardSpec::new(index, count)
    }

    /// True if this shard owns scenario `id`.
    pub fn contains(&self, id: usize) -> bool {
        id % self.count == self.index
    }

    /// The scenario ids this shard owns, in increasing order.
    pub fn ids(&self, scenario_count: usize) -> Vec<usize> {
        (self.index..scenario_count).step_by(self.count).collect()
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A parsed, validated shard file: the grid it ran and its outcomes.
#[derive(Debug, Clone)]
pub struct ShardFile {
    /// The grid descriptor embedded in the header.
    pub grid: ScenarioGrid,
    /// The grid's fingerprint (verified against the embedded grid).
    pub fingerprint: GridFingerprint,
    /// Which shard of the partition this file holds.
    pub spec: ShardSpec,
    /// The shard's outcomes, in scenario-id order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Serialize one shard's outcomes as a self-describing JSONL shard file.
///
/// `outcomes` must be exactly the outcomes of `spec.ids(grid.scenario_count())`,
/// in id order (the shard runner produces them in this shape).
pub fn write_shard<W: Write>(
    grid: &ScenarioGrid,
    spec: ShardSpec,
    outcomes: &[ScenarioOutcome],
    out: &mut W,
) -> io::Result<()> {
    let fingerprint = grid.fingerprint();
    let header = serde_json::Value::Map(vec![
        ("kind".into(), serde_json::Value::Str("shard".into())),
        (
            "fingerprint".into(),
            serde_json::Value::Str(fingerprint.to_hex()),
        ),
        ("shard".into(), serde_json::Value::U64(spec.index as u64)),
        ("shards".into(), serde_json::Value::U64(spec.count as u64)),
        (
            "scenarios".into(),
            serde_json::Value::U64(grid.scenario_count() as u64),
        ),
        (
            "grid".into(),
            serde_json::to_value(grid).expect("grid to_value"),
        ),
    ]);
    writeln!(
        out,
        "{}",
        serde_json::to_string(&header).expect("header to_string")
    )?;
    for outcome in outcomes {
        writeln!(out, "{}", encode_outcome_line(fingerprint, outcome))?;
    }
    Ok(())
}

/// Render a shard file to a string (used by the CLI and tests).
pub fn shard_to_string(
    grid: &ScenarioGrid,
    spec: ShardSpec,
    outcomes: &[ScenarioOutcome],
) -> String {
    let mut buf = Vec::new();
    write_shard(grid, spec, outcomes, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

/// Parse and validate one shard file.
///
/// Rejects (with a human-readable error): a missing or malformed header, a
/// header fingerprint that does not match the embedded grid (a corrupted or
/// hand-edited descriptor), outcome lines that fail the cache-layer
/// integrity checks, outcomes outside this shard's stride, duplicate ids,
/// and a file that does not contain exactly its shard's outcomes.
pub fn read_shard(text: &str) -> Result<ShardFile, String> {
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let header_line = lines.next().ok_or("shard file is empty")?;
    let header: serde_json::Value =
        serde_json::from_str(header_line).map_err(|e| format!("shard header: {e}"))?;
    if header.get_field("kind").and_then(|k| k.as_str()) != Some("shard") {
        return Err("first line is not a shard header".to_string());
    }
    let grid: ScenarioGrid = serde_json::from_value(
        header
            .get_field("grid")
            .ok_or("shard header lacks a grid descriptor")?
            .clone(),
    )
    .map_err(|e| format!("shard header grid: {e}"))?;
    let fingerprint = GridFingerprint::parse_hex(
        header
            .get_field("fingerprint")
            .and_then(|f| f.as_str())
            .ok_or("shard header lacks a fingerprint")?,
    )?;
    if fingerprint != grid.fingerprint() {
        return Err(format!(
            "shard header fingerprint {fingerprint} does not match its grid descriptor \
             ({}): corrupted or edited shard file",
            grid.fingerprint()
        ));
    }
    let spec = ShardSpec::new(
        header["shard"]
            .as_u64()
            .ok_or("shard header lacks a shard index")? as usize,
        header["shards"]
            .as_u64()
            .ok_or("shard header lacks a shard count")? as usize,
    )?;
    let scenario_count = grid.scenario_count();
    if header["scenarios"] != scenario_count as u64 {
        return Err(format!(
            "shard header claims {} scenarios but the grid expands to {scenario_count}",
            header["scenarios"].as_u64().unwrap_or(0)
        ));
    }

    let expected_ids = spec.ids(scenario_count);
    let mut outcomes: Vec<Option<ScenarioOutcome>> = vec![None; expected_ids.len()];
    for (line_no, line) in lines.enumerate() {
        let outcome = decode_outcome_line(line, fingerprint, scenario_count, grid.replicates)
            .ok_or_else(|| format!("shard outcome line {} is invalid", line_no + 2))?;
        if !spec.contains(outcome.id) {
            return Err(format!(
                "scenario {} does not belong to shard {spec}",
                outcome.id
            ));
        }
        let slot = outcome.id / spec.count;
        if outcomes[slot].is_some() {
            return Err(format!("duplicate outcome for scenario {}", outcome.id));
        }
        outcomes[slot] = Some(outcome);
    }
    let outcomes: Vec<ScenarioOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(slot, o)| {
            o.ok_or_else(|| {
                format!(
                    "shard {spec} is missing the outcome for scenario {}",
                    expected_ids[slot]
                )
            })
        })
        .collect::<Result<_, _>>()?;

    Ok(ShardFile {
        grid,
        fingerprint,
        spec,
        outcomes,
    })
}

/// Merge a complete set of shard files back into the single-process result.
///
/// Validates that every shard ran the same grid (equal fingerprints *and*
/// descriptors), that the shard coordinates form one complete `N`-way
/// partition (every index `0..N` present exactly once), and that the union
/// of outcomes covers the scenario id space exactly once. Returns the grid
/// and a dense [`CampaignResult`] whose aggregation (through the standard
/// `RunningStats`/`ci95_half_width` path) is byte-identical to a
/// single-process run.
pub fn merge_shards(shards: Vec<ShardFile>) -> Result<(ScenarioGrid, CampaignResult), String> {
    let first = shards.first().ok_or("no shard files to merge")?;
    let fingerprint = first.fingerprint;
    let grid = first.grid.clone();
    let count = first.spec.count;
    if shards.len() != count {
        return Err(format!(
            "partition is {count}-way but {} shard file(s) were provided",
            shards.len()
        ));
    }
    let mut seen = vec![false; count];
    for shard in &shards {
        if shard.fingerprint != fingerprint || shard.grid != grid {
            return Err(format!(
                "shard {} ran grid {} but shard {} ran grid {fingerprint}: \
                 refusing to merge different sweeps",
                shard.spec, shard.fingerprint, first.spec
            ));
        }
        if shard.spec.count != count {
            return Err(format!(
                "shard {} disagrees on the partition size ({} vs {count})",
                shard.spec, shard.spec.count
            ));
        }
        if seen[shard.spec.index] {
            return Err(format!("shard index {} appears twice", shard.spec.index));
        }
        seen[shard.spec.index] = true;
    }

    let scenario_count = grid.scenario_count();
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; scenario_count];
    for shard in shards {
        for outcome in shard.outcomes {
            // read_shard established per-shard completeness and stride
            // membership; the index check here guards the cross-shard union.
            let id = outcome.id;
            debug_assert!(slots[id].is_none());
            slots[id] = Some(outcome);
        }
    }
    let outcomes: Vec<ScenarioOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(id, o)| o.ok_or_else(|| format!("no shard provided scenario {id}")))
        .collect::<Result<_, _>>()?;

    Ok((
        grid,
        CampaignResult {
            outcomes,
            threads_used: 0,
            wall_seconds: 0.0,
            simulated: 0,
            cache_hits: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, run_scenarios_with_progress, RunnerConfig};
    use qnet_core::policy::PolicyId;
    use qnet_core::workload::WorkloadSpec;
    use qnet_topology::Topology;

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid::new(17)
            .with_topologies(vec![Topology::Cycle { nodes: 5 }])
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
            .with_replicates(3)
            .with_horizon_s(400.0)
    }

    fn run_shard_outcomes(grid: &ScenarioGrid, spec: ShardSpec) -> Vec<ScenarioOutcome> {
        let ids = spec.ids(grid.scenario_count());
        run_scenarios_with_progress(grid, &RunnerConfig::serial(), &ids, None, |_, _| {})
            .unwrap()
            .outcomes
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let spec = ShardSpec::parse("1/3").unwrap();
        assert_eq!(spec, ShardSpec { index: 1, count: 3 });
        assert_eq!(spec.ids(8), vec![1, 4, 7]);
        assert!(spec.contains(4) && !spec.contains(5));
        assert_eq!(spec.to_string(), "1/3");

        assert!(ShardSpec::parse("3/3").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("1-3").is_err(), "bad separator");
        assert!(ShardSpec::parse("a/3").is_err(), "bad index");

        // The 3-way partition of 0..10 covers every id exactly once.
        let mut all: Vec<usize> = (0..3)
            .flat_map(|i| ShardSpec::new(i, 3).unwrap().ids(10))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shard_files_round_trip() {
        let grid = tiny_grid();
        let spec = ShardSpec::new(1, 2).unwrap();
        let outcomes = run_shard_outcomes(&grid, spec);
        let text = shard_to_string(&grid, spec, &outcomes);
        let shard = read_shard(&text).unwrap();
        assert_eq!(shard.grid, grid);
        assert_eq!(shard.spec, spec);
        assert_eq!(shard.fingerprint, grid.fingerprint());
        assert_eq!(shard.outcomes, outcomes);
    }

    #[test]
    fn merged_shards_equal_the_single_process_run() {
        let grid = tiny_grid();
        let direct = run_campaign(&grid, &RunnerConfig::serial());
        for count in [1, 2, 5] {
            let shards: Vec<ShardFile> = (0..count)
                .map(|i| {
                    let spec = ShardSpec::new(i, count).unwrap();
                    let outcomes = run_shard_outcomes(&grid, spec);
                    read_shard(&shard_to_string(&grid, spec, &outcomes)).unwrap()
                })
                .collect();
            let (merged_grid, merged) = merge_shards(shards).unwrap();
            assert_eq!(merged_grid, grid);
            assert_eq!(merged.outcomes, direct.outcomes, "{count}-way partition");
        }
    }

    #[test]
    fn merge_rejects_incomplete_and_mixed_partitions() {
        let grid = tiny_grid();
        let shard = |i, n| {
            let spec = ShardSpec::new(i, n).unwrap();
            let outcomes = run_shard_outcomes(&grid, spec);
            read_shard(&shard_to_string(&grid, spec, &outcomes)).unwrap()
        };
        // Missing shard 1 of 2.
        assert!(merge_shards(vec![shard(0, 2)]).is_err());
        // The same shard twice.
        assert!(merge_shards(vec![shard(0, 2), shard(0, 2)]).is_err());
        // Mixed partition sizes.
        assert!(merge_shards(vec![shard(0, 2), shard(1, 3)]).is_err());
        // Shards of different grids.
        let mut other = tiny_grid();
        other.master_seed += 1;
        let other_spec = ShardSpec::new(1, 2).unwrap();
        let other_outcomes = run_scenarios_with_progress(
            &other,
            &RunnerConfig::serial(),
            &other_spec.ids(other.scenario_count()),
            None,
            |_, _| {},
        )
        .unwrap()
        .outcomes;
        let foreign = read_shard(&shard_to_string(&other, other_spec, &other_outcomes)).unwrap();
        assert!(merge_shards(vec![shard(0, 2), foreign]).is_err());
        // Empty input.
        assert!(merge_shards(Vec::new()).is_err());
    }

    #[test]
    fn read_shard_rejects_corruption() {
        let grid = tiny_grid();
        let spec = ShardSpec::new(0, 2).unwrap();
        let outcomes = run_shard_outcomes(&grid, spec);
        let good = shard_to_string(&grid, spec, &outcomes);

        // Missing header.
        assert!(read_shard("").is_err());
        assert!(read_shard(good.lines().nth(1).unwrap()).is_err());
        // Truncated outcome line.
        let mut lines: Vec<&str> = good.lines().collect();
        let last = lines.pop().unwrap();
        let cut = &last[..last.len() / 2];
        let truncated = format!("{}\n{cut}\n", lines.join("\n"));
        assert!(read_shard(&truncated).is_err());
        // Missing outcome.
        let missing = format!("{}\n", lines.join("\n"));
        assert!(read_shard(&missing).is_err());
        // Header fingerprint that doesn't match the embedded grid.
        let tampered = good.replacen(&grid.fingerprint().to_hex(), "0000000000000000", 1);
        assert!(read_shard(&tampered).is_err());
        // An outcome from the other shard of the partition.
        let stray = run_shard_outcomes(&grid, ShardSpec::new(1, 2).unwrap());
        let stray_line = crate::cache::encode_outcome_line(grid.fingerprint(), &stray[0]);
        let polluted = format!("{good}{stray_line}\n");
        assert!(read_shard(&polluted).is_err());
    }
}
