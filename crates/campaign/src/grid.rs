//! Scenario grids: declarative cartesian products of experiment axes.
//!
//! A [`ScenarioGrid`] names the axes of a sweep — topology families,
//! protocol modes, distillation overheads, knowledge models, workload specs,
//! decoherence settings — plus a replicate count and a master seed, and
//! expands them into a deterministic sequence of [`Scenario`]s. Every
//! scenario's RNG seed is derived from `(master seed, environment index,
//! replicate)` with a SplitMix64-style mix, where the *environment index*
//! spans only the world-defining axes (topology, distillation, coherence,
//! workload) and deliberately excludes the protocol axes (mode,
//! knowledge). Consequences:
//!
//! * the same grid + master seed always produces the same scenarios, in the
//!   same order, regardless of how many worker threads execute them,
//! * replicates within a cell get decorrelated seeds without any global
//!   draw ordering the runner would have to reproduce, and
//! * cells that differ only in protocol (mode / knowledge) run on
//!   **identical** random-graph instances and workloads, so cross-mode
//!   comparisons (the oblivious-vs-planned ratio rows) are properly
//!   paired rather than confounded by graph-instance variance.
//!
//! The expansion order is row-major over the axes in the order they appear
//! in the struct (topology outermost, replicate innermost); scenario ids
//! are dense `0..grid.scenario_count()` indices into that order.

use qnet_core::classical::KnowledgeModel;
use qnet_core::config::{DistillationSpec, NetworkConfig};
use qnet_core::experiment::ExperimentConfig;
use qnet_core::physics::PhysicsModel;
use qnet_core::policy::PolicyId;
use qnet_core::workload::{PairSelection, TrafficModel, WorkloadSpec};
use qnet_quantum::decoherence::DecoherenceModel;
use qnet_topology::{FabricSpec, Topology};
use serde::{DeError, Deserialize, Serialize, Value};

/// One fully resolved cell of the grid: every axis pinned to a value.
///
/// Replicates share a cell; aggregation happens per cell.
///
/// Serialization: closed-loop cells keep the exact legacy byte layout; the
/// `traffic` field is emitted only for open-loop workloads (see the manual
/// [`Serialize`] impl below).
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct CellKey {
    /// Dense index of this cell in the grid's expansion order.
    pub cell: usize,
    /// Topology label (e.g. `cycle-25`).
    pub topology: String,
    /// Node count of the topology.
    pub nodes: usize,
    /// Swap policy (serialized under its legacy `ProtocolMode` label for
    /// the built-ins, so pre-refactor reports keep their bytes).
    pub mode: PolicyId,
    /// Distillation overhead `D`.
    pub distillation: f64,
    /// Knowledge model.
    pub knowledge: KnowledgeModel,
    /// Consumer pairs in the workload.
    pub consumer_pairs: usize,
    /// Nominal requests in the workload (batch size for closed-loop cells,
    /// expected arrivals for open-loop cells).
    pub requests: usize,
    /// How requests are drawn from the consumer pairs.
    pub discipline: PairSelection,
    /// Memory coherence time in seconds (`None` = ideal memories).
    pub coherence_time_s: Option<f64>,
    /// The link-physics model, for decoherent cells (`None` = ideal
    /// physics, omitted from JSON so legacy reports keep their bytes).
    pub physics: Option<PhysicsModel>,
    /// The traffic model, for open-loop cells (`None` = closed-loop batch,
    /// omitted from JSON so legacy reports keep their bytes).
    pub traffic: Option<TrafficModel>,
    /// The link fabric, for hardware-calibrated cells (`None` =
    /// homogeneous links, omitted from JSON so legacy reports keep their
    /// bytes).
    pub fabric: Option<FabricSpec>,
}

impl Serialize for CellKey {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("cell".to_string(), self.cell.to_value()),
            ("topology".to_string(), self.topology.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("mode".to_string(), self.mode.to_value()),
            ("distillation".to_string(), self.distillation.to_value()),
            ("knowledge".to_string(), self.knowledge.to_value()),
            ("consumer_pairs".to_string(), self.consumer_pairs.to_value()),
            ("requests".to_string(), self.requests.to_value()),
            ("discipline".to_string(), self.discipline.to_value()),
            (
                "coherence_time_s".to_string(),
                self.coherence_time_s.to_value(),
            ),
        ];
        if let Some(physics) = &self.physics {
            entries.push(("physics".to_string(), physics.to_value()));
        }
        if let Some(traffic) = &self.traffic {
            entries.push(("traffic".to_string(), traffic.to_value()));
        }
        if let Some(fabric) = &self.fabric {
            entries.push(("fabric".to_string(), fabric.to_value()));
        }
        serde::Value::Map(entries)
    }
}

/// One runnable scenario: a cell plus a replicate index and derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Dense scenario id (`0..grid.scenario_count()`).
    pub id: usize,
    /// The cell this scenario belongs to.
    pub cell: usize,
    /// Replicate index within the cell (`0..replicates`).
    pub replicate: u32,
    /// The derived RNG seed.
    pub seed: u64,
    /// The fully assembled experiment configuration.
    pub config: ExperimentConfig,
}

/// A stable, content-derived identity for a [`ScenarioGrid`].
///
/// The fingerprint is an FNV-1a hash of the grid's canonical JSON
/// serialization — every axis value, the master seed, the replicate count
/// and the run parameters (horizon, generation and swap-scan rates). Two
/// grids have equal fingerprints exactly when they expand to the same
/// scenarios with the same seeds, which is the precondition for sharing
/// cached [`crate::runner::ScenarioOutcome`]s and for merging shard files:
/// outcomes are pure functions of `(fingerprint, scenario id)`.
///
/// Stability: the hash runs over JSON text produced by pure integer/float
/// formatting, so it is identical across platforms, rustc versions and
/// worker-thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridFingerprint(u64);

impl GridFingerprint {
    /// The raw 64-bit hash value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The canonical textual form: 16 lowercase hex digits (used in cache
    /// file names and report headers).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the canonical 16-hex-digit form back.
    pub fn parse_hex(s: &str) -> Result<Self, String> {
        if s.len() != 16 {
            return Err(format!("fingerprint '{s}' is not 16 hex digits"));
        }
        u64::from_str_radix(s, 16)
            .map(GridFingerprint)
            .map_err(|_| format!("fingerprint '{s}' is not 16 hex digits"))
    }
}

impl std::fmt::Display for GridFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Serialize for GridFingerprint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_hex())
    }
}

impl Deserialize for GridFingerprint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::DeError::expected("fingerprint hex string", value))?;
        GridFingerprint::parse_hex(s).map_err(serde::DeError::custom)
    }
}

/// A declarative sweep: cartesian product of axes × replicates.
///
/// Serialization: the grid serializes to a self-describing JSON object (all
/// axes plus the master seed and run parameters) — the descriptor embedded
/// in shard files so `campaign merge` can re-derive cell keys and verify
/// that every shard ran the same sweep. [`ScenarioGrid::fingerprint`]
/// hashes exactly this serialization. The `physics` axis is emitted only
/// when it differs from the all-ideal default (manual impls below), so
/// pre-physics grids keep their exact canonical JSON — and therefore their
/// fingerprints, cache files and shard files — while any grid that sweeps
/// physics necessarily gets a distinct fingerprint (the cache-poisoning
/// guard for the new axis).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// Topology axis (outermost loop).
    pub topologies: Vec<Topology>,
    /// Swap-policy axis.
    pub modes: Vec<PolicyId>,
    /// Distillation-overhead axis (`D ≥ 1`).
    pub distillations: Vec<f64>,
    /// Knowledge-model axis.
    pub knowledge: Vec<KnowledgeModel>,
    /// Memory coherence-time axis (`None` = ideal memories). Affects only
    /// the static [`NetworkConfig::decoherence`] field; live pair decay is
    /// driven by the `physics` axis.
    pub coherence_times_s: Vec<Option<f64>>,
    /// Link-physics axis (`PhysicsModel::Ideal` = today's token model).
    pub physics: Vec<PhysicsModel>,
    /// Link-fabric axis (`None` = homogeneous links at the grid's
    /// `generation_rate`; `Some(spec)` attaches hardware-calibrated
    /// per-edge profiles).
    pub fabrics: Vec<Option<FabricSpec>>,
    /// Consumer pairs / request counts; `node_count` is patched per
    /// topology at expansion time.
    pub workloads: Vec<WorkloadSpec>,
    /// Replicates per cell (innermost loop).
    pub replicates: u32,
    /// Master seed all scenario seeds derive from.
    pub master_seed: u64,
    /// Simulated-time horizon per run, in seconds.
    pub max_sim_time_s: f64,
    /// Bell-pair generation rate on every generation edge.
    pub generation_rate: f64,
    /// Per-node swap-scan rate.
    pub swap_scan_rate: f64,
}

impl Serialize for ScenarioGrid {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("topologies".to_string(), self.topologies.to_value()),
            ("modes".to_string(), self.modes.to_value()),
            ("distillations".to_string(), self.distillations.to_value()),
            ("knowledge".to_string(), self.knowledge.to_value()),
            (
                "coherence_times_s".to_string(),
                self.coherence_times_s.to_value(),
            ),
        ];
        // The physics axis joins the canonical form only when it actually
        // sweeps something: pre-physics grids keep their fingerprints.
        if self.physics != vec![PhysicsModel::Ideal] {
            entries.push(("physics".to_string(), self.physics.to_value()));
        }
        // Same guard for the fabric axis: homogeneous grids keep their
        // pre-fabric fingerprints, cache files and shard files.
        if self.fabrics != vec![None] {
            entries.push(("fabrics".to_string(), self.fabrics.to_value()));
        }
        entries.extend([
            ("workloads".to_string(), self.workloads.to_value()),
            ("replicates".to_string(), self.replicates.to_value()),
            ("master_seed".to_string(), self.master_seed.to_value()),
            ("max_sim_time_s".to_string(), self.max_sim_time_s.to_value()),
            (
                "generation_rate".to_string(),
                self.generation_rate.to_value(),
            ),
            ("swap_scan_rate".to_string(), self.swap_scan_rate.to_value()),
        ]);
        Value::Map(entries)
    }
}

impl Deserialize for ScenarioGrid {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_map().is_none() {
            return Err(DeError::expected("ScenarioGrid object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&Value::Null);
        let physics = match field("physics") {
            Value::Null => vec![PhysicsModel::Ideal],
            v => Deserialize::from_value(v)?,
        };
        let fabrics = match field("fabrics") {
            Value::Null => vec![None],
            v => Deserialize::from_value(v)?,
        };
        Ok(ScenarioGrid {
            topologies: Deserialize::from_value(field("topologies"))?,
            modes: Deserialize::from_value(field("modes"))?,
            distillations: Deserialize::from_value(field("distillations"))?,
            knowledge: Deserialize::from_value(field("knowledge"))?,
            coherence_times_s: Deserialize::from_value(field("coherence_times_s"))?,
            physics,
            fabrics,
            workloads: Deserialize::from_value(field("workloads"))?,
            replicates: Deserialize::from_value(field("replicates"))?,
            master_seed: Deserialize::from_value(field("master_seed"))?,
            max_sim_time_s: Deserialize::from_value(field("max_sim_time_s"))?,
            generation_rate: Deserialize::from_value(field("generation_rate"))?,
            swap_scan_rate: Deserialize::from_value(field("swap_scan_rate"))?,
        })
    }
}

impl ScenarioGrid {
    /// A grid with the paper's §5 defaults on every axis: one cycle-9
    /// topology, oblivious mode, `D = 1`, global knowledge, ideal memories,
    /// the paper-default workload, one replicate.
    pub fn new(master_seed: u64) -> Self {
        ScenarioGrid {
            topologies: vec![Topology::Cycle { nodes: 9 }],
            modes: vec![PolicyId::OBLIVIOUS],
            distillations: vec![1.0],
            knowledge: vec![KnowledgeModel::Global],
            coherence_times_s: vec![None],
            physics: vec![PhysicsModel::Ideal],
            fabrics: vec![None],
            workloads: vec![WorkloadSpec::paper_default(9)],
            replicates: 1,
            master_seed,
            max_sim_time_s: 20_000.0,
            generation_rate: 1.0,
            swap_scan_rate: 4.0,
        }
    }

    /// Builder: set the topology axis.
    pub fn with_topologies(mut self, topologies: impl Into<Vec<Topology>>) -> Self {
        self.topologies = topologies.into();
        assert!(!self.topologies.is_empty(), "topology axis cannot be empty");
        self
    }

    /// Builder: set the swap-policy axis.
    pub fn with_modes(mut self, modes: impl Into<Vec<PolicyId>>) -> Self {
        self.modes = modes.into();
        assert!(!self.modes.is_empty(), "mode axis cannot be empty");
        self
    }

    /// Builder: set the distillation axis.
    pub fn with_distillations(mut self, ds: impl Into<Vec<f64>>) -> Self {
        self.distillations = ds.into();
        assert!(
            self.distillations.iter().all(|&d| d >= 1.0),
            "distillation overheads must be ≥ 1"
        );
        assert!(
            !self.distillations.is_empty(),
            "distillation axis cannot be empty"
        );
        self
    }

    /// Builder: set the knowledge-model axis.
    pub fn with_knowledge(mut self, ks: impl Into<Vec<KnowledgeModel>>) -> Self {
        self.knowledge = ks.into();
        assert!(!self.knowledge.is_empty(), "knowledge axis cannot be empty");
        self
    }

    /// Builder: set the coherence-time axis (`None` = ideal memories).
    /// This axis sets only the *static* [`NetworkConfig::decoherence`]
    /// field (the LP extensions); live pair decay comes from the physics
    /// axis, whose models carry their own coherence times. Combining a
    /// non-trivial coherence axis with decoherent physics would fork seeds
    /// and report rows for cells that simulate identically, so the
    /// builders refuse the combination.
    pub fn with_coherence_times(mut self, ts: impl Into<Vec<Option<f64>>>) -> Self {
        self.coherence_times_s = ts.into();
        assert!(
            !self.coherence_times_s.is_empty(),
            "coherence-time axis cannot be empty"
        );
        self.assert_coherence_physics_disjoint();
        self
    }

    /// Builder: set the link-physics axis.
    pub fn with_physics(mut self, ps: impl Into<Vec<PhysicsModel>>) -> Self {
        self.physics = ps.into();
        assert!(!self.physics.is_empty(), "physics axis cannot be empty");
        self.assert_coherence_physics_disjoint();
        self
    }

    /// A non-trivial coherence-time axis alongside decoherent physics
    /// would sweep a knob the decoherent cells ignore (their models carry
    /// their own coherence times), forking seeds and report rows for
    /// identical simulations — refuse it at construction.
    fn assert_coherence_physics_disjoint(&self) {
        assert!(
            self.coherence_times_s.iter().all(Option::is_none)
                || self.physics.iter().all(PhysicsModel::is_ideal),
            "a non-trivial coherence-time axis cannot combine with decoherent physics \
             (decoherent models carry their own coherence times; sweep --physics instead)"
        );
    }

    /// Builder: set the link-fabric axis (`None` = homogeneous links).
    pub fn with_fabrics(mut self, fs: impl Into<Vec<Option<FabricSpec>>>) -> Self {
        self.fabrics = fs.into();
        assert!(!self.fabrics.is_empty(), "fabric axis cannot be empty");
        self
    }

    /// Builder: set the workload axis.
    pub fn with_workloads(mut self, ws: impl Into<Vec<WorkloadSpec>>) -> Self {
        self.workloads = ws.into();
        assert!(!self.workloads.is_empty(), "workload axis cannot be empty");
        self
    }

    /// Builder: set replicates per cell.
    pub fn with_replicates(mut self, replicates: u32) -> Self {
        assert!(replicates >= 1, "need at least one replicate per cell");
        self.replicates = replicates;
        self
    }

    /// Builder: set the per-run horizon.
    pub fn with_horizon_s(mut self, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        self.max_sim_time_s = horizon;
        self
    }

    /// Builder: set the generation rate.
    pub fn with_generation_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "generation rate must be positive");
        self.generation_rate = rate;
        self
    }

    /// Builder: set the swap-scan rate.
    pub fn with_swap_scan_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "swap scan rate must be positive");
        self.swap_scan_rate = rate;
        self
    }

    /// The content-derived identity of this grid: a stable hash of every
    /// axis, the master seed, the replicate count and the run parameters.
    ///
    /// Equal fingerprints ⇒ identical scenario expansion (same configs,
    /// same seeds, same ids), so `(fingerprint, scenario id)` addresses a
    /// [`crate::runner::ScenarioOutcome`] content-wise — the key of the
    /// outcome cache and the compatibility check for shard merging.
    pub fn fingerprint(&self) -> GridFingerprint {
        let canonical = serde_json::to_string(self).expect("grid serialization cannot fail");
        // FNV-1a over the canonical JSON bytes: pure integer arithmetic on
        // fixed constants, stable across platforms and rustc versions.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in canonical.as_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        GridFingerprint(hash)
    }

    /// Number of distinct cells.
    pub fn cell_count(&self) -> usize {
        self.topologies.len()
            * self.modes.len()
            * self.distillations.len()
            * self.knowledge.len()
            * self.coherence_times_s.len()
            * self.physics.len()
            * self.fabrics.len()
            * self.workloads.len()
    }

    /// Total number of scenarios (`cells × replicates`).
    pub fn scenario_count(&self) -> usize {
        self.cell_count() * self.replicates as usize
    }

    /// The axis values of cell `cell` (row-major decode of the expansion
    /// order).
    #[allow(clippy::type_complexity)]
    fn cell_axes(
        &self,
        cell: usize,
    ) -> (
        Topology,
        PolicyId,
        f64,
        KnowledgeModel,
        Option<f64>,
        PhysicsModel,
        Option<FabricSpec>,
        WorkloadSpec,
    ) {
        let [t, m, d, k, c, p, f, w] = self.decode_cell(cell);
        (
            self.topologies[t],
            self.modes[m],
            self.distillations[d],
            self.knowledge[k],
            self.coherence_times_s[c],
            self.physics[p],
            self.fabrics[f],
            self.workloads[w],
        )
    }

    /// Row-major decode of a cell index into per-axis indices, ordered
    /// `[topology, mode, distillation, knowledge, coherence, physics,
    /// fabric, workload]` (topology outermost). The single source of truth
    /// for the expansion order — both the axis lookup and the environment
    /// index derive from it.
    fn decode_cell(&self, cell: usize) -> [usize; 8] {
        let mut rest = cell;
        let w = rest % self.workloads.len();
        rest /= self.workloads.len();
        let f = rest % self.fabrics.len();
        rest /= self.fabrics.len();
        let p = rest % self.physics.len();
        rest /= self.physics.len();
        let c = rest % self.coherence_times_s.len();
        rest /= self.coherence_times_s.len();
        let k = rest % self.knowledge.len();
        rest /= self.knowledge.len();
        let d = rest % self.distillations.len();
        rest /= self.distillations.len();
        let m = rest % self.modes.len();
        rest /= self.modes.len();
        let t = rest;
        assert!(t < self.topologies.len(), "cell index out of range");
        [t, m, d, k, c, p, f, w]
    }

    /// The *environment* index of a cell: its coordinates along the axes
    /// that define the simulated world (topology, distillation, coherence,
    /// physics, workload), excluding the protocol axes (mode, knowledge).
    ///
    /// Scenario seeds derive from this index, so cells that differ only in
    /// protocol run on **identical graph instances, workloads and arrival
    /// randomness** — the oblivious-vs-planned ratio rows compare protocols
    /// on the same worlds, matching how the serial figure pipeline pairs
    /// seeds across modes.
    fn environment_index(&self, cell: usize) -> u64 {
        let [t, _m, d, _k, c, p, f, w] = self.decode_cell(cell);
        (((((t * self.distillations.len() + d) * self.coherence_times_s.len() + c)
            * self.physics.len()
            + p)
            * self.fabrics.len()
            + f)
            * self.workloads.len()
            + w) as u64
    }

    /// The report key of cell `cell`.
    pub fn cell_key(&self, cell: usize) -> CellKey {
        let (topology, mode, distillation, knowledge, coherence, physics, fabric, workload) =
            self.cell_axes(cell);
        CellKey {
            cell,
            topology: topology.label(),
            nodes: topology.node_count(),
            mode,
            distillation,
            knowledge,
            consumer_pairs: workload.consumer_pairs,
            requests: workload.nominal_requests(),
            discipline: workload.selection,
            coherence_time_s: coherence,
            physics: (!physics.is_ideal()).then_some(physics),
            traffic: workload.is_open_loop().then_some(workload.traffic),
            fabric,
        }
    }

    /// All cell keys, in expansion order.
    pub fn cell_keys(&self) -> Vec<CellKey> {
        (0..self.cell_count()).map(|c| self.cell_key(c)).collect()
    }

    /// Materialise scenario `id`.
    ///
    /// # Panics
    /// Panics if `id >= scenario_count()`.
    pub fn scenario(&self, id: usize) -> Scenario {
        assert!(id < self.scenario_count(), "scenario id out of range");
        let replicates = self.replicates as usize;
        let cell = id / replicates;
        let replicate = (id % replicates) as u32;
        let (topology, mode, distillation, knowledge, coherence, physics, fabric, mut workload) =
            self.cell_axes(cell);

        let seed = derive_seed(
            self.master_seed,
            self.environment_index(cell),
            replicate as u64,
        );
        workload.node_count = topology.node_count();

        let mut network = NetworkConfig::new(topology)
            .with_topology_seed(seed)
            .with_generation_rate(self.generation_rate)
            .with_swap_scan_rate(self.swap_scan_rate)
            .with_distillation(DistillationSpec::Uniform(distillation));
        if let Some(t) = coherence {
            network.decoherence = DecoherenceModel::with_coherence_time(t);
        }
        if !physics.is_ideal() {
            network = network.with_physics(physics);
        }
        if let Some(fabric) = fabric {
            network = network.with_fabric(fabric);
        }

        Scenario {
            id,
            cell,
            replicate,
            seed,
            config: ExperimentConfig {
                network,
                workload,
                mode,
                knowledge,
                seed,
                max_sim_time_s: self.max_sim_time_s,
            },
        }
    }

    /// Iterate over every scenario in id order.
    pub fn scenarios(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.scenario_count()).map(|id| self.scenario(id))
    }
}

/// SplitMix64-style mixing of the master seed with cell and replicate
/// indices. Stable across platforms and rustc versions: the derivation is
/// pure integer arithmetic on fixed constants.
pub fn derive_seed(master: u64, cell: u64, replicate: u64) -> u64 {
    let mut z = master
        ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ replicate.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new(7)
            .with_topologies(vec![
                Topology::Cycle { nodes: 7 },
                Topology::TorusGrid { side: 3 },
            ])
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
            .with_distillations(vec![1.0, 2.0])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 6)])
            .with_replicates(3)
    }

    #[test]
    fn counts_multiply() {
        let g = small_grid();
        assert_eq!(g.cell_count(), 2 * 2 * 2);
        assert_eq!(g.scenario_count(), 8 * 3);
        assert_eq!(g.scenarios().count(), 24);
    }

    #[test]
    fn expansion_is_deterministic_and_dense() {
        let g = small_grid();
        let a: Vec<Scenario> = g.scenarios().collect();
        let b: Vec<Scenario> = g.scenarios().collect();
        assert_eq!(a, b);
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.cell, i / 3);
            assert_eq!(s.replicate as usize, i % 3);
            // Workload node counts are patched to the topology.
            assert_eq!(s.config.workload.node_count, s.config.network.node_count());
        }
    }

    #[test]
    fn seeds_are_decorrelated_across_environments() {
        // Distinct (topology, distillation, coherence, workload, replicate)
        // coordinates must get distinct seeds; the mode axis shares them by
        // design (see `environment_paired_seeds_across_modes`).
        let g = small_grid();
        let mut seeds: Vec<u64> = g.scenarios().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        // 2 topologies × 2 distillations × 1 workload × 3 replicates.
        assert_eq!(seeds.len(), 2 * 2 * 3, "environment seed collision");
    }

    #[test]
    fn environment_paired_seeds_across_modes() {
        // Cells differing only in mode share seeds, graphs and workloads,
        // so oblivious-vs-planned ratios compare identical worlds.
        let g = small_grid();
        let scenarios: Vec<Scenario> = g.scenarios().collect();
        for a in &scenarios {
            for b in &scenarios {
                let ka = g.cell_key(a.cell);
                let kb = g.cell_key(b.cell);
                let same_env = ka.topology == kb.topology
                    && ka.distillation == kb.distillation
                    && ka.coherence_time_s == kb.coherence_time_s
                    && ka.physics == kb.physics
                    && ka.consumer_pairs == kb.consumer_pairs
                    && ka.requests == kb.requests
                    && ka.discipline == kb.discipline
                    && a.replicate == b.replicate;
                if same_env {
                    assert_eq!(a.seed, b.seed, "cells {} vs {}", a.cell, b.cell);
                    assert_eq!(
                        a.config.network.topology_seed,
                        b.config.network.topology_seed
                    );
                    // Identical workload materialisation follows from the
                    // shared seed.
                    assert_eq!(
                        a.config.workload.generate(a.seed),
                        b.config.workload.generate(b.seed)
                    );
                }
            }
        }
        // And the pairing is non-trivial: the grid really does have
        // same-environment cells in different modes.
        assert!(scenarios
            .iter()
            .any(|s| g.cell_key(s.cell).mode != PolicyId::OBLIVIOUS));
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = small_grid();
        let mut b = small_grid();
        b.master_seed = 8;
        let sa: Vec<u64> = a.scenarios().map(|s| s.seed).collect();
        let sb: Vec<u64> = b.scenarios().map(|s| s.seed).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn cell_keys_match_scenarios() {
        let g = small_grid();
        for s in g.scenarios() {
            let key = g.cell_key(s.cell);
            assert_eq!(key.cell, s.cell);
            assert_eq!(key.topology, s.config.network.topology.label());
            assert_eq!(key.mode, s.config.mode);
            assert_eq!(key.distillation, s.config.network.distillation_overhead());
            assert_eq!(key.requests, s.config.workload.nominal_requests());
        }
        assert_eq!(g.cell_keys().len(), g.cell_count());
    }

    #[test]
    fn axes_decode_row_major() {
        let g = small_grid();
        // Cell 0: first value of every axis; last cell: last values.
        let first = g.cell_key(0);
        assert_eq!(first.topology, "cycle-7");
        assert_eq!(first.mode, PolicyId::OBLIVIOUS);
        assert_eq!(first.distillation, 1.0);
        let last = g.cell_key(g.cell_count() - 1);
        assert_eq!(last.topology, "torus-3x3");
        assert_eq!(last.mode, PolicyId::PLANNED);
        assert_eq!(last.distillation, 2.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_scenario_panics() {
        let g = small_grid();
        let _ = g.scenario(g.scenario_count());
    }

    #[test]
    fn fingerprint_is_stable_and_content_derived() {
        let g = small_grid();
        // Deterministic across calls and across logically equal grids.
        assert_eq!(g.fingerprint(), g.fingerprint());
        assert_eq!(g.fingerprint(), small_grid().fingerprint());

        // Every descriptor component moves the fingerprint.
        let base = g.fingerprint();
        let mut seed = small_grid();
        seed.master_seed += 1;
        assert_ne!(seed.fingerprint(), base, "master seed");
        assert_ne!(
            small_grid().with_replicates(4).fingerprint(),
            base,
            "replicates"
        );
        assert_ne!(
            small_grid().with_horizon_s(123.0).fingerprint(),
            base,
            "horizon"
        );
        assert_ne!(
            small_grid()
                .with_modes(vec![PolicyId::OBLIVIOUS])
                .fingerprint(),
            base,
            "mode axis"
        );
        assert_ne!(
            small_grid()
                .with_workloads(vec![WorkloadSpec::open_loop(0, 5, 2.0, 10.0)])
                .fingerprint(),
            base,
            "workload axis"
        );
        assert_ne!(
            small_grid()
                .with_physics(vec![PhysicsModel::decoherent(1.0)])
                .fingerprint(),
            base,
            "physics axis"
        );
    }

    #[test]
    #[should_panic]
    fn coherence_axis_cannot_combine_with_decoherent_physics() {
        // The static coherence axis is ignored by decoherent cells (their
        // physics carries its own T2); sweeping both would fork seeds for
        // identical simulations.
        let _ = small_grid()
            .with_physics(vec![PhysicsModel::decoherent(0.5)])
            .with_coherence_times(vec![None, Some(5.0)]);
    }

    #[test]
    fn physics_axis_moves_the_fingerprint_and_cache_key() {
        // The cache-poisoning guard for the new axis: two grids identical
        // in every respect except the physics model must content-address
        // different outcome sets.
        let ideal = small_grid();
        let decoherent = small_grid().with_physics(vec![PhysicsModel::decoherent(0.5)]);
        assert_ne!(ideal.fingerprint(), decoherent.fingerprint());
        // Even two decoherent variants that differ only in a knob diverge.
        let floored =
            small_grid().with_physics(vec![PhysicsModel::decoherent(0.5).with_fidelity_floor(0.7)]);
        assert_ne!(decoherent.fingerprint(), floored.fingerprint());
        // And the all-ideal axis is canonical: it serializes identically to
        // a pre-physics grid (no `physics` key), so legacy fingerprints —
        // and therefore legacy cache and shard files — remain valid.
        assert!(ideal.to_value().get_field("physics").is_none());
        assert!(decoherent.to_value().get_field("physics").is_some());
    }

    #[test]
    fn physics_axis_expands_and_seeds_like_an_environment_axis() {
        let g = small_grid()
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
            .with_physics(vec![PhysicsModel::Ideal, PhysicsModel::decoherent(1.0)]);
        assert_eq!(g.cell_count(), 2 * 2 * 2 * 2);
        // Ideal cells omit the key's physics; decoherent cells carry it.
        let ideal_cells = (0..g.cell_count())
            .map(|c| g.cell_key(c))
            .filter(|k| k.physics.is_none())
            .count();
        assert_eq!(ideal_cells, g.cell_count() / 2);
        // The physics axis is part of the environment: two cells that
        // differ only in physics get distinct seeds; two cells that differ
        // only in mode share them.
        let mut mode_pairs = 0;
        let mut physics_pairs = 0;
        for a in g.scenarios() {
            for b in g.scenarios() {
                let (ka, kb) = (g.cell_key(a.cell), g.cell_key(b.cell));
                if a.replicate != b.replicate || a.cell == b.cell {
                    continue;
                }
                let same_world_except_physics = ka.topology == kb.topology
                    && ka.distillation == kb.distillation
                    && ka.coherence_time_s == kb.coherence_time_s
                    && ka.consumer_pairs == kb.consumer_pairs
                    && ka.requests == kb.requests
                    && ka.discipline == kb.discipline;
                if !same_world_except_physics {
                    continue;
                }
                if ka.mode != kb.mode && ka.physics == kb.physics {
                    assert_eq!(a.seed, b.seed, "mode must not move the seed");
                    mode_pairs += 1;
                }
                if ka.mode == kb.mode && ka.physics != kb.physics {
                    assert_ne!(a.seed, b.seed, "physics must move the seed");
                    physics_pairs += 1;
                }
            }
        }
        assert!(
            mode_pairs > 0 && physics_pairs > 0,
            "pairing is non-trivial"
        );
        // Decoherent scenarios carry the physics into the network config.
        let decoherent = g
            .scenarios()
            .find(|s| !s.config.network.physics.is_ideal())
            .expect("half the grid is decoherent");
        assert_eq!(
            decoherent.config.network.physics,
            PhysicsModel::decoherent(1.0)
        );
        assert_eq!(decoherent.config.network.decoherence.coherence_time_s, 1.0);
    }

    #[test]
    fn fabric_axis_moves_the_fingerprint_and_stays_canonical_when_absent() {
        use qnet_topology::HardwarePreset;
        // The cache-poisoning guard for the fabric axis: adding a fabric
        // must content-address a different outcome set...
        let plain = small_grid();
        let fabric =
            small_grid().with_fabrics(vec![Some(FabricSpec::new(HardwarePreset::MetroFiber))]);
        assert_ne!(plain.fingerprint(), fabric.fingerprint());
        // ...and two presets diverge from each other.
        let lab = small_grid().with_fabrics(vec![Some(FabricSpec::new(HardwarePreset::Lab))]);
        assert_ne!(fabric.fingerprint(), lab.fingerprint());
        // The all-homogeneous axis is canonical: no `fabrics` key, so
        // pre-fabric fingerprints, cache files and shard files stay valid.
        assert!(plain.to_value().get_field("fabrics").is_none());
        assert!(fabric.to_value().get_field("fabrics").is_some());
    }

    #[test]
    fn fabric_axis_expands_and_seeds_like_an_environment_axis() {
        use qnet_topology::HardwarePreset;
        let g = small_grid().with_fabrics(vec![
            None,
            Some(FabricSpec::new(HardwarePreset::MetroFiber)),
        ]);
        assert_eq!(g.cell_count(), 2 * 2 * 2 * 2);
        // Homogeneous cells omit the key's fabric; calibrated cells carry it.
        let plain_cells = (0..g.cell_count())
            .map(|c| g.cell_key(c))
            .filter(|k| k.fabric.is_none())
            .count();
        assert_eq!(plain_cells, g.cell_count() / 2);
        // The fabric axis is part of the environment: two cells that differ
        // only in fabric get distinct seeds.
        let mut fabric_pairs = 0;
        for a in g.scenarios() {
            for b in g.scenarios() {
                let (ka, kb) = (g.cell_key(a.cell), g.cell_key(b.cell));
                if a.replicate != b.replicate || a.cell == b.cell {
                    continue;
                }
                if ka.topology == kb.topology
                    && ka.mode == kb.mode
                    && ka.distillation == kb.distillation
                    && ka.fabric != kb.fabric
                {
                    assert_ne!(a.seed, b.seed, "fabric must move the seed");
                    fabric_pairs += 1;
                }
            }
        }
        assert!(fabric_pairs > 0, "pairing is non-trivial");
        // Calibrated scenarios carry the fabric into the network config.
        let calibrated = g
            .scenarios()
            .find(|s| s.config.network.fabric.is_some())
            .expect("half the grid is calibrated");
        assert_eq!(
            calibrated.config.network.fabric,
            Some(FabricSpec::new(HardwarePreset::MetroFiber))
        );
        // The grid round-trips with the axis intact.
        let text = serde_json::to_string(&g).unwrap();
        let back: ScenarioGrid = serde_json::from_str(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let fp = small_grid().fingerprint();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(GridFingerprint::parse_hex(&hex).unwrap(), fp);
        assert!(GridFingerprint::parse_hex("xyz").is_err());
        assert!(GridFingerprint::parse_hex("").is_err());
        // Serde round-trip through the string form.
        let back: GridFingerprint = serde::Deserialize::from_value(&fp.to_value()).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn grid_serialization_round_trips_with_fingerprint_intact() {
        let g = small_grid().with_workloads(vec![
            WorkloadSpec::closed_loop(0, 5, 6),
            WorkloadSpec::open_loop(0, 5, 2.0, 10.0)
                .with_discipline(PairSelection::ZipfSkew { s: 1.1 }),
        ]);
        let text = serde_json::to_string(&g).unwrap();
        let back: ScenarioGrid = serde_json::from_str(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.fingerprint(), g.fingerprint());
        // The re-expanded scenarios are identical too.
        let a: Vec<Scenario> = g.scenarios().collect();
        let b: Vec<Scenario> = back.scenarios().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn open_loop_workloads_join_the_axis() {
        use qnet_core::workload::PairSelection;
        let g = small_grid().with_workloads(vec![
            WorkloadSpec::closed_loop(0, 5, 6),
            WorkloadSpec::open_loop(0, 5, 2.0, 10.0)
                .with_discipline(PairSelection::ZipfSkew { s: 1.1 }),
        ]);
        assert_eq!(g.cell_count(), 2 * 2 * 2 * 2);
        let closed = g.cell_key(0);
        assert_eq!(closed.traffic, None);
        assert_eq!(closed.requests, 6);
        let open = g.cell_key(1);
        assert_eq!(
            open.traffic,
            Some(TrafficModel::OpenLoopPoisson {
                rate_hz: 2.0,
                horizon_s: 10.0
            })
        );
        assert_eq!(open.requests, 20, "nominal = rate × horizon");
        assert_eq!(open.discipline, PairSelection::ZipfSkew { s: 1.1 });
        // The workload axis is part of the environment: closed- and
        // open-loop cells in the same mode get distinct seeds.
        let (a, b) = (g.scenario(0), g.scenario(g.replicates as usize));
        assert_eq!(a.cell, 0);
        assert_eq!(b.cell, 1);
        assert_ne!(a.seed, b.seed);
    }
}
